//! Quickstart: checkpoint a two-process computation mid-stream, kill it,
//! and restart it — the `dmtcp_checkpoint` / `dmtcp_command --checkpoint` /
//! `dmtcp_restart_script.sh` workflow of §3, in ~80 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use dmtcp::session::run_for;
use dmtcp::{ExpectCkpt, Options, RestartPlan, Session};
use oskit::program::{Program, Registry, Step};
use oskit::world::{NodeId, World};
use oskit::{Errno, Fd, HwSpec, Kernel};
use simkit::{Nanos, Sim, Snap};

/// A counter that streams its progress to a logger process over TCP.
struct Counter {
    pc: u8,
    fd: Fd,
    n: u64,
    target: u64,
}
simkit::impl_snap!(struct Counter { pc, fd, n, target });

impl Program for Counter {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        match self.pc {
            0 => match k.connect("node01", 7000) {
                Ok(fd) => {
                    self.fd = fd;
                    self.pc = 1;
                    Step::Yield
                }
                Err(Errno::ConnRefused) => Step::Sleep(Nanos::from_millis(2)),
                Err(e) => panic!("connect: {e:?}"),
            },
            1 => {
                if self.n == self.target {
                    k.close(self.fd).expect("close");
                    return Step::Exit(0);
                }
                self.n += 1;
                k.write(self.fd, &self.n.to_le_bytes()).expect("send");
                Step::Compute(500_000) // half a millisecond of "work"
            }
            _ => unreachable!(),
        }
    }
    fn tag(&self) -> &'static str {
        "counter"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

/// Receives the stream and records the last value it saw.
struct Logger {
    pc: u8,
    lfd: Fd,
    cfd: Fd,
    last: u64,
    buf: Vec<u8>,
}
simkit::impl_snap!(struct Logger { pc, lfd, cfd, last, buf });

impl Program for Logger {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    let (fd, _) = k.listen_on(7000).expect("listen");
                    self.lfd = fd;
                    self.pc = 1;
                }
                1 => match k.accept(self.lfd) {
                    Ok(fd) => {
                        self.cfd = fd;
                        self.pc = 2;
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("accept: {e:?}"),
                },
                2 => match k.read(self.cfd, 8 - self.buf.len()) {
                    Ok(b) if b.is_empty() => {
                        let fd = k.open("/shared/final_count", true).expect("result");
                        k.write(fd, self.last.to_string().as_bytes())
                            .expect("write");
                        return Step::Exit(0);
                    }
                    Ok(b) => {
                        self.buf.extend_from_slice(&b);
                        if self.buf.len() == 8 {
                            let v = u64::from_le_bytes(self.buf[..].try_into().expect("8"));
                            assert_eq!(v, self.last + 1, "stream gap — checkpoint corrupted it");
                            self.last = v;
                            self.buf.clear();
                        }
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("read: {e:?}"),
                },
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "logger"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

fn main() {
    // A 2-node simulated cluster with both programs' "executables".
    let mut reg = Registry::new();
    reg.register_snap::<Counter>("counter");
    reg.register_snap::<Logger>("logger");
    let mut w = World::new(HwSpec::cluster(), 2, reg);
    let mut sim = Sim::new();

    // dmtcp_coordinator + dmtcp_checkpoint <program>
    let session = Session::start(
        &mut w,
        &mut sim,
        Options::builder().ckpt_dir("/shared/ckpt").build(),
    );
    session.launch(
        &mut w,
        &mut sim,
        NodeId(1),
        "logger",
        Box::new(Logger {
            pc: 0,
            lfd: -1,
            cfd: -1,
            last: 0,
            buf: Vec::new(),
        }),
    );
    session.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "counter",
        Box::new(Counter {
            pc: 0,
            fd: -1,
            n: 0,
            target: 500,
        }),
    );

    // Let it run a while, then checkpoint (dmtcp_command --checkpoint).
    run_for(&mut w, &mut sim, Nanos::from_millis(100));
    let stat = session
        .checkpoint_and_wait(&mut w, &mut sim, 10_000_000)
        .expect_ckpt();
    println!(
        "checkpointed {} processes in {:.3}s (gen {})",
        stat.participants,
        stat.checkpoint_time().expect("complete").as_secs_f64(),
        stat.gen,
    );

    // Disaster strikes.
    run_for(&mut w, &mut sim, Nanos::from_millis(30));
    session.kill_computation(&mut w, &mut sim);
    println!(
        "killed the computation; {} process(es) left",
        w.live_procs()
    );

    // dmtcp_restart_script.sh, as a typed plan: newest generation back
    // onto the hosts that wrote it.
    RestartPlan::from_generation(&w, session.opts.coord_port, stat.gen)
        .expect("restart script written")
        .execute(&session, &mut w, &mut sim)
        .expect("identity restart");
    Session::wait_restart_done(&mut w, &mut sim, stat.gen, 10_000_000);
    println!("restarted; computation resumes from the checkpoint");

    // Run to completion and verify.
    assert!(
        sim.run_bounded(&mut w, 10_000_000),
        "deadlock after restart"
    );
    let result = String::from_utf8(w.shared_fs.read_all("/shared/final_count").expect("result"))
        .expect("utf8");
    println!("final count: {result} (expected 500)");
    assert_eq!(result, "500");
    println!("OK — no gap, no duplication, across a kill and restart.");
}
