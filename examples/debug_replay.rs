//! Use case 4 (§1): debugging long-running jobs by replaying from a
//! checkpoint. A deterministic computation is checkpointed just before a
//! "bug" manifests; the developer then restarts from that image repeatedly
//! — each replay reproduces the identical pre-crash state, shrinking the
//! debug-recompile cycle.
//!
//! Run with: `cargo run --release --example debug_replay`

use dmtcp::session::run_for;
use dmtcp::{ExpectCkpt, Options, RestartPlan, Session};
use oskit::program::{Program, Registry, Step};
use oskit::world::{NodeId, World};
use oskit::{HwSpec, Kernel};
use simkit::{Nanos, Sim, Snap};

/// A long-running job that corrupts its state at iteration 700 ("the bug")
/// and would crash at 750.
struct Buggy {
    pc: u8,
    iter: u64,
    state: u64,
}
simkit::impl_snap!(struct Buggy { pc, iter, state });

impl Program for Buggy {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        match self.pc {
            0 => {
                self.pc = 1;
                Step::Yield
            }
            1 => {
                self.iter += 1;
                self.state = self
                    .state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(self.iter);
                // Record a heartbeat so the "developer" can see progress.
                if self.iter.is_multiple_of(100) {
                    let fd = k.open("/shared/heartbeat", true).expect("hb");
                    k.write(fd, format!("{}:{}", self.iter, self.state).as_bytes())
                        .expect("w");
                }
                assert!(self.iter < 750, "BUG: state corrupted at iteration 750");
                Step::Compute(1_000_000) // 1 ms per iteration
            }
            _ => unreachable!(),
        }
    }
    fn tag(&self) -> &'static str {
        "buggy"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

fn main() {
    let mut reg = Registry::new();
    reg.register_snap::<Buggy>("buggy");
    let mut w = World::new(HwSpec::desktop(), 1, reg);
    let mut sim = Sim::new();
    let session = Session::start(
        &mut w,
        &mut sim,
        Options::builder().ckpt_dir("/shared/ckpt").build(),
    );
    session.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "simulation",
        Box::new(Buggy {
            pc: 0,
            iter: 0,
            state: 1,
        }),
    );

    // Checkpoint just before the bug (iteration ≈ 690 of 750).
    run_for(&mut w, &mut sim, Nanos::from_millis(690));
    let stat = session
        .checkpoint_and_wait(&mut w, &mut sim, 20_000_000)
        .expect_ckpt();
    println!("checkpoint taken just before the crash (gen {})", stat.gen);

    // Replay from the image three times; each run reproduces the same
    // pre-crash heartbeat.
    let mut observed = Vec::new();
    for attempt in 1..=3 {
        session.kill_computation(&mut w, &mut sim);
        // Clear the (append-mode) heartbeat log so each replay's output is
        // compared on its own.
        let _ = w.shared_fs.remove("/shared/heartbeat");
        RestartPlan::from_generation(&w, session.opts.coord_port, stat.gen)
            .expect("restart script written")
            .execute(&session, &mut w, &mut sim)
            .expect("replay restart");
        Session::wait_restart_done(&mut w, &mut sim, stat.gen, 20_000_000);
        // Run up to (but not past) the crash, inspecting state.
        run_for(&mut w, &mut sim, Nanos::from_millis(40));
        let hb = String::from_utf8(w.shared_fs.read_all("/shared/heartbeat").expect("hb"))
            .expect("utf8");
        println!("replay {attempt}: state at last heartbeat = {hb}");
        observed.push(hb);
    }
    assert!(
        observed.windows(2).all(|p| p[0] == p[1]),
        "replays diverged: {observed:?}"
    );
    println!("OK — every replay reproduces the identical pre-bug state.");
}
