//! The paper's marquee use case (§1, item 6): run the CPU-intensive phase
//! of a computation on a cluster, checkpoint it, and restart *everything on
//! a single laptop* for interactive analysis at home or on a plane.
//!
//! A 4-node MPI job (conjugate gradient under simulated OpenMPI, with its
//! OpenRTE daemons) is checkpointed mid-solve; the cluster then vanishes;
//! the whole computation — 8 ranks, daemons, console, sockets and all —
//! is packed down onto a 1-node "laptop" world by a [`RestartPlan`] and
//! finishes with a residual bit-identical to an uninterrupted run.
//!
//! Run with: `cargo run --release --example migrate_to_laptop`

use apps::nas::{nas_factory, NasKernel};
use apps::registry::full_registry;
use apps::result_path;
use dmtcp::session::{run_for, transplant_storage};
use dmtcp::{ExpectCkpt, Options, Packing, RestartPlan, Session};
use oskit::world::NodeId;
use oskit::{HwSpec, World};
use simkit::{Nanos, Sim};
use simmpi::launch::{mpirun, Flavor, Launcher, MpiJob};

const EV: u64 = 100_000_000;

fn job() -> MpiJob {
    MpiJob {
        flavor: Flavor::OpenMpi,
        nodes: (0..4).map(NodeId).collect(),
        procs_per_node: 2,
        base_port: 30_000,
    }
}

/// Reference: the same 8-rank job with no DMTCP and no migration.
fn reference_residual() -> String {
    let mut w = World::new(HwSpec::cluster(), 4, full_registry());
    let mut sim = Sim::new();
    mpirun(
        &mut w,
        &mut sim,
        Launcher::Raw,
        &job(),
        nas_factory(NasKernel::Cg, 400, 2_000),
    );
    assert!(sim.run_bounded(&mut w, EV), "reference run deadlocked");
    String::from_utf8(w.shared_fs.read_all(&result_path("nas-CG")).expect("ran")).expect("utf8")
}

fn main() {
    let reference = reference_residual();
    let opts = Options::builder().ckpt_dir("/shared/ckpt").build();

    // ---- Phase 1: the cluster ----
    let mut cluster = World::new(HwSpec::cluster(), 4, full_registry());
    let mut sim = Sim::new();
    let session = Session::start(&mut cluster, &mut sim, opts.clone());
    mpirun(
        &mut cluster,
        &mut sim,
        Launcher::Dmtcp(&session),
        &job(),
        nas_factory(NasKernel::Cg, 400, 2_000),
    );
    println!("cluster: 8-rank CG job running under simulated OpenMPI + DMTCP");
    run_for(&mut cluster, &mut sim, Nanos::from_millis(150));
    let stat = session
        .checkpoint_and_wait(&mut cluster, &mut sim, EV)
        .expect_ckpt();
    println!(
        "cluster: checkpointed {} processes (ranks + orteds + orterun) in {:.2}s",
        stat.participants,
        stat.checkpoint_time().expect("complete").as_secs_f64()
    );

    // ---- Phase 2: the laptop ----
    let mut laptop = World::new(HwSpec::desktop(), 1, full_registry());
    let mut sim2 = Sim::new();
    transplant_storage(&cluster, &mut laptop); // only the storage survives
    drop(cluster);
    drop(sim);
    println!("laptop: cluster gone; images carried over on shared storage");

    // Pack the whole 4-node generation onto the single laptop node: the
    // planner groups fork-related processes into colocation units and
    // fills node 0 with all of them.
    let session2 = Session::start(&mut laptop, &mut sim2, opts);
    let outcome = RestartPlan::builder()
        .generation(stat.gen)
        .topology([NodeId(0)])
        .pack(Packing::Fill)
        .build()
        .execute(&session2, &mut laptop, &mut sim2)
        .expect("pack-down restart onto the laptop");
    Session::wait_restart_done(&mut laptop, &mut sim2, stat.gen, EV);
    let restored: usize = outcome.placement.iter().map(|(_, v)| v.len()).sum();
    println!("laptop: all {restored} processes restored on one machine");
    assert_eq!(
        restored as u32, stat.participants,
        "every checkpointed process was placed"
    );

    assert!(sim2.run_bounded(&mut laptop, EV), "laptop run deadlocked");
    let residual = String::from_utf8(
        laptop
            .shared_fs
            .read_all(&result_path("nas-CG"))
            .expect("CG finished"),
    )
    .expect("utf8");
    println!("laptop: CG completed; final residual = {residual}");
    assert_eq!(
        residual, reference,
        "packed-down run must be bit-identical to an uninterrupted one"
    );
    println!("OK — cluster job finished on a laptop, bit-identical to an uninterrupted run.");
}
