//! The paper's marquee use case (§1, item 6): run the CPU-intensive phase
//! of a computation on a cluster, checkpoint it, and restart *everything on
//! a single laptop* for interactive analysis at home or on a plane.
//!
//! A 4-node MPI job (conjugate gradient under simulated OpenMPI, with its
//! OpenRTE daemons) is checkpointed mid-solve; the cluster then vanishes;
//! the whole computation — 8 ranks, daemons, console, sockets and all —
//! resumes on a 1-node "laptop" world and finishes with the identical
//! residual.
//!
//! Run with: `cargo run --release --example migrate_to_laptop`

use apps::nas::{nas_factory, NasKernel};
use apps::registry::full_registry;
use apps::result_path;
use dmtcp::session::{run_for, transplant_storage};
use dmtcp::{ExpectCkpt, Options, Session};
use oskit::world::NodeId;
use oskit::{HwSpec, World};
use simkit::{Nanos, Sim};
use simmpi::launch::{mpirun, Flavor, Launcher, MpiJob};

const EV: u64 = 100_000_000;

fn main() {
    let opts = Options::builder().ckpt_dir("/shared/ckpt").build();

    // ---- Phase 1: the cluster ----
    let mut cluster = World::new(HwSpec::cluster(), 4, full_registry());
    let mut sim = Sim::new();
    let session = Session::start(&mut cluster, &mut sim, opts.clone());
    let job = MpiJob {
        flavor: Flavor::OpenMpi,
        nodes: (0..4).map(NodeId).collect(),
        procs_per_node: 2,
        base_port: 30_000,
    };
    mpirun(
        &mut cluster,
        &mut sim,
        Launcher::Dmtcp(&session),
        &job,
        nas_factory(NasKernel::Cg, 400, 2_000),
    );
    println!("cluster: 8-rank CG job running under simulated OpenMPI + DMTCP");
    run_for(&mut cluster, &mut sim, Nanos::from_millis(150));
    let stat = session
        .checkpoint_and_wait(&mut cluster, &mut sim, EV)
        .expect_ckpt();
    println!(
        "cluster: checkpointed {} processes (ranks + orteds + orterun) in {:.2}s",
        stat.participants,
        stat.checkpoint_time().expect("complete").as_secs_f64()
    );
    let script = Session::parse_restart_script(&cluster);

    // ---- Phase 2: the laptop ----
    let mut laptop = World::new(HwSpec::desktop(), 1, full_registry());
    let mut sim2 = Sim::new();
    transplant_storage(&cluster, &mut laptop); // only the storage survives
    drop(cluster);
    drop(sim);
    println!("laptop: cluster gone; images carried over on shared storage");

    let session2 = Session::start(&mut laptop, &mut sim2, opts);
    let everything_here = |_host: &str| NodeId(0);
    session2.restart_from_script(&mut laptop, &mut sim2, &script, &everything_here, stat.gen);
    Session::wait_restart_done(&mut laptop, &mut sim2, stat.gen, EV);
    println!(
        "laptop: all {} processes restored on one machine",
        stat.participants
    );

    assert!(sim2.run_bounded(&mut laptop, EV), "laptop run deadlocked");
    let residual = String::from_utf8(
        laptop
            .shared_fs
            .read_all(&result_path("nas-CG"))
            .expect("CG finished"),
    )
    .expect("utf8");
    println!("laptop: CG completed; final residual = {residual}");
    println!("OK — cluster job finished on a laptop.");
}
