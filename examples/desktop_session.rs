//! "Save/restore workspace" for a desktop session (§1 use cases 1 and 8):
//! a TightVNC-style headless display session — vncserver holding a pty,
//! a window manager and an xterm talking X protocol over sockets — is
//! checkpointed at a 10-second interval while it runs, then killed and
//! restored from the latest automatic checkpoint.
//!
//! Run with: `cargo run --release --example desktop_session`

use apps::desktop::{launch_desktop, spec_by_name};
use apps::registry::full_registry;
use dmtcp::coord::coord_shared;
use dmtcp::session::run_for;
use dmtcp::{Options, RestartPlan, Session};
use oskit::world::NodeId;
use oskit::{HwSpec, World};
use simkit::{Nanos, Sim};

const EV: u64 = 50_000_000;

fn main() {
    let mut w = World::new(HwSpec::desktop(), 1, full_registry());
    let mut sim = Sim::new();
    // `dmtcp_checkpoint --interval 10 vncserver ...`
    let session = Session::start(
        &mut w,
        &mut sim,
        Options::builder()
            .ckpt_dir("/shared/ckpt")
            .interval(Nanos::from_secs(10))
            .build(),
    );
    let spec = spec_by_name("tightvnc+twm").expect("catalogue entry");
    launch_desktop(&mut w, &mut sim, Some(&session), NodeId(0), spec, 42);
    println!("desktop session up: vncserver + twm + xterm, pty + X sockets");

    // Let the interval checkpointer fire a few times.
    run_for(&mut w, &mut sim, Nanos::from_secs(35));
    let gens = coord_shared(&mut w).gen_stats.len();
    println!("automatic interval checkpoints taken: {gens}");
    assert!(gens >= 3, "expected ≥3 interval checkpoints");
    let last = Session::last_gen_stat(&mut w).expect("stats");
    println!(
        "last checkpoint: {} processes, {:.2}s",
        last.participants,
        last.checkpoint_time().expect("complete").as_secs_f64()
    );

    // Power cut. Restore the workspace from the last automatic checkpoint.
    session.kill_computation(&mut w, &mut sim);
    println!("session killed; restoring workspace…");
    RestartPlan::from_generation(&w, session.opts.coord_port, last.gen)
        .expect("interval checkpoints wrote a restart script")
        .execute(&session, &mut w, &mut sim)
        .expect("workspace restore");
    Session::wait_restart_done(&mut w, &mut sim, last.gen, EV);

    // The restored session keeps serving display updates.
    run_for(&mut w, &mut sim, Nanos::from_secs(2));
    let alive = w.live_procs();
    println!("restored; {alive} live processes (3 session + 1 coordinator)");
    assert!(alive >= 4);
    // The pty and its terminal modes came back with the session.
    assert!(!w.ptys.is_empty(), "display pty restored");
    println!("OK — workspace saved and restored transparently.");
}
