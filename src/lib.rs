//! `dmtcp-repro` — a from-scratch Rust reproduction of
//! *DMTCP: Transparent Checkpointing for Cluster Computations and the
//! Desktop* (Ansel, Arya, Cooperman — IPDPS 2009).
//!
//! This facade crate re-exports the workspace layers; see the individual
//! crates for the real APIs, DESIGN.md for the architecture and the
//! substitution rationale (simulated kernel in place of raw Linux
//! syscalls), and EXPERIMENTS.md for paper-vs-measured numbers.
//!
//! * [`simkit`] — deterministic discrete-event simulation kernel.
//! * [`szip`] — the gzip stand-in (real streaming LZSS).
//! * [`oskit`] — the simulated UNIX cluster (processes, sockets, ptys,
//!   shared memory, filesystems, pid namespace).
//! * [`mtcp`] — single-process checkpointing (image format, write/restore,
//!   forked checkpointing).
//! * [`dmtcp`] — the paper's contribution: coordinator, manager threads,
//!   the 7-stage/6-barrier protocol, drain/refill, discovery-based restart,
//!   pid virtualization, `dmtcpaware`.
//! * [`simmpi`] — MPICH2/OpenMPI launch models, an MPI subset, TOP-C.
//! * [`apps`] — the paper's workloads (NAS kernels, ParGeant4, iPython,
//!   the 21 desktop applications, RunCMS, the Figure-6 memory hog).
//!
//! ```
//! // The quickest possible tour: one process, one checkpoint, one restart.
//! use dmtcp_repro::prelude::*;
//!
//! let mut reg = Registry::new();
//! reg.register_snap::<apps::runcms::RunCms>("runcms");
//! let mut w = World::new(HwSpec::desktop(), 1, reg);
//! let mut sim = Sim::new();
//! let session = Session::start(&mut w, &mut sim, Options::default());
//! session.launch(&mut w, &mut sim, NodeId(0), "runCMS",
//!                Box::new(apps::runcms::RunCms::new()));
//! dmtcp::session::run_for(&mut w, &mut sim, Nanos::from_secs(60));
//! let stat = session.checkpoint_and_wait(&mut w, &mut sim, 50_000_000)
//!     .expect_ckpt();
//! assert_eq!(stat.participants, 1);
//! ```

#![forbid(unsafe_code)]

pub use apps;
pub use dmtcp;
pub use mtcp;
pub use oskit;
pub use simkit;
pub use simmpi;
pub use szip;

/// The names most programs need.
pub mod prelude {
    pub use dmtcp::{CkptError, ExpectCkpt, Options, Packing, RestartPlan, Session};
    pub use oskit::program::{Program, Registry, Step};
    pub use oskit::world::{NodeId, OsSim, Pid, World};
    pub use oskit::{Errno, Fd, HwSpec, Kernel};
    pub use simkit::{Nanos, Sim, Snap};
}
