//! Cross-crate integration tests mirroring the paper's §1.1 use-case list,
//! driven through the facade crate's prelude.

use dmtcp_repro::prelude::*;
use dmtcp_repro::{apps, dmtcp};

use apps::registry::full_registry;
use dmtcp::coord::coord_shared;
use dmtcp::session::{run_for, transplant_storage};

const EV: u64 = 60_000_000;

fn opts() -> Options {
    Options::builder().ckpt_dir("/shared/ckpt").build()
}

/// Use case 1/2 ("save/restore workspace", "undump"): RunCMS pays its long
/// startup once; every later launch restores from the image in seconds.
#[test]
fn undump_replaces_long_startup() {
    let mut w = World::new(HwSpec::desktop(), 1, full_registry());
    let mut sim = Sim::new();
    let s = Session::start(&mut w, &mut sim, opts());
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "runCMS",
        Box::new(apps::runcms::RunCms::new()),
    );
    // Startup takes tens of simulated seconds (library loading).
    run_for(&mut w, &mut sim, Nanos::from_secs(60));
    let t0 = sim.now();
    let stat = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
    assert_eq!(stat.participants, 1);

    // "Undump": kill and restore — must be far faster than the startup.
    s.kill_computation(&mut w, &mut sim);
    let t1 = sim.now();
    RestartPlan::from_generation(&w, s.opts.coord_port, stat.gen)
        .expect("restart script written")
        .execute(&s, &mut w, &mut sim)
        .expect("undump restart");
    Session::wait_restart_done(&mut w, &mut sim, stat.gen, EV);
    let restore_took = sim.now() - t1;
    assert!(
        restore_took < Nanos::from_secs(30),
        "restore {restore_took:?} should beat the ~35s startup"
    );
    let _ = t0;
    // The restored process is the fully initialized one: 540 libraries.
    let restored = w
        .procs
        .iter()
        .find(|(_, p)| p.alive() && p.cmd == "runCMS")
        .map(|(pid, _)| *pid)
        .expect("runCMS restored");
    let maps = w.proc_maps(restored).expect("maps");
    assert!(maps.matches(".so").count() >= 540);
}

/// Use case 6: cluster → laptop migration, via the facade.
#[test]
fn cluster_to_laptop_via_facade() {
    let mut cluster = World::new(HwSpec::cluster(), 2, full_registry());
    let mut sim = Sim::new();
    let s = Session::start(&mut cluster, &mut sim, opts());
    let nodes: Vec<NodeId> = vec![NodeId(0), NodeId(1)];
    apps::ipython::launch_demo(&mut cluster, &mut sim, Some(&s), &nodes, 100_000);
    run_for(&mut cluster, &mut sim, Nanos::from_millis(60));
    let stat = s
        .checkpoint_and_wait(&mut cluster, &mut sim, EV)
        .expect_ckpt();
    assert_eq!(stat.participants, 3, "controller + 2 engines");

    let mut laptop = World::new(HwSpec::desktop(), 1, full_registry());
    let mut sim2 = Sim::new();
    transplant_storage(&cluster, &mut laptop);
    drop((cluster, sim));
    let s2 = Session::start(&mut laptop, &mut sim2, opts());
    RestartPlan::builder()
        .generation(stat.gen)
        .topology([NodeId(0)])
        .build()
        .execute(&s2, &mut laptop, &mut sim2)
        .expect("pack-down restart onto the laptop");
    Session::wait_restart_done(&mut laptop, &mut sim2, stat.gen, EV);
    // The demo keeps mapping tasks on the laptop.
    run_for(&mut laptop, &mut sim2, Nanos::from_millis(60));
    assert!(laptop.live_procs() >= 4, "session + coordinator alive");
}

/// Use case 8 ("robustness: revert to an earlier checkpoint"): interval
/// checkpoints accumulate; any generation can be chosen for restart.
#[test]
fn revert_to_an_earlier_generation() {
    let mut w = World::new(HwSpec::desktop(), 1, full_registry());
    let mut sim = Sim::new();
    let s = Session::start(
        &mut w,
        &mut sim,
        Options::builder()
            .ckpt_dir("/shared/ckpt")
            .interval(Nanos::from_millis(50))
            .build(),
    );
    let spec = apps::desktop::spec_by_name("python").expect("python");
    apps::desktop::launch_desktop(&mut w, &mut sim, Some(&s), NodeId(0), spec, 5);
    run_for(&mut w, &mut sim, Nanos::from_secs(4));
    let gens: Vec<u64> = coord_shared(&mut w)
        .gen_stats
        .iter()
        .map(|g| g.gen)
        .collect();
    assert!(gens.len() >= 3, "interval checkpoints: {gens:?}");
    // Images for every generation exist on disk.
    for g in &gens {
        let found = w
            .shared_fs
            .list_prefix("/shared/ckpt/")
            .any(|p| p.contains(&format!("gen{g}")));
        assert!(found, "generation {g} image missing");
    }
    // Revert to the FIRST generation, not the last.
    let early = gens[0];
    s.kill_computation(&mut w, &mut sim);
    RestartPlan::from_generation(&w, s.opts.coord_port, early)
        .expect("interval checkpoints wrote a restart script")
        .execute(&s, &mut w, &mut sim)
        .expect("revert to the first generation");
    Session::wait_restart_done(&mut w, &mut sim, early, EV);
    run_for(&mut w, &mut sim, Nanos::from_millis(30));
    assert!(w.live_procs() >= 2, "reverted session runs");
}

/// The facade's prelude really is sufficient to drive a session (doc-test
/// parity, kept as a compiled test).
#[test]
fn prelude_is_sufficient() {
    let mut reg = Registry::new();
    reg.register_snap::<apps::runcms::RunCms>("runcms");
    let mut w = World::new(HwSpec::desktop(), 1, reg);
    let mut sim = Sim::new();
    let session = Session::start(&mut w, &mut sim, Options::default());
    session.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "runCMS",
        Box::new(apps::runcms::RunCms::new()),
    );
    run_for(&mut w, &mut sim, Nanos::from_secs(50));
    let stat = session
        .checkpoint_and_wait(&mut w, &mut sim, EV)
        .expect_ckpt();
    assert_eq!(stat.participants, 1);
}
