#!/usr/bin/env bash
# Bench-regression gate: compare a flat benchmark summary (one numeric key
# per line, as written by `downtime` into results/BENCH_ckpt.json) against
# the committed baseline, with a relative tolerance.
#
# Usage:
#   scripts/bench_gate.sh compare [NEW] [BASELINE]   # default paths below
#   scripts/bench_gate.sh self-test                  # gate-must-fail test
#
# Direction is encoded in the key suffix:
#   *_s, *_bytes,
#   *_per_gen     lower is better  -> fail when new > baseline * (1 + tol)
#   *_ratio,
#   *_per_sec     higher is better -> fail when new < baseline * (1 - tol)
# (`_ratio` and the `_per_sec` throughput keys from the tenants bench are
# the only higher-is-better suffixes; any other key, including the
# `root_msgs_per_gen` coordinator-load counters from the scale bench,
# gates lower-is-better.)
# A key present in the baseline but missing from the new results fails the
# gate too — a silently dropped metric is a coverage regression. New keys
# absent from the baseline are reported but do not fail (commit the updated
# baseline to start gating them).
#
# Tolerance: BENCH_GATE_TOLERANCE (fraction, default 0.15). The simulation
# is deterministic, so the slack only absorbs intentional model retunes
# small enough not to matter.
set -euo pipefail
cd "$(dirname "$0")/.."

TOL="${BENCH_GATE_TOLERANCE:-0.15}"

compare() {
    local new="${1:-results/BENCH_ckpt.json}"
    local base="${2:-scripts/BENCH_ckpt.baseline.json}"
    if [[ ! -f "$new" ]]; then
        echo "bench_gate: new results '$new' not found (run: ./target/release/downtime --smoke)" >&2
        return 1
    fi
    if [[ ! -f "$base" ]]; then
        echo "bench_gate: baseline '$base' not found" >&2
        return 1
    fi
    echo "bench_gate: $new vs $base (tolerance ${TOL})"
    awk -v tol="$TOL" '
        FNR == 1 { fi++ }
        match($0, /"[A-Za-z0-9_]+"[[:space:]]*:[[:space:]]*-?[0-9.][0-9.eE+-]*/) {
            kv = substr($0, RSTART, RLENGTH)
            colon = index(kv, ":")
            key = substr(kv, 1, colon - 1); gsub(/"/, "", key)
            val = substr(kv, colon + 1) + 0
            if (fi == 1) base[key] = val
            else newv[key] = val
        }
        END {
            fail = 0
            n_checked = 0
            for (k in base) {
                if (!(k in newv)) {
                    printf "  MISSING    %-22s in baseline but absent from new results\n", k
                    fail = 1
                    continue
                }
                b = base[k]; n = newv[k]; n_checked++
                if (k ~ /_ratio$/ || k ~ /_per_sec$/) { lim = b * (1 - tol); bad = (n < lim) }
                else                                  { lim = b * (1 + tol); bad = (n > lim) }
                if (bad) {
                    printf "  REGRESSION %-22s %.6g vs baseline %.6g (limit %.6g)\n", k, n, b, lim
                    fail = 1
                } else {
                    printf "  ok         %-22s %.6g (baseline %.6g)\n", k, n, b
                }
            }
            for (k in newv)
                if (!(k in base))
                    printf "  note       %-22s new metric %.6g not in baseline yet\n", k, newv[k]
            if (n_checked == 0) {
                print "  no shared metrics found — malformed input?"
                fail = 1
            }
            exit fail
        }
    ' "$base" "$new"
}

# Negative test: a synthetic 20% regression in each direction must trip the
# gate, and an in-tolerance drift must not.
self_test() {
    local d
    d="$(mktemp -d)"
    trap 'rm -rf "$d"' RETURN
    printf '{\n  "ckpt_total_s": 1.0,\n  "pause_ratio": 10.0\n}\n' > "$d/base.json"

    printf '{\n  "ckpt_total_s": 1.2,\n  "pause_ratio": 10.0\n}\n' > "$d/slow.json"
    if compare "$d/slow.json" "$d/base.json" > /dev/null; then
        echo "bench_gate self-test FAILED: 20% time regression not caught" >&2
        return 1
    fi

    printf '{\n  "ckpt_total_s": 1.0,\n  "pause_ratio": 8.0\n}\n' > "$d/worse.json"
    if compare "$d/worse.json" "$d/base.json" > /dev/null; then
        echo "bench_gate self-test FAILED: 20% ratio regression not caught" >&2
        return 1
    fi

    printf '{\n  "pause_ratio": 10.0\n}\n' > "$d/dropped.json"
    if compare "$d/dropped.json" "$d/base.json" > /dev/null; then
        echo "bench_gate self-test FAILED: dropped metric not caught" >&2
        return 1
    fi

    # Coordinator-load counters (*_per_gen) gate lower-is-better: a 20%
    # message-count growth must trip, an in-tolerance count must pass.
    printf '{\n  "root_msgs_per_gen": 1000.0\n}\n' > "$d/msgs_base.json"
    printf '{\n  "root_msgs_per_gen": 1200.0\n}\n' > "$d/msgs_up.json"
    if compare "$d/msgs_up.json" "$d/msgs_base.json" > /dev/null; then
        echo "bench_gate self-test FAILED: 20% per-gen message growth not caught" >&2
        return 1
    fi
    printf '{\n  "root_msgs_per_gen": 1050.0\n}\n' > "$d/msgs_ok.json"
    if ! compare "$d/msgs_ok.json" "$d/msgs_base.json" > /dev/null; then
        echo "bench_gate self-test FAILED: in-tolerance per-gen count rejected" >&2
        return 1
    fi

    # Throughput keys (*_per_sec) gate higher-is-better: a 20% rate drop
    # must trip, an in-tolerance rate must pass.
    printf '{\n  "agg_ckpts_per_sec": 50.0\n}\n' > "$d/rate_base.json"
    printf '{\n  "agg_ckpts_per_sec": 40.0\n}\n' > "$d/rate_down.json"
    if compare "$d/rate_down.json" "$d/rate_base.json" > /dev/null; then
        echo "bench_gate self-test FAILED: 20% throughput drop not caught" >&2
        return 1
    fi
    printf '{\n  "agg_ckpts_per_sec": 47.0\n}\n' > "$d/rate_ok.json"
    if ! compare "$d/rate_ok.json" "$d/rate_base.json" > /dev/null; then
        echo "bench_gate self-test FAILED: in-tolerance throughput rejected" >&2
        return 1
    fi

    # Engine-throughput keys from the sim bench use the same *_per_sec
    # rule: an improvement sails through, a 25% collapse trips the gate.
    printf '{\n  "sim_timer_events_per_sec": 8000000.0\n}\n' > "$d/sim_base.json"
    printf '{\n  "sim_timer_events_per_sec": 12000000.0\n}\n' > "$d/sim_up.json"
    if ! compare "$d/sim_up.json" "$d/sim_base.json" > /dev/null; then
        echo "bench_gate self-test FAILED: events/sec improvement rejected" >&2
        return 1
    fi
    printf '{\n  "sim_timer_events_per_sec": 6000000.0\n}\n' > "$d/sim_down.json"
    if compare "$d/sim_down.json" "$d/sim_base.json" > /dev/null; then
        echo "bench_gate self-test FAILED: 25% events/sec drop not caught" >&2
        return 1
    fi

    printf '{\n  "ckpt_total_s": 1.05,\n  "pause_ratio": 9.5\n}\n' > "$d/drift.json"
    if ! compare "$d/drift.json" "$d/base.json" > /dev/null; then
        echo "bench_gate self-test FAILED: in-tolerance drift rejected" >&2
        return 1
    fi

    echo "bench_gate self-test: OK"
}

case "${1:-compare}" in
    compare) shift || true; compare "$@" ;;
    self-test) self_test ;;
    *)
        echo "usage: $0 [compare [NEW] [BASELINE] | self-test]" >&2
        exit 2
        ;;
esac
