#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
#
# Usage: scripts/tier1.sh [stage...]
#   stages: build test faults bench sim scale tenants migrate replay lint
#   No arguments runs every stage in that order (the full PR gate). CI runs
#   the same stages one job each — `scripts/tier1.sh build`, etc. — so a
#   local no-arg run reproduces the whole pipeline stage by stage.
#
# Fault-matrix knobs (crates/core/tests/faults.rs):
#   DMTCP_FAULT_ROTATING=N  run the matrix with N extra date-derived base
#                           seeds on top of the fixed ones (default here: 2),
#                           so CI gradually sweeps fresh fault schedules
#                           while staying reproducible — a failing cell
#                           prints the exact DMTCP_FAULT_SEEDS value to
#                           replay it. Set to 0 for fixed seeds only.
#   DMTCP_FAULT_SEEDS       comma-separated explicit base seeds (hex or
#                           decimal) — replaces the fixed defaults; use the
#                           value printed by a failing run to reproduce it.
#   DMTCP_TEST_EV_BUDGET    per-run simulation event budget for the heavier
#                           integration tests (default 8000000).
set -euo pipefail
cd "$(dirname "$0")/.."

stage_build() {
    echo "== cargo build --release =="
    cargo build --release --workspace
}

stage_test() {
    echo "== cargo test (fault matrix deferred to the faults stage) =="
    # The matrix is a stage of its own; skip it here so a full pipeline run
    # executes each cell exactly once.
    DMTCP_FAULT_SKIP_DEFAULT=1 cargo test -q --workspace
}

stage_faults() {
    echo "== fault matrix (fixed + rotating seeds) =="
    DMTCP_FAULT_ROTATING="${DMTCP_FAULT_ROTATING:-2}" cargo test -q -p dmtcp --test faults
}

stage_bench() {
    echo "== ckptstore smoke bench (3 generations, NAS/MG + incremental >=10x gate) =="
    cargo build --release -p dmtcp-bench
    ./target/release/ckptstore --smoke
    echo "== downtime smoke bench (perceived vs total checkpoint time) =="
    ./target/release/downtime --smoke
    echo "== bench-regression gate =="
    scripts/bench_gate.sh self-test
    scripts/bench_gate.sh compare
}

stage_sim() {
    echo "== sim engine throughput bench (timer wheel vs reference heap, >=5x gate) =="
    cargo build --release -p dmtcp-bench
    ./target/release/sim --smoke
    echo "== sim bench-regression gate =="
    scripts/bench_gate.sh self-test
    # Unlike every other gate file, events/sec is wall-clock: the committed
    # baseline is set well below measured values and the tolerance widened,
    # so the gate catches engine-speed collapses, not machine variance.
    BENCH_GATE_TOLERANCE="${BENCH_GATE_TOLERANCE:-0.5}" \
        scripts/bench_gate.sh compare results/BENCH_sim.json scripts/BENCH_sim.baseline.json
}

stage_scale() {
    echo "== scale smoke bench (flat star vs per-node relays) =="
    cargo build --release -p dmtcp-bench
    ./target/release/scale --smoke
    echo "== scale bench-regression gate =="
    scripts/bench_gate.sh compare results/BENCH_scale.json scripts/BENCH_scale.baseline.json
}

stage_tenants() {
    echo "== multi-tenant service tests (admission, isolation, quotas, shard faults) =="
    cargo test -q -p svc
    echo "== tenants smoke bench (shared coordinator vs sharded dmtcpd, >=3x gate) =="
    cargo build --release -p dmtcp-bench
    ./target/release/tenants --smoke
    echo "== tenants bench-regression gate =="
    scripts/bench_gate.sh compare results/BENCH_tenants.json scripts/BENCH_tenants.baseline.json
}

stage_migrate() {
    echo "== heterogeneous restart + live migration tests (RestartPlan API) =="
    cargo test -q -p dmtcp --test migrate
    echo "== migrate smoke bench (subset migration pause vs full cycle, >=3x gate) =="
    cargo build --release -p dmtcp-bench
    ./target/release/migrate --smoke
    echo "== migrate bench-regression gate =="
    scripts/bench_gate.sh compare results/BENCH_migrate.json scripts/BENCH_migrate.baseline.json
}

stage_replay() {
    echo "== flight-recorder record/replay smoke (zero divergence) =="
    cargo test -q -p dmtcp --test replay
    echo "== journal codec property tests =="
    cargo test -q -p obs --test prop_journal
}

stage_lint() {
    echo "== cargo clippy (-D warnings) =="
    cargo clippy --workspace --all-targets -- -D warnings
    echo "== cargo fmt --check =="
    cargo fmt --all -- --check
}

run_stage() {
    local name="$1"
    case "$name" in
        build | test | faults | bench | sim | scale | tenants | migrate | replay | lint) ;;
        *)
            echo "tier1: unknown stage '$name' (stages: build test faults bench sim scale tenants migrate replay lint)" >&2
            exit 2
            ;;
    esac
    local t0 t1
    t0=$SECONDS
    "stage_$name"
    t1=$SECONDS
    echo "tier1: stage $name OK ($((t1 - t0))s)"
}

if [[ $# -eq 0 ]]; then
    set -- build test faults bench sim scale tenants migrate replay lint
fi
for stage in "$@"; do
    run_stage "$stage"
done
echo "tier1: OK"
