#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
# Usage: scripts/tier1.sh
#
# Fault-matrix knobs (crates/core/tests/faults.rs):
#   DMTCP_FAULT_ROTATING=N  run the matrix with N extra date-derived base
#                           seeds on top of the fixed ones (default here: 2),
#                           so CI gradually sweeps fresh fault schedules
#                           while staying reproducible — a failing cell
#                           prints the exact DMTCP_FAULT_SEEDS value to
#                           replay it. Set to 0 for fixed seeds only.
#   DMTCP_FAULT_SEEDS       comma-separated explicit base seeds (hex or
#                           decimal) — replaces the fixed defaults; use the
#                           value printed by a failing run to reproduce it.
#   DMTCP_TEST_EV_BUDGET    per-run simulation event budget for the heavier
#                           integration tests (default 8000000).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== fault matrix (fixed + rotating seeds) =="
DMTCP_FAULT_ROTATING="${DMTCP_FAULT_ROTATING:-2}" cargo test -q -p dmtcp --test faults

echo "== ckptstore smoke bench (3 generations, NAS/MG) =="
./target/release/ckptstore --smoke

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "tier1: OK"
