//! `faultkit` — deterministic, seed-driven fault injection for the
//! simulated cluster.
//!
//! The checkpoint/restart protocol's transparency claim (the paper's §3) is
//! only credible if it survives the failures it was designed around: lost
//! or reordered coordinator messages, processes and nodes dying mid-stage,
//! network partitions, and checkpoint images torn mid-write. This crate
//! injects exactly those faults, reproducibly from a single [`DetRng`]
//! seed, through two hooks the simulated kernel exposes:
//!
//! * [`oskit::world::World::net_fault`] — consulted on every
//!   `conn_transmit`, i.e. below the socket layer and above the wire. A
//!   verdict can drop a packet or defer its arrival.
//! * [`oskit::world::World::image_fault`] — consulted between "checkpoint
//!   bytes produced" and "file committed", the window where a real torn
//!   write lives.
//!
//! The DMTCP layer (which this crate deliberately does *not* depend on)
//! notifies faultkit of protocol progress: which connections carry
//! coordinator traffic, when a checkpoint generation starts, and when each
//! barrier stage is released. Faults are armed against a named stage of a
//! named generation, so a test cell like "drop one protocol message during
//! DRAIN of generation 2, seed 0x5EED" is fully deterministic.
//!
//! ## Stream safety
//!
//! All faulted streams stay *byte-stream-consistent*: a drop loses one
//! whole transmit unit (protocol messages are framed one-per-send, so
//! framing survives), and delays respect a per-direction FIFO floor except
//! for explicit reorder faults, which let later frames overtake earlier
//! ones without ever splitting a frame.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use oskit::net::ConnId;
use oskit::proc::sig;
use oskit::world::{NetFault, NetPacket, NodeId, OsSim, Pid, World};
use simkit::{DetRng, Nanos};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// Extension-slot key under which the shared state lives.
const SLOT: &str = "faultkit-state";

/// Margin added after a partition window before delayed packets arrive.
const PARTITION_EPS: Nanos = Nanos(50_000); // 50 µs

/// What kind of fault a plan injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Silently lose one coordinator protocol message.
    DropMsg,
    /// Delay one coordinator protocol message (FIFO preserved).
    DelayMsg,
    /// Delay one coordinator protocol message and let later frames overtake
    /// it (reordering; frames are never split).
    ReorderMsg,
    /// SIGKILL one checkpointed process at the target stage's release.
    KillProc,
    /// SIGKILL every checkpointed process on one non-coordinator node at
    /// the target stage's release.
    KillNode,
    /// Partition the coordinator's node from another node for a bounded
    /// virtual-time window starting at the target stage.
    Partition,
    /// Truncate one checkpoint image mid-write (torn write).
    TornTruncate,
    /// Flip one bit in one checkpoint image mid-write.
    TornBitFlip,
    /// Delete one primary checkpoint image after the checkpoint completes —
    /// the plain file *and* the writing node's local chunk store — modeling
    /// node-local disk loss. Restart must proceed from a replica.
    ImageDelete,
    /// Whole-node loss *during a live migration*: at the
    /// [`migration_started`] notification, SIGKILL every process on the
    /// victim node and wipe its node-local disk (plain images and chunk
    /// store). Pin the victim with [`FaultState::pin_victim_node`] — the
    /// source node exercises the replica transfer channel, the target
    /// node kills the restore before it commits. Not in
    /// [`FaultKind::ALL`]: it only fires from the migration notification,
    /// so it runs as targeted cells on top of the standard matrix.
    NodeLoss,
    /// SIGKILL one per-node relay (hierarchical topology) at the target
    /// stage's release — the relay's whole node drops out of the protocol
    /// at once. Not in [`FaultKind::ALL`]: relay faults only make sense
    /// under `Topology::Hierarchical`, so they run as targeted cells on
    /// top of the standard matrix.
    RelayKill,
    /// Permanently sever one relay's uplink to the root coordinator from
    /// the target stage's release on: every packet in either direction is
    /// dropped (an asymmetric, unhealing partition). Also excluded from
    /// [`FaultKind::ALL`]; see [`FaultKind::RelayKill`].
    RelaySever,
}

impl FaultKind {
    /// All kinds, in matrix order.
    pub const ALL: [FaultKind; 9] = [
        FaultKind::DropMsg,
        FaultKind::DelayMsg,
        FaultKind::ReorderMsg,
        FaultKind::KillProc,
        FaultKind::KillNode,
        FaultKind::Partition,
        FaultKind::TornTruncate,
        FaultKind::TornBitFlip,
        FaultKind::ImageDelete,
    ];

    /// Short stable name (seed reports, logs).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::DropMsg => "drop-msg",
            FaultKind::DelayMsg => "delay-msg",
            FaultKind::ReorderMsg => "reorder-msg",
            FaultKind::KillProc => "kill-proc",
            FaultKind::KillNode => "kill-node",
            FaultKind::Partition => "partition",
            FaultKind::TornTruncate => "torn-truncate",
            FaultKind::TornBitFlip => "torn-bitflip",
            FaultKind::ImageDelete => "image-delete",
            FaultKind::NodeLoss => "node-loss",
            FaultKind::RelayKill => "relay-kill",
            FaultKind::RelaySever => "relay-sever",
        }
    }
}

/// A fully specified fault to inject: what, at which protocol stage, into
/// which checkpoint generation, parameterized by a seed. Everything random
/// about the injection (which message, how long a delay, where the tear
/// lands) derives from `seed`, so a failing cell reproduces exactly.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Seed driving all injection randomness.
    pub seed: u64,
    /// Fault kind.
    pub kind: FaultKind,
    /// Protocol stage the fault targets (the DMTCP barrier-stage number;
    /// torn-write kinds ignore it — they fire at image-write time).
    pub stage: u8,
    /// Checkpoint generation the fault targets.
    pub target_gen: u64,
}

struct PartitionWindow {
    a: NodeId,
    b: NodeId,
    until: Nanos,
}

/// Live injection state, shared between the kernel hooks and the protocol
/// notifications via `Rc<RefCell<..>>` in the world's extension slots.
pub struct FaultState {
    plan: FaultPlan,
    rng: DetRng,
    protocol_conns: BTreeSet<ConnId>,
    /// Per-(conn, sending end) FIFO floor: no packet in that direction may
    /// arrive earlier than this (keeps streams ordered under delays).
    floors: BTreeMap<(u64, usize), Nanos>,
    msg_armed: bool,
    msg_budget: u32,
    skip_packets: u64,
    partition: Option<PartitionWindow>,
    /// Per-node relays (hierarchical topology), victims for `RelayKill`.
    relay_procs: Vec<(Pid, NodeId)>,
    /// Relay → root uplinks, victims for `RelaySever`.
    relay_conns: Vec<ConnId>,
    /// Connections severed by `RelaySever`: every packet dropped, forever.
    severed: BTreeSet<ConnId>,
    torn_armed: bool,
    torn_skip_writes: u64,
    /// Node the next node-scoped fault must hit, when the driver pins one
    /// (migration cells name their victim; the matrix default is random).
    pinned_node: Option<NodeId>,
    killed: bool,
    image_deleted: bool,
    /// Images reported written this generation: (gen, writer node, path).
    images: Vec<(u64, NodeId, String)>,
    injected: Vec<String>,
}

impl FaultState {
    fn new(plan: FaultPlan) -> Self {
        let mut rng = DetRng::seed_from_u64(plan.seed);
        let skip_packets = rng.below(3);
        let torn_skip_writes = rng.below(2);
        FaultState {
            plan,
            rng,
            protocol_conns: BTreeSet::new(),
            floors: BTreeMap::new(),
            msg_armed: false,
            msg_budget: 0,
            skip_packets,
            partition: None,
            relay_procs: Vec::new(),
            relay_conns: Vec::new(),
            severed: BTreeSet::new(),
            torn_armed: false,
            torn_skip_writes,
            pinned_node: None,
            killed: false,
            image_deleted: false,
            images: Vec::new(),
            injected: Vec::new(),
        }
    }

    /// The plan this state was built from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Human-readable log of every fault actually injected.
    pub fn injected(&self) -> &[String] {
        &self.injected
    }

    /// Pin the victim of node-scoped faults ([`FaultKind::KillNode`],
    /// [`FaultKind::NodeLoss`]) to `node` instead of a seeded random pick.
    /// Migration cells use this to choose "source dies" vs "target dies".
    pub fn pin_victim_node(&mut self, node: NodeId) {
        self.pinned_node = Some(node);
    }

    /// Start the injection window for message/partition faults.
    fn arm_window(&mut self, now: Nanos, candidates: &[(Pid, NodeId)], coord_node: NodeId) {
        match self.plan.kind {
            FaultKind::DropMsg | FaultKind::DelayMsg | FaultKind::ReorderMsg => {
                self.msg_armed = true;
                self.msg_budget = 1;
            }
            FaultKind::Partition => {
                if self.partition.is_some() {
                    return;
                }
                let Some(b) = candidates.iter().map(|c| c.1).find(|n| *n != coord_node) else {
                    return; // single-node cluster: nothing to partition
                };
                let dur = Nanos::from_micros(self.rng.range(10_000, 40_000));
                self.injected.push(format!(
                    "partition node{} | node{} for {:?}",
                    coord_node.0, b.0, dur
                ));
                self.partition = Some(PartitionWindow {
                    a: coord_node,
                    b,
                    until: now + dur,
                });
            }
            _ => {}
        }
    }

    fn disarm_window(&mut self) {
        self.msg_armed = false;
    }

    /// Pick the processes to kill at the target stage.
    fn victims(&mut self, candidates: &[(Pid, NodeId)], coord_node: NodeId) -> Vec<Pid> {
        match self.plan.kind {
            FaultKind::KillProc => {
                if candidates.is_empty() {
                    return Vec::new();
                }
                let idx = self.rng.below(candidates.len() as u64) as usize;
                vec![candidates[idx].0]
            }
            FaultKind::KillNode => {
                let nodes: Vec<NodeId> = {
                    let mut seen = BTreeSet::new();
                    candidates
                        .iter()
                        .map(|c| c.1)
                        .filter(|n| *n != coord_node && seen.insert(*n))
                        .collect()
                };
                if nodes.is_empty() {
                    return Vec::new();
                }
                let node = match self.pinned_node {
                    Some(p) if nodes.contains(&p) => p,
                    _ => nodes[self.rng.below(nodes.len() as u64) as usize],
                };
                self.injected.push(format!("kill-node node{}", node.0));
                candidates
                    .iter()
                    .filter(|c| c.1 == node)
                    .map(|c| c.0)
                    .collect()
            }
            _ => Vec::new(),
        }
    }
}

fn on_packet(state: &Rc<RefCell<FaultState>>, pkt: &NetPacket<'_>) -> NetFault {
    let mut st = state.borrow_mut();
    // A severed relay uplink drops everything in both directions, forever —
    // an unhealing partition of one node's control path.
    if st.severed.contains(&pkt.cid) {
        return NetFault::Drop;
    }
    let key = (pkt.cid.0, pkt.end);
    let floor = st.floors.get(&key).copied().unwrap_or(Nanos::ZERO);
    let mut final_at = pkt.arrival.max(floor);
    let mut raise_floor = true;

    if let Some(p) = &st.partition {
        let crossing = (pkt.src == p.a && pkt.dst == p.b) || (pkt.src == p.b && pkt.dst == p.a);
        if crossing && pkt.now < p.until {
            final_at = final_at.max(p.until + PARTITION_EPS);
        }
    }

    if st.msg_armed && st.msg_budget > 0 && st.protocol_conns.contains(&pkt.cid) {
        if st.skip_packets > 0 {
            st.skip_packets -= 1;
        } else {
            st.msg_budget -= 1;
            match st.plan.kind {
                FaultKind::DropMsg => {
                    let line = format!(
                        "drop {}B on conn {} end {} at {:?}",
                        pkt.bytes.len(),
                        pkt.cid.0,
                        pkt.end,
                        pkt.now
                    );
                    st.injected.push(line);
                    // Floor untouched: the bytes never arrive.
                    return NetFault::Drop;
                }
                FaultKind::DelayMsg => {
                    let d = Nanos::from_micros(st.rng.range(5_000, 60_000));
                    final_at += d;
                    let line = format!(
                        "delay {}B on conn {} end {} by {d:?}",
                        pkt.bytes.len(),
                        pkt.cid.0,
                        pkt.end
                    );
                    st.injected.push(line);
                }
                FaultKind::ReorderMsg => {
                    let d = Nanos::from_micros(st.rng.range(2_000, 15_000));
                    final_at += d;
                    raise_floor = false; // later frames may overtake this one
                    let line = format!(
                        "reorder {}B on conn {} end {} (+{d:?})",
                        pkt.bytes.len(),
                        pkt.cid.0,
                        pkt.end
                    );
                    st.injected.push(line);
                }
                _ => {}
            }
        }
    }

    if raise_floor && final_at > floor {
        st.floors.insert(key, final_at);
    }
    if final_at > pkt.arrival {
        NetFault::DeliverAt(final_at)
    } else {
        NetFault::Deliver
    }
}

fn on_image(state: &Rc<RefCell<FaultState>>, path: &str, blob: &mut oskit::fs::Blob) -> bool {
    let mut st = state.borrow_mut();
    if !st.torn_armed {
        return false;
    }
    if st.torn_skip_writes > 0 {
        st.torn_skip_writes -= 1;
        return false;
    }
    st.torn_armed = false;
    match st.plan.kind {
        FaultKind::TornTruncate => {
            let len = blob.len();
            if len < 2 {
                return false;
            }
            let keep = st.rng.range(1, len);
            blob.truncate(keep);
            st.injected
                .push(format!("torn-truncate {path}: {len} -> {keep} bytes"));
            true
        }
        FaultKind::TornBitFlip => {
            let real = blob.real_len();
            if real == 0 {
                return false;
            }
            let off = st.rng.below(real);
            let bit = (st.rng.next_u32() & 7) as u8;
            blob.flip_bit(off, bit);
            st.injected
                .push(format!("torn-bitflip {path}: byte {off} bit {bit}"));
            true
        }
        _ => false,
    }
}

/// Install a fault plan into the world: registers the kernel hooks and the
/// shared state. Returns the state handle (also reachable via [`state`]).
pub fn install(w: &mut World, plan: FaultPlan) -> Rc<RefCell<FaultState>> {
    let st = Rc::new(RefCell::new(FaultState::new(plan)));
    let net = st.clone();
    w.net_fault = Some(Box::new(move |pkt| on_packet(&net, pkt)));
    let img = st.clone();
    w.image_fault = Some(Box::new(move |path, blob| on_image(&img, path, blob)));
    w.ext_slots.insert(SLOT.to_string(), Box::new(st.clone()));
    st
}

/// Remove the hooks and state; the world behaves perfectly again. Packets
/// already scheduled (including delayed ones) still arrive as scheduled.
pub fn uninstall(w: &mut World) {
    w.net_fault = None;
    w.image_fault = None;
    w.ext_slots.remove(SLOT);
}

/// Like [`uninstall`], but journals a `fault.uninstall` flight-recorder
/// event at `now` first. Recorded runs must use this variant: removing the
/// hooks mid-run changes packet timing (e.g. an open partition window stops
/// applying), so a replay has to re-deliver the removal at the same virtual
/// time — which requires it to be on the recorded timeline.
pub fn uninstall_at(w: &mut World, now: Nanos) {
    w.obs.journal.record(
        now,
        obs::journal::CLASS_FAULT,
        "fault.uninstall",
        None,
        &[],
        "",
    );
    uninstall(w);
}

/// The installed state, if any.
pub fn state(w: &World) -> Option<Rc<RefCell<FaultState>>> {
    w.ext_slots
        .get(SLOT)?
        .downcast_ref::<Rc<RefCell<FaultState>>>()
        .cloned()
}

/// Mark `cid` as carrying coordinator protocol traffic (called by the
/// checkpoint layer when a manager or the coordinator sets up a control
/// connection). Message faults only target these connections.
pub fn note_protocol_conn(w: &mut World, cid: ConnId) {
    if let Some(st) = state(w) {
        st.borrow_mut().protocol_conns.insert(cid);
    }
}

/// Notification: a per-node relay was spawned on `node` (hierarchical
/// topology). `RelayKill` picks its victim from these.
pub fn note_relay(w: &mut World, pid: Pid, node: NodeId) {
    if let Some(st) = state(w) {
        st.borrow_mut().relay_procs.push((pid, node));
    }
}

/// Notification: `cid` is a relay's uplink to the root coordinator.
/// `RelaySever` picks its victim from these.
pub fn note_relay_conn(w: &mut World, cid: ConnId) {
    if let Some(st) = state(w) {
        st.borrow_mut().relay_conns.push(cid);
    }
}

/// Notification: a checkpoint manager finished writing `path` on `node`
/// for generation `gen` (called by the DMTCP layer after `write_image`).
/// Image-delete faults pick their victim from these records.
pub fn image_written(w: &mut World, gen: u64, node: NodeId, path: &str) {
    if let Some(st) = state(w) {
        st.borrow_mut().images.push((gen, node, path.to_string()));
    }
}

/// Journal injections appended during the current notification as
/// `fault.inject` flight-recorder events. The packet and image-write hooks
/// have no world access, so their effects are journaled by the kernel taps
/// (`fault.net.*`, `fault.image`) instead; this covers the kill/partition/
/// image-delete/relay faults fired from the protocol notifications below.
fn journal_new_injections(w: &mut World, now: Nanos, st: &Rc<RefCell<FaultState>>, before: usize) {
    if !w.obs.journal.wants(obs::journal::CLASS_FAULT) {
        return;
    }
    let lines: Vec<String> = st.borrow().injected[before..].to_vec();
    for line in lines {
        w.obs.journal.record(
            now,
            obs::journal::CLASS_FAULT,
            "fault.inject",
            None,
            &[],
            &line,
        );
    }
}

/// Notification: the coordinator just broadcast a checkpoint request for
/// `gen`. Arms torn-write faults for this generation and, for faults
/// targeting the first barrier stage, the message/partition window.
pub fn checkpoint_requested(
    w: &mut World,
    sim: &mut OsSim,
    gen: u64,
    first_stage: u8,
    candidates: &[(Pid, NodeId)],
    coord_node: NodeId,
) {
    let Some(st) = state(w) else {
        return;
    };
    let before = st.borrow().injected.len();
    let mut s = st.borrow_mut();
    if gen != s.plan.target_gen {
        return;
    }
    if matches!(
        s.plan.kind,
        FaultKind::TornTruncate | FaultKind::TornBitFlip
    ) {
        s.torn_armed = true;
    }
    if s.plan.stage == first_stage {
        s.arm_window(sim.now(), candidates, coord_node);
    }
    drop(s);
    journal_new_injections(w, sim.now(), &st, before);
}

/// Notification: the coordinator just released barrier `stg` of `gen`.
/// Arms the injection window when the *next* stage is the target (its
/// messages start flowing now), fires kill faults when `stg` itself is the
/// target, and closes the window once the target stage has been passed.
pub fn stage_released(
    w: &mut World,
    sim: &mut OsSim,
    gen: u64,
    stg: u8,
    candidates: &[(Pid, NodeId)],
    coord_node: NodeId,
) {
    let Some(st) = state(w) else {
        return;
    };
    let before = st.borrow().injected.len();
    let mut s = st.borrow_mut();
    if gen != s.plan.target_gen {
        return;
    }
    if stg + 1 == s.plan.stage {
        s.arm_window(sim.now(), candidates, coord_node);
    }
    if stg == s.plan.stage {
        s.disarm_window();
        if s.plan.kind == FaultKind::ImageDelete && !s.image_deleted {
            let victims: Vec<(NodeId, String)> = s
                .images
                .iter()
                .filter(|(g, _, _)| *g == gen)
                .map(|(_, n, p)| (*n, p.clone()))
                .collect();
            if !victims.is_empty() {
                s.image_deleted = true;
                let (node, path) = victims[s.rng.below(victims.len() as u64) as usize].clone();
                s.injected
                    .push(format!("image-delete node{} {}", node.0, path));
                drop(s);
                delete_primary_image(w, node, &path);
                journal_new_injections(w, sim.now(), &st, before);
                return;
            }
        }
        if matches!(s.plan.kind, FaultKind::KillProc | FaultKind::KillNode) && !s.killed {
            s.killed = true;
            let victims = s.victims(candidates, coord_node);
            for pid in &victims {
                s.injected.push(format!("kill pid {}", pid.0));
            }
            drop(s);
            for pid in victims {
                sim.soon(move |w: &mut World, sim| {
                    w.signal(sim, pid, sig::SIGKILL);
                });
            }
            journal_new_injections(w, sim.now(), &st, before);
            return;
        }
        if s.plan.kind == FaultKind::RelayKill && !s.killed && !s.relay_procs.is_empty() {
            s.killed = true;
            let n = s.relay_procs.len() as u64;
            let idx = s.rng.below(n) as usize;
            let (pid, node) = s.relay_procs[idx];
            s.injected
                .push(format!("relay-kill pid {} node{}", pid.0, node.0));
            drop(s);
            sim.soon(move |w: &mut World, sim| {
                w.signal(sim, pid, sig::SIGKILL);
            });
            journal_new_injections(w, sim.now(), &st, before);
            return;
        }
        if s.plan.kind == FaultKind::RelaySever && s.severed.is_empty() && !s.relay_conns.is_empty()
        {
            let n = s.relay_conns.len() as u64;
            let idx = s.rng.below(n) as usize;
            let cid = s.relay_conns[idx];
            s.severed.insert(cid);
            s.injected.push(format!("relay-sever conn {}", cid.0));
        }
    }
    drop(s);
    journal_new_injections(w, sim.now(), &st, before);
}

/// Notification: a live migration of generation `gen` is about to restore
/// its movers (images committed and validated, restore not yet started).
/// Fires [`FaultKind::NodeLoss`] against the pinned victim node: every
/// process there is killed and its node-local disk (plain images + chunk
/// store) wiped on the next simulation step — a source-node victim forces
/// the restore through replicas, a target-node victim kills the restore
/// before the movers commit.
pub fn migration_started(w: &mut World, sim: &mut OsSim, gen: u64) {
    let Some(st) = state(w) else {
        return;
    };
    let before = st.borrow().injected.len();
    let mut s = st.borrow_mut();
    if s.plan.kind != FaultKind::NodeLoss || s.killed || gen != s.plan.target_gen {
        return;
    }
    let Some(node) = s.pinned_node else {
        return;
    };
    s.killed = true;
    s.injected.push(format!("node-loss node{}", node.0));
    drop(s);
    sim.soon(move |w: &mut World, sim| {
        for pid in w.procs_on(node) {
            w.signal(sim, pid, sig::SIGKILL);
        }
        let doomed: Vec<String> = w.nodes[node.0 as usize]
            .fs
            .list_prefix("/")
            .map(|s| s.to_string())
            .collect();
        for p in doomed {
            w.nodes[node.0 as usize].fs.remove(&p).ok();
        }
        w.obs.metrics.inc("faultkit.node_loss", node.0 as u64);
    });
    journal_new_injections(w, sim.now(), &st, before);
}

/// Node-local disk loss for one image: remove the plain file (when the
/// image was written as one) and wipe the writer node's entire local chunk
/// store, so nothing of the primary copy survives. Replicas on other nodes
/// are untouched — that is what restart falls back to.
fn delete_primary_image(w: &mut World, node: NodeId, path: &str) {
    w.fs_for_mut(node, path).remove(path).ok();
    let doomed: Vec<String> = w.nodes[node.0 as usize]
        .fs
        .list_prefix(oskit::fs::STORE_ROOT)
        .map(|s| s.to_string())
        .collect();
    for p in doomed {
        w.nodes[node.0 as usize].fs.remove(&p).ok();
    }
    w.obs.metrics.inc("faultkit.image_delete", node.0 as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(kind: FaultKind) -> FaultPlan {
        FaultPlan {
            seed: 0x5EED,
            kind,
            stage: 4,
            target_gen: 2,
        }
    }

    fn pkt(cid: u64, end: usize, now: u64, arrival: u64) -> (Vec<u8>, u64, u64, u64, usize) {
        (vec![0u8; 16], cid, now, arrival, end)
    }

    fn verdict(st: &Rc<RefCell<FaultState>>, p: &(Vec<u8>, u64, u64, u64, usize)) -> NetFault {
        let packet = NetPacket {
            cid: ConnId(p.1),
            end: p.4,
            bytes: &p.0,
            now: Nanos(p.2),
            arrival: Nanos(p.3),
            src: NodeId(0),
            dst: NodeId(1),
        };
        on_packet(st, &packet)
    }

    #[test]
    fn same_seed_same_decisions() {
        let a = Rc::new(RefCell::new(FaultState::new(plan(FaultKind::DelayMsg))));
        let b = Rc::new(RefCell::new(FaultState::new(plan(FaultKind::DelayMsg))));
        for st in [&a, &b] {
            let mut s = st.borrow_mut();
            s.protocol_conns.insert(ConnId(7));
            s.msg_armed = true;
            s.msg_budget = 1;
            s.skip_packets = 0;
        }
        let p = pkt(7, 0, 1000, 2000);
        assert_eq!(verdict(&a, &p), verdict(&b, &p));
    }

    #[test]
    fn fifo_floor_keeps_delayed_streams_ordered() {
        let st = Rc::new(RefCell::new(FaultState::new(plan(FaultKind::DelayMsg))));
        {
            let mut s = st.borrow_mut();
            s.protocol_conns.insert(ConnId(7));
            s.msg_armed = true;
            s.msg_budget = 1;
            s.skip_packets = 0;
        }
        // First packet gets delayed well past its natural arrival.
        let first = verdict(&st, &pkt(7, 0, 1000, 2000));
        let NetFault::DeliverAt(t1) = first else {
            panic!("expected a delay, got {first:?}");
        };
        assert!(t1 > Nanos(2000));
        // Budget is spent, but the floor still holds the next packet back.
        let second = verdict(&st, &pkt(7, 0, 1500, 2500));
        let NetFault::DeliverAt(t2) = second else {
            panic!("expected floor to apply, got {second:?}");
        };
        assert!(t2 >= t1, "FIFO violated: {t2:?} < {t1:?}");
        // The opposite direction is unaffected.
        assert_eq!(verdict(&st, &pkt(7, 1, 1500, 2500)), NetFault::Deliver);
    }

    #[test]
    fn reorder_lets_later_packets_overtake() {
        let st = Rc::new(RefCell::new(FaultState::new(plan(FaultKind::ReorderMsg))));
        {
            let mut s = st.borrow_mut();
            s.protocol_conns.insert(ConnId(7));
            s.msg_armed = true;
            s.msg_budget = 1;
            s.skip_packets = 0;
        }
        let first = verdict(&st, &pkt(7, 0, 1000, 2000));
        assert!(matches!(first, NetFault::DeliverAt(t) if t > Nanos(2000)));
        // Floor was not raised: the next packet sails through on time.
        assert_eq!(verdict(&st, &pkt(7, 0, 1500, 2500)), NetFault::Deliver);
    }

    #[test]
    fn drop_consumes_budget_and_leaves_floor_alone() {
        let st = Rc::new(RefCell::new(FaultState::new(plan(FaultKind::DropMsg))));
        {
            let mut s = st.borrow_mut();
            s.protocol_conns.insert(ConnId(7));
            s.msg_armed = true;
            s.msg_budget = 1;
            s.skip_packets = 0;
        }
        assert_eq!(verdict(&st, &pkt(7, 0, 1000, 2000)), NetFault::Drop);
        assert_eq!(verdict(&st, &pkt(7, 0, 1100, 2100)), NetFault::Deliver);
        assert_eq!(st.borrow().injected().len(), 1);
    }

    #[test]
    fn non_protocol_conns_untouched_by_message_faults() {
        let st = Rc::new(RefCell::new(FaultState::new(plan(FaultKind::DropMsg))));
        {
            let mut s = st.borrow_mut();
            s.protocol_conns.insert(ConnId(7));
            s.msg_armed = true;
            s.msg_budget = 1;
            s.skip_packets = 0;
        }
        assert_eq!(verdict(&st, &pkt(99, 0, 1000, 2000)), NetFault::Deliver);
    }

    #[test]
    fn partition_defers_cross_pair_traffic_until_window_end() {
        let st = Rc::new(RefCell::new(FaultState::new(plan(FaultKind::Partition))));
        {
            let mut s = st.borrow_mut();
            s.partition = Some(PartitionWindow {
                a: NodeId(0),
                b: NodeId(1),
                until: Nanos(1_000_000),
            });
        }
        let v = verdict(&st, &pkt(7, 0, 1000, 2000));
        assert!(
            matches!(v, NetFault::DeliverAt(t) if t >= Nanos(1_000_000)),
            "got {v:?}"
        );
        // After the window, traffic flows normally.
        let v = verdict(&st, &pkt(7, 0, 2_000_000, 2_000_500));
        assert_eq!(v, NetFault::Deliver);
    }

    #[test]
    fn image_delete_wipes_plain_file_and_node_store() {
        use oskit::program::Registry;
        use oskit::HwSpec;
        let mut w = World::new(HwSpec::cluster(), 2, Registry::new());
        let mut sim: OsSim = simkit::Sim::new();
        install(
            &mut w,
            FaultPlan {
                seed: 0x5EED,
                kind: FaultKind::ImageDelete,
                stage: 5,
                target_gen: 2,
            },
        );
        // Primary copies on node 0, a replica manifest on node 1.
        w.nodes[0]
            .fs
            .write_all("/ckpt/a_gen2.dmtcp", b"img")
            .unwrap();
        w.nodes[0]
            .fs
            .write_all("/ckptstore/manifests/a_gen2.dmtcp", b"m")
            .unwrap();
        w.nodes[1]
            .fs
            .write_all("/ckptstore/manifests/a_gen2.dmtcp", b"m")
            .unwrap();
        image_written(&mut w, 2, NodeId(0), "/ckpt/a_gen2.dmtcp");
        stage_released(&mut w, &mut sim, 2, 5, &[], NodeId(0));
        assert!(!w.nodes[0].fs.exists("/ckpt/a_gen2.dmtcp"));
        assert!(!w.nodes[0].fs.exists("/ckptstore/manifests/a_gen2.dmtcp"));
        assert!(
            w.nodes[1].fs.exists("/ckptstore/manifests/a_gen2.dmtcp"),
            "replicas must survive"
        );
        let st = state(&w).unwrap();
        assert_eq!(st.borrow().injected().len(), 1);
        // Fires at most once.
        stage_released(&mut w, &mut sim, 2, 5, &[], NodeId(0));
        assert_eq!(st.borrow().injected().len(), 1);
    }

    #[test]
    fn torn_truncate_shrinks_the_blob_once() {
        let st = Rc::new(RefCell::new(FaultState::new(plan(FaultKind::TornTruncate))));
        {
            let mut s = st.borrow_mut();
            s.torn_armed = true;
            s.torn_skip_writes = 0;
        }
        let mut blob = oskit::fs::Blob::from_bytes(vec![7u8; 4096]);
        assert!(on_image(&st, "/ckpt/a.dmtcp", &mut blob));
        assert!(blob.len() < 4096 && !blob.is_empty());
        // Disarmed after one hit.
        let mut blob2 = oskit::fs::Blob::from_bytes(vec![7u8; 4096]);
        assert!(!on_image(&st, "/ckpt/b.dmtcp", &mut blob2));
        assert_eq!(blob2.len(), 4096);
    }
}
