//! The checkpoint coordinator.
//!
//! One coordinator process serves a whole computation: it implements the
//! six global barriers of the checkpoint algorithm (§4.3), the discovery
//! service restart needs to find migrated peers (§4.4), interval
//! checkpointing (`--interval`), and restart-script generation. The paper
//! notes the centralized coordinator is not a bottleneck at 32 nodes and
//! could be replaced by a distributed implementation; `bench/ablation`
//! measures exactly that claim.

use crate::gsid::{global, Gsid};
use crate::proto::{frame, FrameBuf, Msg};
use oskit::program::{Program, Step};
use oskit::world::{NodeId, Pid, Tid, World};
use oskit::{Errno, Fd, Kernel};
use simkit::Nanos;
use std::collections::{BTreeMap, BTreeSet};

/// Default coordinator port (the real default is 7779).
pub const COORD_PORT: u16 = 7779;

/// Checkpoint barrier stages, numbered as in Figure 1.
pub mod stage {
    /// User threads suspended.
    pub const SUSPENDED: u8 = 2;
    /// Shared-fd leader election completed.
    pub const ELECTED: u8 = 3;
    /// Kernel buffers drained, handshakes done.
    pub const DRAINED: u8 = 4;
    /// Checkpoint image written.
    pub const CHECKPOINTED: u8 = 5;
    /// Kernel buffers refilled.
    pub const REFILLED: u8 = 6;
    /// Checkpoint images durable on storage. For in-line (non-forked)
    /// writes this coincides with `CHECKPOINTED`; for forked checkpointing
    /// it is the end of the overlapped drain phase — the background
    /// compress+write pipeline finished *after* user threads resumed at
    /// `REFILLED`. The restart script is only written once this releases.
    pub const CKPT_WRITTEN: u8 = 7;
    /// Restart: memory and threads restored (Figure 2 step 5).
    pub const RESTORED: u8 = 11;
    /// Restart: kernel buffers refilled (Figure 2 step 6).
    pub const RESTART_REFILLED: u8 = 12;

    /// Span name of a barrier-release instant (`obs` naming scheme).
    pub fn release_name(stg: u8) -> &'static str {
        match stg {
            SUSPENDED => "release.suspended",
            ELECTED => "release.elected",
            DRAINED => "release.drained",
            CHECKPOINTED => "release.checkpointed",
            REFILLED => "release.refilled",
            CKPT_WRITTEN => "release.ckpt_written",
            RESTORED => "release.restored",
            RESTART_REFILLED => "release.restart_refilled",
            _ => "release.unknown",
        }
    }
}

/// Barrier timing for one checkpoint generation (benchmark input).
#[derive(Debug, Clone)]
pub struct GenStat {
    /// Generation number.
    pub gen: u64,
    /// When the coordinator broadcast the request.
    pub requested_at: Nanos,
    /// Release time of each barrier stage.
    pub releases: BTreeMap<u8, Nanos>,
    /// Number of participating processes.
    pub participants: u32,
    /// The generation was abandoned (a participant died mid-protocol); its
    /// images, if any, must not be trusted and no restart script was
    /// written for it.
    pub aborted: bool,
}

impl GenStat {
    /// Wall-clock from request to the "checkpointed" barrier — the paper's
    /// reported checkpoint time (user threads are suspended from request to
    /// resume; the image is safe at stage 5).
    pub fn checkpoint_time(&self) -> Option<Nanos> {
        self.releases
            .get(&stage::CHECKPOINTED)
            .map(|t| *t - self.requested_at)
    }

    /// Wall-clock until user threads resumed (stage 6 released). With
    /// forked checkpointing on, this is the *perceived downtime*: the only
    /// window in which the application is stopped.
    pub fn total_pause(&self) -> Option<Nanos> {
        self.releases
            .get(&stage::REFILLED)
            .map(|t| *t - self.requested_at)
    }

    /// Wall-clock from request until every image was durable and
    /// acknowledged (`CKPT_WRITTEN` released) — the *total checkpoint
    /// time*. Equals `total_pause` for in-line writes; strictly larger in
    /// forked mode, where the overlapped drain runs behind the
    /// application. `None` while the drain is still in flight (or the
    /// generation aborted before finishing).
    pub fn written_time(&self) -> Option<Nanos> {
        self.releases
            .get(&stage::CKPT_WRITTEN)
            .map(|t| *t - self.requested_at)
    }
}

/// Coordinator-side shared state (kept in the world's DMTCP singleton so
/// benches can read it after the run). Per-process stage breakdowns
/// (Table 1 input) live in the world's metrics registry under
/// `core.stage.*` / `core.restart.*` histograms, labeled by generation.
#[derive(Debug, Default)]
pub struct CoordShared {
    /// Trigger flag posted by `dmtcp command --checkpoint` / the interval
    /// timer.
    pub ckpt_request_pending: bool,
    /// Coordinator process (for waking on mailbox posts).
    pub coord_pid: Option<Pid>,
    /// Barrier timing per generation.
    pub gen_stats: Vec<GenStat>,
    /// Paths of every image written in the last completed generation,
    /// with their hostnames (drives the restart script).
    pub last_images: Vec<(String, String)>,
    /// Live mirror of the coordinator's barrier bookkeeping. The
    /// coordinator program is boxed behind `dyn Program`, so `dmtcp
    /// replay` state dumps read this mirror instead: current generation,
    /// whether its stop-the-world phase / overlapped drain is open, the
    /// expected participant count, and the summed contributions of every
    /// barrier still pending.
    pub coord_gen: u64,
    /// Stop-the-world phase of `coord_gen` in flight.
    pub coord_in_progress: bool,
    /// Overlapped drain of `coord_gen` still open.
    pub coord_drain_open: bool,
    /// Participants the in-flight barriers expect.
    pub coord_expected: u32,
    /// Registered (non-stale) participant connections currently held. The
    /// migration driver watches this to know when the killed movers' EOFs
    /// have been reaped before it re-arms the restart barriers.
    pub coord_participants: u32,
    /// `(gen, stage)` → summed contributions for unreleased barriers.
    pub barrier_pending: BTreeMap<(u64, u8), u32>,
}

/// Extension-slot key for the shared state of the coordinator on `port`.
/// The default port keeps the historical unsuffixed key, so every existing
/// single-coordinator test, bench, and replay dump reads the same slot it
/// always did; additional coordinators (dmtcpd shards) get their own.
fn coord_slot(port: u16) -> String {
    if port == COORD_PORT {
        "dmtcp-coord-shared".to_string()
    } else {
        format!("dmtcp-coord-shared:{port}")
    }
}

/// Access the shared state of the coordinator listening on `port`. Each
/// root coordinator owns an independent [`CoordShared`] keyed by its port,
/// which is what lets many coordinators (dmtcpd shards) coexist in one
/// world without sharing generation counters or image lists.
pub fn coord_shared_for(w: &mut World, port: u16) -> &mut CoordShared {
    let slot = w
        .ext_slots
        .entry(coord_slot(port))
        .or_insert_with(|| Box::new(CoordShared::default()));
    slot.downcast_mut::<CoordShared>()
        .expect("slot holds CoordShared")
}

/// Access the coordinator-shared state of the default-port coordinator
/// (world singleton — the single-computation [`crate::Session`] path).
pub fn coord_shared(w: &mut World) -> &mut CoordShared {
    coord_shared_for(w, COORD_PORT)
}

/// Relay-specific state of a root client (see `crate::relay`): the root
/// tracks relays and direct managers uniformly — a direct client always
/// contributes exactly one barrier participant, a relay contributes as many
/// as it currently fronts.
struct RelayInfo {
    /// Local participants the relay currently fronts (its latest
    /// `RelayMembership` report).
    members: u32,
    /// Last time anything arrived from this relay — liveness input. A relay
    /// pings while a generation is in flight, so prolonged silence inside
    /// one means the relay (and with it a whole node) is gone.
    last_heard: Nanos,
}

struct Client {
    fd: Fd,
    vpid: u32,
    fb: FrameBuf,
    /// Registered before the latest `RestartPlan`: almost certainly a
    /// zombie connection of the crashed computation whose EOF is still in
    /// flight. Its hang-up must not abort the restarted generation; any
    /// message it sends proves it alive and clears the flag.
    stale: bool,
    /// Unique per accepted connection; keys a relay's barrier contribution
    /// (a vpid cannot — relays have none).
    serial: u64,
    /// `Some` once the connection identified itself as a per-node relay.
    relay: Option<RelayInfo>,
}

impl Client {
    /// Barrier-accounting key: direct clients are keyed by vpid (stable
    /// across reconnects), relays by their connection serial offset past
    /// the vpid space.
    fn contrib_key(&self) -> u64 {
        if self.relay.is_some() {
            RELAY_KEY_BASE | self.serial
        } else {
            self.vpid as u64
        }
    }

    /// How many barrier participants this connection speaks for.
    fn quota(&self) -> u32 {
        self.relay.as_ref().map(|r| r.members).unwrap_or(1)
    }
}

/// Relay contribution keys live above the 32-bit vpid space.
const RELAY_KEY_BASE: u64 = 1 << 32;

/// The coordinator program. It is *not* checkpointed (same as real DMTCP,
/// where a new coordinator is started for restart), so its state need not
/// be serializable.
pub struct Coordinator {
    port: u16,
    interval: Option<Nanos>,
    lfd: Fd,
    clients: Vec<Client>,
    gen: u64,
    in_progress: bool,
    /// The overlapped drain phase of `gen` is still open: user threads
    /// resumed (`REFILLED` released) but not every `CKPT_WRITTEN` ack has
    /// arrived. A new checkpoint request is queued behind it.
    drain_open: bool,
    /// A checkpoint request arrived while one was in flight; start it as
    /// soon as the current generation fully settles.
    queued: bool,
    expected: u32,
    /// Per-connection barrier contributions for each pending barrier,
    /// keyed by `Client::contrib_key`. Direct clients contribute 1 (the map
    /// keeps retransmitted `BarrierReached` idempotent); relays contribute
    /// their cumulative `BarrierAckN` count, merged monotonically so
    /// retransmissions and reordering are idempotent too.
    barrier_counts: BTreeMap<(u64, u8), BTreeMap<u64, u32>>,
    /// Barriers already released; a late `BarrierReached` for one of these
    /// means our release may have been lost — re-send it to that client.
    released: BTreeSet<(u64, u8)>,
    /// Generations abandoned mid-protocol; stale messages for them are
    /// dropped silently.
    aborted_gens: BTreeSet<u64>,
    discovery: BTreeMap<Gsid, (String, u16)>,
    requested_at: Nanos,
    /// Retransmit deadline for the in-flight `CkptRequest` (the one
    /// coordinator message with no manager-side retry).
    retry_at: Option<Nanos>,
    retry_backoff: Nanos,
    /// Next accepted connection's serial.
    next_serial: u64,
    /// A `RestartPlan` re-armed the barriers: relay liveness timeouts and
    /// relay membership-loss reports must not abort the restart (relays
    /// only front the *pre*-restart computation; restored managers register
    /// directly with the root).
    restarting: bool,
    /// A `MigratePlan` is in flight: (generation, mover count). The
    /// restart-stage barriers of that generation release when the *moving*
    /// subset reaches them — live bystanders never enter the restart stages
    /// and must not be counted against them.
    migrating: Option<(u64, u32)>,
    /// Next relay-liveness check deadline (armed only while a generation
    /// with relays is in flight, so an idle coordinator stays quiescent).
    liveness_at: Option<Nanos>,
}

/// Initial `CkptRequest` retransmit timeout (doubles on each retry).
const CKPT_RETRY_INITIAL: Nanos = Nanos(50_000_000); // 50 ms

/// A relay silent for this long inside an in-flight generation is treated
/// as a lost participant (its whole node is presumed gone). Comfortably
/// above the relay's 25 ms ping cadence.
const RELAY_TIMEOUT: Nanos = Nanos(200_000_000); // 200 ms

/// Cadence of the relay-liveness sweep while a generation is in flight.
const LIVENESS_CHECK: Nanos = Nanos(60_000_000); // 60 ms

impl Coordinator {
    /// A coordinator listening on `port`, checkpointing every `interval`
    /// when set.
    pub fn new(port: u16, interval: Option<Nanos>) -> Self {
        Coordinator {
            port,
            interval,
            lfd: -1,
            clients: Vec::new(),
            gen: 0,
            in_progress: false,
            drain_open: false,
            queued: false,
            expected: 0,
            barrier_counts: BTreeMap::new(),
            released: BTreeSet::new(),
            aborted_gens: BTreeSet::new(),
            discovery: BTreeMap::new(),
            requested_at: Nanos::ZERO,
            retry_at: None,
            retry_backoff: CKPT_RETRY_INITIAL,
            next_serial: 0,
            restarting: false,
            migrating: None,
            liveness_at: None,
        }
    }

    fn send_to(&mut self, k: &mut Kernel<'_>, fd: Fd, msg: &Msg) {
        // Every wire message in or out of the root is counted per
        // generation — the scale bench's O(processes) vs O(nodes) metric.
        k.obs().metrics.inc("coord.root_msgs", self.gen);
        let bytes = frame(msg);
        match k.write(fd, &bytes) {
            Ok(n) => assert_eq!(n, bytes.len(), "coordinator socket full"),
            // The client died; EOF reaping will remove it shortly.
            Err(Errno::Pipe) | Err(Errno::BadFd) => {}
            Err(e) => panic!("coordinator send: {e:?}"),
        }
    }

    fn broadcast(&mut self, k: &mut Kernel<'_>, msg: &Msg) {
        let fds: Vec<Fd> = self.clients.iter().map(|c| c.fd).collect();
        for fd in fds {
            self.send_to(k, fd, msg);
        }
    }

    /// Note liveness input from client `from` (refreshes a relay's
    /// `last_heard`; no-op for direct clients).
    fn heard_from(&mut self, k: &mut Kernel<'_>, from: usize) {
        let now = k.now();
        if let Some(r) = self.clients[from].relay.as_mut() {
            r.last_heard = now;
        }
    }

    /// Arm a wake-up for this process `dt` from now.
    fn arm_timer(&self, k: &mut Kernel<'_>, dt: Nanos) {
        let pid = k.getpid_real();
        k.sim.after(dt, move |w: &mut World, sim| {
            w.wake(sim, (pid, Tid(0)));
        });
    }

    fn start_checkpoint(&mut self, k: &mut Kernel<'_>) {
        if self.clients.is_empty() {
            return;
        }
        if self.in_progress || self.drain_open {
            // A generation is still in its stop-the-world phase or its
            // overlapped drain; checkpoints are serialized — remember the
            // request and start it once `CKPT_WRITTEN` releases.
            self.queued = true;
            return;
        }
        let expected: u32 = self.clients.iter().map(Client::quota).sum();
        if expected == 0 {
            // Only empty relays are connected; nothing to checkpoint.
            return;
        }
        self.gen += 1;
        self.in_progress = true;
        self.drain_open = true;
        self.restarting = false;
        self.expected = expected;
        self.requested_at = k.now();
        // Relay liveness counts from the request; arm the sweep if any
        // relay participates.
        let now = k.now();
        let mut have_relays = false;
        for c in &mut self.clients {
            if let Some(r) = c.relay.as_mut() {
                r.last_heard = now;
                have_relays = true;
            }
        }
        if have_relays {
            self.liveness_at = Some(now + LIVENESS_CHECK);
            self.arm_timer(k, LIVENESS_CHECK);
        }
        let (gen, expected) = (self.gen, self.expected);
        k.trace_with("coord", || {
            format!("ckpt gen {gen} requested ({expected} procs)")
        });
        k.obs().metrics.inc("core.ckpt.requests", 0);
        let (at, track) = (k.now(), k.track());
        k.obs()
            .spans
            .instant(at, track, "ckpt.request", "coord", vec![("gen", gen)]);
        k.obs().journal.record(
            at,
            obs::journal::CLASS_STAGE,
            "stage.request",
            None,
            &[("gen", gen), ("participants", expected as u64)],
            "",
        );
        let port = self.port;
        coord_shared_for(k.w, port).gen_stats.push(GenStat {
            gen: self.gen,
            requested_at: self.requested_at,
            releases: BTreeMap::new(),
            participants: self.expected,
            aborted: false,
        });
        coord_shared_for(k.w, port).last_images.clear();
        // Generation numbers can be reused after a restart rolled the
        // counter back; drop any stale barrier state for this one.
        self.aborted_gens.remove(&gen);
        self.barrier_counts.retain(|(g, _), _| *g != gen);
        self.released.retain(|(g, _)| *g != gen);
        self.broadcast(k, &Msg::CkptRequest(self.gen));
        // The request is the one coordinator message with no manager-side
        // retransmission; arm a retry in case the network eats it.
        self.retry_backoff = CKPT_RETRY_INITIAL;
        self.retry_at = Some(k.now() + self.retry_backoff);
        self.arm_timer(k, self.retry_backoff);
        let candidates = traced_candidates(k);
        let coord_node = k.node();
        faultkit::checkpoint_requested(k.w, k.sim, gen, stage::SUSPENDED, &candidates, coord_node);
    }

    /// Abandon the in-flight generation: a participant died mid-protocol.
    /// Survivors are told to roll back and resume computing; the
    /// generation's images (if any) are never listed in a restart script.
    fn abort_generation(&mut self, k: &mut Kernel<'_>) {
        if !self.in_progress {
            return;
        }
        let gen = self.gen;
        self.in_progress = false;
        self.drain_open = false;
        self.retry_at = None;
        self.migrating = None;
        self.aborted_gens.insert(gen);
        self.barrier_counts.retain(|(g, _), _| *g != gen);
        self.released.retain(|(g, _)| *g != gen);
        if let Some(gs) = coord_shared_for(k.w, self.port)
            .gen_stats
            .iter_mut()
            .rev()
            .find(|g| g.gen == gen)
        {
            gs.aborted = true;
        }
        k.trace_with("coord", || format!("ckpt gen {gen} ABORTED"));
        k.obs().metrics.inc("core.ckpt.aborts", 0);
        let (at, track) = (k.now(), k.track());
        k.obs()
            .spans
            .instant(at, track, "ckpt.abort", "coord", vec![("gen", gen)]);
        k.obs().journal.record(
            at,
            obs::journal::CLASS_STAGE,
            "stage.abort",
            None,
            &[("gen", gen)],
            "generation",
        );
        self.broadcast(k, &Msg::CkptAbort(gen));
        if let Some(iv) = self.interval {
            let (pid, port) = (k.getpid_real(), self.port);
            k.sim.after(iv, move |w: &mut World, sim| {
                coord_shared_for(w, port).ckpt_request_pending = true;
                w.wake(sim, (pid, Tid(0)));
            });
        }
        if self.queued {
            self.queued = false;
            self.start_checkpoint(k);
        }
    }

    /// Abandon the overlapped drain phase: a participant died *after* user
    /// threads resumed but before its background image write finished, so
    /// this generation's images can never all become durable. Survivors
    /// whose drains are still in flight are told to stand down; the restart
    /// script of the previous generation remains in place, so a restart
    /// rolls back exactly one generation (the transparency invariant).
    fn abort_drain(&mut self, k: &mut Kernel<'_>) {
        if !self.drain_open || self.in_progress {
            return;
        }
        let gen = self.gen;
        self.drain_open = false;
        self.aborted_gens.insert(gen);
        self.barrier_counts.retain(|(g, _), _| *g != gen);
        if let Some(gs) = coord_shared_for(k.w, self.port)
            .gen_stats
            .iter_mut()
            .rev()
            .find(|g| g.gen == gen)
        {
            gs.aborted = true;
        }
        k.trace_with("coord", || format!("ckpt gen {gen} drain ABORTED"));
        k.obs().metrics.inc("core.ckpt.drain_aborts", 0);
        let (at, track) = (k.now(), k.track());
        k.obs()
            .spans
            .instant(at, track, "ckpt.drain_abort", "coord", vec![("gen", gen)]);
        k.obs().journal.record(
            at,
            obs::journal::CLASS_STAGE,
            "stage.abort",
            None,
            &[("gen", gen)],
            "drain",
        );
        self.broadcast(k, &Msg::CkptAbort(gen));
        if self.queued {
            self.queued = false;
            self.start_checkpoint(k);
        }
    }

    fn handle(&mut self, k: &mut Kernel<'_>, from: usize, msg: Msg) {
        // Inbound half of the per-generation root message count (the
        // outbound half is in `send_to`).
        k.obs().metrics.inc("coord.root_msgs", self.gen);
        // Only restart-protocol traffic proves a client belongs to the
        // restored computation (see `Client::stale`): a zombie's final
        // in-flight packets — e.g. a reordered checkpoint-barrier ack —
        // can be delivered in the same wake as its EOF, so arbitrary
        // traffic must not clear the flag.
        match &msg {
            Msg::Register(..) => self.clients[from].stale = false,
            Msg::BarrierReached(_, stg) if *stg >= stage::RESTORED => {
                self.clients[from].stale = false;
            }
            _ => {}
        }
        match msg {
            Msg::Register(vpid, _host) => {
                self.clients[from].vpid = vpid;
            }
            Msg::BarrierReached(gen, stg) => {
                if self.aborted_gens.contains(&gen) {
                    // Stale arrival from an abandoned attempt. For the
                    // drain barrier, answer with the abort rather than
                    // dropping silently: a forked manager finishing its
                    // background write after a drain abort would otherwise
                    // retransmit this ack forever. Other stages (notably
                    // the restart barriers, which legitimately reuse an
                    // aborted generation number before `RestartPlan`
                    // arrives) keep the silent-drop behavior.
                    if stg == stage::CKPT_WRITTEN {
                        let fd = self.clients[from].fd;
                        self.send_to(k, fd, &Msg::CkptAbort(gen));
                    }
                    return;
                }
                if self.released.contains(&(gen, stg)) {
                    // Our release may have been lost; re-send it to this
                    // client only.
                    let fd = self.clients[from].fd;
                    self.send_to(k, fd, &Msg::BarrierRelease(gen, stg));
                    return;
                }
                let key = self.clients[from].contrib_key();
                let reached = self.barrier_counts.entry((gen, stg)).or_default();
                if reached.insert(key, 1).is_some() {
                    return; // duplicate (retransmitted) arrival
                }
                self.check_release(k, gen, stg);
            }
            Msg::BarrierAckN(gen, stg, count) => {
                // A relay's aggregated barrier contribution. Mirrors the
                // `BarrierReached` paths (abort answer, release re-send),
                // but merges a cumulative count instead of a single vpid.
                self.heard_from(k, from);
                if self.aborted_gens.contains(&gen) {
                    if stg == stage::CKPT_WRITTEN {
                        let fd = self.clients[from].fd;
                        self.send_to(k, fd, &Msg::CkptAbort(gen));
                    }
                    return;
                }
                if self.released.contains(&(gen, stg)) {
                    let fd = self.clients[from].fd;
                    self.send_to(k, fd, &Msg::BarrierRelease(gen, stg));
                    return;
                }
                let key = self.clients[from].contrib_key();
                let reached = self.barrier_counts.entry((gen, stg)).or_default();
                let cur = reached.entry(key).or_insert(0);
                if count <= *cur {
                    return; // stale or retransmitted (counts are cumulative)
                }
                *cur = count;
                self.check_release(k, gen, stg);
            }
            Msg::RelayRegister(host) => {
                let now = k.now();
                self.clients[from].relay = Some(RelayInfo {
                    members: 0,
                    last_heard: now,
                });
                k.trace_with("coord", || format!("relay registered from {host}"));
            }
            Msg::RelayMembership(count, lost) => {
                self.heard_from(k, from);
                if let Some(r) = self.clients[from].relay.as_mut() {
                    r.members = count;
                }
                if lost > 0 && !self.restarting {
                    // A participant behind this relay died. Identical to a
                    // direct client's EOF: the in-flight barrier (or the
                    // overlapped drain) can never complete.
                    if self.in_progress {
                        self.abort_generation(k);
                    } else if self.drain_open {
                        self.abort_drain(k);
                    }
                }
            }
            Msg::RelayPing(gen) => {
                self.heard_from(k, from);
                let fd = self.clients[from].fd;
                self.send_to(k, fd, &Msg::RelayPong(gen));
            }
            Msg::Advertise(gsid, host, port) => {
                self.discovery.insert(gsid, (host, port));
            }
            Msg::Query(gsid) => {
                let reply = match self.discovery.get(&gsid) {
                    Some((h, p)) => Msg::QueryReply(gsid, h.clone(), *p),
                    None => Msg::QueryReply(gsid, String::new(), 0),
                };
                let fd = self.clients[from].fd;
                self.send_to(k, fd, &reply);
            }
            Msg::RestartPlan(n, gen) => {
                // A restart driver re-arms barrier accounting for the
                // restored computation at the generation it is restoring.
                // Restored managers register directly with the root, so the
                // restart runs flat even when the crashed computation was
                // hierarchical; surviving relays just sit out (and must not
                // be liveness-timed-out meanwhile — hence `restarting`).
                self.expected = n;
                self.in_progress = true;
                self.restarting = true;
                self.migrating = None;
                // Any pre-restart drain or queued request died with the
                // computation being replaced.
                self.drain_open = false;
                self.queued = false;
                self.gen = gen;
                self.requested_at = k.now();
                // Advertisements from any previous restart are stale, and a
                // restored generation number sheds any aborted-attempt
                // state it may have carried before the rollback.
                self.discovery.clear();
                self.aborted_gens.clear();
                self.released.retain(|(g, _)| *g != gen);
                // Everyone registered so far belongs to the computation
                // being replaced; their in-flight EOFs must not abort the
                // restart. Restored managers that raced ahead of the plan
                // clear the flag with their next message.
                for c in &mut self.clients {
                    if c.vpid != 0 {
                        c.stale = true;
                    }
                }
                coord_shared_for(k.w, self.port).gen_stats.push(GenStat {
                    gen,
                    requested_at: self.requested_at,
                    releases: BTreeMap::new(),
                    participants: n,
                    aborted: false,
                });
                // Managers may have raced their barrier messages ahead of
                // the plan; re-check every pending barrier.
                let pending: Vec<(u64, u8)> = self.barrier_counts.keys().copied().collect();
                for (g, s) in pending {
                    self.check_release(k, g, s);
                }
            }
            Msg::MigratePlan(n, gen) => {
                // A migration driver restores a *subset* of generation
                // `gen`'s managers onto new nodes while the rest of the
                // computation keeps running. Unlike `RestartPlan`, nobody is
                // marked stale and the full barrier accounting stays armed:
                // only the restart-stage barriers of `gen` are scoped down
                // to the `n` movers (see `check_release`).
                self.migrating = Some((gen, n));
                // Checkpoints serialize against the restore window — a
                // request arriving mid-migration would reach managers that
                // are not resumed yet. Queued requests start once
                // RESTART_REFILLED releases.
                self.in_progress = true;
                // The movers' source processes were deliberately killed;
                // relay membership-loss reports for them must not abort the
                // migration.
                self.restarting = true;
                self.gen = gen;
                self.requested_at = k.now();
                // A previous failed attempt at this migration may have
                // aborted the generation; a retry legitimately reuses it.
                self.aborted_gens.remove(&gen);
                self.released
                    .retain(|(g, s)| !(*g == gen && *s >= stage::RESTORED));
                coord_shared_for(k.w, self.port).gen_stats.push(GenStat {
                    gen,
                    requested_at: self.requested_at,
                    releases: BTreeMap::new(),
                    participants: n,
                    aborted: false,
                });
                // Movers may have raced their barrier messages ahead of the
                // plan; re-check every pending barrier.
                let pending: Vec<(u64, u8)> = self.barrier_counts.keys().copied().collect();
                for (g, s) in pending {
                    self.check_release(k, g, s);
                }
            }
            other => panic!("coordinator got unexpected message {other:?}"),
        }
    }

    /// Release a barrier once every expected participant reached it.
    fn check_release(&mut self, k: &mut Kernel<'_>, gen: u64, stg: u8) {
        let count = self
            .barrier_counts
            .get(&(gen, stg))
            .map(|m| m.values().sum::<u32>())
            .unwrap_or(0);
        // During a live migration only the movers run the restart stages:
        // they release against the migration's own quorum, not the full
        // computation's.
        let expected = match self.migrating {
            Some((mg, n)) if gen == mg && stg >= stage::RESTORED => n,
            _ => self.expected,
        };
        if expected == 0 || count < expected {
            return;
        }
        // CKPT_WRITTEN is ordered after REFILLED even though in-line
        // writers ack it earlier (their image is durable before the
        // refill): hold the release until the stop-the-world protocol has
        // fully completed, so stages release in Figure-1 order.
        if stg == stage::CKPT_WRITTEN && !self.released.contains(&(gen, stage::REFILLED)) {
            return;
        }
        self.barrier_counts.remove(&(gen, stg));
        self.released.insert((gen, stg));
        let now = k.now();
        if let Some(gs) = coord_shared_for(k.w, self.port)
            .gen_stats
            .iter_mut()
            .rev()
            .find(|g| g.gen == gen)
        {
            gs.releases.insert(stg, now);
        }
        k.trace_with("barrier", || format!("gen {gen} stage {stg} released"));
        k.obs().metrics.inc("core.barrier.releases", stg as u64);
        let track = k.track();
        k.obs().spans.instant(
            now,
            track,
            stage::release_name(stg),
            "coord",
            vec![("gen", gen), ("stage", stg as u64)],
        );
        k.obs().journal.record(
            now,
            obs::journal::CLASS_STAGE,
            "stage.release",
            None,
            &[("gen", gen), ("stage", stg as u64)],
            stage::release_name(stg),
        );
        self.broadcast(k, &Msg::BarrierRelease(gen, stg));
        if stg == stage::REFILLED || stg == stage::RESTART_REFILLED {
            self.in_progress = false;
            self.retry_at = None;
            if stg == stage::RESTART_REFILLED {
                self.migrating = None;
                // Restart completion: the restored images are the script's
                // content; checkpoints instead publish their script only
                // once CKPT_WRITTEN confirms every image is durable.
                self.write_restart_script(k);
                // A checkpoint requested mid-restore was queued; start it
                // now that every manager is resumed.
                if self.queued {
                    self.queued = false;
                    self.start_checkpoint(k);
                }
            }
            if let Some(iv) = self.interval {
                let (pid, port) = (k.getpid_real(), self.port);
                k.sim.after(iv, move |w: &mut World, sim| {
                    coord_shared_for(w, port).ckpt_request_pending = true;
                    w.wake(sim, (pid, Tid(0)));
                });
            }
        }
        let candidates = traced_candidates(k);
        let coord_node = k.node();
        faultkit::stage_released(k.w, k.sim, gen, stg, &candidates, coord_node);
        if stg == stage::REFILLED {
            // In-line writers acked CKPT_WRITTEN before CHECKPOINTED; if
            // everyone already reached it, the drain closes at this same
            // instant (two-phase protocol degenerates to the old one).
            self.check_release(k, gen, stage::CKPT_WRITTEN);
        }
        if stg == stage::CKPT_WRITTEN {
            self.drain_open = false;
            self.write_restart_script(k);
            if self.queued {
                self.queued = false;
                self.start_checkpoint(k);
            }
        }
    }

    /// Mirror the barrier bookkeeping into [`CoordShared`] so replay state
    /// dumps can render it without downcasting the program. Called once at
    /// the end of every step — cheap (the maps are tiny) and always
    /// consistent with what this step left behind.
    fn mirror_state(&self, k: &mut Kernel<'_>) {
        let pending: BTreeMap<(u64, u8), u32> = self
            .barrier_counts
            .iter()
            .map(|(key, m)| (*key, m.values().sum()))
            .collect();
        let participants = self
            .clients
            .iter()
            .filter(|c| !c.stale && c.vpid != 0)
            .count() as u32;
        let s = coord_shared_for(k.w, self.port);
        s.coord_gen = self.gen;
        s.coord_in_progress = self.in_progress;
        s.coord_drain_open = self.drain_open;
        s.coord_expected = self.expected;
        s.coord_participants = participants;
        s.barrier_pending = pending;
    }

    /// Generate the restart script listing every image of the last
    /// generation, grouped by host (§3: "a shell script ... containing all
    /// the commands needed to restart the distributed computation"). Each
    /// coordinator writes its own script path (see [`restart_script_path`]),
    /// so dmtcpd shards never clobber one another's restart plans.
    fn write_restart_script(&mut self, k: &mut Kernel<'_>) {
        let images = coord_shared_for(k.w, self.port).last_images.clone();
        if images.is_empty() {
            return;
        }
        let mut by_host: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (path, host) in &images {
            by_host.entry(host.clone()).or_default().push(path.clone());
        }
        let mut script = String::from("#!/bin/sh\n# generated by dmtcp_coordinator\n");
        for (host, paths) in &by_host {
            script.push_str(&format!("ssh {host} dmtcp_restart {}\n", paths.join(" ")));
        }
        let path = restart_script_path(self.port);
        let node = k.node();
        let fs = k.w.fs_for_mut(node, &path);
        fs.write_all(&path, script.as_bytes())
            .expect("shared fs writable");
    }
}

impl Program for Coordinator {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        if self.lfd < 0 {
            let (fd, port) = k.listen_on(self.port).expect("coordinator port free");
            self.lfd = fd;
            self.port = port;
            coord_shared_for(k.w, port).coord_pid = Some(k.getpid_real());
            if let Some(iv) = self.interval {
                // Arm the first interval tick.
                let pid = k.getpid_real();
                k.sim.after(iv, move |w: &mut World, sim| {
                    coord_shared_for(w, port).ckpt_request_pending = true;
                    w.wake(sim, (pid, Tid(0)));
                });
            }
        }
        let mut progressed = true;
        while progressed {
            progressed = false;
            // Accept new managers.
            loop {
                match k.accept(self.lfd) {
                    Ok(fd) => {
                        let serial = self.next_serial;
                        self.next_serial += 1;
                        self.clients.push(Client {
                            fd,
                            vpid: 0,
                            fb: FrameBuf::new(),
                            stale: false,
                            serial,
                            relay: None,
                        });
                        progressed = true;
                    }
                    Err(Errno::WouldBlock) => break,
                    Err(e) => panic!("coordinator accept: {e:?}"),
                }
            }
            // Drain every client socket; clients whose process exited
            // (EOF) leave the computation. A client speaking garbage
            // (corrupted frames) is treated the same as a dead one.
            let mut dead = Vec::new();
            for i in 0..self.clients.len() {
                loop {
                    match k.read(self.clients[i].fd, 64 * 1024) {
                        Ok(b) if b.is_empty() => {
                            dead.push(i);
                            break;
                        }
                        Ok(b) => {
                            self.clients[i].fb.feed(&b);
                            progressed = true;
                        }
                        Err(Errno::WouldBlock) => break,
                        Err(Errno::BadFd) => {
                            dead.push(i);
                            break;
                        }
                        Err(e) => panic!("coordinator read: {e:?}"),
                    }
                }
                loop {
                    match self.clients[i].fb.pop() {
                        Ok(Some(msg)) => {
                            self.handle(k, i, msg);
                            progressed = true;
                        }
                        Ok(None) => break,
                        Err(_) => {
                            if !dead.contains(&i) {
                                dead.push(i);
                            }
                            break;
                        }
                    }
                }
            }
            // Only *registered* clients are protocol participants; restart
            // processes and command-line tools connect without registering
            // and may hang up freely (e.g. after forking the children). A
            // relay counts as a participant whenever it fronts anyone.
            let lost_participant = dead.iter().any(|&i| {
                let c = &self.clients[i];
                !c.stale && (c.vpid != 0 || (c.relay.is_some() && c.quota() > 0))
            });
            for i in dead.into_iter().rev() {
                let c = self.clients.remove(i);
                let _ = k.close(c.fd);
                progressed = true;
            }
            if lost_participant {
                if self.in_progress {
                    // A participant vanished mid-protocol; the barrier can
                    // never be reached. Abort and let the survivors resume.
                    self.abort_generation(k);
                    progressed = true;
                } else if self.drain_open {
                    // It vanished during the overlapped drain: its image
                    // will never be acknowledged. Abandon the generation;
                    // restart rolls back to the previous one.
                    self.abort_drain(k);
                    progressed = true;
                }
            }
            // Mailbox: `dmtcp command --checkpoint`, interval timer, or the
            // dmtcpaware request API.
            if coord_shared_for(k.w, self.port).ckpt_request_pending {
                coord_shared_for(k.w, self.port).ckpt_request_pending = false;
                self.start_checkpoint(k);
                progressed = true;
            }
        }
        // Retransmit the checkpoint request if the first barrier has not
        // been released by the deadline (the broadcast may have been lost).
        if let Some(at) = self.retry_at {
            if k.now() >= at {
                if self.in_progress && !self.released.contains(&(self.gen, stage::SUSPENDED)) {
                    k.obs().metrics.inc("core.ckpt.request_retries", 0);
                    let gen = self.gen;
                    k.trace_with("coord", || format!("ckpt gen {gen} request retransmitted"));
                    self.broadcast(k, &Msg::CkptRequest(gen));
                    self.retry_backoff = self.retry_backoff + self.retry_backoff;
                    self.retry_at = Some(k.now() + self.retry_backoff);
                    self.arm_timer(k, self.retry_backoff);
                } else {
                    self.retry_at = None;
                }
            }
        }
        // Relay-liveness sweep: a relay silent past RELAY_TIMEOUT inside an
        // in-flight generation means its node is gone — drop it and abort,
        // exactly as a direct participant's EOF would. Never during a
        // restart (relays legitimately sit those out) and never re-armed
        // once idle, so the coordinator stays quiescent between requests.
        if let Some(at) = self.liveness_at {
            if k.now() >= at {
                self.liveness_at = None;
                if (self.in_progress || self.drain_open) && !self.restarting {
                    let now = k.now();
                    let timed_out: Vec<usize> = self
                        .clients
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| {
                            c.relay
                                .as_ref()
                                .map(|r| r.members > 0 && now - r.last_heard > RELAY_TIMEOUT)
                                .unwrap_or(false)
                        })
                        .map(|(i, _)| i)
                        .collect();
                    if timed_out.is_empty() {
                        self.liveness_at = Some(now + LIVENESS_CHECK);
                        self.arm_timer(k, LIVENESS_CHECK);
                    } else {
                        for i in timed_out.into_iter().rev() {
                            let c = self.clients.remove(i);
                            let _ = k.close(c.fd);
                            k.trace_with("coord", || {
                                "relay timed out mid-generation; dropping it".to_string()
                            });
                            k.obs().metrics.inc("coord.relay_timeouts", 0);
                        }
                        if self.in_progress {
                            self.abort_generation(k);
                        } else {
                            self.abort_drain(k);
                        }
                    }
                }
            }
        }
        self.mirror_state(k);
        Step::Block
    }

    fn tag(&self) -> &'static str {
        "dmtcp-coordinator"
    }

    fn save(&self) -> Vec<u8> {
        unreachable!("the coordinator is never checkpointed (as in real DMTCP)")
    }
}

/// Every live DMTCP-traced process, with its node — the fault injector's
/// candidate victims for process/node kills at barrier instants.
fn traced_candidates(k: &Kernel<'_>) -> Vec<(Pid, NodeId)> {
    k.w.procs
        .iter()
        .filter(|(_, p)| crate::hijack::is_traced_proc(p) && p.alive())
        .map(|(pid, p)| (*pid, p.node))
        .collect()
}

/// Where the coordinator listening on `port` writes its restart script.
/// The default port keeps the historical fixed path; every other
/// coordinator (a dmtcpd shard) gets a port-suffixed one, so concurrent
/// shards never overwrite each other's restart plans.
pub fn restart_script_path(port: u16) -> String {
    if port == COORD_PORT {
        "/shared/dmtcp_restart_script.sh".to_string()
    } else {
        format!("/shared/dmtcp_restart_script_{port}.sh")
    }
}

/// Record an image written by a manager so the restart script of the root
/// coordinator on `root_port` includes it.
pub fn record_image(w: &mut World, root_port: u16, path: String, host: String) {
    coord_shared_for(w, root_port)
        .last_images
        .push((path, host));
}

/// Post a checkpoint request to the coordinator on `port` (the `dmtcp
/// command --checkpoint` path against a specific dmtcpd shard) and wake it.
pub fn request_checkpoint_on(w: &mut World, sim: &mut oskit::world::OsSim, port: u16) {
    coord_shared_for(w, port).ckpt_request_pending = true;
    if let Some(pid) = coord_shared_for(w, port).coord_pid {
        w.wake(sim, (pid, Tid(0)));
    }
}

/// Post a checkpoint request to the default-port coordinator and wake it.
pub fn request_checkpoint(w: &mut World, sim: &mut oskit::world::OsSim) {
    request_checkpoint_on(w, sim, COORD_PORT);
}

/// Query the discovery/global tables — used by tests to assert protocol
/// invariants without reaching into the coordinator program.
pub fn discovery_len(w: &mut World) -> usize {
    // The discovery table lives in the program; expose via the gsid table
    // instead: count of advertised ids is not tracked globally, so report
    // the number of known connection gsids.
    global(w).conn_gsid.len()
}
