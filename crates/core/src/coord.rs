//! The checkpoint coordinator.
//!
//! One coordinator process serves a whole computation: it implements the
//! six global barriers of the checkpoint algorithm (§4.3), the discovery
//! service restart needs to find migrated peers (§4.4), interval
//! checkpointing (`--interval`), and restart-script generation. The paper
//! notes the centralized coordinator is not a bottleneck at 32 nodes and
//! could be replaced by a distributed implementation; `bench/ablation`
//! measures exactly that claim.

use crate::gsid::{global, Gsid};
use crate::proto::{frame, FrameBuf, Msg};
use oskit::program::{Program, Step};
use oskit::world::{Pid, Tid, World};
use oskit::{Errno, Fd, Kernel};
use simkit::Nanos;
use std::collections::BTreeMap;

/// Default coordinator port (the real default is 7779).
pub const COORD_PORT: u16 = 7779;

/// Checkpoint barrier stages, numbered as in Figure 1.
pub mod stage {
    /// User threads suspended.
    pub const SUSPENDED: u8 = 2;
    /// Shared-fd leader election completed.
    pub const ELECTED: u8 = 3;
    /// Kernel buffers drained, handshakes done.
    pub const DRAINED: u8 = 4;
    /// Checkpoint image written.
    pub const CHECKPOINTED: u8 = 5;
    /// Kernel buffers refilled.
    pub const REFILLED: u8 = 6;
    /// Restart: memory and threads restored (Figure 2 step 5).
    pub const RESTORED: u8 = 11;
    /// Restart: kernel buffers refilled (Figure 2 step 6).
    pub const RESTART_REFILLED: u8 = 12;

    /// Span name of a barrier-release instant (`obs` naming scheme).
    pub fn release_name(stg: u8) -> &'static str {
        match stg {
            SUSPENDED => "release.suspended",
            ELECTED => "release.elected",
            DRAINED => "release.drained",
            CHECKPOINTED => "release.checkpointed",
            REFILLED => "release.refilled",
            RESTORED => "release.restored",
            RESTART_REFILLED => "release.restart_refilled",
            _ => "release.unknown",
        }
    }
}

/// Barrier timing for one checkpoint generation (benchmark input).
#[derive(Debug, Clone)]
pub struct GenStat {
    /// Generation number.
    pub gen: u64,
    /// When the coordinator broadcast the request.
    pub requested_at: Nanos,
    /// Release time of each barrier stage.
    pub releases: BTreeMap<u8, Nanos>,
    /// Number of participating processes.
    pub participants: u32,
}

impl GenStat {
    /// Wall-clock from request to the "checkpointed" barrier — the paper's
    /// reported checkpoint time (user threads are suspended from request to
    /// resume; the image is safe at stage 5).
    pub fn checkpoint_time(&self) -> Option<Nanos> {
        self.releases
            .get(&stage::CHECKPOINTED)
            .map(|t| *t - self.requested_at)
    }

    /// Wall-clock until user threads resumed (stage 6 released).
    pub fn total_pause(&self) -> Option<Nanos> {
        self.releases
            .get(&stage::REFILLED)
            .map(|t| *t - self.requested_at)
    }
}

/// Coordinator-side shared state (kept in the world's DMTCP singleton so
/// benches can read it after the run). Per-process stage breakdowns
/// (Table 1 input) live in the world's metrics registry under
/// `core.stage.*` / `core.restart.*` histograms, labeled by generation.
#[derive(Debug, Default)]
pub struct CoordShared {
    /// Trigger flag posted by `dmtcp command --checkpoint` / the interval
    /// timer.
    pub ckpt_request_pending: bool,
    /// Coordinator process (for waking on mailbox posts).
    pub coord_pid: Option<Pid>,
    /// Barrier timing per generation.
    pub gen_stats: Vec<GenStat>,
    /// Paths of every image written in the last completed generation,
    /// with their hostnames (drives the restart script).
    pub last_images: Vec<(String, String)>,
}

/// Access the coordinator-shared state (world singleton).
pub fn coord_shared(w: &mut World) -> &mut CoordShared {
    let slot = w
        .ext_slots
        .entry("dmtcp-coord-shared".to_string())
        .or_insert_with(|| Box::new(CoordShared::default()));
    slot.downcast_mut::<CoordShared>()
        .expect("slot holds CoordShared")
}

struct Client {
    fd: Fd,
    vpid: u32,
    fb: FrameBuf,
}

/// The coordinator program. It is *not* checkpointed (same as real DMTCP,
/// where a new coordinator is started for restart), so its state need not
/// be serializable.
pub struct Coordinator {
    port: u16,
    interval: Option<Nanos>,
    lfd: Fd,
    clients: Vec<Client>,
    gen: u64,
    in_progress: bool,
    expected: u32,
    barrier_counts: BTreeMap<(u64, u8), u32>,
    discovery: BTreeMap<Gsid, (String, u16)>,
    requested_at: Nanos,
}

impl Coordinator {
    /// A coordinator listening on `port`, checkpointing every `interval`
    /// when set.
    pub fn new(port: u16, interval: Option<Nanos>) -> Self {
        Coordinator {
            port,
            interval,
            lfd: -1,
            clients: Vec::new(),
            gen: 0,
            in_progress: false,
            expected: 0,
            barrier_counts: BTreeMap::new(),
            discovery: BTreeMap::new(),
            requested_at: Nanos::ZERO,
        }
    }

    fn broadcast(&mut self, k: &mut Kernel<'_>, msg: &Msg) {
        let bytes = frame(msg);
        for c in &self.clients {
            // Coordinator frames are tiny; a full window here means a hung
            // client, which the simulation treats as fatal.
            let n = k.write(c.fd, &bytes).expect("coordinator broadcast");
            assert_eq!(n, bytes.len(), "coordinator socket full");
        }
    }

    fn start_checkpoint(&mut self, k: &mut Kernel<'_>) {
        if self.in_progress || self.clients.is_empty() {
            return;
        }
        self.gen += 1;
        self.in_progress = true;
        self.expected = self.clients.len() as u32;
        self.requested_at = k.now();
        let (gen, expected) = (self.gen, self.expected);
        k.trace_with("coord", || {
            format!("ckpt gen {gen} requested ({expected} procs)")
        });
        k.obs().metrics.inc("core.ckpt.requests", 0);
        let (at, track) = (k.now(), k.track());
        k.obs()
            .spans
            .instant(at, track, "ckpt.request", "coord", vec![("gen", gen)]);
        coord_shared(k.w).gen_stats.push(GenStat {
            gen: self.gen,
            requested_at: self.requested_at,
            releases: BTreeMap::new(),
            participants: self.expected,
        });
        coord_shared(k.w).last_images.clear();
        self.broadcast(k, &Msg::CkptRequest(self.gen));
    }

    fn handle(&mut self, k: &mut Kernel<'_>, from: usize, msg: Msg) {
        match msg {
            Msg::Register(vpid, _host) => {
                self.clients[from].vpid = vpid;
            }
            Msg::BarrierReached(gen, stg) => {
                let count = self.barrier_counts.entry((gen, stg)).or_insert(0);
                *count += 1;
                self.check_release(k, gen, stg);
            }
            Msg::Advertise(gsid, host, port) => {
                self.discovery.insert(gsid, (host, port));
            }
            Msg::Query(gsid) => {
                let reply = match self.discovery.get(&gsid) {
                    Some((h, p)) => Msg::QueryReply(gsid, h.clone(), *p),
                    None => Msg::QueryReply(gsid, String::new(), 0),
                };
                let bytes = frame(&reply);
                let fd = self.clients[from].fd;
                let n = k.write(fd, &bytes).expect("query reply");
                assert_eq!(n, bytes.len());
            }
            Msg::RestartPlan(n, gen) => {
                // A restart driver re-arms barrier accounting for the
                // restored computation at the generation it is restoring.
                self.expected = n;
                self.in_progress = true;
                self.gen = gen;
                self.requested_at = k.now();
                // Advertisements from any previous restart are stale.
                self.discovery.clear();
                coord_shared(k.w).gen_stats.push(GenStat {
                    gen,
                    requested_at: self.requested_at,
                    releases: BTreeMap::new(),
                    participants: n,
                });
                // Managers may have raced their barrier messages ahead of
                // the plan; re-check every pending barrier.
                let pending: Vec<(u64, u8)> = self.barrier_counts.keys().copied().collect();
                for (g, s) in pending {
                    self.check_release(k, g, s);
                }
            }
            other => panic!("coordinator got unexpected message {other:?}"),
        }
    }

    /// Release a barrier once every expected participant reached it.
    fn check_release(&mut self, k: &mut Kernel<'_>, gen: u64, stg: u8) {
        let count = self.barrier_counts.get(&(gen, stg)).copied().unwrap_or(0);
        if self.expected == 0 || count != self.expected {
            return;
        }
        self.barrier_counts.remove(&(gen, stg));
        let now = k.now();
        if let Some(gs) = coord_shared(k.w)
            .gen_stats
            .iter_mut()
            .rev()
            .find(|g| g.gen == gen)
        {
            gs.releases.insert(stg, now);
        }
        k.trace_with("barrier", || format!("gen {gen} stage {stg} released"));
        k.obs().metrics.inc("core.barrier.releases", stg as u64);
        let track = k.track();
        k.obs().spans.instant(
            now,
            track,
            stage::release_name(stg),
            "coord",
            vec![("gen", gen), ("stage", stg as u64)],
        );
        self.broadcast(k, &Msg::BarrierRelease(gen, stg));
        if stg == stage::REFILLED || stg == stage::RESTART_REFILLED {
            self.in_progress = false;
            self.write_restart_script(k);
            if let Some(iv) = self.interval {
                let pid = k.getpid_real();
                k.sim.after(iv, move |w: &mut World, sim| {
                    coord_shared(w).ckpt_request_pending = true;
                    w.wake(sim, (pid, Tid(0)));
                });
            }
        }
    }

    /// Generate `dmtcp_restart_script.sh` listing every image of the last
    /// generation, grouped by host (§3: "a shell script ... containing all
    /// the commands needed to restart the distributed computation").
    fn write_restart_script(&mut self, k: &mut Kernel<'_>) {
        let images = coord_shared(k.w).last_images.clone();
        if images.is_empty() {
            return;
        }
        let mut by_host: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (path, host) in &images {
            by_host.entry(host.clone()).or_default().push(path.clone());
        }
        let mut script = String::from("#!/bin/sh\n# generated by dmtcp_coordinator\n");
        for (host, paths) in &by_host {
            script.push_str(&format!("ssh {host} dmtcp_restart {}\n", paths.join(" ")));
        }
        let node = k.node();
        let fs = k.w.fs_for_mut(node, "/shared/dmtcp_restart_script.sh");
        fs.write_all("/shared/dmtcp_restart_script.sh", script.as_bytes())
            .expect("shared fs writable");
    }
}

impl Program for Coordinator {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        if self.lfd < 0 {
            let (fd, port) = k.listen_on(self.port).expect("coordinator port free");
            self.lfd = fd;
            self.port = port;
            coord_shared(k.w).coord_pid = Some(k.getpid_real());
            if let Some(iv) = self.interval {
                // Arm the first interval tick.
                let pid = k.getpid_real();
                k.sim.after(iv, move |w: &mut World, sim| {
                    coord_shared(w).ckpt_request_pending = true;
                    w.wake(sim, (pid, Tid(0)));
                });
            }
        }
        let mut progressed = true;
        while progressed {
            progressed = false;
            // Accept new managers.
            loop {
                match k.accept(self.lfd) {
                    Ok(fd) => {
                        self.clients.push(Client {
                            fd,
                            vpid: 0,
                            fb: FrameBuf::new(),
                        });
                        progressed = true;
                    }
                    Err(Errno::WouldBlock) => break,
                    Err(e) => panic!("coordinator accept: {e:?}"),
                }
            }
            // Drain every client socket; clients whose process exited
            // (EOF) leave the computation.
            let mut dead = Vec::new();
            for i in 0..self.clients.len() {
                loop {
                    match k.read(self.clients[i].fd, 64 * 1024) {
                        Ok(b) if b.is_empty() => {
                            dead.push(i);
                            break;
                        }
                        Ok(b) => {
                            self.clients[i].fb.feed(&b);
                            progressed = true;
                        }
                        Err(Errno::WouldBlock) => break,
                        Err(e) => panic!("coordinator read: {e:?}"),
                    }
                }
                while let Some(msg) = self.clients[i].fb.pop().expect("well-formed frames") {
                    self.handle(k, i, msg);
                    progressed = true;
                }
            }
            for i in dead.into_iter().rev() {
                let c = self.clients.remove(i);
                let _ = k.close(c.fd);
                progressed = true;
            }
            // Mailbox: `dmtcp command --checkpoint`, interval timer, or the
            // dmtcpaware request API.
            if coord_shared(k.w).ckpt_request_pending {
                coord_shared(k.w).ckpt_request_pending = false;
                self.start_checkpoint(k);
                progressed = true;
            }
        }
        Step::Block
    }

    fn tag(&self) -> &'static str {
        "dmtcp-coordinator"
    }

    fn save(&self) -> Vec<u8> {
        unreachable!("the coordinator is never checkpointed (as in real DMTCP)")
    }
}

/// Record an image written by a manager so the restart script includes it.
pub fn record_image(w: &mut World, path: String, host: String) {
    coord_shared(w).last_images.push((path, host));
}

/// Post a checkpoint request (the `dmtcp command --checkpoint` path) and
/// wake the coordinator.
pub fn request_checkpoint(w: &mut World, sim: &mut oskit::world::OsSim) {
    coord_shared(w).ckpt_request_pending = true;
    if let Some(pid) = coord_shared(w).coord_pid {
        w.wake(sim, (pid, Tid(0)));
    }
}

/// Query the discovery/global tables — used by tests to assert protocol
/// invariants without reaching into the coordinator program.
pub fn discovery_len(w: &mut World) -> usize {
    // The discovery table lives in the program; expose via the gsid table
    // instead: count of advertised ids is not tracked globally, so report
    // the number of known connection gsids.
    global(w).conn_gsid.len()
}
