//! The per-node relay: the aggregation tier of the hierarchical
//! coordinator topology.
//!
//! In a flat star every manager registers directly with the root
//! coordinator, so each barrier stage costs the root O(processes) wire
//! messages (one ack in, one release out, per process). A relay runs one
//! per node, fronts every manager on that node, and speaks to the root as
//! a *single* client: local `BarrierReached` acks collapse into one
//! cumulative [`Msg::BarrierAckN`], and each root `BarrierRelease` fans
//! out locally. Root traffic per stage drops to O(nodes) — the scale-out
//! the NERSC deployments of DMTCP needed once node counts outgrew the
//! paper's 32.
//!
//! The relay is *not* a checkpointed participant (like the coordinator it
//! is spawned outside the traced set, and restarts bypass it: restored
//! managers register directly with the root). It is, however, a failure
//! domain: if the relay dies or is partitioned, every manager behind it is
//! unreachable, so the root treats relay loss exactly like the death of a
//! direct participant — abort the in-flight generation and roll back.
//! Liveness is two-sided and runs only while a generation is in flight
//! (the relay is silent between checkpoints, keeping the world quiescent):
//! the relay pings the root every [`PING_INTERVAL`]; the root answers each
//! ping and sweeps for relays silent past its own timeout; a relay that
//! hears nothing for [`GIVE_UP`] assumes the root is unreachable, aborts
//! its local clients so no barrier hangs, and goes dormant.

use crate::coord::stage;
use crate::gsid::Gsid;
use crate::proto::{frame, FrameBuf, Msg};
use oskit::program::{Program, Step};
use oskit::world::{Tid, World};
use oskit::{Errno, Fd, Kernel};
use simkit::Nanos;
use std::collections::{BTreeMap, BTreeSet};

/// Default relay listening port: the default root port plus one. Relays
/// are shard-aware — each root coordinator's relays listen on
/// [`crate::launch::relay_port_for`] of that root's port — and this
/// constant is simply that function applied to the default root.
pub const RELAY_PORT: u16 = 7780;

/// Liveness ping cadence while a generation is in flight.
pub const PING_INTERVAL: Nanos = Nanos(25_000_000); // 25 ms

/// Root silence tolerated mid-generation before the relay assumes a
/// partition, aborts its local clients, and goes dormant. Longer than the
/// root's own relay timeout, so the root always gives up on us first.
pub const GIVE_UP: Nanos = Nanos(300_000_000); // 300 ms

struct LocalClient {
    fd: Fd,
    vpid: u32,
    fb: FrameBuf,
}

/// Replay-dump mirror of one relay's barrier aggregation state. Relays, like
/// the coordinator, are `Box<dyn Program>` and cannot be downcast from the
/// process table, so each relay copies its bookkeeping here at the end of
/// every step (the [`crate::coord::CoordShared`] pattern) and `dmtcp replay`
/// snapshots read it back.
#[derive(Debug, Default, Clone)]
pub struct RelayMirror {
    /// Generation currently in flight (or last seen).
    pub gen: u64,
    /// Whether a generation is currently in flight.
    pub in_flight: bool,
    /// Terminal dormant state: the root was unreachable and locals aborted.
    pub dormant: bool,
    /// Local participants this relay currently fronts.
    pub members: u32,
    /// Local ack counts per (gen, stage) still being aggregated upstream.
    pub acks: BTreeMap<(u64, u8), u32>,
    /// Barriers whose release already fanned out locally.
    pub released: BTreeSet<(u64, u8)>,
}

/// World-singleton map of per-node relay mirrors, keyed by node id.
#[derive(Debug, Default)]
pub struct RelayShared {
    /// One mirror per relay-bearing node.
    pub relays: BTreeMap<u32, RelayMirror>,
}

/// Access the relay mirror map (world singleton ext slot).
pub fn relay_shared(w: &mut World) -> &mut RelayShared {
    let slot = w
        .ext_slots
        .entry("dmtcp-relay-shared".to_string())
        .or_insert_with(|| Box::new(RelayShared::default()));
    slot.downcast_mut::<RelayShared>()
        .expect("slot holds RelayShared")
}

/// The relay program (one per node under `Topology::Hierarchical`).
pub struct Relay {
    port: u16,
    root_host: String,
    root_port: u16,
    lfd: Fd,
    root_fd: Fd,
    root_fb: FrameBuf,
    registered: bool,
    locals: Vec<LocalClient>,
    /// Local vpids that acked each pending (gen, stage) — the cumulative
    /// count forwarded in `BarrierAckN`. Duplicate local acks (manager
    /// retransmissions) re-send the current count: if the previous
    /// `BarrierAckN` was lost, the retransmission repairs it, and the root
    /// merges cumulative counts idempotently.
    acks: BTreeMap<(u64, u8), BTreeSet<u32>>,
    /// Barriers whose release already fanned out; a late local ack for one
    /// of these gets the release re-sent to that client alone.
    released: BTreeSet<(u64, u8)>,
    /// Generations the root (or this relay's give-up path) abandoned.
    aborted_gens: BTreeSet<u64>,
    /// Discovery queries proxied for local clients, awaiting the reply.
    pending_queries: BTreeMap<Gsid, Vec<Fd>>,
    /// Generation currently in flight (liveness pings run only inside it).
    gen: u64,
    in_flight: bool,
    /// Last time any root traffic arrived.
    last_root_heard: Nanos,
    ping_at: Option<Nanos>,
    /// Terminal state: the root is gone (EOF or give-up). Local clients
    /// were told to abort; nothing is armed, nothing is read.
    dormant: bool,
}

impl Relay {
    /// A relay listening on `port`, aggregating for the root coordinator
    /// at `root_host:root_port`.
    pub fn new(port: u16, root_host: String, root_port: u16) -> Self {
        Relay {
            port,
            root_host,
            root_port,
            lfd: -1,
            root_fd: -1,
            root_fb: FrameBuf::new(),
            registered: false,
            locals: Vec::new(),
            acks: BTreeMap::new(),
            released: BTreeSet::new(),
            aborted_gens: BTreeSet::new(),
            pending_queries: BTreeMap::new(),
            gen: 0,
            in_flight: false,
            last_root_heard: Nanos::ZERO,
            ping_at: None,
            dormant: false,
        }
    }

    fn members(&self) -> u32 {
        self.locals.iter().filter(|c| c.vpid != 0).count() as u32
    }

    fn send_root(&mut self, k: &mut Kernel<'_>, msg: &Msg) {
        let bytes = frame(msg);
        match k.write(self.root_fd, &bytes) {
            Ok(n) => assert_eq!(n, bytes.len(), "relay root socket full"),
            // Root hung up on us; EOF handling will notice shortly.
            Err(Errno::Pipe) | Err(Errno::BadFd) => {}
            Err(e) => panic!("relay send to root: {e:?}"),
        }
    }

    fn send_local(&mut self, k: &mut Kernel<'_>, fd: Fd, msg: &Msg) {
        k.obs().metrics.inc("relay.fanout", self.gen);
        let bytes = frame(msg);
        match k.write(fd, &bytes) {
            Ok(n) => assert_eq!(n, bytes.len(), "relay local socket full"),
            // The local client died; EOF reaping will remove it shortly.
            Err(Errno::Pipe) | Err(Errno::BadFd) => {}
            Err(e) => panic!("relay send to local: {e:?}"),
        }
    }

    fn broadcast_local(&mut self, k: &mut Kernel<'_>, msg: &Msg) {
        let fds: Vec<Fd> = self.locals.iter().map(|c| c.fd).collect();
        for fd in fds {
            self.send_local(k, fd, msg);
        }
    }

    /// Arm a wake-up for this process `dt` from now.
    fn arm_timer(&self, k: &mut Kernel<'_>, dt: Nanos) {
        let pid = k.getpid_real();
        k.sim.after(dt, move |w: &mut World, sim| {
            w.wake(sim, (pid, Tid(0)));
        });
    }

    /// The root is unreachable (prolonged silence mid-generation, or EOF).
    /// Without the control path no local client can ever complete another
    /// barrier: tell them to abort the in-flight generation so nothing
    /// hangs, then go dormant. The root, for its part, has timed us out and
    /// aborted — the computation rolls back to the previous generation.
    fn give_up(&mut self, k: &mut Kernel<'_>) {
        let gen = self.gen;
        k.trace_with("relay", || {
            format!("root unreachable during gen {gen}; aborting locals and going dormant")
        });
        k.obs().metrics.inc("relay.give_ups", 0);
        let at = k.now();
        let node = k.node().0 as u64;
        k.obs().journal.record(
            at,
            obs::journal::CLASS_STAGE,
            "stage.abort",
            None,
            &[("gen", gen), ("node", node)],
            "relay-give-up",
        );
        if self.in_flight {
            self.aborted_gens.insert(gen);
            self.broadcast_local(k, &Msg::CkptAbort(gen));
        }
        self.in_flight = false;
        self.dormant = true;
    }

    fn handle_local(&mut self, k: &mut Kernel<'_>, i: usize, msg: Msg) {
        match msg {
            Msg::Register(vpid, _host) => {
                self.locals[i].vpid = vpid;
                let m = self.members();
                self.send_root(k, &Msg::RelayMembership(m, 0));
            }
            Msg::BarrierReached(gen, stg) => {
                if self.released.contains(&(gen, stg)) {
                    // Our fan-out may have been lost; repeat it for this
                    // client only.
                    let fd = self.locals[i].fd;
                    self.send_local(k, fd, &Msg::BarrierRelease(gen, stg));
                    return;
                }
                if self.aborted_gens.contains(&gen) {
                    // Same shape as the coordinator: answer drain-barrier
                    // acks of an abandoned generation with the abort so a
                    // forked writer stops retransmitting; drop the rest.
                    if stg == stage::CKPT_WRITTEN {
                        let fd = self.locals[i].fd;
                        self.send_local(k, fd, &Msg::CkptAbort(gen));
                    }
                    return;
                }
                let vpid = self.locals[i].vpid;
                let set = self.acks.entry((gen, stg)).or_default();
                set.insert(vpid);
                let count = set.len() as u32;
                // Aggregate: the uplink carries ONE cumulative BarrierAckN
                // per (gen, stage), sent when the last local member acks —
                // this is where O(processes) becomes O(nodes). A duplicate
                // local ack (manager retransmission) re-sends it, repairing
                // a lost uplink frame; the root merges counts idempotently.
                if count == self.members() {
                    if k.obs().journal.wants(obs::journal::CLASS_STAGE) {
                        let at = k.now();
                        let node = k.node().0 as u64;
                        k.obs().journal.record(
                            at,
                            obs::journal::CLASS_STAGE,
                            "stage.ackn",
                            None,
                            &[
                                ("gen", gen),
                                ("stage", stg as u64),
                                ("count", count as u64),
                                ("node", node),
                            ],
                            "",
                        );
                    }
                    self.send_root(k, &Msg::BarrierAckN(gen, stg, count));
                }
            }
            // Discovery traffic is proxied transparently (restart helpers
            // normally talk to the root directly, but be liberal).
            Msg::Advertise(gsid, host, port) => {
                self.send_root(k, &Msg::Advertise(gsid, host, port));
            }
            Msg::Query(gsid) => {
                let fd = self.locals[i].fd;
                self.pending_queries.entry(gsid).or_default().push(fd);
                self.send_root(k, &Msg::Query(gsid));
            }
            other => panic!("relay got unexpected local message {other:?}"),
        }
    }

    fn handle_root(&mut self, k: &mut Kernel<'_>, msg: Msg) {
        match msg {
            Msg::CkptRequest(gen) => {
                if !self.in_flight || gen != self.gen {
                    // A new generation begins. Shed any state a reused
                    // generation number may carry from an aborted attempt
                    // (mirrors the coordinator's start_checkpoint).
                    self.gen = gen;
                    self.in_flight = true;
                    self.aborted_gens.remove(&gen);
                    self.acks.retain(|(g, _), _| *g != gen);
                    self.released.retain(|(g, _)| *g != gen);
                    if self.ping_at.is_none() {
                        self.ping_at = Some(k.now() + PING_INTERVAL);
                        self.arm_timer(k, PING_INTERVAL);
                    }
                }
                // Forward (also retransmissions: managers dedup them).
                self.broadcast_local(k, &Msg::CkptRequest(gen));
            }
            Msg::BarrierRelease(gen, stg) => {
                self.released.insert((gen, stg));
                self.acks.remove(&(gen, stg));
                self.broadcast_local(k, &Msg::BarrierRelease(gen, stg));
                if stg == stage::CKPT_WRITTEN && gen == self.gen {
                    // The root releases CKPT_WRITTEN last; the generation
                    // is settled and liveness pings stop.
                    self.in_flight = false;
                }
            }
            Msg::CkptAbort(gen) => {
                self.aborted_gens.insert(gen);
                self.acks.retain(|(g, _), _| *g != gen);
                self.released.retain(|(g, _)| *g != gen);
                self.broadcast_local(k, &Msg::CkptAbort(gen));
                if gen == self.gen {
                    self.in_flight = false;
                }
            }
            Msg::QueryReply(gsid, host, port) => {
                if let Some(fds) = self.pending_queries.remove(&gsid) {
                    for fd in fds {
                        self.send_local(k, fd, &Msg::QueryReply(gsid, host.clone(), port));
                    }
                }
            }
            Msg::RelayPong(_) => {} // liveness noted on read
            other => panic!("relay got unexpected root message {other:?}"),
        }
    }

    /// Mirror aggregation bookkeeping into [`RelayShared`] for replay dumps.
    /// Called once at the end of every step — the maps are per-node tiny.
    /// Only the default session's relays mirror: the map is keyed by node,
    /// and replay state dumps cover the single default-port computation,
    /// not dmtcpd shards (which would collide on the node key).
    fn mirror_state(&self, k: &mut Kernel<'_>) {
        if self.root_port != crate::coord::COORD_PORT {
            return;
        }
        let node = k.node().0;
        let acks: BTreeMap<(u64, u8), u32> = self
            .acks
            .iter()
            .map(|(key, set)| (*key, set.len() as u32))
            .collect();
        let m = relay_shared(k.w).relays.entry(node).or_default();
        m.gen = self.gen;
        m.in_flight = self.in_flight;
        m.dormant = self.dormant;
        m.members = self.members();
        m.acks = acks;
        m.released = self.released.clone();
    }
}

impl Program for Relay {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        if self.dormant {
            k.block_forever();
            return Step::Block;
        }
        // Bind the local port first so managers can start retrying their
        // connects, then reach the root (both sides retry ConnRefused).
        if self.lfd < 0 {
            let (fd, port) = k.listen_on(self.port).expect("relay port free");
            self.lfd = fd;
            self.port = port;
        }
        if self.root_fd < 0 {
            match k.connect(&self.root_host, self.root_port) {
                Ok(fd) => {
                    self.root_fd = fd;
                    // Protected-fd convention, and the fault injector needs
                    // to know this is (a) protocol and (b) a relay uplink —
                    // the partition faults sever exactly these.
                    if let Ok(oskit::fdtable::FdObject::Sock(cid, _)) = k.fd_object(fd) {
                        crate::gsid::global(k.w).protected_conns.insert(cid);
                        faultkit::note_protocol_conn(k.w, cid);
                        faultkit::note_relay_conn(k.w, cid);
                    }
                    self.last_root_heard = k.now();
                }
                Err(Errno::ConnRefused) => return Step::Sleep(Nanos::from_millis(5)),
                Err(e) => panic!("relay connect to root: {e:?}"),
            }
        }
        if !self.registered {
            let host = k.hostname();
            self.send_root(k, &Msg::RelayRegister(host));
            self.registered = true;
        }
        let mut progressed = true;
        while progressed && !self.dormant {
            progressed = false;
            // Accept local managers.
            loop {
                match k.accept(self.lfd) {
                    Ok(fd) => {
                        self.locals.push(LocalClient {
                            fd,
                            vpid: 0,
                            fb: FrameBuf::new(),
                        });
                        progressed = true;
                    }
                    Err(Errno::WouldBlock) => break,
                    Err(e) => panic!("relay accept: {e:?}"),
                }
            }
            // Drain local sockets; EOF means the process died (or was
            // killed) — report the membership change upstream so the root
            // can abort an in-flight generation.
            let mut dead = Vec::new();
            for i in 0..self.locals.len() {
                loop {
                    match k.read(self.locals[i].fd, 64 * 1024) {
                        Ok(b) if b.is_empty() => {
                            dead.push(i);
                            break;
                        }
                        Ok(b) => {
                            self.locals[i].fb.feed(&b);
                            progressed = true;
                        }
                        Err(Errno::WouldBlock) => break,
                        Err(Errno::BadFd) => {
                            dead.push(i);
                            break;
                        }
                        Err(e) => panic!("relay read local: {e:?}"),
                    }
                }
                loop {
                    match self.locals[i].fb.pop() {
                        Ok(Some(msg)) => {
                            self.handle_local(k, i, msg);
                            progressed = true;
                        }
                        Ok(None) => break,
                        Err(_) => {
                            if !dead.contains(&i) {
                                dead.push(i);
                            }
                            break;
                        }
                    }
                }
            }
            // Mirror the root's idle-EOF rule: a local that dies while no
            // generation is in flight (e.g. a process killed so it can be
            // live-migrated to another node) is a membership update, not a
            // lost participant. Only an EOF during an in-flight generation
            // — request through CKPT_WRITTEN — is reported as `lost`, which
            // is what aborts the checkpoint at the root.
            let eofs = dead.iter().filter(|&&i| self.locals[i].vpid != 0).count() as u32;
            let lost = if self.in_flight { eofs } else { 0 };
            for i in dead.into_iter().rev() {
                let c = self.locals.remove(i);
                let _ = k.close(c.fd);
                progressed = true;
            }
            if eofs > 0 {
                let m = self.members();
                self.send_root(k, &Msg::RelayMembership(m, lost));
            }
            // Root traffic.
            let mut root_eof = false;
            loop {
                match k.read(self.root_fd, 64 * 1024) {
                    Ok(b) if b.is_empty() => {
                        root_eof = true;
                        break;
                    }
                    Ok(b) => {
                        self.root_fb.feed(&b);
                        self.last_root_heard = k.now();
                        progressed = true;
                    }
                    Err(Errno::WouldBlock) => break,
                    Err(Errno::BadFd) => {
                        root_eof = true;
                        break;
                    }
                    Err(e) => panic!("relay read root: {e:?}"),
                }
            }
            loop {
                match self.root_fb.pop() {
                    Ok(Some(msg)) => {
                        self.handle_root(k, msg);
                        progressed = true;
                    }
                    Ok(None) => break,
                    Err(e) => panic!("relay got corrupt root frame: {e:?}"),
                }
            }
            if root_eof {
                // The root hung up (it timed us out, or died). Terminal.
                self.give_up(k);
                progressed = true;
            }
        }
        // Liveness ping: only while a generation is in flight, so an idle
        // relay arms no timers and the world can go quiescent.
        if let Some(at) = self.ping_at {
            if k.now() >= at {
                self.ping_at = None;
                if self.in_flight && !self.dormant {
                    if k.now() - self.last_root_heard >= GIVE_UP {
                        self.give_up(k);
                    } else {
                        let gen = self.gen;
                        self.send_root(k, &Msg::RelayPing(gen));
                        self.ping_at = Some(k.now() + PING_INTERVAL);
                        self.arm_timer(k, PING_INTERVAL);
                    }
                }
            }
        }
        self.mirror_state(k);
        Step::Block
    }

    fn tag(&self) -> &'static str {
        "dmtcp-relay"
    }

    fn save(&self) -> Vec<u8> {
        unreachable!("the relay is never checkpointed (it is control plane, like the coordinator)")
    }
}
