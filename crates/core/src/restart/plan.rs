//! Heterogeneous restart planning and live migration.
//!
//! [`RestartPlan`] is the typed replacement for the stringly
//! `parse_restart_script` / `restart_from_script` pair: it maps a committed
//! checkpoint generation onto an *arbitrary* target topology — the nodes
//! that wrote the images, fewer (the paper's "continue on your laptop"
//! pack-down), or more (gang rescheduling onto a grown cluster) — and can
//! drive a **live migration** of a process subset while the rest of the
//! computation keeps running.
//!
//! # Placement
//!
//! Images are grouped into *colocation units* before packing. Two processes
//! must restore inside the same per-host restart process when they
//! genuinely share kernel objects:
//!
//! * a shared socket endpoint — the same `(gsid, end)` held by several
//!   processes (fork-inherited pipe/socketpair ends): only the end's
//!   elected leader recreates it, sharers resolve it from the restart
//!   process's local map;
//! * a shared pseudo-terminal — the master holder carries the saved pty
//!   state, every slave resolves the recreated pty locally;
//! * a parent/child link — `waitpid` and fd inheritance assume the pair
//!   restored together.
//!
//! Units are then packed onto the target nodes by [`Packing`] policy,
//! skipping any node where a unit's listening ports collide with ports
//! already in use there (a bystander's listener during live migration, or
//! another unit placed earlier). Connected-socket pairs are *not* units:
//! both ends reconnect through the coordinator's discovery service, so they
//! may land on different nodes.
//!
//! # Live migration
//!
//! [`RestartPlan::migrate`] moves a closed subset of processes between
//! nodes mid-run: checkpoint on the source, kill only the movers, restore
//! on the target from the checkpoint store — replica-served reads are the
//! transfer channel, so the source node may die the instant the images are
//! committed — while the coordinator re-arms only the restart-stage
//! barriers for the movers ([`Msg::MigratePlan`]) and every bystander keeps
//! computing. The subset must be *closed*: no shared fd object, pty,
//! parent/child link, or live connection may cross the subset boundary
//! (cross-boundary reconnection would need the bystander's cooperation,
//! which the paper's restart protocol does not have).
//!
//! [`Msg::MigratePlan`]: crate::proto::Msg::MigratePlan

use crate::coord::{coord_shared_for, stage};
use crate::gsid::Gsid;
use crate::hijack::FdKindRec;
use crate::launch::Topology;
use crate::restart::RestartProc;
use crate::session::{rewrite_gen, RestartError, RestartOutcome, Session};
use oskit::proc::sig;
use oskit::world::{NodeId, OsSim, Pid, World};
use simkit::{Nanos, Snap};
use std::collections::{BTreeMap, BTreeSet};

/// How colocation units are distributed over the target nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Packing {
    /// Unit *i* starts at target *i mod n* and probes forward — spreads
    /// load evenly across the target topology.
    #[default]
    RoundRobin,
    /// Every unit goes to the first target node it fits on — fills nodes
    /// in order, leaving later nodes empty when the work fits early.
    Fill,
}

/// A typed restart plan: which generation to restore, onto which nodes,
/// packed how, restricted to which processes. Build with
/// [`RestartPlan::builder`] (or [`RestartPlan::from_generation`] /
/// [`RestartPlan::newest`]) and run with [`RestartPlan::execute`] (cold
/// restart) or [`RestartPlan::migrate`] (live subset migration).
#[derive(Debug, Clone, Default)]
pub struct RestartPlan {
    gen: Option<u64>,
    topology: Option<Vec<NodeId>>,
    pack: Packing,
    only: Option<BTreeSet<u32>>,
    resilient: bool,
}

/// Builder for [`RestartPlan`]; see the type docs for field semantics.
#[derive(Debug, Clone, Default)]
pub struct RestartPlanBuilder {
    plan: RestartPlan,
}

impl RestartPlanBuilder {
    /// Pin the generation to restore. Unset: the newest generation named
    /// by the restart script.
    pub fn generation(mut self, gen: u64) -> Self {
        self.plan.gen = Some(gen);
        self
    }

    /// Target topology: the nodes to restore onto, packed by the
    /// [`Packing`] policy. Unset: every image goes back to the host that
    /// wrote it (identity placement — the classic in-place restart).
    pub fn topology(mut self, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        self.plan.topology = Some(nodes.into_iter().collect());
        self
    }

    /// Packing policy over the target topology (default
    /// [`Packing::RoundRobin`]; ignored under identity placement).
    pub fn pack(mut self, pack: Packing) -> Self {
        self.plan.pack = pack;
        self
    }

    /// Restrict the plan to these virtual pids. The subset must be closed
    /// under shared-object and parent/child links, and — when executed as
    /// a live migration — under socket connections too.
    pub fn only_pids(mut self, vpids: impl IntoIterator<Item = u32>) -> Self {
        self.plan.only = Some(vpids.into_iter().collect());
        self
    }

    /// Whole-generation fallback (the behavior of
    /// `Session::restart_resilient`): validate every image of the chosen
    /// generation and fall back one generation at a time when any image is
    /// torn, rotted, or missing. Only meaningful when no generation is
    /// pinned.
    pub fn resilient(mut self, on: bool) -> Self {
        self.plan.resilient = on;
        self
    }

    /// Finish the plan.
    pub fn build(self) -> RestartPlan {
        self.plan
    }
}

/// A completed [`RestartPlan::migrate`].
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// The generation the movers were checkpointed into and restored from.
    pub gen: u64,
    /// Virtual pids that moved.
    pub moved: BTreeSet<u32>,
    /// Where each mover was restored: node → virtual pids, sorted.
    pub placement: Vec<(NodeId, Vec<u32>)>,
    /// Restart-process pids spawned on the target nodes.
    pub pids: Vec<Pid>,
    /// The movers' unavailability window: from the coordinator receiving
    /// the migrate plan to the restart-refill barrier releasing. Directly
    /// comparable to a full restart's request→`RESTART_REFILLED` window.
    pub pause: Nanos,
}

/// Everything the planner needs to know about one image, read from its
/// connection-information table without restoring anything.
#[derive(Debug, Clone)]
struct ImgMeta {
    path: String,
    vpid: u32,
    origin: String,
    /// Listening ports the restored process re-binds.
    ports: BTreeSet<u16>,
    /// Socket endpoints held — `(gsid, end)`; sharing one means sharing
    /// the restored fd object.
    sock_ends: BTreeSet<(Gsid, u8)>,
    /// Connection gsids referenced (either end).
    sock_gsids: BTreeSet<Gsid>,
    /// Pseudo-terminal gsids referenced (master or slave side).
    pty_gsids: BTreeSet<Gsid>,
    parent_vpid: u32,
}

impl RestartPlan {
    /// A fresh builder.
    pub fn builder() -> RestartPlanBuilder {
        RestartPlanBuilder::default()
    }

    /// The default plan: newest generation, identity placement.
    pub fn newest() -> RestartPlan {
        RestartPlan::default()
    }

    /// A plan pinned to generation `gen` of the computation rooted at
    /// `port`, validated against its restart script:
    /// [`RestartError::NoScript`] when no generation ever committed,
    /// [`RestartError::MissingGeneration`] when `gen` is outside the
    /// committed range.
    pub fn from_generation(w: &World, port: u16, gen: u64) -> Result<RestartPlan, RestartError> {
        let script = script_groups(w, port);
        if script.is_empty() {
            return Err(RestartError::NoScript);
        }
        let top = newest_gen(&script);
        if gen == 0 || gen > top {
            return Err(RestartError::MissingGeneration { gen });
        }
        Ok(RestartPlan::builder().generation(gen).build())
    }

    /// Cold restart: map the chosen generation onto the target topology and
    /// spawn one restart process per occupied node. The previous computation
    /// must be dead (or, with [`only_pids`](RestartPlanBuilder::only_pids),
    /// the subset dead — the coordinator then re-arms only the restart-stage
    /// barriers, leaving live bystanders registered). Returns as soon as the
    /// restart processes are spawned; drive to completion with
    /// [`Session::wait_restart_done`].
    pub fn execute(
        &self,
        s: &Session,
        w: &mut World,
        sim: &mut OsSim,
    ) -> Result<RestartOutcome, RestartError> {
        let port = s.opts.coord_port;
        let script = script_groups(w, port);
        if script.is_empty() {
            return Err(RestartError::NoScript);
        }
        let top = newest_gen(&script);
        // (candidate generations, strict): a pinned generation and the
        // non-resilient newest fail hard on the first bad image; resilient
        // mode rejects the generation and falls back instead.
        let (cands, strict) = match self.gen {
            Some(g) => {
                if g == 0 || g > top {
                    return Err(RestartError::MissingGeneration { gen: g });
                }
                (vec![g], true)
            }
            None if !self.resilient => (vec![top], true),
            None => ((1..=top).rev().collect(), false),
        };
        let mut rejected: Vec<(String, String)> = Vec::new();
        'gens: for g in cands {
            // Gather per-image metadata, reading each connection table from
            // whichever node can still resolve the image (origin first,
            // then every replica holder).
            let mut metas = Vec::new();
            for (host, imgs) in &script {
                for p in imgs {
                    let path = rewrite_gen(p, g);
                    match read_meta(w, host, &path) {
                        Ok(m) => metas.push(m),
                        Err(reason) => {
                            w.obs.metrics.inc("core.restart.rejected_images", g);
                            rejected.push((path.clone(), reason.clone()));
                            if strict {
                                return Err(RestartError::ReplicaUnreachable { path, reason });
                            }
                            continue 'gens;
                        }
                    }
                }
            }
            let metas = match &self.only {
                Some(only) => closed_subset(&metas, only)?,
                None => metas,
            };
            let placement = place(w, &metas, self.topology.as_deref(), self.pack)?;
            // Validate every image against the node that will read it —
            // header, CRCs, region payloads, via the store's replica path.
            for (node, idxs) in &placement {
                for &i in idxs {
                    if let Err(e) = mtcp::verify_image(w, *node, &metas[i].path) {
                        let reason = e.to_string();
                        w.obs.metrics.inc("core.restart.rejected_images", g);
                        rejected.push((metas[i].path.clone(), reason.clone()));
                        if strict {
                            return Err(RestartError::ReplicaUnreachable {
                                path: metas[i].path.clone(),
                                reason,
                            });
                        }
                        continue 'gens;
                    }
                }
            }
            let by_node: BTreeMap<NodeId, Vec<String>> = placement
                .iter()
                .map(|(n, idxs)| (*n, idxs.iter().map(|&i| metas[i].path.clone()).collect()))
                .collect();
            let pids = spawn_restart_procs(s, w, sim, by_node, g, self.only.is_some());
            return Ok(RestartOutcome {
                gen: g,
                pids,
                rejected,
                placement: placement_vpids(&placement, &metas),
            });
        }
        Err(RestartError::NoUsableGeneration { rejected })
    }

    /// Live migration: checkpoint the whole computation, kill only the
    /// subset named by [`only_pids`](RestartPlanBuilder::only_pids), and
    /// restore it on the [`topology`](RestartPlanBuilder::topology) nodes
    /// from the just-committed generation while every bystander keeps
    /// running. Blocks until the movers resume (restart-refill barrier) or
    /// the migration aborts.
    ///
    /// Requires a checkpoint path the *target* nodes can read — the
    /// chunk-store's replicas (the transfer channel) or a shared-filesystem
    /// checkpoint directory.
    ///
    /// # Panics
    ///
    /// When the plan has no subset or no target topology (programmer
    /// error), or a pinned generation (the movers restore from the
    /// checkpoint this call takes — a historical generation cannot be
    /// "live" migrated).
    pub fn migrate(
        &self,
        s: &Session,
        w: &mut World,
        sim: &mut OsSim,
        max_events: u64,
    ) -> Result<MigrationReport, RestartError> {
        let only = self.only.clone().expect("migrate() requires only_pids()");
        assert!(
            self.topology.is_some(),
            "migrate() requires a target topology()"
        );
        assert!(
            self.gen.is_none(),
            "migrate() checkpoints now; it cannot restore a pinned generation"
        );
        let port = s.opts.coord_port;
        w.obs.journal.record(
            sim.now(),
            obs::journal::CLASS_STAGE,
            "session.migrate",
            None,
            &[("port", port as u64)],
            "",
        );
        // 1. Checkpoint-on-source: commit the movers' state (and everyone
        // else's — a consistent global generation) and wait until every
        // image is durable, so the restore has a complete copy to pull.
        let gs = match s.checkpoint_and_wait(w, sim, max_events) {
            Ok(gs) => gs,
            Err(crate::session::CkptError::Aborted { gen, .. }) => {
                return Err(RestartError::AbortedDuringMigration { gen })
            }
            Err(crate::session::CkptError::BudgetExhausted { .. }) => {
                return Err(RestartError::AbortedDuringMigration { gen: 0 })
            }
        };
        let g = gs.gen;
        if Session::wait_ckpt_written_on(w, sim, port, g, max_events).is_none() {
            return Err(RestartError::AbortedDuringMigration { gen: g });
        }

        // 2. Plan: metadata for generation g, subset closure, placement.
        // When the chunk store is installed its per-pid generation index is
        // the source of truth (replica-served partial reads by pid);
        // otherwise fall back to the restart script.
        let script = script_groups(w, port);
        if script.is_empty() {
            return Err(RestartError::NoScript);
        }
        let mut metas = Vec::new();
        let store_idx: BTreeMap<u32, String> = if ckptstore::enabled(w) {
            ckptstore::images_for_gen(w, g as u32)
        } else {
            BTreeMap::new()
        };
        for (host, imgs) in &script {
            for p in imgs {
                let scripted = rewrite_gen(p, g);
                let path = ckptstore::manifest::parse_vpid(&scripted)
                    .and_then(|v| store_idx.get(&v).cloned())
                    .unwrap_or(scripted);
                match read_meta(w, host, &path) {
                    Ok(m) => metas.push(m),
                    Err(reason) => return Err(RestartError::ReplicaUnreachable { path, reason }),
                }
            }
        }
        let movers = closed_subset(&metas, &only)?;

        // 3. Kill exactly the movers and wait for the coordinator to reap
        // their EOFs — idle EOFs only deregister (no abort), but a kill
        // racing the MigratePlan announcement would read as a participant
        // dying mid-restart. Under the hierarchical topology the movers sit
        // behind relays, so the root's direct-client count is untouched;
        // their relays report the membership drop instead.
        let real: Vec<Pid> = w
            .procs
            .iter()
            .filter(|(_, p)| p.alive())
            .filter(|(_, p)| {
                p.ext
                    .as_ref()
                    .and_then(|e| e.downcast_ref::<crate::hijack::Hijack>())
                    .is_some_and(|h| h.root_port == port && only.contains(&h.vpid))
            })
            .map(|(pid, _)| *pid)
            .collect();
        let before = coord_shared_for(w, port).coord_participants;
        for pid in &real {
            w.signal(sim, *pid, sig::SIGKILL);
        }
        let direct = match s.opts.topology {
            Topology::Flat => real.len() as u32,
            Topology::Hierarchical => 0,
        };
        let target = before.saturating_sub(direct);
        let ev0 = sim.events_fired();
        while coord_shared_for(w, port).coord_participants > target {
            if !sim.step(w) || sim.events_fired() - ev0 >= max_events {
                return Err(RestartError::AbortedDuringMigration { gen: g });
            }
        }
        crate::session::run_for(w, sim, Nanos::from_millis(2));

        // 4. Restore-on-target. Placement happens after the kill so the
        // movers' own freed listener ports no longer count as in use.
        let placement = place(
            w,
            &movers,
            Some(self.topology.as_deref().expect("checked above")),
            self.pack,
        )?;
        for (node, idxs) in &placement {
            for &i in idxs {
                if let Err(e) = mtcp::verify_image(w, *node, &movers[i].path) {
                    return Err(RestartError::ReplicaUnreachable {
                        path: movers[i].path.clone(),
                        reason: e.to_string(),
                    });
                }
            }
        }
        // Faults targeting "node loss during migration" fire here — after
        // the images are committed and validated, before the restore reads
        // them — so a dying source node exercises the replica channel and a
        // dying target kills the restore mid-flight.
        faultkit::migration_started(w, sim, g);
        let by_node: BTreeMap<NodeId, Vec<String>> = placement
            .iter()
            .map(|(n, idxs)| (*n, idxs.iter().map(|&i| movers[i].path.clone()).collect()))
            .collect();
        let pids = spawn_restart_procs(s, w, sim, by_node, g, true);

        // 5. Drive until the movers resume or the migration aborts. The
        // newest generation-g stat is the migration's own (pushed when the
        // coordinator received the MigratePlan); the checkpoint's stat for
        // g sits earlier in the list and never gains restart stages.
        let ev1 = sim.events_fired();
        loop {
            let st = coord_shared_for(w, port)
                .gen_stats
                .iter()
                .rev()
                .find(|x| x.gen == g)
                .cloned();
            if let Some(st) = st {
                if st.aborted {
                    return Err(RestartError::AbortedDuringMigration { gen: g });
                }
                if let Some(done) = st.releases.get(&stage::RESTART_REFILLED) {
                    return Ok(MigrationReport {
                        gen: g,
                        moved: movers.iter().map(|m| m.vpid).collect(),
                        placement: placement_vpids(&placement, &movers),
                        pids,
                        pause: *done - st.requested_at,
                    });
                }
            }
            if !sim.step(w) || sim.events_fired() - ev1 >= max_events {
                return Err(RestartError::AbortedDuringMigration { gen: g });
            }
        }
    }
}

/// Parse the restart script of the coordinator rooted at `port` into
/// `(hostname, image paths)` groups. Empty when no generation committed.
pub(crate) fn script_groups(w: &World, port: u16) -> Vec<(String, Vec<String>)> {
    let path = crate::coord::restart_script_path(port);
    let Ok(bytes) = w.shared_fs.read_all(&path) else {
        return Vec::new();
    };
    let script = String::from_utf8(bytes).expect("script is utf-8");
    let mut out = Vec::new();
    for line in script.lines() {
        let mut words = line.split_whitespace();
        if words.next() != Some("ssh") {
            continue;
        }
        let host = words.next().expect("host after ssh").to_string();
        assert_eq!(words.next(), Some("dmtcp_restart"));
        out.push((host, words.map(|s| s.to_string()).collect()));
    }
    out
}

/// Spawn one restart process per target node. Exactly one (the first)
/// carries the plan announcement; `migrate` selects
/// [`Msg::MigratePlan`](crate::proto::Msg::MigratePlan) semantics (movers
/// only) over a full [`Msg::RestartPlan`](crate::proto::Msg::RestartPlan).
pub(crate) fn spawn_restart_procs(
    s: &Session,
    w: &mut World,
    sim: &mut OsSim,
    by_node: BTreeMap<NodeId, Vec<String>>,
    gen: u64,
    migrate: bool,
) -> Vec<Pid> {
    if !migrate {
        w.obs.journal.record(
            sim.now(),
            obs::journal::CLASS_STAGE,
            "session.restart",
            None,
            &[("gen", gen)],
            "",
        );
    }
    crate::launch::install_hook(w);
    let coord_host = w.node(s.opts.coord_node).hostname.clone();
    let total: u32 = by_node.values().map(|v| v.len() as u32).sum();
    let mut restart_pids = Vec::new();
    let mut first = true;
    for (node, images) in by_node {
        let plan = if first { Some((total, gen)) } else { None };
        first = false;
        let prog: Box<RestartProc> = if migrate {
            Box::new(RestartProc::migrate(
                images,
                coord_host.clone(),
                s.opts.coord_port,
                plan,
            ))
        } else {
            Box::new(RestartProc::new(
                images,
                coord_host.clone(),
                s.opts.coord_port,
                plan,
            ))
        };
        let pid = w.spawn(sim, node, "dmtcp_restart", prog, Pid(1), BTreeMap::new());
        restart_pids.push(pid);
    }
    restart_pids
}

/// The newest generation named by a restart script.
fn newest_gen(script: &[(String, Vec<String>)]) -> u64 {
    script
        .iter()
        .flat_map(|(_, imgs)| imgs.iter())
        .filter_map(|p| crate::restart::parse_gen(p))
        .max()
        .unwrap_or(1)
}

/// Read one image's planning metadata from whichever node can resolve it:
/// the origin host first (cheapest), then every node in index order (the
/// replica path). `Err` carries the last resolution failure.
fn read_meta(w: &World, origin: &str, path: &str) -> Result<ImgMeta, String> {
    let mut order: Vec<NodeId> = Vec::new();
    if let Some(n) = w.resolve(origin) {
        order.push(n);
    }
    for i in 0..w.nodes.len() {
        let n = NodeId(i as u32);
        if !order.contains(&n) {
            order.push(n);
        }
    }
    let mut last = String::from("no node holds the image");
    for node in order {
        match mtcp::read_image(w, node, path) {
            Ok(img) => {
                let Ok(table) = crate::hijack::ConnTable::from_snap_bytes(&img.dmtcp_meta) else {
                    return Err("connection table does not parse".to_string());
                };
                let mut m = ImgMeta {
                    path: path.to_string(),
                    vpid: table.vpid,
                    origin: origin.to_string(),
                    ports: BTreeSet::new(),
                    sock_ends: BTreeSet::new(),
                    sock_gsids: BTreeSet::new(),
                    pty_gsids: BTreeSet::new(),
                    parent_vpid: table.parent_vpid,
                };
                for r in &table.records {
                    match &r.kind {
                        FdKindRec::Listener { port } => {
                            m.ports.insert(*port);
                        }
                        FdKindRec::Sock { gsid, end, .. } => {
                            m.sock_ends.insert((*gsid, *end));
                            m.sock_gsids.insert(*gsid);
                        }
                        FdKindRec::PtyMaster { gsid } | FdKindRec::PtySlave { gsid } => {
                            m.pty_gsids.insert(*gsid);
                        }
                        FdKindRec::File { .. } => {}
                    }
                }
                return Ok(m);
            }
            Err(e) => last = e.to_string(),
        }
    }
    Err(last)
}

/// Filter `metas` to the subset named by `only`, verifying closure: every
/// shared object, socket connection, pty, and parent/child link referenced
/// by a subset member must lie entirely inside the subset.
fn closed_subset(metas: &[ImgMeta], only: &BTreeSet<u32>) -> Result<Vec<ImgMeta>, RestartError> {
    let all_vpids: BTreeSet<u32> = metas.iter().map(|m| m.vpid).collect();
    for v in only {
        if !all_vpids.contains(v) {
            return Err(RestartError::SubsetNotClosed {
                detail: format!("vpid {v} is not part of the generation"),
            });
        }
    }
    let inside = |v: u32| only.contains(&v);
    // Any gsid (connection or pty) referenced by a subset member must be
    // referenced only by subset members.
    let mut refs: BTreeMap<Gsid, Vec<u32>> = BTreeMap::new();
    for m in metas {
        for g in m.sock_gsids.iter().chain(m.pty_gsids.iter()) {
            refs.entry(*g).or_default().push(m.vpid);
        }
    }
    for m in metas.iter().filter(|m| inside(m.vpid)) {
        for g in m.sock_gsids.iter().chain(m.pty_gsids.iter()) {
            if let Some(out) = refs[g].iter().find(|v| !inside(**v)) {
                return Err(RestartError::SubsetNotClosed {
                    detail: format!(
                        "gsid {:#x} is shared with vpid {out} outside the subset",
                        g.0
                    ),
                });
            }
        }
    }
    for m in metas {
        if m.parent_vpid != 0
            && all_vpids.contains(&m.parent_vpid)
            && inside(m.vpid) != inside(m.parent_vpid)
        {
            return Err(RestartError::SubsetNotClosed {
                detail: format!(
                    "parent/child link {} -> {} crosses the subset boundary",
                    m.parent_vpid, m.vpid
                ),
            });
        }
    }
    Ok(metas.iter().filter(|m| inside(m.vpid)).cloned().collect())
}

/// Group metas into colocation units (union-find over shared socket
/// endpoints, shared ptys, and parent/child links), deterministically
/// ordered by their smallest vpid.
fn colocation_units(metas: &[ImgMeta]) -> Vec<Vec<usize>> {
    let mut parent: Vec<usize> = (0..metas.len()).collect();
    fn find(p: &mut [usize], mut i: usize) -> usize {
        while p[i] != i {
            p[i] = p[p[i]];
            i = p[i];
        }
        i
    }
    fn union(p: &mut [usize], a: usize, b: usize) {
        let (ra, rb) = (find(p, a), find(p, b));
        if ra != rb {
            p[ra] = rb;
        }
    }
    let mut end_owner: BTreeMap<(Gsid, u8), usize> = BTreeMap::new();
    let mut pty_owner: BTreeMap<Gsid, usize> = BTreeMap::new();
    let mut by_vpid: BTreeMap<u32, usize> = BTreeMap::new();
    for (i, m) in metas.iter().enumerate() {
        by_vpid.insert(m.vpid, i);
        for e in &m.sock_ends {
            match end_owner.get(e) {
                Some(&j) => union(&mut parent, i, j),
                None => {
                    end_owner.insert(*e, i);
                }
            }
        }
        for g in &m.pty_gsids {
            match pty_owner.get(g) {
                Some(&j) => union(&mut parent, i, j),
                None => {
                    pty_owner.insert(*g, i);
                }
            }
        }
    }
    for (i, m) in metas.iter().enumerate() {
        if m.parent_vpid != 0 {
            if let Some(&j) = by_vpid.get(&m.parent_vpid) {
                union(&mut parent, i, j);
            }
        }
    }
    let mut units: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..metas.len() {
        let r = find(&mut parent, i);
        units.entry(r).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = units.into_values().collect();
    for u in &mut out {
        u.sort_by_key(|&i| metas[i].vpid);
    }
    out.sort_by_key(|u| metas[u[0]].vpid);
    out
}

/// Place metas onto nodes: identity (no target topology) or packed.
/// Returns node → meta indices.
fn place(
    w: &World,
    metas: &[ImgMeta],
    targets: Option<&[NodeId]>,
    pack: Packing,
) -> Result<BTreeMap<NodeId, Vec<usize>>, RestartError> {
    let Some(targets) = targets else {
        // Identity placement: every image back to the host that wrote it.
        let mut out: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
        let hosts: BTreeSet<&str> = metas.iter().map(|m| m.origin.as_str()).collect();
        for (i, m) in metas.iter().enumerate() {
            let Some(n) = w.resolve(&m.origin) else {
                return Err(RestartError::TopologyTooSmall {
                    needed: hosts.len() as u32,
                    got: w.nodes.len() as u32,
                });
            };
            out.entry(n).or_default().push(i);
        }
        return Ok(out);
    };
    let units = colocation_units(metas);
    if targets.is_empty() {
        return Err(RestartError::TopologyTooSmall {
            needed: units.len() as u32,
            got: 0,
        });
    }
    // A node is ineligible for a unit when any of the unit's listening
    // ports is already bound there — by a live bystander or a unit placed
    // earlier. (Within a unit a shared listener is one fd object, so equal
    // ports inside a unit are fine.)
    let mut used: BTreeMap<NodeId, BTreeSet<u16>> =
        targets.iter().map(|n| (*n, w.ports_in_use(*n))).collect();
    let mut out: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
    for (i, unit) in units.iter().enumerate() {
        let uports: BTreeSet<u16> = unit
            .iter()
            .flat_map(|&ix| metas[ix].ports.iter().copied())
            .collect();
        let start = match pack {
            Packing::RoundRobin => i % targets.len(),
            Packing::Fill => 0,
        };
        let mut chosen = None;
        for off in 0..targets.len() {
            let n = targets[(start + off) % targets.len()];
            if uports.is_disjoint(used.get(&n).expect("seeded above")) {
                chosen = Some(n);
                break;
            }
        }
        let Some(n) = chosen else {
            return Err(RestartError::TopologyTooSmall {
                needed: units.len() as u32,
                got: targets.len() as u32,
            });
        };
        used.get_mut(&n).expect("seeded above").extend(uports);
        out.entry(n).or_default().extend(unit.iter().copied());
    }
    Ok(out)
}

/// Project a placement (node → meta indices) onto vpids for reporting.
fn placement_vpids(
    placement: &BTreeMap<NodeId, Vec<usize>>,
    metas: &[ImgMeta],
) -> Vec<(NodeId, Vec<u32>)> {
    placement
        .iter()
        .map(|(n, idxs)| {
            let mut v: Vec<u32> = idxs.iter().map(|&i| metas[i].vpid).collect();
            v.sort_unstable();
            (*n, v)
        })
        .collect()
}
