//! `dmtcp_restart` (§4.4, Figure 2).
//!
//! One *unified restart process* runs per host. It must exist because UNIX
//! lets multiple processes share one socket: the restart process first
//! recreates every fd object once — files, ptys, listeners, and sockets
//! reconnected through the coordinator's discovery service — and only then
//! forks into the user processes, so shared descriptors are genuinely
//! shared again. Each child rearranges fds to their original numbers with
//! `dup2`, restores memory and threads through MTCP, and hands control to a
//! fresh checkpoint-manager thread that performs the refill stage and
//! resumes the user threads.
//!
//! Both endpoints of a socket may have migrated; the acceptor side
//! advertises `(gsid → host, port)` to the discovery service and the
//! connector side polls until the advertisement appears, reconnects, and
//! handshakes on the gsid — loopback connections (both ends in one restart
//! process) take the same path.
//!
//! The [`plan`] submodule builds on this program: it maps a committed
//! generation onto an *arbitrary* target topology (fewer or more hosts
//! than wrote the images) and drives live migration of process subsets.

pub mod plan;

use crate::gsid::{global, Gsid};
use crate::hijack::{ConnTable, FdKindRec, Hijack, PtyRecord};
use crate::launch::ENV_RESTART_CHILD;
use crate::manager::{Manager, Mode};
use crate::proto::{frame, FrameBuf, Msg};
use mtcp::CkptImage;
use oskit::fdtable::{FdEntry, FdObject};
use oskit::program::{Program, Step};
use oskit::world::Pid;
use oskit::{Errno, Fd, Kernel};
use simkit::{Nanos, Snap};
use std::collections::{BTreeMap, BTreeSet};

/// The world-side registry of restored vpid → new real pid, filled by
/// restart processes and consumed by each manager's pid-map fixup.
pub fn restored_real(w: &mut oskit::world::World) -> &mut BTreeMap<u32, u32> {
    let slot = w
        .ext_slots
        .entry("dmtcp-restored-real".to_string())
        .or_insert_with(|| Box::new(BTreeMap::<u32, u32>::new()));
    slot.downcast_mut().expect("slot holds pid map")
}

struct Loaded {
    path: String,
    img: CkptImage,
    table: ConnTable,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Load,
    Connect,
    Fork,
    Done,
}

/// A pending inbound handshake on an accepted socket.
struct Handshake {
    gsid: Gsid,
    fd: Fd,
    buf: Vec<u8>,
}

/// The per-host restart program.
pub struct RestartProc {
    /// Image paths to restore on this host.
    images: Vec<String>,
    coord_host: String,
    coord_port: u16,
    /// `Some(total, gen)` on exactly one restart process cluster-wide: it
    /// re-arms the coordinator's barrier accounting.
    plan: Option<(u32, u64)>,
    /// Live migration: announce the plan with [`Msg::MigratePlan`] so the
    /// coordinator re-arms only the restart-stage barriers for the movers
    /// instead of replacing the whole computation.
    migrate: bool,
    phase: Phase,
    loaded: Vec<Loaded>,
    coord_fd: Fd,
    fb: FrameBuf,
    /// gsid → restored socket endpoint (end encoded in FdObject).
    sock_map: BTreeMap<(Gsid, u8), FdObject>,
    pty_map: BTreeMap<Gsid, oskit::pty::PtyId>,
    file_map: BTreeMap<(String, u64), FdObject>,
    listener_map: BTreeMap<u16, FdObject>,
    /// Acceptor-side temporary listeners per gsid.
    temp_listeners: Vec<(Gsid, Fd)>,
    handshakes: Vec<Handshake>,
    /// Connector ends still waiting for discovery + connect.
    want_connect: BTreeSet<Gsid>,
    query_inflight: BTreeSet<Gsid>,
    t_start: Nanos,
    t_files: Nanos,
}

impl RestartProc {
    /// Build a restart process for `images`, pointing at the (new)
    /// coordinator. Pass `plan = Some((total_processes, generation))` on
    /// exactly one host.
    pub fn new(
        images: Vec<String>,
        coord_host: String,
        coord_port: u16,
        plan: Option<(u32, u64)>,
    ) -> Self {
        RestartProc {
            images,
            coord_host,
            coord_port,
            plan,
            migrate: false,
            phase: Phase::Load,
            loaded: Vec::new(),
            coord_fd: -1,
            fb: FrameBuf::new(),
            sock_map: BTreeMap::new(),
            pty_map: BTreeMap::new(),
            file_map: BTreeMap::new(),
            listener_map: BTreeMap::new(),
            temp_listeners: Vec::new(),
            handshakes: Vec::new(),
            want_connect: BTreeSet::new(),
            query_inflight: BTreeSet::new(),
            t_start: Nanos::ZERO,
            t_files: Nanos::ZERO,
        }
    }

    /// Build a restart process restoring a *migrating* subset of a live
    /// computation. Pass `plan = Some((movers, generation))` on exactly one
    /// target host; it announces the subset with [`Msg::MigratePlan`], so
    /// the coordinator keeps the bystanders registered instead of marking
    /// the whole computation stale.
    pub fn migrate(
        images: Vec<String>,
        coord_host: String,
        coord_port: u16,
        plan: Option<(u32, u64)>,
    ) -> Self {
        let mut p = RestartProc::new(images, coord_host, coord_port, plan);
        p.migrate = true;
        p
    }

    // ------------------------------------------------------------------
    // Phase 1: load images, recreate files / ptys / listen sockets
    // ------------------------------------------------------------------

    fn do_load(&mut self, k: &mut Kernel<'_>) -> Result<(), Step> {
        self.t_start = k.now();
        match k.connect(&self.coord_host, self.coord_port) {
            Ok(fd) => self.coord_fd = fd,
            Err(Errno::ConnRefused) => return Err(Step::Sleep(Nanos::from_millis(5))),
            Err(e) => panic!("restart connect coordinator: {e:?}"),
        }
        if let Some((n, gen)) = self.plan {
            let msg = if self.migrate {
                frame(&Msg::MigratePlan(n, gen))
            } else {
                frame(&Msg::RestartPlan(n, gen))
            };
            let sent = k.write(self.coord_fd, &msg).expect("plan");
            assert_eq!(sent, msg.len());
        }
        let node = k.node();
        for path in self.images.clone() {
            let img = mtcp::read_image(k.w, node, &path)
                .unwrap_or_else(|e| panic!("restart: cannot read {path}: {e}"));
            let table =
                ConnTable::from_snap_bytes(&img.dmtcp_meta).expect("connection table parses");
            global(k.w).session_vpids.insert(table.vpid);
            self.loaded.push(Loaded { path, img, table });
        }

        // Recreate ptys first (Figure 2 step 1) from the master-side saved
        // records, then files and application listen sockets.
        let pty_records: Vec<PtyRecord> = self
            .loaded
            .iter()
            .flat_map(|l| l.table.ptys.iter().cloned())
            .collect();
        for pr in &pty_records {
            let (mfd, sfd) = k.openpty();
            let FdObject::PtyMaster(ptid) = k.fd_object(mfd).expect("just opened") else {
                unreachable!()
            };
            {
                let p = k.w.ptys.get_mut(&ptid).expect("pty exists");
                p.termios = pr.termios;
                p.to_slave.extend(pr.to_slave.iter());
                p.to_master.extend(pr.to_master.iter());
            }
            global(k.w).bind_pty(ptid, pr.gsid);
            self.pty_map.insert(pr.gsid, ptid);
            // Keep the restart process's fds open until children exist.
            let _ = (mfd, sfd);
        }
        // Sanity: every pty fd record must have a recreated pty.
        for l in &self.loaded {
            for r in &l.table.records {
                if let FdKindRec::PtyMaster { gsid } | FdKindRec::PtySlave { gsid } = &r.kind {
                    assert!(
                        self.pty_map.contains_key(gsid),
                        "pty {gsid:?} shared across restart hosts is unsupported"
                    );
                }
            }
        }

        for l in &self.loaded {
            for r in &l.table.records {
                match &r.kind {
                    FdKindRec::File {
                        path,
                        offset,
                        writable,
                    } => {
                        let key = (path.clone(), *offset);
                        if self.file_map.contains_key(&key) {
                            continue;
                        }
                        let fd = k
                            .open(path, *writable)
                            .unwrap_or_else(|e| panic!("restart: reopen {path}: {e:?}"));
                        k.lseek(fd, *offset).expect("file fd");
                        let obj = k.fd_object(fd).expect("just opened");
                        self.file_map.insert(key, obj);
                    }
                    FdKindRec::Listener { port } => {
                        if self.listener_map.contains_key(port) {
                            continue;
                        }
                        let (fd, p) = k
                            .listen_on(*port)
                            .unwrap_or_else(|e| panic!("restart: listen {port}: {e:?}"));
                        assert_eq!(p, *port);
                        let obj = k.fd_object(fd).expect("just bound");
                        self.listener_map.insert(*port, obj);
                    }
                    _ => {}
                }
            }
        }
        self.t_files = k.now();

        // Advertise acceptor ends; queue connector ends. Creation is the
        // responsibility of each end's recorded leader (non-leader sharers
        // resolve through sock_map at fd-rearrangement time).
        let host = k.hostname();
        let mut advertised = BTreeSet::new();
        let mut wanted = BTreeSet::new();
        for l in &self.loaded {
            for r in &l.table.records {
                if let FdKindRec::Sock {
                    gsid, end, leader, ..
                } = &r.kind
                {
                    if !leader {
                        continue;
                    }
                    if *end == 1 && advertised.insert(*gsid) {
                        let (lfd, port) = k.listen_on(0).expect("ephemeral listener");
                        self.temp_listeners.push((*gsid, lfd));
                        let msg = frame(&Msg::Advertise(*gsid, host.clone(), port));
                        let n = k.write(self.coord_fd, &msg).expect("advertise");
                        assert_eq!(n, msg.len());
                    } else if *end == 0 && wanted.insert(*gsid) {
                        self.want_connect.insert(*gsid);
                    }
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Phase 2: reconnect sockets through discovery
    // ------------------------------------------------------------------

    fn connect_done(&self) -> bool {
        self.want_connect.is_empty() && self.temp_listeners.is_empty() && self.handshakes.is_empty()
    }

    fn do_connect(&mut self, k: &mut Kernel<'_>) -> Result<bool, ()> {
        let mut progressed = false;
        // Accept inbound reconnections.
        let mut still_listening = Vec::new();
        for (gsid, lfd) in std::mem::take(&mut self.temp_listeners) {
            match k.accept(lfd) {
                Ok(fd) => {
                    k.close(lfd).expect("temp listener");
                    self.handshakes.push(Handshake {
                        gsid,
                        fd,
                        buf: Vec::new(),
                    });
                    progressed = true;
                }
                Err(Errno::WouldBlock) => still_listening.push((gsid, lfd)),
                Err(e) => panic!("restart accept: {e:?}"),
            }
        }
        self.temp_listeners = still_listening;

        // Finish inbound handshakes (8-byte gsid).
        let mut pending = Vec::new();
        for mut h in std::mem::take(&mut self.handshakes) {
            loop {
                if h.buf.len() == 8 {
                    let got = Gsid(u64::from_le_bytes(h.buf[..8].try_into().expect("8")));
                    assert_eq!(got, h.gsid, "gsid handshake mismatch");
                    let obj = k.fd_object(h.fd).expect("accepted fd");
                    if let FdObject::Sock(cid, _) = obj {
                        global(k.w).bind_conn(cid, h.gsid);
                    }
                    self.sock_map.insert((h.gsid, 1), obj);
                    progressed = true;
                    break;
                }
                match k.read(h.fd, 8 - h.buf.len()) {
                    Ok(b) if b.is_empty() => panic!("peer hung up during handshake"),
                    Ok(b) => {
                        h.buf.extend_from_slice(&b);
                        progressed = true;
                    }
                    Err(Errno::WouldBlock) => {
                        pending.push(h);
                        break;
                    }
                    Err(e) => panic!("handshake read: {e:?}"),
                }
            }
        }
        self.handshakes = pending;

        // Issue discovery queries for connector ends.
        let to_query: Vec<Gsid> = self
            .want_connect
            .iter()
            .filter(|g| !self.query_inflight.contains(g))
            .copied()
            .collect();
        for g in to_query {
            let msg = frame(&Msg::Query(g));
            let n = k.write(self.coord_fd, &msg).expect("query");
            assert_eq!(n, msg.len());
            self.query_inflight.insert(g);
            progressed = true;
        }

        // Consume coordinator replies (ignoring broadcasts not for us).
        loop {
            match k.read(self.coord_fd, 64 * 1024) {
                Ok(b) if b.is_empty() => panic!("coordinator hung up"),
                Ok(b) => {
                    self.fb.feed(&b);
                    progressed = true;
                }
                Err(Errno::WouldBlock) => break,
                Err(e) => panic!("restart coord read: {e:?}"),
            }
        }
        while let Some(msg) = self.fb.pop().expect("frames") {
            // Barrier traffic for the restored computation may arrive on
            // this shared coordinator connection; only QueryReply is ours.
            if let Msg::QueryReply(gsid, host, port) = msg {
                self.query_inflight.remove(&gsid);
                if host.is_empty() {
                    // Not advertised yet; retry on the next pass.
                    continue;
                }
                let fd = match k.connect(&host, port) {
                    Ok(fd) => fd,
                    Err(Errno::ConnRefused) => {
                        // Stale advertisement racing a coordinator
                        // discovery reset; re-query.
                        continue;
                    }
                    Err(e) => panic!("restart reconnect {gsid:?}: {e:?}"),
                };
                let hello = gsid.0.to_le_bytes();
                let n = k.write(fd, &hello).expect("handshake send");
                assert_eq!(n, 8);
                let obj = k.fd_object(fd).expect("connected fd");
                if let FdObject::Sock(cid, _) = obj {
                    global(k.w).bind_conn(cid, gsid);
                }
                self.sock_map.insert((gsid, 0), obj);
                self.want_connect.remove(&gsid);
                progressed = true;
            }
        }

        if self.connect_done() {
            return Ok(true);
        }
        if progressed {
            Ok(false)
        } else {
            Err(())
        }
    }

    // ------------------------------------------------------------------
    // Phase 3: fork into user processes
    // ------------------------------------------------------------------

    fn do_fork(&mut self, k: &mut Kernel<'_>) {
        let t_sockets = k.now();
        let node = k.node();
        let my_pid = k.pid;
        for l in &self.loaded {
            // Create the child shell (Figure 2 step 3): a fork of the
            // restart process. The shell program is immediately replaced by
            // the restored threads, so it never runs.
            struct Husk;
            impl Program for Husk {
                fn step(&mut self, _k: &mut Kernel<'_>) -> Step {
                    unreachable!("husk replaced by restored threads before dispatch")
                }
                fn tag(&self) -> &'static str {
                    "restart-husk"
                }
                fn save(&self) -> Vec<u8> {
                    Vec::new()
                }
            }
            let child = k.w.fork_process(k.sim, my_pid, Box::new(Husk));
            // The husk must not be dispatched; fork scheduled one.
            // Restore replaces threads, so clear the husk thread now, and
            // close every fork-inherited fd (the real restart child closes
            // "unneeded file descriptors belonging to other processes" —
            // Figure 2 step 4 — before installing the recorded ones).
            let inherited = {
                let p = k.w.procs.get_mut(&child).expect("child exists");
                p.threads.clear();
                let inherited = p.fds.clone_entries();
                p.fds = oskit::fdtable::FdTable::new();
                p.env = l.img.env.iter().cloned().collect();
                p.env.insert(ENV_RESTART_CHILD.to_string(), "1".to_string());
                inherited
            };
            for (_, entry) in inherited {
                k.w.release_obj(k.sim, entry.obj);
            }

            // Step 4: rearrange fds to the recorded numbers.
            for r in &l.table.records {
                let obj = match &r.kind {
                    FdKindRec::File { path, offset, .. } => self.file_map[&(path.clone(), *offset)],
                    FdKindRec::Listener { port } => self.listener_map[port],
                    FdKindRec::Sock {
                        gsid, end, shut_wr, ..
                    } => {
                        let obj = *self
                            .sock_map
                            .get(&(*gsid, *end))
                            .unwrap_or_else(|| panic!("socket {gsid:?} end {end} not restored"));
                        // Re-apply a pre-checkpoint `shutdown(SHUT_WR)` so
                        // the peer still reads EOF after the restart.
                        if *shut_wr {
                            if let FdObject::Sock(cid, se) = obj {
                                if let Some(conn) = k.w.conns.get_mut(&cid) {
                                    conn.wr_closed[se as usize] = true;
                                }
                            }
                        }
                        obj
                    }
                    FdKindRec::PtyMaster { gsid } => FdObject::PtyMaster(self.pty_map[gsid]),
                    FdKindRec::PtySlave { gsid } => FdObject::PtySlave(self.pty_map[gsid]),
                };
                k.w.retain_obj(obj);
                let p = k.w.procs.get_mut(&child).expect("child exists");
                p.fds.install_at(
                    r.fd,
                    FdEntry {
                        obj,
                        cloexec: r.cloexec,
                    },
                );
            }

            // Step 5: restore memory and threads via MTCP.
            let rep = mtcp::restore_into(k.w, k.now(), child, node, &l.path, &l.img)
                .unwrap_or_else(|e| panic!("restore {}: {e}", l.path));

            // Pid virtualization: the restored process keeps its vpid.
            restored_real(k.w).insert(l.table.vpid, child.0);
            {
                let p = k.w.procs.get_mut(&child).expect("child exists");
                p.virt_pid = Some(l.table.vpid);
                p.pid_map.clear();
                p.pid_map.insert(l.table.vpid, child.0);
                // Seed identity entries for every vpid this process knew;
                // the post-restore fixup rewires them to the new real pids.
                for v in &l.table.known_vpids {
                    p.pid_map.entry(*v).or_insert(*v);
                }
                p.env.remove(ENV_RESTART_CHILD);
                // Controlling terminal ownership.
                if let Some(ctty_gsid) = &l.table.ctty {
                    let ptid = self.pty_map[ctty_gsid];
                    p.ctty = Some(ptid);
                }
            }
            if let Some(ctty_gsid) = &l.table.ctty {
                let ptid = self.pty_map[ctty_gsid];
                let is_controller = l
                    .table
                    .ptys
                    .iter()
                    .any(|pr| pr.controlling_vpid == Some(l.table.vpid));
                if is_controller {
                    k.w.ptys.get_mut(&ptid).expect("pty").controlling_pid = Some(child);
                }
            }

            // Hijack state carried over from the image.
            let mut h = Hijack::new(
                l.table.vpid,
                self.coord_host.clone(),
                self.coord_port,
                l.img
                    .env
                    .iter()
                    .find(|(k2, _)| k2 == crate::launch::ENV_CKPT_DIR)
                    .map(|(_, v)| v.clone())
                    .unwrap_or_else(|| "/ckpt".to_string()),
                if l.img.compressed {
                    mtcp::WriteMode::Compressed
                } else {
                    mtcp::WriteMode::Uncompressed
                },
            );
            h.gen = {
                // Generation encoded in the image path (…_gen<N>.dmtcp).
                parse_gen(&l.path).unwrap_or(1)
            };
            h.drained = l.table.drained.clone();
            h.table = l.table.clone();
            h.restart_partial = Some((
                self.t_files - self.t_start,
                t_sockets - self.t_files,
                rep.done_at - t_sockets,
            ));
            // Figure-2 step spans on the restored process's track (the
            // refill span is added by its manager at restart-resume).
            {
                let track = obs::TrackId::new(node.0, l.table.vpid, 0);
                let args = |g: u64| vec![("gen", g)];
                let sp = &mut k.w.obs.spans;
                sp.complete(
                    track,
                    "restart.files",
                    "restart",
                    self.t_start,
                    self.t_files,
                    args(h.gen),
                );
                sp.complete(
                    track,
                    "restart.sockets",
                    "restart",
                    self.t_files,
                    t_sockets,
                    args(h.gen),
                );
                sp.complete(
                    track,
                    "restart.memory",
                    "restart",
                    t_sockets,
                    rep.done_at,
                    args(h.gen),
                );
            }
            {
                let p = k.w.procs.get_mut(&child).expect("child exists");
                p.ext = Some(Box::new(h));
            }

            // The manager thread starts once memory restoration completes.
            let mgr_tid = {
                let p = k.w.procs.get_mut(&child).expect("child exists");
                p.add_thread(Box::new(Manager::new(Mode::RestartRefill)), false)
            };
            k.w.schedule_dispatch_at(k.sim, child, mgr_tid, rep.done_at);
        }
        // Release the restart process's own copies of every fd (children
        // hold their own references now).
        for (fd, _) in k.list_fds() {
            if fd != self.coord_fd {
                let _ = k.close(fd);
            }
        }
    }
}

/// Parse `…_gen<N>.dmtcp` out of an image path.
pub fn parse_gen(path: &str) -> Option<u64> {
    let idx = path.rfind("_gen")?;
    let rest = &path[idx + 4..];
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

impl Program for RestartProc {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.phase {
                Phase::Load => match self.do_load(k) {
                    Ok(()) => {
                        self.phase = Phase::Connect;
                        // Charge the syscall cost of reopening files and
                        // recreating ptys (Figure 2 step 1; Table 1b's
                        // "restore files and ptys" row).
                        let nfds: usize = self.loaded.iter().map(|l| l.table.records.len()).sum();
                        let pause = Nanos::from_micros(500 + 30 * nfds as u64);
                        self.t_files = k.now() + pause;
                        return Step::Sleep(pause);
                    }
                    Err(step) => return step,
                },
                Phase::Connect => match self.do_connect(k) {
                    Ok(true) => {
                        self.phase = Phase::Fork;
                        // Per-socket reconnect cost (discovery round trips,
                        // handshakes) — Table 1b's "reconnect sockets" row.
                        let pause = Nanos::from_micros(100 * self.sock_map.len() as u64);
                        return Step::Sleep(pause);
                    }
                    Ok(false) => return Step::Sleep(Nanos::from_millis(1)),
                    Err(()) => {
                        // Blocked: retry discovery on a short timer (the
                        // paper's restart polls the discovery service).
                        return Step::Sleep(Nanos::from_millis(2));
                    }
                },
                Phase::Fork => {
                    self.do_fork(k);
                    // Detach from the coordinator: the restored managers own
                    // their own connections, and an unread broadcast stream
                    // would eventually fill this socket's window.
                    let _ = k.close(self.coord_fd);
                    self.coord_fd = -1;
                    self.phase = Phase::Done;
                }
                Phase::Done => {
                    // Stay alive as the parent of the restored processes.
                    k.block_forever();
                    return Step::Block;
                }
            }
        }
    }

    fn tag(&self) -> &'static str {
        "dmtcp-restart"
    }

    fn save(&self) -> Vec<u8> {
        unreachable!("restart processes are not themselves checkpointed")
    }
}

/// Record the restart stage breakdown once the manager finishes the refill
/// (called by the manager at restart-resume time). Each Figure-2 step goes
/// into a `core.restart.*` histogram labeled by generation; Table 1b
/// derives its means from these.
pub fn record_restart_sample(
    w: &mut oskit::world::World,
    vpid: u32,
    gen: u64,
    partial: (Nanos, Nanos, Nanos),
    refill: Nanos,
) {
    let _ = vpid;
    let m = &mut w.obs.metrics;
    m.observe("core.restart.files", gen, partial.0 .0);
    m.observe("core.restart.sockets", gen, partial.1 .0);
    m.observe("core.restart.memory", gen, partial.2 .0);
    m.observe("core.restart.refill", gen, refill.0);
    m.inc("core.restart.completions", gen);
}

/// Fix up a restored process's pid-translation map once every process of
/// the computation exists again (manager calls this after the *restored*
/// barrier).
pub fn fixup_pid_map(w: &mut oskit::world::World, pid: Pid) {
    let map = restored_real(w).clone();
    let parent_vpid = crate::hijack::hijack_of(w, pid).map(|h| h.table.parent_vpid);
    if let Some(p) = w.procs.get_mut(&pid) {
        for (vpid, real) in &map {
            if p.pid_map.contains_key(vpid) || p.virt_pid == Some(*vpid) {
                p.pid_map.insert(*vpid, *real);
            }
        }
        // Restore the parent-child relationship when the parent was also
        // restored (so `waitpid` keeps working across the restart).
        if let Some(pv) = parent_vpid {
            if pv != 0 {
                if let Some(real_parent) = map.get(&pv) {
                    p.ppid = Pid(*real_parent);
                }
            }
        }
    }
}

/// Re-exported for tests.
pub use crate::launch::ENV_RESTART_CHILD as RESTART_CHILD_ENV;
