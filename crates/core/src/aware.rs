//! The `dmtcpaware` programming interface (§3.1).
//!
//! Applications are normally unaware of DMTCP; those that want control can
//! use these calls, which mirror `dmtcpaware.a`:
//!
//! * [`is_running_under_dmtcp`] — test for the injected layer;
//! * [`request_checkpoint`] — ask the coordinator for a checkpoint;
//! * [`delay_checkpoints`] / [`allow_checkpoints`] — bracket a critical
//!   section during which checkpoints must not start;
//! * [`status`] — query generation/restart counters, the analogue of
//!   `dmtcpGetStatus` and the pre/post hook mechanism: a program that
//!   remembers the last generation it saw can run its own post-checkpoint
//!   or post-restart logic when the counter moves.

use crate::hijack::hijack_of;
use oskit::Kernel;

/// Status snapshot visible to an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DmtcpStatus {
    /// Completed checkpoint generation.
    pub generation: u64,
    /// Number of restarts this process has lived through.
    pub restarts: u64,
    /// Checkpoints currently delayed by a critical section?
    pub delayed: bool,
}

/// Is the calling process running under DMTCP?
pub fn is_running_under_dmtcp(k: &mut Kernel<'_>) -> bool {
    let pid = k.pid;
    hijack_of(k.w, pid).is_some()
}

/// Ask the coordinator to checkpoint the whole computation.
pub fn request_checkpoint(k: &mut Kernel<'_>) -> bool {
    let pid = k.pid;
    if hijack_of(k.w, pid).is_none() {
        return false;
    }
    crate::coord::request_checkpoint(k.w, k.sim);
    true
}

/// Enter a critical section: checkpoints are held off until the matching
/// [`allow_checkpoints`]. Nests.
pub fn delay_checkpoints(k: &mut Kernel<'_>) {
    let pid = k.pid;
    if let Some(h) = hijack_of(k.w, pid) {
        h.aware.delay_depth += 1;
    }
}

/// Leave a critical section.
pub fn allow_checkpoints(k: &mut Kernel<'_>) {
    let pid = k.pid;
    if let Some(h) = hijack_of(k.w, pid) {
        assert!(h.aware.delay_depth > 0, "unbalanced allow_checkpoints");
        h.aware.delay_depth -= 1;
    }
}

/// Query DMTCP status; `None` when not running under DMTCP.
pub fn status(k: &mut Kernel<'_>) -> Option<DmtcpStatus> {
    let pid = k.pid;
    hijack_of(k.w, pid).map(|h| DmtcpStatus {
        generation: h.gen,
        restarts: h.restarts,
        delayed: h.aware.delay_depth > 0,
    })
}
