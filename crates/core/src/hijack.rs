//! The injected per-process state — our `dmtcphijack.so`.
//!
//! The launcher's spawn hook installs a [`Hijack`] into every traced
//! process's kernel extension slot and adds the checkpoint-manager thread.
//! The hijack state holds what the real library keeps in the application's
//! address space: the coordinator address, the virtual pid, the
//! connection-information table built at checkpoint time, drained socket
//! data, and the `dmtcpaware` flags.

use crate::gsid::Gsid;
use mtcp::WriteMode;
use oskit::pty::Termios;
use oskit::world::{Pid, World};
use simkit::impl_snap;

/// What kind of object an fd referred to at checkpoint time, with enough
/// recorded information to recreate it at restart (§4.4 steps 1–2, 4).
#[derive(Debug, Clone, PartialEq)]
pub enum FdKindRec {
    /// Regular file: reopen `path`, `lseek` to `offset`.
    File {
        /// Absolute path.
        path: String,
        /// Shared offset at checkpoint time.
        offset: u64,
        /// Opened writable?
        writable: bool,
    },
    /// Connected socket end (TCP, UNIX, socketpair, or promoted pipe).
    Sock {
        /// Globally unique id of the connection.
        gsid: Gsid,
        /// Which end this process held (0 = original connector).
        end: u8,
        /// Peer gsid learned during the drain handshake (same gsid — ids
        /// name connections; the pair (gsid, end) names an endpoint).
        peer_seen: bool,
        /// Was this process the elected leader for the end?
        leader: bool,
        /// Original kind (0 tcp, 1 unix, 2 socketpair, 3 pipe).
        kind_byte: u8,
        /// Write side was shut down (`shutdown(SHUT_WR)`) at checkpoint
        /// time; restart re-applies the half-close.
        shut_wr: bool,
    },
    /// Listening socket: re-`listen` on `port`.
    Listener {
        /// Bound port.
        port: u16,
    },
    /// Pty master side.
    PtyMaster {
        /// Pty gsid.
        gsid: Gsid,
    },
    /// Pty slave side.
    PtySlave {
        /// Pty gsid.
        gsid: Gsid,
    },
}

impl_snap!(enum FdKindRec {
    File { path, offset, writable },
    Sock { gsid, end, peer_seen, leader, kind_byte, shut_wr },
    Listener { port },
    PtyMaster { gsid },
    PtySlave { gsid },
});

/// One fd table entry in the connection-information table.
#[derive(Debug, Clone, PartialEq)]
pub struct FdRecord {
    /// The fd number to restore at (via `dup2`).
    pub fd: i32,
    /// Close-on-exec flag.
    pub cloexec: bool,
    /// Recorded object description.
    pub kind: FdKindRec,
}

impl_snap!(struct FdRecord { fd, cloexec, kind });

/// Saved pty state (buffers + terminal modes), stored by the process that
/// held the master side.
#[derive(Debug, Clone, PartialEq)]
pub struct PtyRecord {
    /// Pty gsid.
    pub gsid: Gsid,
    /// Bytes queued master→slave at checkpoint time.
    pub to_slave: Vec<u8>,
    /// Bytes queued slave→master at checkpoint time.
    pub to_master: Vec<u8>,
    /// Terminal modes.
    pub termios: Termios,
    /// Virtual pid of the controlling process, if any.
    pub controlling_vpid: Option<u32>,
}

impl_snap!(struct PtyRecord { gsid, to_slave, to_master, termios, controlling_vpid });

/// The per-process connection-information table written to disk alongside
/// the memory image (§4.3 stage 4: "the connection information table is
/// then written to disk").
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConnTable {
    /// This process's virtual pid.
    pub vpid: u32,
    /// Hostname at checkpoint time (restart may move it).
    pub host: String,
    /// Fd records in fd order.
    pub records: Vec<FdRecord>,
    /// Per-connection inbound bytes this process's leader drained.
    pub drained: Vec<(Gsid, Vec<u8>)>,
    /// Pty state saved by master holders.
    pub ptys: Vec<PtyRecord>,
    /// Controlling terminal.
    pub ctty: Option<Gsid>,
    /// Virtual pids this process holds in its pid map (children etc.),
    /// so restart can rewire the translations.
    pub known_vpids: Vec<u32>,
    /// Virtual pid of the parent when the parent is also traced (0
    /// otherwise) — restores parent-child relationships across restart.
    pub parent_vpid: u32,
}

impl_snap!(struct ConnTable {
    vpid, host, records, drained, ptys, ctty, known_vpids, parent_vpid
});

/// `dmtcpaware` per-process flags.
#[derive(Debug, Clone, Default)]
pub struct AwareState {
    /// Nesting depth of `delay_checkpoints` critical sections.
    pub delay_depth: u32,
    /// The application asked for a checkpoint.
    pub ckpt_requested: bool,
}

/// The injected state (one per traced process).
#[derive(Debug)]
pub struct Hijack {
    /// Virtual pid (the pid at first trace; stable across restarts).
    pub vpid: u32,
    /// Coordinator address.
    pub coord_host: String,
    /// Coordinator port. Under the hierarchical topology this is the
    /// per-node relay, not the root.
    pub coord_port: u16,
    /// Port of the *root* coordinator this process ultimately answers to —
    /// the key of the [`crate::coord::CoordShared`] slot its written images
    /// are recorded into. Equals `coord_port` in the flat topology; behind
    /// a relay it names the root the relay fronts.
    pub root_port: u16,
    /// Directory for checkpoint images.
    pub ckpt_dir: String,
    /// Image write mode.
    pub mode: WriteMode,
    /// Completed checkpoint generation.
    pub gen: u64,
    /// Completed restart count.
    pub restarts: u64,
    /// `dmtcpaware` flags.
    pub aware: AwareState,
    /// Drained inbound data per connection this process leads, carried
    /// between the drain and refill stages (and through the image).
    pub drained: Vec<(Gsid, Vec<u8>)>,
    /// The table captured at the last checkpoint.
    pub table: ConnTable,
    /// Restart-stage durations (files, sockets, memory) recorded by the
    /// restart process; the manager adds the refill time and reports the
    /// completed sample (Table 1b).
    pub restart_partial: Option<(simkit::Nanos, simkit::Nanos, simkit::Nanos)>,
    /// Image durability policy.
    pub sync: crate::launch::SyncMode,
}

impl Hijack {
    /// Fresh hijack state for a newly traced process.
    pub fn new(
        vpid: u32,
        coord_host: String,
        coord_port: u16,
        ckpt_dir: String,
        mode: WriteMode,
    ) -> Self {
        Hijack {
            vpid,
            coord_host,
            root_port: coord_port,
            coord_port,
            ckpt_dir,
            mode,
            gen: 0,
            restarts: 0,
            aware: AwareState::default(),
            drained: Vec::new(),
            table: ConnTable::default(),
            restart_partial: None,
            sync: crate::launch::SyncMode::default(),
        }
    }

    /// Image path for this process at generation `gen`.
    pub fn image_path(&self, gen: u64) -> String {
        format!("{}/ckpt_{}_gen{}.dmtcp", self.ckpt_dir, self.vpid, gen)
    }
}

/// Borrow the hijack state of `pid`, if that process is traced.
pub fn hijack_of(w: &mut World, pid: Pid) -> Option<&mut Hijack> {
    w.procs
        .get_mut(&pid)?
        .ext
        .as_mut()?
        .downcast_mut::<Hijack>()
}

/// Is `pid` running under DMTCP?
pub fn is_traced(w: &World, pid: Pid) -> bool {
    w.procs.get(&pid).map(is_traced_proc).unwrap_or(false)
}

/// Is this process running under DMTCP?
pub fn is_traced_proc(p: &oskit::proc::Process) -> bool {
    p.ext.as_ref().map(|e| e.is::<Hijack>()).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Snap;

    #[test]
    fn conn_table_snap_roundtrip() {
        let t = ConnTable {
            vpid: 9,
            host: "node02".into(),
            records: vec![
                FdRecord {
                    fd: 3,
                    cloexec: false,
                    kind: FdKindRec::Sock {
                        gsid: Gsid(4),
                        end: 1,
                        peer_seen: true,
                        leader: true,
                        kind_byte: 0,
                        shut_wr: true,
                    },
                },
                FdRecord {
                    fd: 5,
                    cloexec: true,
                    kind: FdKindRec::File {
                        path: "/shared/data".into(),
                        offset: 123,
                        writable: false,
                    },
                },
                FdRecord {
                    fd: 7,
                    cloexec: false,
                    kind: FdKindRec::Listener { port: 8080 },
                },
            ],
            drained: vec![(Gsid(4), vec![1, 2, 3])],
            ptys: vec![PtyRecord {
                gsid: Gsid(11),
                to_slave: b"ls\n".to_vec(),
                to_master: Vec::new(),
                termios: Termios::default(),
                controlling_vpid: Some(9),
            }],
            ctty: Some(Gsid(11)),
            known_vpids: vec![9, 12],
            parent_vpid: 7,
        };
        let back = ConnTable::from_snap_bytes(&t.to_snap_bytes()).expect("roundtrip");
        assert_eq!(back, t);
    }

    #[test]
    fn image_path_is_per_vpid_and_generation() {
        let h = Hijack::new(
            42,
            "node00".into(),
            7779,
            "/shared/ckpt".into(),
            WriteMode::Compressed,
        );
        assert_eq!(h.image_path(3), "/shared/ckpt/ckpt_42_gen3.dmtcp");
        assert_ne!(h.image_path(3), h.image_path(4));
    }
}
