//! `dmtcp` — Distributed MultiThreaded CheckPointing.
//!
//! This crate is the reproduction of the paper's primary contribution: the
//! distributed layer that turns MTCP's single-process images into
//! transparent whole-cluster checkpoints. It implements, over the simulated
//! kernel in `oskit`:
//!
//! * the **checkpoint coordinator** — barriers, interval checkpoints, the
//!   restart-time discovery service, and restart-script generation
//!   ([`coord`]), optionally scaled out through per-node aggregation
//!   relays ([`relay`]);
//! * the **injected hijack layer** — per-process state installed by the
//!   launcher's spawn hook into every traced process, propagated across
//!   `fork`/`exec`/`ssh` ([`hijack`], [`launch`]);
//! * the **checkpoint-manager thread** running the seven-stage, six-barrier
//!   protocol of §4.3: suspend, F_SETOWN leader election, token drain with
//!   peer handshakes, MTCP image write, kernel-buffer refill, resume
//!   ([`manager`]);
//! * **restart** per §4.4: one unified restart process per host recreates
//!   files/ptys/listeners, reconnects sockets through the discovery
//!   service, forks into user processes, rearranges fds with `dup2`,
//!   restores memory/threads via MTCP, and refills kernel buffers
//!   ([`restart`]);
//! * **pid virtualization** with the conflict-detecting fork wrapper
//!   ([`launch`]);
//! * the **`dmtcpaware` programming interface** ([`aware`]);
//! * a high-level [`session::Session`] driver used by examples, tests and
//!   the benchmark harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aware;
pub mod coord;
pub mod gsid;
pub mod hijack;
pub mod launch;
pub mod manager;
pub mod proto;
pub mod relay;
pub mod replay;
pub mod restart;
pub mod session;

pub use launch::{launch_under_dmtcp, Options, OptionsBuilder, Topology};
pub use replay::{ReplayReport, ReplaySchedule};
pub use restart::plan::{MigrationReport, Packing, RestartPlan, RestartPlanBuilder};
pub use session::{CkptError, ExpectCkpt, RestartError, RestartOutcome, Session};
