//! `dmtcp_checkpoint` — launching programs under DMTCP.
//!
//! The real launcher injects `dmtcphijack.so` via `LD_PRELOAD` and spawns
//! the coordinator on first use; wrappers around `fork`/`exec`/`ssh`
//! propagate the injection to every descendant. Here the injection is a
//! kernel spawn hook: any process created with `DMTCP_COORD_*` in its
//! environment (inherited exactly like `LD_PRELOAD` would be) gets a
//! [`Hijack`] state and a checkpoint-manager thread, plus pid
//! virtualization with the conflict-detecting fork of §4.5.

use crate::coord::{Coordinator, COORD_PORT};
use crate::gsid::global;
use crate::hijack::Hijack;
use crate::manager::{Manager, Mode};
use crate::proto;
use mtcp::WriteMode;
use oskit::program::Program;
use oskit::world::{NodeId, OsSim, Pid, World};
use simkit::Nanos;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Environment keys carrying the injection (the `LD_PRELOAD` analogue).
pub const ENV_COORD_HOST: &str = "DMTCP_COORD_HOST";
/// Coordinator port environment key.
pub const ENV_COORD_PORT: &str = "DMTCP_COORD_PORT";
/// Checkpoint directory environment key.
pub const ENV_CKPT_DIR: &str = "DMTCP_CHECKPOINT_DIR";
/// Compression toggle environment key (`0` disables, as `DMTCP_GZIP=0`).
pub const ENV_GZIP: &str = "DMTCP_GZIP";
/// Forked-checkpointing toggle environment key.
pub const ENV_FORKED: &str = "DMTCP_FORKED_CKPT";
/// Marker telling the spawn hook to leave a process alone because
/// `dmtcp_restart` installs its state manually.
pub const ENV_RESTART_CHILD: &str = "DMTCP_RESTART_CHILD";
/// Root-coordinator port environment key. Only differs from
/// [`ENV_COORD_PORT`] under the hierarchical topology, where the
/// `DMTCP_COORD_*` pair points at the per-node relay; this names the root
/// the relay fronts (and thereby which coordinator's shared state records
/// this process's images).
pub const ENV_ROOT_PORT: &str = "DMTCP_ROOT_PORT";

/// Durability policy for freshly written images (§5.2: results in the
/// paper do not sync; the cost of syncing is reported separately, and an
/// alternative is to sync the *previous* checkpoint instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncMode {
    /// Rely on the kernel's writeback (the paper's timing methodology).
    #[default]
    None,
    /// `sync` after writing, before resuming user threads (+0.79 s mean
    /// for ParGeant4 in the paper).
    AfterCheckpoint,
    /// Sync the *previous* generation's image instead: every checkpoint
    /// except the newest is guaranteed durable without waiting for disk
    /// in the common case.
    Previous,
}

/// Environment key carrying the sync mode.
pub const ENV_SYNC: &str = "DMTCP_SYNC";

/// Coordinator topology: how managers reach the root coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// Every manager registers directly with the root (the paper's star;
    /// protocol work at the root is O(processes) per barrier stage).
    #[default]
    Flat,
    /// A per-node relay ([`crate::relay::Relay`]) aggregates all local
    /// managers and speaks to the root as one client: root work drops to
    /// O(nodes) per stage.
    Hierarchical,
}

/// Launch options (the `dmtcp_checkpoint` command line).
///
/// Construct with [`Options::builder`]; `Options::default()` keeps
/// working for the all-defaults case. The fields stay public so existing
/// readers (and `..Options::default()` update syntax inside this crate)
/// continue to compile, but new call sites should go through the builder —
/// it absorbs future knobs without breaking anyone.
#[derive(Debug, Clone)]
pub struct Options {
    /// Coordinator node.
    pub coord_node: NodeId,
    /// Coordinator port.
    pub coord_port: u16,
    /// Where images are written (`--ckptdir`). May be `/shared/...`.
    pub ckpt_dir: String,
    /// gzip the images (DMTCP's default: on).
    pub compression: bool,
    /// Forked checkpointing (experimental in the paper).
    pub forked: bool,
    /// `--interval`: periodic checkpoints.
    pub interval: Option<Nanos>,
    /// Image durability policy.
    pub sync: SyncMode,
    /// Coordinator topology (flat star vs per-node relays).
    pub topology: Topology,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            coord_node: NodeId(0),
            coord_port: COORD_PORT,
            ckpt_dir: "/ckpt".into(),
            compression: true,
            forked: false,
            interval: None,
            sync: SyncMode::None,
            topology: Topology::Flat,
        }
    }
}

impl Options {
    /// A builder starting from [`Options::default`].
    pub fn builder() -> OptionsBuilder {
        OptionsBuilder {
            opts: Options::default(),
        }
    }

    /// The image write mode these options imply.
    pub fn write_mode(&self) -> WriteMode {
        match (self.compression, self.forked) {
            (_, true) => WriteMode::ForkedCompressed,
            (true, false) => WriteMode::Compressed,
            (false, false) => WriteMode::Uncompressed,
        }
    }

    /// Shared-filesystem path of the restart script the coordinator rooted
    /// at these options' port publishes after each committed generation —
    /// what [`crate::restart::plan::RestartPlan`] plans from.
    pub fn restart_script(&self) -> String {
        crate::coord::restart_script_path(self.coord_port)
    }
}

/// Builder for [`Options`]. Every setter has the default documented on the
/// corresponding field; unset knobs keep it.
#[derive(Debug, Clone)]
pub struct OptionsBuilder {
    opts: Options,
}

impl OptionsBuilder {
    /// Coordinator node (default `NodeId(0)`).
    pub fn coord(mut self, node: NodeId) -> Self {
        self.opts.coord_node = node;
        self
    }

    /// Coordinator port (default [`COORD_PORT`]).
    pub fn coord_port(mut self, port: u16) -> Self {
        self.opts.coord_port = port;
        self
    }

    /// Checkpoint directory (default `/ckpt`).
    pub fn ckpt_dir(mut self, dir: impl Into<String>) -> Self {
        self.opts.ckpt_dir = dir.into();
        self
    }

    /// Image compression (default on).
    pub fn compression(mut self, on: bool) -> Self {
        self.opts.compression = on;
        self
    }

    /// Forked (copy-on-write) checkpointing (default off).
    pub fn forked(mut self, on: bool) -> Self {
        self.opts.forked = on;
        self
    }

    /// Periodic checkpoint interval (default none).
    pub fn interval(mut self, iv: Nanos) -> Self {
        self.opts.interval = Some(iv);
        self
    }

    /// Image durability policy (default [`SyncMode::None`]).
    pub fn sync(mut self, mode: SyncMode) -> Self {
        self.opts.sync = mode;
        self
    }

    /// Coordinator topology (default [`Topology::Flat`]).
    pub fn topology(mut self, t: Topology) -> Self {
        self.opts.topology = t;
        self
    }

    /// Finish, yielding the configured [`Options`].
    pub fn build(self) -> Options {
        self.opts
    }
}

/// Install the DMTCP spawn hook into a world (idempotent). Every process
/// whose environment carries the coordinator address is hijacked at
/// creation — including children created by `fork`, `exec` and `ssh`,
/// because the environment is inherited through all three.
pub fn install_hook(w: &mut World) {
    if w.spawn_hook.is_some() {
        return;
    }
    install_msg_tagger(w);
    w.spawn_hook = Some(Rc::new(|w: &mut World, sim: &mut OsSim, pid: Pid| {
        hijack_new_process(w, sim, pid)
    }));
}

/// Teach the flight recorder to label protocol payloads: a transmitted
/// chunk that is exactly one framed [`proto::Msg`] journals as its variant
/// name; anything else (drain tokens, application bytes, partial frames)
/// stays unlabeled. `obs` knows nothing about the wire format, so the
/// checkpoint layer installs this decoder.
pub fn install_msg_tagger(w: &mut World) {
    w.obs.journal.set_msg_tagger(|bytes| {
        let mut fb = proto::FrameBuf::new();
        fb.feed(bytes);
        match fb.pop() {
            Ok(Some(msg)) if fb.pending() == 0 => Some(proto::msg_name(&msg).to_string()),
            _ => None,
        }
    });
}

fn hijack_new_process(w: &mut World, sim: &mut OsSim, pid: Pid) -> Pid {
    let Some(p) = w.procs.get(&pid) else {
        return pid;
    };
    if !p.env.contains_key(ENV_COORD_HOST) || p.env.contains_key(ENV_RESTART_CHILD) {
        return pid;
    }
    if p.ext.is_some() {
        // exec re-runs the hook; the state survives exec (DMTCP re-injects
        // and reconnects, but keeps the same vpid).
        return pid;
    }
    // ---- Conflict-detecting fork wrapper (§4.5): if the kernel handed us
    // a pid that collides with a virtual pid that may still come back (a
    // live traced process, or one captured in a checkpoint image), the
    // wrapper terminates the child and forks again. ----
    let mut pid = pid;
    loop {
        let conflict = {
            // Live traced vpids (excluding the fresh process itself).
            let live_conflict = w
                .procs
                .iter()
                .any(|(other, p)| *other != pid && p.alive() && p.virt_pid == Some(pid.0));
            live_conflict || global(w).checkpointed_vpids.contains(&pid.0)
        };
        if !conflict {
            break;
        }
        global(w).fork_retries += 1;
        pid = w.rekey_pid(pid);
    }
    // Close any fork-inherited copies of DMTCP's own protected connections
    // (the parent's manager ↔ coordinator socket): the child gets its own.
    let protected: Vec<oskit::fdtable::Fd> = {
        let g = global(w);
        let prot = g.protected_conns.clone();
        w.procs[&pid]
            .fds
            .iter()
            .filter(|(_, e)| matches!(e.obj, oskit::fdtable::FdObject::Sock(cid, _) if prot.contains(&cid)))
            .map(|(fd, _)| fd)
            .collect()
    };
    for fd in protected {
        if let Some(entry) = w
            .procs
            .get_mut(&pid)
            .expect("process exists")
            .fds
            .remove(fd)
        {
            w.release_obj(sim, entry.obj);
        }
    }

    let env = &w.procs[&pid].env;
    let coord_host = env[ENV_COORD_HOST].clone();
    let coord_port: u16 = env[ENV_COORD_PORT].parse().expect("valid port in env");
    let root_port: u16 = env
        .get(ENV_ROOT_PORT)
        .map(|v| v.parse().expect("valid root port in env"))
        .unwrap_or(coord_port);
    let ckpt_dir = env
        .get(ENV_CKPT_DIR)
        .cloned()
        .unwrap_or_else(|| "/ckpt".to_string());
    let compression = env.get(ENV_GZIP).map(|v| v != "0").unwrap_or(true);
    let forked = env.get(ENV_FORKED).map(|v| v == "1").unwrap_or(false);
    let sync = match env.get(ENV_SYNC).map(|s| s.as_str()) {
        Some("after") => SyncMode::AfterCheckpoint,
        Some("previous") => SyncMode::Previous,
        _ => SyncMode::None,
    };
    let mode = match (compression, forked) {
        (_, true) => WriteMode::ForkedCompressed,
        (true, false) => WriteMode::Compressed,
        (false, false) => WriteMode::Uncompressed,
    };
    let vpid = pid.0;
    global(w).session_vpids.insert(vpid);
    let p = w.procs.get_mut(&pid).expect("process exists");
    let mut hijack = Hijack::new(vpid, coord_host, coord_port, ckpt_dir, mode);
    hijack.root_port = root_port;
    hijack.sync = sync;
    p.ext = Some(Box::new(hijack));
    p.virt_pid = Some(vpid);
    p.pid_map.insert(vpid, pid.0);
    let tid = p.add_thread(Box::new(Manager::new(Mode::Steady)), false);
    w.schedule_dispatch(sim, pid, tid);
    w.trace
        .emit_with(sim.now(), "hijack", || format!("pid {} traced", pid.0));
    pid
}

/// Spawn the coordinator process on `opts.coord_node` (the first
/// `dmtcp_checkpoint` invocation does this automatically).
pub fn spawn_coordinator(w: &mut World, sim: &mut OsSim, opts: &Options) -> Pid {
    // The coordinator itself must NOT be traced: no DMTCP_* env.
    w.spawn(
        sim,
        opts.coord_node,
        "dmtcp_coordinator",
        Box::new(Coordinator::new(opts.coord_port, opts.interval)),
        Pid(1),
        BTreeMap::new(),
    )
}

/// The relay listening port serving the root coordinator on `root_port`.
/// Always `root_port + 1`, which keeps the historical default pairing
/// (root 7779 → relay 7780) and gives every dmtcpd shard a collision-free
/// relay as long as shard root ports are spaced at least 2 apart.
pub fn relay_port_for(root_port: u16) -> u16 {
    root_port + 1
}

/// World registry of spawned per-node relays, keyed by (node, root port):
/// one relay per node *per shard*, so tenants on different shards sharing
/// a node each get an aggregation point for their own root.
fn relay_pids(w: &mut World) -> &mut BTreeMap<(NodeId, u16), Pid> {
    let slot = w
        .ext_slots
        .entry("dmtcp-relays".to_string())
        .or_insert_with(|| Box::new(BTreeMap::<(NodeId, u16), Pid>::new()));
    slot.downcast_mut::<BTreeMap<(NodeId, u16), Pid>>()
        .expect("slot holds relay registry")
}

/// Ensure a relay for `opts.coord_port`'s root is running on `node`,
/// spawning one if needed. Like the coordinator, relays are control plane:
/// spawned with an empty environment so they are never traced, and they
/// survive `Session::kill_computation`.
pub fn ensure_relay(w: &mut World, sim: &mut OsSim, node: NodeId, opts: &Options) -> Pid {
    let key = (node, opts.coord_port);
    if let Some(pid) = relay_pids(w).get(&key).copied() {
        if w.procs.get(&pid).map(|p| p.alive()).unwrap_or(false) {
            return pid;
        }
    }
    let root_host = w.node(opts.coord_node).hostname.clone();
    let pid = w.spawn(
        sim,
        node,
        "dmtcp_relay",
        Box::new(crate::relay::Relay::new(
            relay_port_for(opts.coord_port),
            root_host,
            opts.coord_port,
        )),
        Pid(1),
        BTreeMap::new(),
    );
    faultkit::note_relay(w, pid, node);
    relay_pids(w).insert(key, pid);
    pid
}

/// `dmtcp_checkpoint <program>`: start `prog` on `node` under DMTCP.
///
/// Installs the spawn hook, ensures the checkpoint directory exists, and
/// spawns the process with the injection environment. The coordinator must
/// already be running (see [`spawn_coordinator`] / [`crate::Session`]).
/// Under [`Topology::Hierarchical`] the process is pointed at its node's
/// relay (spawned on demand) instead of the root coordinator.
pub fn launch_under_dmtcp(
    w: &mut World,
    sim: &mut OsSim,
    node: NodeId,
    cmd: &str,
    prog: Box<dyn Program>,
    opts: &Options,
) -> Pid {
    install_hook(w);
    let (coord_host, coord_port) = match opts.topology {
        Topology::Flat => (w.node(opts.coord_node).hostname.clone(), opts.coord_port),
        Topology::Hierarchical => {
            ensure_relay(w, sim, node, opts);
            (
                w.node(node).hostname.clone(),
                relay_port_for(opts.coord_port),
            )
        }
    };
    let mut env = BTreeMap::new();
    env.insert(ENV_COORD_HOST.to_string(), coord_host);
    env.insert(ENV_COORD_PORT.to_string(), coord_port.to_string());
    env.insert(ENV_ROOT_PORT.to_string(), opts.coord_port.to_string());
    env.insert(ENV_CKPT_DIR.to_string(), opts.ckpt_dir.clone());
    env.insert(
        ENV_GZIP.to_string(),
        if opts.compression { "1" } else { "0" }.to_string(),
    );
    env.insert(
        ENV_FORKED.to_string(),
        if opts.forked { "1" } else { "0" }.to_string(),
    );
    env.insert(
        ENV_SYNC.to_string(),
        match opts.sync {
            SyncMode::None => "none",
            SyncMode::AfterCheckpoint => "after",
            SyncMode::Previous => "previous",
        }
        .to_string(),
    );
    w.spawn(sim, node, cmd, prog, Pid(1), env)
}
