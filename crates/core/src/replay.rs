//! `dmtcp replay` — time-travel debugging from a flight-recorder journal.
//!
//! A recorded run (see [`crate::session::enable_flight_recorder`]) leaves a
//! versioned JSONL journal of everything causally interesting: protocol
//! message sends and deliveries, scheduler dispatches, fault injections, and
//! barrier stage transitions, each stamped with virtual time and linked by
//! happens-before edges. Because the whole substrate is a deterministic
//! discrete-event simulation, that journal plus the run's construction
//! parameters are a *complete* recipe for re-executing the run — and the
//! journal doubles as an oracle: the replay records its own journal and
//! checks every event against the recording as it happens, so the first
//! divergence is caught at the exact event where the timelines split.
//!
//! The driver actions that shaped the run (`session.ckpt_request`,
//! `session.kill`, `session.restart`, `fault.uninstall`) are journaled as
//! ground truth. [`drive`] re-delivers them at their recorded virtual times
//! against an identically reconstructed world, seeks to any virtual time
//! (default: the recording's final event), and dumps a structured snapshot
//! of the entire substrate — kernel object model, coordinator barrier
//! bookkeeping, per-node relay aggregation state, and the replay-vs-record
//! verdict — as one JSON document.
//!
//! Typical flow for replaying a red fault-matrix cell:
//!
//! 1. Rebuild the cell's world exactly as the recording did (same seed,
//!    same installs, same launches) — the journal's header meta carries the
//!    cell id, base seed, workload, and budget needed to do this.
//! 2. [`arm`] the journal against the recording *before* spawning anything,
//!    so the replayed event ids line up from event `#0`.
//! 3. [`drive`] to the moment of interest.
//! 4. Read the returned [`ReplayReport`]: zero divergence means the replay
//!    is bit-faithful; the snapshot shows everything the kernel knew at the
//!    seek point.

use crate::coord::coord_shared;
use crate::relay::relay_shared;
use crate::session::Session;
use obs::journal::{DecodedJournal, Divergence};
use obs::json::JsonWriter;
use oskit::world::{NodeId, OsSim, World};
use simkit::Nanos;

/// The driver actions extracted from a recorded journal — the ground-truth
/// schedule a replay re-delivers.
#[derive(Debug, Clone, Default)]
pub struct ReplaySchedule {
    /// `session.ckpt_request` times.
    pub requests: Vec<Nanos>,
    /// `session.kill` times.
    pub kills: Vec<Nanos>,
    /// `session.restart` times with the generation actually restarted.
    pub restarts: Vec<(Nanos, u64)>,
    /// `fault.uninstall` times (the fault hooks were removed mid-run).
    pub uninstalls: Vec<Nanos>,
    /// Virtual time of the recording's last event.
    pub end: Nanos,
}

/// Extract the driver-action schedule from a recorded journal.
pub fn schedule(recorded: &DecodedJournal) -> ReplaySchedule {
    let mut s = ReplaySchedule::default();
    for e in &recorded.events {
        match e.kind.as_str() {
            "session.ckpt_request" => s.requests.push(e.at),
            "session.kill" => s.kills.push(e.at),
            "session.restart" => s.restarts.push((e.at, e.num("gen").unwrap_or(0))),
            "fault.uninstall" => s.uninstalls.push(e.at),
            _ => {}
        }
        s.end = s.end.max(e.at);
    }
    s
}

/// Arm `w` to re-record the journal and check it live against `recorded`:
/// enables the same event classes (from the recording's `classes` meta),
/// copies the header meta forward, installs the protocol message tagger,
/// and arms streaming divergence detection. Must be called before anything
/// journal-worthy happens in the replay world — ideally right after world
/// construction — or the replayed event ids will not line up.
///
/// Fails when the recording is lossy (`evicted > 0`): an incomplete
/// timeline cannot be checked event-for-event.
pub fn arm(w: &mut World, recorded: &DecodedJournal) -> Result<(), String> {
    let classes: u8 = recorded
        .meta_value("classes")
        .and_then(|s| s.parse().ok())
        .unwrap_or(obs::journal::CLASS_ALL);
    w.obs.journal.enable(classes);
    for (k, v) in &recorded.meta {
        w.obs.journal.set_meta(k, v.clone());
    }
    w.obs.journal.set_meta("classes", format!("{classes}"));
    crate::launch::install_msg_tagger(w);
    w.obs.journal.arm_divergence_check(recorded)
}

/// What a replay found when it stopped.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Virtual time at which the replay stopped (the seek target).
    pub at: Nanos,
    /// Recorded events the replay matched before stopping.
    pub checked: u64,
    /// First mismatch between the replay and the recording, if any.
    pub divergence: Option<Divergence>,
    /// Recorded events not yet reached when the replay stopped (nonzero
    /// when seeking to a time before the recording's end).
    pub expected_remaining: u64,
    /// Structured substrate snapshot at the stop time (see [`snapshot`]).
    pub snapshot: String,
}

impl ReplayReport {
    /// Human-readable verdict: zero divergence, or the first mismatch with
    /// both timelines quoted.
    pub fn verdict(&self) -> String {
        match &self.divergence {
            None => format!(
                "replay faithful: {} events matched, {} not yet reached at {}ns",
                self.checked, self.expected_remaining, self.at.0
            ),
            Some(d) => d.report(),
        }
    }
}

/// Re-deliver the recorded driver schedule against `w` and seek to `seek`
/// (default: the recording's final event time). The world must have been
/// [`arm`]ed and then reconstructed exactly as the recording's was —
/// same session options, same launches, same fault plan.
///
/// `session.restart` events are re-delivered through the default restart
/// path: the on-disk restart script, retargeted at the *recorded*
/// generation (replay does not re-run image validation — the recording
/// already chose the generation), with hostnames remapped to the nodes
/// bearing them. Drivers that restarted differently (migration remaps)
/// should re-run their own logic and use [`arm`]/[`snapshot`] directly.
pub fn drive(
    w: &mut World,
    sim: &mut OsSim,
    session: &Session,
    recorded: &DecodedJournal,
    seek: Option<Nanos>,
) -> ReplayReport {
    let sched = schedule(recorded);
    let stop = seek.unwrap_or(sched.end);
    for e in &recorded.events {
        if e.at > stop {
            break;
        }
        enum Act {
            Request,
            Kill,
            Restart(u64),
            Uninstall,
        }
        let act = match e.kind.as_str() {
            "session.ckpt_request" => Act::Request,
            "session.kill" => Act::Kill,
            "session.restart" => Act::Restart(e.num("gen").unwrap_or(0)),
            "fault.uninstall" => Act::Uninstall,
            _ => continue,
        };
        if e.at > sim.now() {
            sim.run_until(w, e.at);
        }
        match act {
            Act::Request => session.request_checkpoint(w, sim),
            Act::Kill => session.kill_computation(w, sim),
            Act::Restart(gen) => default_restart(w, sim, session, gen),
            Act::Uninstall => faultkit::uninstall_at(w, sim.now()),
        }
    }
    if stop > sim.now() {
        sim.run_until(w, stop);
    }
    ReplayReport {
        at: sim.now(),
        checked: w.obs.journal.replay_checked(),
        divergence: w.obs.journal.divergence().cloned(),
        expected_remaining: w.obs.journal.expected_remaining(),
        snapshot: snapshot(w, sim.now()),
    }
}

/// The default re-delivery of a `session.restart` event: restart script on
/// shared storage, image paths retargeted at the recorded generation,
/// hostnames remapped to the nodes currently bearing them.
fn default_restart(w: &mut World, sim: &mut OsSim, session: &Session, gen: u64) {
    let script = crate::restart::plan::script_groups(w, session.opts.coord_port);
    let mut by_node: std::collections::BTreeMap<NodeId, Vec<String>> =
        std::collections::BTreeMap::new();
    for (host, imgs) in &script {
        let node = w
            .resolve(host)
            .expect("recorded hostname exists in the replay world");
        by_node
            .entry(node)
            .or_default()
            .extend(imgs.iter().map(|p| crate::session::rewrite_gen(p, gen)));
    }
    crate::restart::plan::spawn_restart_procs(session, w, sim, by_node, gen, false);
}

/// How many trailing journal events the snapshot quotes verbatim.
const TAIL_EVENTS: usize = 24;

/// Render the complete replay state at virtual time `now` as one JSON
/// document: journal verdict (checked/remaining/divergence), the full
/// kernel object model ([`oskit::dump::dump_json`]), the coordinator's
/// barrier bookkeeping, every per-node relay's aggregation state, and a
/// human-readable tail of the timeline.
pub fn snapshot(w: &mut World, now: Nanos) -> String {
    // Gather everything through `&mut World` accessors first; the writer
    // below only sees owned data.
    let meta: Vec<(String, String)> = w.obs.journal.meta().to_vec();
    let checked = w.obs.journal.replay_checked();
    let remaining = w.obs.journal.expected_remaining();
    let events = w.obs.journal.len() as u64;
    let divergence = w.obs.journal.divergence().cloned();
    let tail: Vec<String> = {
        let evs = w.obs.journal.events();
        let skip = evs.len().saturating_sub(TAIL_EVENTS);
        evs[skip..].iter().map(|e| e.describe()).collect()
    };
    let coord = {
        let cs = coord_shared(w);
        (
            cs.coord_gen,
            cs.coord_in_progress,
            cs.coord_drain_open,
            cs.coord_expected,
            cs.barrier_pending.clone(),
        )
    };
    let relays = relay_shared(w).relays.clone();
    let substrate = oskit::dump::dump_json(w, now);

    let mut j = JsonWriter::new();
    j.obj_begin();
    j.field_str("type", "replay-snapshot");
    j.field_u64("at", now.0);
    j.key("meta").obj_begin();
    for (k, v) in &meta {
        j.field_str(k, v);
    }
    j.obj_end();
    j.field_u64("journal_events", events);
    j.field_u64("replay_checked", checked);
    j.field_u64("expected_remaining", remaining);
    j.key("divergence");
    match &divergence {
        None => {
            j.val_raw("null");
        }
        Some(d) => {
            j.obj_begin();
            j.field_u64("index", d.index);
            j.field_str(
                "expected",
                &d.expected
                    .as_ref()
                    .map(|e| e.describe())
                    .unwrap_or_else(|| "<nothing: replay ran past the recording>".into()),
            );
            j.field_str("got", &d.got.describe());
            j.obj_end();
        }
    }
    j.key("coordinator").obj_begin();
    j.field_u64("gen", coord.0);
    j.key("in_progress").val_bool(coord.1);
    j.key("drain_open").val_bool(coord.2);
    j.field_u64("expected", coord.3 as u64);
    j.key("barriers").arr_begin();
    for ((gen, stg), acks) in &coord.4 {
        j.obj_begin();
        j.field_u64("gen", *gen);
        j.field_u64("stage", *stg as u64);
        j.field_u64("acks", *acks as u64);
        j.obj_end();
    }
    j.arr_end();
    j.obj_end();
    j.key("relays").arr_begin();
    for (node, m) in &relays {
        j.obj_begin();
        j.field_u64("node", *node as u64);
        j.field_u64("gen", m.gen);
        j.key("in_flight").val_bool(m.in_flight);
        j.key("dormant").val_bool(m.dormant);
        j.field_u64("members", m.members as u64);
        j.key("acks").arr_begin();
        for ((gen, stg), n) in &m.acks {
            j.obj_begin();
            j.field_u64("gen", *gen);
            j.field_u64("stage", *stg as u64);
            j.field_u64("acks", *n as u64);
            j.obj_end();
        }
        j.arr_end();
        j.key("released").arr_begin();
        for (gen, stg) in &m.released {
            j.obj_begin();
            j.field_u64("gen", *gen);
            j.field_u64("stage", *stg as u64);
            j.obj_end();
        }
        j.arr_end();
        j.obj_end();
    }
    j.arr_end();
    j.key("substrate").val_raw(&substrate);
    j.key("timeline_tail").arr_begin();
    for line in &tail {
        j.val_str(line);
    }
    j.arr_end();
    j.obj_end();
    j.into_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_extracts_driver_actions_in_order() {
        let jsonl = concat!(
            "{\"type\":\"header\",\"v\":1,\"meta\":{\"classes\":\"14\"}}\n",
            "{\"type\":\"event\",\"id\":0,\"at\":100,\"class\":8,\
             \"kind\":\"session.ckpt_request\",\"nums\":{},\"detail\":\"\"}\n",
            "{\"type\":\"event\",\"id\":1,\"at\":200,\"class\":4,\
             \"kind\":\"fault.uninstall\",\"nums\":{},\"detail\":\"\"}\n",
            "{\"type\":\"event\",\"id\":2,\"at\":300,\"class\":8,\
             \"kind\":\"session.kill\",\"nums\":{},\"detail\":\"\"}\n",
            "{\"type\":\"event\",\"id\":3,\"at\":400,\"class\":8,\
             \"kind\":\"session.restart\",\"nums\":{\"gen\":2},\"detail\":\"\"}\n",
            "{\"type\":\"footer\",\"events\":4,\"evicted\":0,\"next_id\":4}\n",
        );
        let decoded = obs::journal::decode_jsonl(jsonl).expect("valid capture");
        let s = schedule(&decoded);
        assert_eq!(s.requests, vec![Nanos(100)]);
        assert_eq!(s.uninstalls, vec![Nanos(200)]);
        assert_eq!(s.kills, vec![Nanos(300)]);
        assert_eq!(s.restarts, vec![(Nanos(400), 2)]);
        assert_eq!(s.end, Nanos(400));
    }

    #[test]
    fn snapshot_is_valid_json_with_all_sections() {
        use oskit::program::Registry;
        use oskit::HwSpec;
        let mut w = World::new(HwSpec::cluster(), 2, Registry::new());
        let snap = snapshot(&mut w, Nanos(42));
        obs::json::validate(&snap).expect("snapshot is well-formed JSON");
        for section in [
            "\"coordinator\"",
            "\"relays\"",
            "\"substrate\"",
            "\"timeline_tail\"",
            "\"divergence\"",
        ] {
            assert!(snap.contains(section), "missing {section}");
        }
    }
}
