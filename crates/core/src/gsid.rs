//! Globally unique connection ids and the world-attached DMTCP side table.
//!
//! The paper refers to sockets by a globally unique ID `(hostid, pid,
//! timestamp, per-process connection number)` so duplicates can be detected
//! at restart (§4.4). We reproduce that as a [`Gsid`] assigned by the
//! wrapper layer the first time it sees a connection, held in a singleton
//! attached to the world — the model of the union of every process's
//! wrapper-recorded state (each process records ids for its own fds at
//! creation; peers learn each other's during the drain handshake).

use oskit::net::ConnId;
use oskit::pty::PtyId;
use oskit::world::World;
use std::collections::BTreeMap;

/// Globally unique connection/pty id, stable across checkpoint and restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gsid(pub u64);

impl simkit::Snap for Gsid {
    fn save(&self, w: &mut simkit::SnapWriter) {
        w.put_varint(self.0);
    }
    fn load(r: &mut simkit::SnapReader<'_>) -> Result<Self, simkit::SnapError> {
        Ok(Gsid(r.get_varint()?))
    }
}

/// World-attached DMTCP bookkeeping shared by the wrapper layer in every
/// traced process.
#[derive(Debug, Default)]
pub struct DmtcpGlobal {
    /// Wrapper-recorded id per live kernel connection.
    pub conn_gsid: BTreeMap<ConnId, Gsid>,
    /// Wrapper-recorded id per live pty.
    pub pty_gsid: BTreeMap<PtyId, Gsid>,
    /// All virtual pids ever issued in this session (drives the fork
    /// wrapper's conflict detection).
    pub session_vpids: std::collections::BTreeSet<u32>,
    /// Virtual pids captured in a checkpoint image — these may come back
    /// at restart even if their process is currently dead, so the fork
    /// wrapper must avoid re-issuing them.
    pub checkpointed_vpids: std::collections::BTreeSet<u32>,
    /// Connections belonging to the DMTCP infrastructure itself (manager ↔
    /// coordinator). The real DMTCP keeps these on *protected fds* that are
    /// excluded from checkpointing and closed in forked children.
    pub protected_conns: std::collections::BTreeSet<ConnId>,
    /// How many times the fork wrapper had to re-fork due to a pid
    /// conflict (observable in tests).
    pub fork_retries: u64,
    next_gsid: u64,
}

const EXT_KEY: &str = "dmtcp-global";

impl DmtcpGlobal {
    /// Allocate a fresh gsid.
    pub fn alloc(&mut self) -> Gsid {
        self.next_gsid += 1;
        Gsid(self.next_gsid)
    }

    /// Gsid for a connection, assigning one on first sight.
    pub fn conn(&mut self, id: ConnId) -> Gsid {
        if let Some(g) = self.conn_gsid.get(&id) {
            return *g;
        }
        let g = self.alloc();
        self.conn_gsid.insert(id, g);
        g
    }

    /// Gsid for a pty, assigning one on first sight.
    pub fn pty(&mut self, id: PtyId) -> Gsid {
        if let Some(g) = self.pty_gsid.get(&id) {
            return *g;
        }
        let g = self.alloc();
        self.pty_gsid.insert(id, g);
        g
    }

    /// Bind a restored kernel connection to its pre-restart gsid.
    pub fn bind_conn(&mut self, id: ConnId, gsid: Gsid) {
        self.conn_gsid.insert(id, gsid);
        self.next_gsid = self.next_gsid.max(gsid.0);
    }

    /// Bind a restored pty to its pre-restart gsid.
    pub fn bind_pty(&mut self, id: PtyId, gsid: Gsid) {
        self.pty_gsid.insert(id, gsid);
        self.next_gsid = self.next_gsid.max(gsid.0);
    }
}

/// Access (creating on first use) the world's DMTCP singleton, kept in the
/// kernel's named extension-slot table so it outlives any single process.
pub fn global(w: &mut World) -> &mut DmtcpGlobal {
    let slot = w
        .ext_slots
        .entry(EXT_KEY.to_string())
        .or_insert_with(|| Box::new(DmtcpGlobal::default()));
    slot.downcast_mut::<DmtcpGlobal>()
        .expect("dmtcp global slot holds DmtcpGlobal")
}

#[cfg(test)]
mod tests {
    use super::*;
    use oskit::program::Registry;
    use oskit::HwSpec;

    #[test]
    fn gsids_are_stable_per_object_and_unique_across_objects() {
        let mut w = World::new(HwSpec::default(), 1, Registry::new());
        let g = global(&mut w);
        let a = g.conn(ConnId(10));
        let b = g.conn(ConnId(11));
        assert_ne!(a, b);
        assert_eq!(global(&mut w).conn(ConnId(10)), a, "stable on re-query");
        let p = global(&mut w).pty(PtyId(0));
        assert_ne!(p, a);
        assert_ne!(p, b);
    }

    #[test]
    fn bind_preserves_restored_ids_and_avoids_collisions() {
        let mut w = World::new(HwSpec::default(), 1, Registry::new());
        global(&mut w).bind_conn(ConnId(5), Gsid(100));
        assert_eq!(global(&mut w).conn(ConnId(5)), Gsid(100));
        // Fresh allocations must not collide with the restored id space.
        let fresh = global(&mut w).conn(ConnId(6));
        assert!(fresh.0 > 100, "fresh gsid {fresh:?} collides");
    }
}
