//! High-level session driver: the programmatic equivalents of the three
//! DMTCP commands (§3):
//!
//! ```text
//! dmtcp_checkpoint [options] <program>   → Session::start + Session::launch
//! dmtcp_command --checkpoint             → Session::checkpoint_and_wait
//! dmtcp_restart_script.sh                → Session::restart_from_script
//! ```
//!
//! Tests, examples, and the benchmark harness all drive checkpoints through
//! this type, so they exercise the same protocol code paths.

use crate::coord::{coord_shared, coord_shared_for, stage, GenStat};
use crate::launch::{launch_under_dmtcp, spawn_coordinator, Options};
use oskit::proc::sig;
use oskit::program::Program;
use oskit::world::{NodeId, OsSim, Pid, World};
use simkit::Nanos;
use std::collections::BTreeMap;

/// A running DMTCP session (one coordinator + its computation).
#[derive(Debug, Clone)]
pub struct Session {
    /// Launch options in force.
    pub opts: Options,
    /// Coordinator process.
    pub coord_pid: Pid,
}

impl Session {
    /// Start a coordinator with `opts`.
    pub fn start(w: &mut World, sim: &mut OsSim, opts: Options) -> Session {
        let coord_pid = spawn_coordinator(w, sim, &opts);
        // Let it bind its port before anything tries to register.
        sim.run_until(w, sim.now() + Nanos::from_millis(1));
        Session { opts, coord_pid }
    }

    /// `dmtcp_checkpoint <program>` on `node`.
    pub fn launch(
        &self,
        w: &mut World,
        sim: &mut OsSim,
        node: NodeId,
        cmd: &str,
        prog: Box<dyn Program>,
    ) -> Pid {
        launch_under_dmtcp(w, sim, node, cmd, prog, &self.opts)
    }

    /// `dmtcp_command --checkpoint` (asynchronous).
    pub fn request_checkpoint(&self, w: &mut World, sim: &mut OsSim) {
        w.obs.journal.record(
            sim.now(),
            obs::journal::CLASS_STAGE,
            "session.ckpt_request",
            None,
            &[("port", self.opts.coord_port as u64)],
            "",
        );
        crate::coord::request_checkpoint_on(w, sim, self.opts.coord_port);
    }

    /// Request a checkpoint and run the simulation until it completes
    /// (stage-6 barrier released). Returns the generation's stats, or a
    /// typed [`CkptError`] when the generation aborted (a participant died
    /// mid-protocol) or did not settle within `max_events`.
    ///
    /// Tests that treat failure as fatal chain [`ExpectCkpt::expect_ckpt`],
    /// which panics at the caller's location with the error's message.
    pub fn checkpoint_and_wait(
        &self,
        w: &mut World,
        sim: &mut OsSim,
        max_events: u64,
    ) -> Result<GenStat, CkptError> {
        let port = self.opts.coord_port;
        let before = coord_shared_for(w, port).gen_stats.len();
        self.request_checkpoint(w, sim);
        let fired_start = sim.events_fired();
        loop {
            if !sim.step(w) {
                // The event queue drained with the protocol unfinished:
                // nothing will ever make progress again.
                return Err(CkptError::BudgetExhausted {
                    events: sim.events_fired() - fired_start,
                });
            }
            let settled = {
                let cs = coord_shared_for(w, port);
                cs.gen_stats.len() > before
                    && cs
                        .gen_stats
                        .last()
                        .map(|g| g.aborted || g.releases.contains_key(&stage::REFILLED))
                        .unwrap_or(false)
            };
            if settled {
                let gs = coord_shared_for(w, port)
                    .gen_stats
                    .last()
                    .expect("pushed")
                    .clone();
                if gs.aborted {
                    return Err(CkptError::Aborted {
                        gen: gs.gen,
                        stage: first_missing_stage(&gs),
                    });
                }
                return Ok(gs);
            }
            if sim.events_fired() - fired_start >= max_events {
                return Err(CkptError::BudgetExhausted { events: max_events });
            }
        }
    }

    /// Request a checkpoint and run the simulation until it *settles*:
    /// either the stage-6 barrier is released (completed) or the
    /// coordinator abandons the generation because a participant died
    /// (aborted). Unlike [`Session::checkpoint_and_wait`], an abort is a
    /// reportable outcome here, not a hang.
    pub fn checkpoint_until_settled(
        &self,
        w: &mut World,
        sim: &mut OsSim,
        max_events: u64,
    ) -> CkptOutcome {
        let port = self.opts.coord_port;
        let before = coord_shared_for(w, port).gen_stats.len();
        self.request_checkpoint(w, sim);
        let fired_start = sim.events_fired();
        loop {
            assert!(
                sim.step(w),
                "event queue drained before the checkpoint settled"
            );
            let settled = {
                let cs = coord_shared_for(w, port);
                cs.gen_stats.len() > before
                    && cs
                        .gen_stats
                        .last()
                        .map(|g| g.aborted || g.releases.contains_key(&stage::REFILLED))
                        .unwrap_or(false)
            };
            if settled {
                let gs = coord_shared_for(w, port)
                    .gen_stats
                    .last()
                    .expect("pushed")
                    .clone();
                return if gs.aborted {
                    CkptOutcome::Aborted(gs)
                } else {
                    CkptOutcome::Completed(gs)
                };
            }
            assert!(
                sim.events_fired() - fired_start < max_events,
                "checkpoint neither completed nor aborted within {max_events} events \
                 (virtual time now {:?})",
                sim.now()
            );
        }
    }

    /// The most recent generation stats.
    pub fn last_gen_stat(w: &mut World) -> Option<GenStat> {
        coord_shared(w).gen_stats.last().cloned()
    }

    /// Run the simulation until generation `gen`'s overlapped drain phase
    /// settles: either `CKPT_WRITTEN` is released (every image durable and
    /// acknowledged — returns the updated stats) or the coordinator
    /// abandons the drain (returns `None`; restart must use the previous
    /// generation). With forked checkpointing off this returns immediately
    /// after the checkpoint, since in-line writes ack before refill.
    ///
    /// Panics if the drain neither completes nor aborts within
    /// `max_events`.
    pub fn wait_ckpt_written(
        w: &mut World,
        sim: &mut OsSim,
        gen: u64,
        max_events: u64,
    ) -> Option<GenStat> {
        Self::wait_ckpt_written_on(w, sim, crate::coord::COORD_PORT, gen, max_events)
    }

    /// [`Session::wait_ckpt_written`] against the coordinator on `port`
    /// (a dmtcpd shard or a non-default root).
    pub fn wait_ckpt_written_on(
        w: &mut World,
        sim: &mut OsSim,
        port: u16,
        gen: u64,
        max_events: u64,
    ) -> Option<GenStat> {
        let start = sim.events_fired();
        loop {
            let settled = coord_shared_for(w, port)
                .gen_stats
                .iter()
                .rev()
                .find(|g| g.gen == gen)
                .map(|g| {
                    if g.releases.contains_key(&stage::CKPT_WRITTEN) {
                        Some(Some(g.clone()))
                    } else if g.aborted {
                        Some(None)
                    } else {
                        None
                    }
                })
                .unwrap_or(None);
            if let Some(outcome) = settled {
                return outcome;
            }
            assert!(
                sim.step(w),
                "event queue drained before the drain settled (gen {gen})"
            );
            assert!(
                sim.events_fired() - start < max_events,
                "checkpoint drain neither completed nor aborted within {max_events} events"
            );
        }
    }

    /// Kill the whole traced computation with SIGKILL (simulated failure).
    /// The coordinator survives, as in real deployments.
    pub fn kill_computation(&self, w: &mut World, sim: &mut OsSim) {
        w.obs.journal.record(
            sim.now(),
            obs::journal::CLASS_STAGE,
            "session.kill",
            None,
            &[],
            "",
        );
        let traced: Vec<Pid> = w
            .procs
            .iter()
            .filter(|(_, p)| {
                p.alive()
                    && p.ext
                        .as_ref()
                        .map(|e| e.is::<crate::hijack::Hijack>())
                        .unwrap_or(false)
            })
            .map(|(pid, _)| *pid)
            .collect();
        for pid in traced {
            w.signal(sim, pid, sig::SIGKILL);
        }
        sim.run_until(w, sim.now() + Nanos::from_millis(1));
    }

    /// Parse `dmtcp_restart_script.sh` into `(hostname, image paths)`.
    #[deprecated(note = "use dmtcp::restart::plan::RestartPlan instead")]
    pub fn parse_restart_script(w: &World) -> Vec<(String, Vec<String>)> {
        crate::restart::plan::script_groups(w, crate::coord::COORD_PORT)
    }

    /// Parse the restart script written by the coordinator rooted at
    /// `port` (each root writes its own script — see
    /// [`crate::coord::restart_script_path`]).
    #[deprecated(note = "use dmtcp::restart::plan::RestartPlan instead")]
    pub fn parse_restart_script_for(w: &World, port: u16) -> Vec<(String, Vec<String>)> {
        crate::restart::plan::script_groups(w, port)
    }

    /// `dmtcp_restart_script.sh`: restart the last checkpoint in (possibly
    /// another) world. `remap` translates original hostnames to restart
    /// nodes — identity for in-place restart, everything-to-one-node for
    /// the paper's "continue on your laptop" use case. Returns the restart
    /// process pids.
    ///
    /// The target world must already contain the image files (see
    /// [`transplant_storage`]) and a running coordinator for `self`.
    #[deprecated(note = "use dmtcp::restart::plan::RestartPlan instead")]
    pub fn restart_from_script(
        &self,
        w: &mut World,
        sim: &mut OsSim,
        script: &[(String, Vec<String>)],
        remap: &dyn Fn(&str) -> NodeId,
        gen: u64,
    ) -> Vec<Pid> {
        // Group images by *target* node (migration may merge hosts).
        let mut by_node: BTreeMap<NodeId, Vec<String>> = BTreeMap::new();
        for (host, images) in script {
            by_node
                .entry(remap(host))
                .or_default()
                .extend(images.iter().cloned());
        }
        crate::restart::plan::spawn_restart_procs(self, w, sim, by_node, gen, false)
    }

    /// Restart with whole-generation fallback: validate every image of the
    /// newest generation named by the restart script (header magic/CRC plus
    /// every region payload); if *any* image of that generation fails
    /// validation — torn write, bit rot, missing file — fall back to the
    /// previous generation, down to generation 1. Returns which generation
    /// was actually restarted plus every rejected image with its reason, or
    /// a typed error when no complete generation survives on storage.
    pub fn restart_resilient(
        &self,
        w: &mut World,
        sim: &mut OsSim,
        remap: &dyn Fn(&str) -> NodeId,
    ) -> Result<RestartOutcome, RestartError> {
        let script = crate::restart::plan::script_groups(w, self.opts.coord_port);
        if script.is_empty() {
            return Err(RestartError::NoScript);
        }
        let top = script
            .iter()
            .flat_map(|(_, imgs)| imgs.iter())
            .filter_map(|p| crate::restart::parse_gen(p))
            .max()
            .unwrap_or(1);
        let mut rejected = Vec::new();
        for gen in (1..=top).rev() {
            let candidate: Vec<(String, Vec<String>)> = script
                .iter()
                .map(|(h, imgs)| {
                    (
                        h.clone(),
                        imgs.iter().map(|p| rewrite_gen(p, gen)).collect(),
                    )
                })
                .collect();
            let mut complete = true;
            for (host, imgs) in &candidate {
                let node = remap(host);
                for p in imgs {
                    if let Err(e) = mtcp::verify_image(w, node, p) {
                        w.obs.metrics.inc("core.restart.rejected_images", gen);
                        rejected.push((p.clone(), e.to_string()));
                        complete = false;
                    }
                }
            }
            if !complete {
                continue;
            }
            let mut by_node: BTreeMap<NodeId, Vec<String>> = BTreeMap::new();
            for (host, images) in &candidate {
                by_node
                    .entry(remap(host))
                    .or_default()
                    .extend(images.iter().cloned());
            }
            let placement = by_node
                .iter()
                .map(|(n, imgs)| {
                    let mut v: Vec<u32> = imgs
                        .iter()
                        .filter_map(|p| ckptstore::manifest::parse_vpid(p))
                        .collect();
                    v.sort_unstable();
                    (*n, v)
                })
                .collect();
            let pids = crate::restart::plan::spawn_restart_procs(self, w, sim, by_node, gen, false);
            return Ok(RestartOutcome {
                gen,
                pids,
                rejected,
                placement,
            });
        }
        Err(RestartError::NoUsableGeneration { rejected })
    }

    /// Run the simulation until the restart completes (restart-refill
    /// barrier released for `gen`) on the default-port coordinator.
    pub fn wait_restart_done(w: &mut World, sim: &mut OsSim, gen: u64, max_events: u64) {
        Self::wait_restart_done_on(w, sim, crate::coord::COORD_PORT, gen, max_events)
    }

    /// [`Session::wait_restart_done`] against the coordinator on `port`
    /// (a dmtcpd shard).
    pub fn wait_restart_done_on(
        w: &mut World,
        sim: &mut OsSim,
        port: u16,
        gen: u64,
        max_events: u64,
    ) {
        let start = sim.events_fired();
        loop {
            let done = coord_shared_for(w, port)
                .gen_stats
                .iter()
                .any(|g| g.gen == gen && g.releases.contains_key(&stage::RESTART_REFILLED));
            if done {
                return;
            }
            assert!(
                sim.step(w),
                "event queue drained before restart completed (gen {gen})"
            );
            assert!(
                sim.events_fired() - start < max_events,
                "restart did not complete within {max_events} events"
            );
        }
    }
}

/// Why [`Session::checkpoint_and_wait`] did not return a completed
/// generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The protocol neither completed nor aborted within the caller's
    /// event budget (or the event queue drained) — a hung barrier or a
    /// budget set too tight.
    BudgetExhausted {
        /// Simulation events consumed while waiting.
        events: u64,
    },
    /// The coordinator abandoned the generation (a participant died
    /// mid-protocol); survivors rolled back and resumed computing.
    Aborted {
        /// The abandoned generation.
        gen: u64,
        /// First barrier stage that had not been released — where the
        /// protocol died.
        stage: u8,
    },
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::BudgetExhausted { events } => {
                write!(f, "checkpoint did not settle within {events} events")
            }
            CkptError::Aborted { gen, stage } => {
                write!(f, "checkpoint generation {gen} aborted at stage {stage}")
            }
        }
    }
}

impl std::error::Error for CkptError {}

/// First of the in-order checkpoint barrier stages that `g` never
/// released — the stage at which an aborted generation died.
pub fn first_missing_stage(g: &GenStat) -> u8 {
    [
        stage::SUSPENDED,
        stage::ELECTED,
        stage::DRAINED,
        stage::CHECKPOINTED,
        stage::REFILLED,
        stage::CKPT_WRITTEN,
    ]
    .into_iter()
    .find(|s| !g.releases.contains_key(s))
    .unwrap_or(stage::CKPT_WRITTEN)
}

/// Test convenience for [`Session::checkpoint_and_wait`]: unwrap the
/// completed generation or panic at the *caller's* line with the typed
/// error's message.
pub trait ExpectCkpt {
    /// Unwrap, panicking (with caller location) on any [`CkptError`].
    fn expect_ckpt(self) -> GenStat;
}

impl ExpectCkpt for Result<GenStat, CkptError> {
    #[track_caller]
    fn expect_ckpt(self) -> GenStat {
        match self {
            Ok(g) => g,
            Err(e) => panic!("checkpoint failed: {e}"),
        }
    }
}

/// How a requested checkpoint settled (see
/// [`Session::checkpoint_until_settled`]).
#[derive(Debug, Clone)]
pub enum CkptOutcome {
    /// The stage-6 barrier released; the generation's images are on disk.
    Completed(GenStat),
    /// A participant died mid-protocol; the coordinator rolled the
    /// survivors back and the generation's images must not be trusted.
    Aborted(GenStat),
}

/// A successful restart ([`crate::restart::plan::RestartPlan::execute`] or
/// [`Session::restart_resilient`]).
#[derive(Debug, Clone)]
pub struct RestartOutcome {
    /// The generation actually restarted (may be older than the newest).
    pub gen: u64,
    /// Restart process pids.
    pub pids: Vec<Pid>,
    /// Images rejected along the way, with the validation error.
    pub rejected: Vec<(String, String)>,
    /// Where each process was restored: node → virtual pids, sorted.
    /// Summing the vpids over every node reproduces the restored process
    /// set exactly — the accounting invariant heterogeneous-restart tests
    /// check.
    pub placement: Vec<(NodeId, Vec<u32>)>,
}

/// Why a restart plan could not restart (or migrate) anything.
#[derive(Debug, Clone, PartialEq)]
pub enum RestartError {
    /// No restart script exists (no generation ever completed).
    NoScript,
    /// Every candidate generation had at least one invalid image.
    NoUsableGeneration {
        /// Each rejected image with its validation error.
        rejected: Vec<(String, String)>,
    },
    /// The plan pinned a generation outside the committed range.
    MissingGeneration {
        /// The requested generation.
        gen: u64,
    },
    /// An image of a pinned (or newest, non-resilient) generation could
    /// not be read or validated from any node — no replica survives.
    ReplicaUnreachable {
        /// The unreachable image path.
        path: String,
        /// The last resolution or validation error.
        reason: String,
    },
    /// The target topology cannot hold the colocation units: fewer
    /// placement slots than units, or every candidate node has a
    /// conflicting listener port.
    TopologyTooSmall {
        /// Colocation units that needed placing.
        needed: u32,
        /// Target nodes offered.
        got: u32,
    },
    /// A subset plan referenced processes whose shared objects, socket
    /// connections, ptys, or parent/child links cross the subset boundary.
    SubsetNotClosed {
        /// Which link crosses, and where.
        detail: String,
    },
    /// A live migration did not complete: the pre-migration checkpoint
    /// failed, a mover died mid-restore, or the restart stages never
    /// settled. Bystanders and committed generations are untouched; the
    /// caller may retry onto a different topology.
    AbortedDuringMigration {
        /// The generation being migrated (0 when the pre-migration
        /// checkpoint never committed a generation).
        gen: u64,
    },
}

impl std::fmt::Display for RestartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestartError::NoScript => write!(f, "no restart script on shared storage"),
            RestartError::NoUsableGeneration { rejected } => write!(
                f,
                "no complete checkpoint generation on storage ({} images rejected)",
                rejected.len()
            ),
            RestartError::MissingGeneration { gen } => {
                write!(f, "generation {gen} was never committed")
            }
            RestartError::ReplicaUnreachable { path, reason } => {
                write!(f, "no replica can serve {path}: {reason}")
            }
            RestartError::TopologyTooSmall { needed, got } => write!(
                f,
                "target topology too small: {needed} colocation units, {got} placeable nodes"
            ),
            RestartError::SubsetNotClosed { detail } => {
                write!(f, "subset is not closed: {detail}")
            }
            RestartError::AbortedDuringMigration { gen } => {
                write!(f, "migration of generation {gen} aborted")
            }
        }
    }
}

impl std::error::Error for RestartError {}

/// Rewrite the generation number embedded in an image path
/// (`…_gen<N>.dmtcp`) — the restart script names the newest generation,
/// fallback retargets the same images one generation back.
pub(crate) fn rewrite_gen(path: &str, gen: u64) -> String {
    match path.rfind("_gen") {
        Some(idx) => {
            let digits_start = idx + 4;
            let digits_end = path[digits_start..]
                .find(|c: char| !c.is_ascii_digit())
                .map(|off| digits_start + off)
                .unwrap_or(path.len());
            format!("{}{}{}", &path[..digits_start], gen, &path[digits_end..])
        }
        None => path.to_string(),
    }
}

/// Copy checkpoint artifacts from one world to another: the shared
/// filesystem always, and each node's local filesystem onto the same node
/// index when the topologies allow. This is "the storage survived the
/// crash"; everything else about the old world is discarded.
pub fn transplant_storage(src: &World, dst: &mut World) {
    dst.shared_fs = src.shared_fs.clone();
    for (i, node) in src.nodes.iter().enumerate() {
        if let Some(dnode) = dst.nodes.get_mut(i) {
            dnode.fs = node.fs.clone();
        }
    }
}

/// Convenience: run the simulation for a fixed virtual duration.
pub fn run_for(w: &mut World, sim: &mut OsSim, dur: Nanos) {
    let deadline = sim.now() + dur;
    sim.run_until(w, deadline);
}

/// Turn on the flight recorder for this world: record the given event
/// classes (see `obs::journal::CLASS_*`), stamp `meta` key/value pairs into
/// the journal header, and install the protocol message tagger so
/// `msg.send` events carry wire-message variant names. The enabled class
/// mask is itself stored under the `classes` meta key, so
/// [`crate::replay`] can re-arm an identical recording.
pub fn enable_flight_recorder(w: &mut World, classes: u8, meta: &[(&str, &str)]) {
    w.obs.journal.enable(classes);
    w.obs.journal.set_meta("classes", format!("{classes}"));
    for (k, v) in meta {
        w.obs.journal.set_meta(k, *v);
    }
    crate::launch::install_msg_tagger(w);
}

/// Export the recorded flight-recorder journal as versioned JSONL (the
/// format `obs::journal::decode_jsonl` and `dmtcp replay` consume).
pub fn export_journal(w: &mut World) -> String {
    w.obs.journal_jsonl()
}
