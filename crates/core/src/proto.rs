//! The coordinator wire protocol and in-band drain/refill framing.
//!
//! Everything DMTCP says on the wire is a length-prefixed snap frame. The
//! same framing carries coordinator traffic (registration, barriers,
//! discovery) and the in-band drain/refill exchanges that travel through
//! the *application's own sockets* during a checkpoint.

use crate::gsid::Gsid;
use simkit::{impl_snap, Snap, SnapError};

/// The drain token: pushed through every socket by its receiving-end leader
/// so the drain loop knows when the stream is empty (§4.3 stage 4). The
/// token also carries the sender's gsid — the peer handshake that lets both
/// sides record the globally unique id of the remote end.
pub const DRAIN_MAGIC: [u8; 16] = *b"DMTCP-DRAIN-TOK\n";

/// Messages between checkpoint managers / restart processes and the
/// coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// A manager announces itself (vpid, hostname).
    Register(u32, String),
    /// Coordinator → managers: begin checkpoint generation `gen`.
    CkptRequest(u64),
    /// Manager → coordinator: reached barrier `stage` of generation `gen`.
    BarrierReached(u64, u8),
    /// Coordinator → managers: barrier `stage` of `gen` released.
    BarrierRelease(u64, u8),
    /// Restart process → coordinator: the acceptor side of `gsid` now
    /// listens at (host, port).
    Advertise(Gsid, String, u16),
    /// Restart process → coordinator: where is `gsid`?
    Query(Gsid),
    /// Coordinator → restart process: `gsid` is at (host, port); empty host
    /// means "not yet advertised, retry".
    QueryReply(Gsid, String, u16),
    /// Restart process → coordinator: expect `n` managers restoring
    /// generation `gen` (re-arms barrier accounting).
    RestartPlan(u32, u64),
    /// In-band refill frame: bytes the receiver drained and is returning to
    /// the sender for retransmission (§4.3 stage 6).
    Refill(Vec<u8>),
    /// Coordinator → managers: abandon checkpoint generation `gen` (a
    /// participant died mid-protocol); roll back and resume computing.
    CkptAbort(u64),
    /// A per-node relay announces itself (hostname). A relay is a protocol
    /// aggregation point, not a checkpointed participant: it fronts every
    /// manager on its node and speaks to the root as a single client.
    RelayRegister(String),
    /// Relay → coordinator: it now fronts `count` local participants, of
    /// which `lost` vanished since the last report (a non-zero `lost`
    /// during an in-flight generation is a lost-participant event).
    RelayMembership(u32, u32),
    /// Relay → coordinator: `count` of its local participants reached
    /// barrier `stage` of generation `gen`. The count is cumulative and
    /// idempotent — retransmissions carry the same or a larger value.
    BarrierAckN(u64, u8, u32),
    /// Relay → coordinator: liveness probe, sent only while generation
    /// `gen` is in flight (the relay is silent between checkpoints).
    RelayPing(u64),
    /// Coordinator → relay: answer to a [`Msg::RelayPing`].
    RelayPong(u64),
    /// Client → dmtcpd: open a session for tenant `tenant` expecting up to
    /// `procs` participants. The daemon answers with
    /// [`Msg::SessionAccepted`] or [`Msg::SessionRejected`].
    OpenSession(String, u32),
    /// dmtcpd → client: session `sid` admitted; its shard's root
    /// coordinator listens on `shard_port` and images live under `dir`.
    SessionAccepted(u64, u16, String),
    /// dmtcpd → client: admission refused. `code` is a
    /// [`RejectReason`] discriminant; `detail` is human-readable.
    SessionRejected(u8, String),
    /// Client → dmtcpd: tear down session `sid` (frees its registry slot;
    /// stored images persist per the tenant's retention policy).
    CloseSession(u64),
    /// Client → dmtcpd: request a checkpoint of session `sid` (tenant-
    /// tagged equivalent of [`Msg::CkptRequest`] travelling over the
    /// service socket rather than a coordinator connection).
    SessionCkpt(u64),
    /// Restart process → coordinator: expect `n` *migrating* managers
    /// restoring generation `gen` on new nodes while the rest of the
    /// computation keeps running. Unlike [`Msg::RestartPlan`] this does not
    /// re-arm the full barrier accounting — only the restart-stage barriers
    /// of `gen` count against `n`, live bystander clients are left alone,
    /// and no client is marked stale.
    MigratePlan(u32, u64),
}

/// Why `dmtcpd` refused to open a session (the `code` byte of
/// [`Msg::SessionRejected`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RejectReason {
    /// The registry is at `max_sessions`.
    SessionsFull = 1,
    /// The request's `procs` exceeds `max_procs_per_session`.
    TooManyProcs = 2,
    /// The tenant's stored bytes already exceed its quota.
    QuotaExceeded = 3,
    /// Malformed request (empty tenant name, zero procs).
    BadRequest = 4,
}

impl RejectReason {
    /// Decode the wire byte, if it names a known reason.
    pub fn from_code(code: u8) -> Option<RejectReason> {
        match code {
            1 => Some(RejectReason::SessionsFull),
            2 => Some(RejectReason::TooManyProcs),
            3 => Some(RejectReason::QuotaExceeded),
            4 => Some(RejectReason::BadRequest),
            _ => None,
        }
    }
}

impl_snap!(
    enum Msg {
        Register(vpid, host),
        CkptRequest(gen),
        BarrierReached(gen, stage),
        BarrierRelease(gen, stage),
        Advertise(gsid, host, port),
        Query(gsid),
        QueryReply(gsid, host, port),
        RestartPlan(n, gen),
        Refill(data),
        CkptAbort(gen),
        RelayRegister(host),
        RelayMembership(count, lost),
        BarrierAckN(gen, stage, count),
        RelayPing(gen),
        RelayPong(gen),
        OpenSession(tenant, procs),
        SessionAccepted(sid, shard_port, dir),
        SessionRejected(code, detail),
        CloseSession(sid),
        SessionCkpt(sid),
        MigratePlan(n, gen),
    }
);

/// Display name of a message variant (flight-recorder labels).
pub fn msg_name(msg: &Msg) -> &'static str {
    match msg {
        Msg::Register(..) => "Register",
        Msg::CkptRequest(..) => "CkptRequest",
        Msg::BarrierReached(..) => "BarrierReached",
        Msg::BarrierRelease(..) => "BarrierRelease",
        Msg::Advertise(..) => "Advertise",
        Msg::Query(..) => "Query",
        Msg::QueryReply(..) => "QueryReply",
        Msg::RestartPlan(..) => "RestartPlan",
        Msg::Refill(..) => "Refill",
        Msg::CkptAbort(..) => "CkptAbort",
        Msg::RelayRegister(..) => "RelayRegister",
        Msg::RelayMembership(..) => "RelayMembership",
        Msg::BarrierAckN(..) => "BarrierAckN",
        Msg::RelayPing(..) => "RelayPing",
        Msg::RelayPong(..) => "RelayPong",
        Msg::OpenSession(..) => "OpenSession",
        Msg::SessionAccepted(..) => "SessionAccepted",
        Msg::SessionRejected(..) => "SessionRejected",
        Msg::CloseSession(..) => "CloseSession",
        Msg::SessionCkpt(..) => "SessionCkpt",
        Msg::MigratePlan(..) => "MigratePlan",
    }
}

/// Encode a message as a length-prefixed frame.
pub fn frame(msg: &Msg) -> Vec<u8> {
    let body = msg.to_snap_bytes();
    let mut out = Vec::with_capacity(body.len() + 4);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Incremental frame decoder: feed arbitrary byte chunks, pop whole
/// messages.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
}

impl FrameBuf {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameBuf::default()
    }

    /// Feed received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete message, if one has fully arrived.
    pub fn pop(&mut self) -> Result<Option<Msg>, SnapError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let msg = Msg::from_snap_bytes(&self.buf[4..4 + len])?;
        self.buf.drain(..4 + len);
        Ok(Some(msg))
    }

    /// Bytes buffered but not yet consumed.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

/// Build the drain token for an end whose gsid is `g`.
pub fn drain_token(g: Gsid) -> Vec<u8> {
    let mut t = DRAIN_MAGIC.to_vec();
    t.extend_from_slice(&g.0.to_le_bytes());
    t
}

/// If `stream` ends with a drain token, split it into (drained data, peer
/// gsid).
pub fn split_drain_token(stream: &[u8]) -> Option<(&[u8], Gsid)> {
    let tok_len = DRAIN_MAGIC.len() + 8;
    if stream.len() < tok_len {
        return None;
    }
    let (data, tail) = stream.split_at(stream.len() - tok_len);
    if tail[..DRAIN_MAGIC.len()] != DRAIN_MAGIC {
        return None;
    }
    let g = u64::from_le_bytes(tail[DRAIN_MAGIC.len()..].try_into().expect("8 bytes"));
    Some((data, Gsid(g)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_through_arbitrary_chunking() {
        let msgs = vec![
            Msg::Register(12, "node00".into()),
            Msg::CkptRequest(3),
            Msg::BarrierReached(3, 2),
            Msg::Advertise(Gsid(9), "node01".into(), 21000),
            Msg::QueryReply(Gsid(9), String::new(), 0),
            Msg::Refill(vec![1, 2, 3, 255]),
        ];
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&frame(m));
        }
        let mut fb = FrameBuf::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(3) {
            fb.feed(chunk);
            while let Some(m) = fb.pop().expect("valid frames") {
                got.push(m);
            }
        }
        assert_eq!(got, msgs);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn incomplete_frame_stays_buffered() {
        let f = frame(&Msg::CkptRequest(1));
        let mut fb = FrameBuf::new();
        fb.feed(&f[..f.len() - 1]);
        assert_eq!(fb.pop().unwrap(), None);
        fb.feed(&f[f.len() - 1..]);
        assert_eq!(fb.pop().unwrap(), Some(Msg::CkptRequest(1)));
    }

    #[test]
    fn corrupt_frame_is_an_error_not_a_panic() {
        let mut fb = FrameBuf::new();
        fb.feed(&3u32.to_le_bytes());
        fb.feed(&[0xff, 0xff, 0xff]);
        assert!(fb.pop().is_err());
    }

    #[test]
    fn drain_token_roundtrip() {
        let mut stream = b"app data in flight".to_vec();
        stream.extend_from_slice(&drain_token(Gsid(77)));
        let (data, g) = split_drain_token(&stream).expect("token found");
        assert_eq!(data, b"app data in flight");
        assert_eq!(g, Gsid(77));
    }

    #[test]
    fn token_absent_when_stream_is_cut_short() {
        let mut stream = b"x".to_vec();
        stream.extend_from_slice(&drain_token(Gsid(1)));
        assert!(split_drain_token(&stream[..stream.len() - 1]).is_none());
        assert!(split_drain_token(b"short").is_none());
    }
}
