//! The checkpoint-manager thread (§4.2–4.3).
//!
//! One manager thread lives in every traced process. It connects to the
//! coordinator at startup and then executes the seven-stage checkpoint
//! algorithm of Figure 1, synchronized by the coordinator's six global
//! barriers:
//!
//! 1. wait for a checkpoint request;
//! 2. suspend user threads, save fd owners — barrier *suspended*;
//! 3. elect shared-fd leaders by misusing `fcntl(F_SETOWN)` (every process
//!    sets itself as owner; the last write wins) — barrier *elected*;
//! 4. drain kernel buffers with an in-band token that doubles as the peer
//!    gsid handshake, and write the connection-information table — barrier
//!    *drained*;
//! 5. delegate the memory image to MTCP — barrier *checkpointed*;
//! 6. refill kernel buffers by returning drained bytes to their sender for
//!    retransmission — barrier *refilled*;
//! 7. resume user threads.
//!
//! After a restart the manager is recreated in [`Mode::RestartRefill`]: it
//! re-registers, waits for the *restored* barrier, replays stage 6 over the
//! reconnected sockets, and resumes the user threads (Figure 2 steps 6–7).
//!
//! The manager is a non-user thread: it keeps running while user threads
//! are frozen, and MTCP does not capture it in the image — a fresh one is
//! built at restart, exactly as the real MTCP restart routine does.

use crate::coord::{record_image, stage};
use crate::gsid::{global, Gsid};
use crate::hijack::{hijack_of, ConnTable, FdKindRec, FdRecord, PtyRecord};
use crate::proto::{drain_token, frame, split_drain_token, FrameBuf, Msg};

use oskit::fdtable::FdObject;
use oskit::net::Conn;
use oskit::world::Pid;
use oskit::{Errno, Fd, Kernel};
use simkit::{mix2, DetRng, Nanos};
use std::collections::BTreeSet;

/// Manager operating mode at creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Normal launch: steady-state checkpoint loop.
    Steady,
    /// Created by `dmtcp_restart`: perform the restart refill first.
    RestartRefill,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Init,
    Idle,
    DelayGate,
    Suspend,
    SuspendDone,
    AwaitSuspended,
    Elect,
    AwaitElected,
    DrainRun,
    AwaitDrained,
    WriteImage,
    WriteDone,
    AwaitCheckpointed,
    RefillRun,
    AwaitRefilled,
    Resume,
    /// Forked mode: user threads are running again; sleep until the
    /// background compress+write pipeline (the COW child) drains.
    BgWait,
    /// Forked mode: image durable, `CKPT_WRITTEN` sent; awaiting its
    /// release (or a drain abort).
    AwaitWritten,
    RestartInit,
    AwaitRestored,
    RestartRefillRun,
    AwaitRestartRefilled,
    RestartResume,
}

/// One in-band transfer job (drain or refill) on a led connection end.
struct XferJob {
    fd: Fd,
    gsid: Gsid,
    /// Bytes to push out (token or refill frame), with send progress.
    out: Vec<u8>,
    out_off: usize,
    /// Inbound accumulation (drain: until token; refill: until one frame).
    in_buf: Vec<u8>,
    got_in: bool,
    /// Refill only: payload to retransmit after the peer's frame arrived.
    resend: Vec<u8>,
    resend_off: usize,
    /// Drain result.
    drained: Vec<u8>,
    peer_gsid: Option<Gsid>,
    eof: bool,
}

impl XferJob {
    fn done_drain(&self) -> bool {
        self.out_off >= self.out.len() && self.got_in
    }
    fn done_refill(&self) -> bool {
        self.out_off >= self.out.len() && self.got_in && self.resend_off >= self.resend.len()
    }
}

/// What [`Manager::released`] observed while awaiting a barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    /// The awaited barrier was released.
    Released,
    /// Nothing decisive arrived; block (a retransmit timer is armed).
    Blocked,
    /// The coordinator abandoned the generation; roll back and resume.
    Aborted,
}

/// Initial barrier-retransmit timeout (doubles on every resend; a seeded
/// per-process jitter keeps retransmissions from synchronizing).
const BARRIER_RETRY_INITIAL: Nanos = Nanos::from_millis(30);

/// The checkpoint-manager thread program.
pub struct Manager {
    phase: Phase,
    coord_fd: Fd,
    fb: FrameBuf,
    cur_gen: u64,
    jobs: Vec<XferJob>,
    saved_owners: Vec<(Fd, u32)>,
    // Stage timestamps (local barrier-release receipt times).
    t_request: Nanos,
    t_stage: [Nanos; 7],
    write_resume_at: Nanos,
    /// In-flight forked (background) image write: holds the COW snapshot
    /// alive so application writes during the overlapped drain are charged
    /// as copies. `Some` from the fork until the pipeline drains.
    forked: Option<mtcp::ForkedWrite>,
    /// Image path of the in-flight forked write (recorded with the
    /// coordinator only once durable).
    bg_path: String,
    /// Retransmit deadline for the in-flight `BarrierReached` (armed while
    /// awaiting a release; the network may have eaten either direction).
    deadline: Option<Nanos>,
    backoff: Nanos,
    /// Jitter source, seeded from the vpid so retries are deterministic
    /// per process without consuming the world's RNG.
    rng: Option<DetRng>,
}

impl Manager {
    /// A fresh manager in the given mode.
    pub fn new(mode: Mode) -> Self {
        Manager {
            phase: match mode {
                Mode::Steady => Phase::Init,
                Mode::RestartRefill => Phase::RestartInit,
            },
            coord_fd: -1,
            fb: FrameBuf::new(),
            cur_gen: 0,
            jobs: Vec::new(),
            saved_owners: Vec::new(),
            t_request: Nanos::ZERO,
            t_stage: [Nanos::ZERO; 7],
            write_resume_at: Nanos::ZERO,
            forked: None,
            bg_path: String::new(),
            deadline: None,
            backoff: BARRIER_RETRY_INITIAL,
            rng: None,
        }
    }

    // ------------------------------------------------------------------
    // Coordinator plumbing
    // ------------------------------------------------------------------

    fn connect_coord(&mut self, k: &mut Kernel<'_>) -> Result<(), oskit::program::Step> {
        use oskit::program::Step;
        let (host, port, vpid) = {
            let pid = k.pid;
            let h = hijack_of(k.w, pid).expect("manager in traced process");
            (h.coord_host.clone(), h.coord_port, h.vpid)
        };
        match k.connect(&host, port) {
            Ok(fd) => {
                self.coord_fd = fd;
                // Protected-fd convention: this connection is DMTCP's own
                // and must never be elected, drained, or inherited.
                if let Ok(FdObject::Sock(cid, _)) = k.fd_object(fd) {
                    global(k.w).protected_conns.insert(cid);
                    // Tell the fault injector this is a coordinator-protocol
                    // connection (message faults target only these).
                    faultkit::note_protocol_conn(k.w, cid);
                }
                let msg = frame(&Msg::Register(vpid, k.hostname()));
                let n = k.write(fd, &msg).expect("register");
                assert_eq!(n, msg.len());
                Ok(())
            }
            Err(Errno::ConnRefused) => Err(Step::Sleep(Nanos::from_millis(5))),
            Err(e) => panic!("manager connect to coordinator: {e:?}"),
        }
    }

    /// Pump coordinator bytes into the frame buffer; returns the next
    /// message if one arrived.
    fn poll_coord(&mut self, k: &mut Kernel<'_>) -> Result<Option<Msg>, ()> {
        loop {
            if let Some(msg) = self.fb.pop().expect("well-formed coordinator frames") {
                return Ok(Some(msg));
            }
            match k.read(self.coord_fd, 64 * 1024) {
                Ok(b) if b.is_empty() => {
                    // The coordinator (or, hierarchically, this node's
                    // relay) hung up. Without its control channel this
                    // process can never pass another barrier — it is as
                    // good as dead to the computation, and keeping it
                    // running would only leave barriers hanging. Treat it
                    // like node death: kill the process; a restart rolls
                    // back to the last durable generation.
                    let pid = k.pid;
                    k.trace("manager", "control channel lost; terminating process");
                    k.obs().metrics.inc("core.manager.orphaned", 0);
                    k.w.signal(k.sim, pid, oskit::proc::sig::SIGKILL);
                    return Err(());
                }
                Ok(b) => self.fb.feed(&b),
                Err(Errno::WouldBlock) => return Err(()),
                // Our own fd table is already torn down: this process was
                // just SIGKILLed (control-channel loss detected on the
                // send side) and this step is its last.
                Err(Errno::BadFd) => return Err(()),
                Err(e) => panic!("manager read coordinator: {e:?}"),
            }
        }
    }

    fn send_barrier(&mut self, k: &mut Kernel<'_>, stg: u8) {
        if k.obs().journal.wants(obs::journal::CLASS_STAGE) {
            let (now, gen) = (k.now(), self.cur_gen);
            let vpid = self.vpid(k) as u64;
            k.obs().journal.record(
                now,
                obs::journal::CLASS_STAGE,
                "stage.reach",
                None,
                &[("gen", gen), ("stage", stg as u64), ("vpid", vpid)],
                "",
            );
        }
        let msg = frame(&Msg::BarrierReached(self.cur_gen, stg));
        match k.write(self.coord_fd, &msg) {
            Ok(n) => assert_eq!(n, msg.len()),
            Err(_) => {
                // The coordinator (or this node's relay) died under us —
                // same situation as reading EOF off the control channel:
                // this process can never pass another barrier, so treat it
                // as node death and let restart roll back to the last
                // durable generation.
                let pid = k.pid;
                k.trace(
                    "manager",
                    "control channel lost on barrier send; terminating",
                );
                k.obs().metrics.inc("core.manager.orphaned", 0);
                k.w.signal(k.sim, pid, oskit::proc::sig::SIGKILL);
            }
        }
    }

    /// Poll for `BarrierRelease(cur_gen, stg)`. Stale retransmissions
    /// (releases of earlier stages or generations, duplicate checkpoint
    /// requests) are skipped; `CkptAbort` of the current generation
    /// surfaces as [`Verdict::Aborted`]. On [`Verdict::Blocked`] a
    /// retransmit timer is armed: if the release does not arrive by the
    /// deadline the `BarrierReached` is re-sent (the coordinator treats
    /// duplicates as idempotent and re-sends a lost release).
    fn released(&mut self, k: &mut Kernel<'_>, stg: u8) -> Verdict {
        loop {
            match self.poll_coord(k) {
                Ok(Some(Msg::BarrierRelease(g, s))) if g == self.cur_gen && s == stg => {
                    self.deadline = None;
                    return Verdict::Released;
                }
                // A duplicate release of a stage we already passed, or one
                // from a previous generation: harmless retransmission.
                Ok(Some(Msg::BarrierRelease(g, s))) if g < self.cur_gen || s < stg => continue,
                // An in-line writer acks CKPT_WRITTEN back at WriteDone, so
                // under message reordering its release can overtake the
                // REFILLED release. It is never awaited in-line — skip.
                Ok(Some(Msg::BarrierRelease(g, s)))
                    if g == self.cur_gen && s == stage::CKPT_WRITTEN =>
                {
                    continue
                }
                // The coordinator retransmitted the request that started
                // this generation; we are already past it.
                Ok(Some(Msg::CkptRequest(g))) if g <= self.cur_gen => continue,
                Ok(Some(Msg::CkptAbort(g))) => {
                    if g == self.cur_gen {
                        self.deadline = None;
                        return Verdict::Aborted;
                    }
                    continue; // stale abort of an older attempt
                }
                Ok(Some(other)) => panic!("manager awaiting stage {stg}: unexpected {other:?}"),
                Ok(None) => unreachable!(),
                Err(()) => {
                    self.arm_or_resend(k, stg);
                    return Verdict::Blocked;
                }
            }
        }
    }

    /// Arm the barrier-retransmit timer, or — past the deadline — re-send
    /// `BarrierReached` and back off (doubling, with seeded jitter).
    fn arm_or_resend(&mut self, k: &mut Kernel<'_>, stg: u8) {
        let now = k.now();
        match self.deadline {
            None => self.backoff = BARRIER_RETRY_INITIAL,
            // A timer for this deadline is already scheduled and has not
            // expired: this is a spurious wake (e.g. a retransmitted
            // coordinator request made the fd readable). Re-arming here
            // would push the deadline forward on every wake — with two
            // wake sources in flight the resend would never become due.
            Some(d) if now < d => return,
            Some(_) => {
                k.obs().metrics.inc("core.barrier.retries", stg as u64);
                self.send_barrier(k, stg);
                // Exponential backoff, capped: a barrier legitimately takes
                // as long as its slowest participant (restarts can be
                // seconds).
                self.backoff = (self.backoff + self.backoff).min(Nanos::from_millis(2_000));
            }
        }
        if self.rng.is_none() {
            let vpid = self.vpid(k);
            self.rng = Some(DetRng::seed_from_u64(mix2(
                0x0062_6172_7269_6572,
                vpid as u64,
            )));
        }
        let jitter = Nanos(self.rng.as_mut().expect("seeded").range(0, 15_000_000));
        let dt = self.backoff + jitter;
        self.deadline = Some(now + dt);
        let (pid, tid) = (k.pid, k.tid);
        k.sim.after(dt, move |w, sim| {
            w.wake(sim, (pid, tid));
        });
    }

    // ------------------------------------------------------------------
    // Stage 2: suspend
    // ------------------------------------------------------------------

    fn do_suspend(&mut self, k: &mut Kernel<'_>) {
        let pid = k.pid;
        k.w.suspend_user_threads(k.sim, pid);
        // Save every fd's owner (stage 2: "DMTCP saves the owner of each
        // file descriptor") so stage 6 can restore the original values.
        self.saved_owners = k
            .list_fds()
            .iter()
            .filter_map(|(fd, obj)| match obj {
                FdObject::Sock(..) | FdObject::Listener(_) | FdObject::File(_) => {
                    Some((*fd, k.fcntl_getown(*fd).expect("fd just listed").0))
                }
                _ => None,
            })
            .collect();
    }

    // ------------------------------------------------------------------
    // Stage 3: election
    // ------------------------------------------------------------------

    fn do_elect(&mut self, k: &mut Kernel<'_>) {
        let vpid = self.vpid(k);
        for (fd, obj) in k.list_fds() {
            if fd == self.coord_fd {
                continue; // DMTCP's own connection is never checkpointed
            }
            if matches!(
                obj,
                FdObject::Sock(..) | FdObject::Listener(_) | FdObject::File(_)
            ) {
                k.fcntl_setown(fd, Pid(vpid)).expect("setown");
            }
        }
    }

    fn vpid(&self, k: &mut Kernel<'_>) -> u32 {
        let pid = k.pid;
        hijack_of(k.w, pid).expect("traced").vpid
    }

    /// The led connection ends of this process: `(fd, ConnId, end)` where
    /// the stage-3 election chose us.
    fn led_ends(&self, k: &mut Kernel<'_>) -> Vec<(Fd, oskit::net::ConnId, u8)> {
        let vpid = self.vpid(k);
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for (fd, obj) in k.list_fds() {
            if fd == self.coord_fd {
                continue;
            }
            if let FdObject::Sock(cid, end) = obj {
                if global(k.w).protected_conns.contains(&cid) {
                    continue;
                }
                if !seen.insert((cid, end)) {
                    continue; // dup'd fd of the same end
                }
                let owner = k.fcntl_getown(fd).expect("sock fd").0;
                if owner == vpid {
                    out.push((fd, cid, end));
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Stage 4: drain
    // ------------------------------------------------------------------

    fn build_drain_jobs(&mut self, k: &mut Kernel<'_>) {
        self.jobs.clear();
        for (fd, cid, _end) in self.led_ends(k) {
            let gsid = global(k.w).conn(cid);
            self.jobs.push(XferJob {
                fd,
                gsid,
                out: drain_token(gsid),
                out_off: 0,
                in_buf: Vec::new(),
                got_in: false,
                resend: Vec::new(),
                resend_off: 0,
                drained: Vec::new(),
                peer_gsid: None,
                eof: false,
            });
        }
    }

    /// Advance all drain jobs; Ok(true) = all done, Ok(false) = progress
    /// made, Err(()) = everything blocked (wakers registered).
    fn run_drain(&mut self, k: &mut Kernel<'_>) -> Result<bool, ()> {
        let mut all_done = true;
        let mut progressed = false;
        for j in &mut self.jobs {
            if j.done_drain() {
                continue;
            }
            // Push the token out (may interleave with reads under full
            // buffers in both directions).
            while j.out_off < j.out.len() {
                match k.write(j.fd, &j.out[j.out_off..]) {
                    Ok(n) => {
                        j.out_off += n;
                        progressed = true;
                    }
                    Err(Errno::WouldBlock) => break,
                    Err(Errno::Pipe) => {
                        // Our token cannot go out: either the peer fully
                        // closed (nothing will come back) or this end was
                        // half-closed with `shutdown` (the peer can still
                        // talk, so keep reading for its token normally).
                        j.out_off = j.out.len();
                        let peer_gone = match k.fd_object(j.fd) {
                            Ok(FdObject::Sock(cid, end)) => {
                                k.w.conns
                                    .get(&cid)
                                    .map(|c| c.closed[Conn::peer(end as usize)])
                                    .unwrap_or(true)
                            }
                            _ => true,
                        };
                        if peer_gone {
                            j.eof = true;
                        }
                        progressed = true;
                    }
                    Err(e) => panic!("drain token send: {e:?}"),
                }
            }
            // Drain inbound until the peer's token appears.
            while !j.got_in {
                match k.read(j.fd, 64 * 1024) {
                    Ok(b) if b.is_empty() => {
                        // EOF: peer closed; whatever arrived is the drain.
                        j.drained = std::mem::take(&mut j.in_buf);
                        j.got_in = true;
                        j.eof = true;
                        progressed = true;
                    }
                    Ok(b) => {
                        j.in_buf.extend_from_slice(&b);
                        if let Some((data, peer)) = split_drain_token(&j.in_buf) {
                            j.drained = data.to_vec();
                            j.peer_gsid = Some(peer);
                            j.got_in = true;
                        }
                        progressed = true;
                    }
                    Err(Errno::WouldBlock) => break,
                    Err(e) => panic!("drain read: {e:?}"),
                }
            }
            if j.eof && j.out_off >= j.out.len() && !j.got_in {
                // Write side saw EPIPE; nothing will arrive. Pull whatever
                // sits in the kernel buffer directly (privileged, models
                // draining a half-closed socket).
                j.drained = std::mem::take(&mut j.in_buf);
                j.got_in = true;
            }
            if !j.done_drain() {
                all_done = false;
            }
        }
        if all_done {
            Ok(true)
        } else if progressed {
            Ok(false)
        } else {
            Err(())
        }
    }

    /// After draining: store results and build the connection table.
    fn finish_drain(&mut self, k: &mut Kernel<'_>) {
        let pid = k.pid;
        let drained: Vec<(Gsid, Vec<u8>)> = self
            .jobs
            .iter()
            .map(|j| (j.gsid, j.drained.clone()))
            .collect();
        let total: u64 = drained.iter().map(|(_, d)| d.len() as u64).sum();
        k.obs().metrics.add("core.drain.bytes", self.cur_gen, total);
        let table = self.build_conn_table(k);
        let h = hijack_of(k.w, pid).expect("traced");
        h.drained = drained;
        h.table = table;
        h.table.drained = h.drained.clone();
    }

    fn build_conn_table(&mut self, k: &mut Kernel<'_>) -> ConnTable {
        let vpid = self.vpid(k);
        let pid = k.pid;
        let my_node = k.node();
        let host = k.hostname();
        let mut records = Vec::new();
        let mut ptys = Vec::new();
        let led: BTreeSet<Fd> = self.led_ends(k).iter().map(|(fd, _, _)| *fd).collect();
        // Identify, per pty, the lowest-pid master holder on this node —
        // that process saves the pty state.
        for (fd, obj) in k.list_fds() {
            if self.coord_fd == fd {
                continue; // the manager's own socket is not application state
            }
            if let FdObject::Sock(cid, _) = obj {
                if global(k.w).protected_conns.contains(&cid) {
                    continue;
                }
            }
            let cloexec = false;
            match obj {
                FdObject::File(of_id) => {
                    let f = &k.w.open_files[&of_id];
                    records.push(FdRecord {
                        fd,
                        cloexec,
                        kind: FdKindRec::File {
                            path: f.path.clone(),
                            offset: f.offset,
                            writable: f.writable,
                        },
                    });
                }
                FdObject::Sock(cid, end) => {
                    let kind_byte = match k.w.conns.get(&cid).map(|c| c.kind) {
                        Some(oskit::net::ConnKind::Tcp) => 0,
                        Some(oskit::net::ConnKind::Unix) => 1,
                        Some(oskit::net::ConnKind::SocketPair) => 2,
                        Some(oskit::net::ConnKind::Pipe) => 3,
                        None => 0,
                    };
                    let shut_wr =
                        k.w.conns
                            .get(&cid)
                            .map(|c| c.wr_closed[end as usize])
                            .unwrap_or(false);
                    let gsid = global(k.w).conn(cid);
                    records.push(FdRecord {
                        fd,
                        cloexec,
                        kind: FdKindRec::Sock {
                            gsid,
                            end,
                            peer_seen: self
                                .jobs
                                .iter()
                                .any(|j| j.gsid == gsid && j.peer_gsid.is_some()),
                            leader: led.contains(&fd),
                            kind_byte,
                            shut_wr,
                        },
                    });
                }
                FdObject::Listener(lid) => {
                    let port = k.w.listeners.get(&lid).map(|l| l.port).unwrap_or(0);
                    records.push(FdRecord {
                        fd,
                        cloexec,
                        kind: FdKindRec::Listener { port },
                    });
                }
                FdObject::PtyMaster(ptid) => {
                    let gsid = global(k.w).pty(ptid);
                    records.push(FdRecord {
                        fd,
                        cloexec,
                        kind: FdKindRec::PtyMaster { gsid },
                    });
                    // Save pty state if we are the lowest-pid master holder.
                    let lowest =
                        k.w.procs
                            .values()
                            .filter(|p| p.node == my_node && p.alive())
                            .filter(|p| {
                                p.fds
                                    .iter()
                                    .any(|(_, e)| e.obj == FdObject::PtyMaster(ptid))
                            })
                            .map(|p| p.pid)
                            .min();
                    if lowest == Some(pid) {
                        let p = &k.w.ptys[&ptid];
                        let controlling_vpid = p.controlling_pid.and_then(|cp| {
                            k.w.procs.get(&cp).map(|proc| proc.virt_pid.unwrap_or(cp.0))
                        });
                        ptys.push(PtyRecord {
                            gsid,
                            to_slave: p.to_slave.iter().copied().collect(),
                            to_master: p.to_master.iter().copied().collect(),
                            termios: p.termios,
                            controlling_vpid,
                        });
                    }
                }
                FdObject::PtySlave(ptid) => {
                    let gsid = global(k.w).pty(ptid);
                    records.push(FdRecord {
                        fd,
                        cloexec,
                        kind: FdKindRec::PtySlave { gsid },
                    });
                }
            }
        }
        let ctty = {
            let p = &k.w.procs[&pid];
            p.ctty
        }
        .map(|ptid| global(k.w).pty(ptid));
        let known_vpids = k.w.procs[&pid].pid_map.keys().copied().collect();
        let parent_vpid = {
            let ppid = k.w.procs[&pid].ppid;
            k.w.procs
                .get(&ppid)
                .filter(|pp| crate::hijack::is_traced_proc(pp))
                .and_then(|pp| pp.virt_pid)
                .unwrap_or(0)
        };
        ConnTable {
            vpid,
            host,
            records,
            drained: Vec::new(), // filled by finish_drain
            ptys,
            ctty,
            known_vpids,
            parent_vpid,
        }
    }

    // ------------------------------------------------------------------
    // Stage 5: write image
    // ------------------------------------------------------------------

    fn do_write(&mut self, k: &mut Kernel<'_>) -> Nanos {
        use simkit::Snap;
        let pid = k.pid;
        let (path, mode, vpid, meta) = {
            let h = hijack_of(k.w, pid).expect("traced");
            (
                h.image_path(self.cur_gen),
                h.mode,
                h.vpid,
                h.table.to_snap_bytes(),
            )
        };
        let now = k.now();
        if mode == mtcp::WriteMode::ForkedCompressed {
            // Forked checkpointing: COW-snapshot and return after the fork
            // pause; compression and I/O drain in the background. The image
            // is *not* recorded with the coordinator (nor visible to the
            // fault injector) until the pipeline completes — a restart
            // before then must use the previous generation.
            let fw = mtcp::begin_forked_write(k.w, now, pid, &path, vpid, meta);
            global(k.w).checkpointed_vpids.insert(vpid);
            if k.obs().journal.wants(obs::journal::CLASS_STAGE) {
                let gen = self.cur_gen;
                let args = [
                    ("gen", gen),
                    ("vpid", vpid as u64),
                    ("dirty_bytes", fw.report.captured_raw_bytes),
                    ("incremental", fw.report.incremental as u64),
                ];
                k.obs().journal.record(
                    now,
                    obs::journal::CLASS_STAGE,
                    "drain.begin",
                    None,
                    &args,
                    "",
                );
            }
            self.write_resume_at = fw.report.resume_at;
            let resume_at = fw.report.resume_at;
            self.forked = Some(fw);
            self.bg_path = path;
            return resume_at;
        }
        let report = mtcp::write_image(k.w, now, pid, &path, mode, vpid, meta);
        global(k.w).checkpointed_vpids.insert(vpid);
        let host = k.hostname();
        let node = k.node();
        faultkit::image_written(k.w, self.cur_gen, node, &path);
        let root_port = hijack_of(k.w, pid).expect("traced").root_port;
        record_image(k.w, root_port, path, host);
        self.write_resume_at = report.resume_at;
        report.resume_at
    }

    // ------------------------------------------------------------------
    // Stage 6: refill
    // ------------------------------------------------------------------

    fn build_refill_jobs(&mut self, k: &mut Kernel<'_>) {
        let pid = k.pid;
        let (drained, records) = {
            let h = hijack_of(k.w, pid).expect("traced");
            (h.drained.clone(), h.table.records.clone())
        };
        self.jobs.clear();
        for r in &records {
            if let FdKindRec::Sock { gsid, leader, .. } = &r.kind {
                if !*leader {
                    continue;
                }
                // Guard against dup'd fds: one job per gsid+fd pair is
                // prevented by taking the first record per gsid.
                if self.jobs.iter().any(|j| j.gsid == *gsid && j.fd == r.fd) {
                    continue;
                }
                let data = drained
                    .iter()
                    .find(|(g, _)| g == gsid)
                    .map(|(_, d)| d.clone())
                    .unwrap_or_default();
                self.jobs.push(XferJob {
                    fd: r.fd,
                    gsid: *gsid,
                    out: frame(&Msg::Refill(data)),
                    out_off: 0,
                    in_buf: Vec::new(),
                    got_in: false,
                    resend: Vec::new(),
                    resend_off: 0,
                    drained: Vec::new(),
                    peer_gsid: None,
                    eof: false,
                });
            }
        }
    }

    fn run_refill(&mut self, k: &mut Kernel<'_>) -> Result<bool, ()> {
        let mut all_done = true;
        let mut progressed = false;
        // Bytes returned to kernel buffers, keyed by generation; the restart
        // replay of stage 6 counts separately so per-generation
        // drained == refilled holds for checkpoint generations.
        let refill_metric = if self.phase == Phase::RestartRefillRun {
            "core.restart_refill.bytes"
        } else {
            "core.refill.bytes"
        };
        let gen = self.cur_gen;
        for j in &mut self.jobs {
            if j.done_refill() {
                continue;
            }
            while j.out_off < j.out.len() {
                match k.write(j.fd, &j.out[j.out_off..]) {
                    Ok(n) => {
                        j.out_off += n;
                        progressed = true;
                    }
                    Err(Errno::WouldBlock) => break,
                    Err(Errno::Pipe) => {
                        j.out_off = j.out.len();
                        j.eof = true;
                        progressed = true;
                    }
                    Err(e) => panic!("refill frame send: {e:?}"),
                }
            }
            // Read EXACTLY one frame. The peer's retransmitted application
            // bytes may already sit behind the frame in the same direction;
            // over-reading would steal them from the application, so reads
            // are capped at the bytes the frame still needs.
            while !j.got_in {
                let need = if j.in_buf.len() < 4 {
                    4 - j.in_buf.len()
                } else {
                    let len =
                        u32::from_le_bytes(j.in_buf[..4].try_into().expect("4 bytes")) as usize;
                    4 + len - j.in_buf.len()
                };
                if need == 0 {
                    let mut fb = FrameBuf::new();
                    fb.feed(&j.in_buf);
                    match fb.pop().expect("refill frame") {
                        Some(Msg::Refill(data)) => {
                            j.resend = data;
                            j.got_in = true;
                            progressed = true;
                        }
                        other => panic!("expected refill frame, got {other:?}"),
                    }
                    break;
                }
                match k.read(j.fd, need) {
                    Ok(b) if b.is_empty() => {
                        // Peer is gone: restore our own drained bytes
                        // directly into the kernel buffer (privileged).
                        j.got_in = true;
                        j.eof = true;
                        progressed = true;
                    }
                    Ok(b) => {
                        j.in_buf.extend_from_slice(&b);
                        progressed = true;
                    }
                    Err(Errno::WouldBlock) => break,
                    Err(e) => panic!("refill read: {e:?}"),
                }
            }
            if j.got_in && !j.eof {
                while j.resend_off < j.resend.len() {
                    match k.write(j.fd, &j.resend[j.resend_off..]) {
                        Ok(n) => {
                            j.resend_off += n;
                            k.obs().metrics.add(refill_metric, gen, n as u64);
                            progressed = true;
                        }
                        Err(Errno::WouldBlock) => break,
                        Err(Errno::Pipe) => {
                            j.resend_off = j.resend.len();
                            progressed = true;
                        }
                        Err(e) => panic!("refill resend: {e:?}"),
                    }
                }
            } else if j.eof && j.got_in {
                j.resend_off = j.resend.len();
            }
            if !j.done_refill() {
                all_done = false;
            }
        }
        if all_done {
            // Half-closed conns: push our drained bytes back directly.
            for j in &self.jobs {
                if j.eof {
                    self.privileged_refill(k, j.fd, j.gsid, refill_metric, gen);
                }
            }
            Ok(true)
        } else if progressed {
            Ok(false)
        } else {
            Err(())
        }
    }

    fn privileged_refill(
        &self,
        k: &mut Kernel<'_>,
        fd: Fd,
        gsid: Gsid,
        refill_metric: &'static str,
        gen: u64,
    ) {
        let pid = k.pid;
        let data = hijack_of(k.w, pid)
            .and_then(|h| h.drained.iter().find(|(g, _)| *g == gsid).cloned())
            .map(|(_, d)| d)
            .unwrap_or_default();
        if data.is_empty() {
            return;
        }
        if let Ok(FdObject::Sock(cid, end)) = k.fd_object(fd) {
            if let Some(conn) = k.w.conns.get_mut(&cid) {
                let src = Conn::peer(end as usize);
                conn.dirs[src].recv_buf.extend(data.iter().copied());
                k.w.obs.metrics.add(refill_metric, gen, data.len() as u64);
            }
        }
    }

    fn restore_owners(&mut self, k: &mut Kernel<'_>) {
        for (fd, owner) in std::mem::take(&mut self.saved_owners) {
            // The fd may have been closed by a half-dead peer; ignore.
            let _ = k.fcntl_setown(fd, Pid(owner));
        }
    }

    /// Roll back an aborted generation and resume the user threads. What
    /// must be undone depends on how far the protocol got:
    /// after the drain (but before the refill ran) the drained bytes are
    /// pushed straight back into our own kernel receive buffers — the
    /// in-band refill exchange cannot run, since peers may be dead.
    fn do_abort(&mut self, k: &mut Kernel<'_>, reinject: bool) {
        let gen = self.cur_gen;
        if reinject {
            for i in 0..self.jobs.len() {
                let (fd, gsid) = (self.jobs[i].fd, self.jobs[i].gsid);
                self.privileged_refill(k, fd, gsid, "core.abort_reinject.bytes", gen);
            }
        }
        self.jobs.clear();
        self.restore_owners(k);
        // An aborted generation discards any in-flight forked write: end
        // the COW ledger and drop the snapshot (the half-written image is
        // never recorded, so restarts cannot pick it up). `abort` also
        // rolls the incremental baseline back — the consumed dirty set is
        // merged into the live address space so the next incremental
        // capture stays relative to the last *durable* image.
        if let Some(fw) = self.forked.take() {
            let pid = k.pid;
            let _ = fw.abort(k.w, pid);
            if k.obs().journal.wants(obs::journal::CLASS_STAGE) {
                let now = k.now();
                let vpid = self.vpid(k) as u64;
                k.obs().journal.record(
                    now,
                    obs::journal::CLASS_STAGE,
                    "drain.abort",
                    None,
                    &[("gen", gen), ("vpid", vpid)],
                    "",
                );
            }
            self.bg_path.clear();
        }
        let pid = k.pid;
        k.w.resume_user_threads(k.sim, pid);
        k.obs().metrics.inc("core.ckpt.manager_aborts", 0);
        k.trace_with("manager", || format!("gen {gen} aborted; rolled back"));
        self.phase = Phase::Idle;
    }

    /// Record this generation's Figure-1 stage breakdown into the metrics
    /// registry (histograms labeled by generation — Table 1a derives its
    /// means from these) and, when span capture is on, one complete span
    /// per stage on this process's track.
    fn record_stats(&mut self, k: &mut Kernel<'_>) {
        let gen = self.cur_gen;
        let stages: [(&'static str, &'static str, Nanos, Nanos); 5] = [
            (
                "core.stage.suspend",
                "stage.suspend",
                self.t_request,
                self.t_stage[2],
            ),
            (
                "core.stage.elect",
                "stage.elect",
                self.t_stage[2],
                self.t_stage[3],
            ),
            (
                "core.stage.drain",
                "stage.drain",
                self.t_stage[3],
                self.t_stage[4],
            ),
            (
                "core.stage.write",
                "stage.write",
                self.t_stage[4],
                self.t_stage[5],
            ),
            (
                "core.stage.refill",
                "stage.refill",
                self.t_stage[5],
                self.t_stage[6],
            ),
        ];
        let track = k.track();
        let obs = k.obs();
        for (metric, span, start, end) in stages {
            obs.metrics.observe(metric, gen, (end - start).0);
            obs.spans
                .complete(track, span, "ckpt", start, end, vec![("gen", gen)]);
        }
        let pid = k.pid;
        let h = hijack_of(k.w, pid).expect("traced");
        h.gen = self.cur_gen;
    }
}

impl oskit::program::Program for Manager {
    fn step(&mut self, k: &mut Kernel<'_>) -> oskit::program::Step {
        use oskit::program::Step;
        loop {
            match self.phase {
                Phase::Init => match self.connect_coord(k) {
                    Ok(()) => self.phase = Phase::Idle,
                    Err(step) => return step,
                },
                Phase::Idle => match self.poll_coord(k) {
                    Ok(Some(Msg::CkptRequest(gen))) if gen > self.cur_gen => {
                        self.cur_gen = gen;
                        self.t_request = k.now();
                        self.phase = Phase::DelayGate;
                    }
                    // Stale retransmissions: a duplicate request for a
                    // generation we already ran (or saw aborted), a late
                    // release, or a late abort. All harmless.
                    Ok(Some(Msg::CkptRequest(_)))
                    | Ok(Some(Msg::BarrierRelease(..)))
                    | Ok(Some(Msg::CkptAbort(_))) => {}
                    Ok(Some(other)) => panic!("manager idle: unexpected {other:?}"),
                    Ok(None) => unreachable!(),
                    Err(()) => return Step::Block,
                },
                Phase::DelayGate => {
                    // dmtcpaware: honor delayed checkpoints around critical
                    // sections.
                    let pid = k.pid;
                    let delayed = hijack_of(k.w, pid)
                        .map(|h| h.aware.delay_depth > 0)
                        .unwrap_or(false);
                    if delayed {
                        return Step::Sleep(Nanos::from_millis(1));
                    }
                    self.phase = Phase::Suspend;
                }
                Phase::Suspend => {
                    self.do_suspend(k);
                    self.phase = Phase::SuspendDone;
                    // Model the cost of stopping threads via signals.
                    return Step::Sleep(k.w.spec.suspend_overhead);
                }
                Phase::SuspendDone => {
                    self.send_barrier(k, stage::SUSPENDED);
                    self.phase = Phase::AwaitSuspended;
                }
                Phase::AwaitSuspended => match self.released(k, stage::SUSPENDED) {
                    Verdict::Released => {
                        self.t_stage[2] = k.now();
                        self.phase = Phase::Elect;
                    }
                    Verdict::Aborted => self.do_abort(k, false),
                    Verdict::Blocked => return Step::Block,
                },
                Phase::Elect => {
                    self.do_elect(k);
                    self.send_barrier(k, stage::ELECTED);
                    self.phase = Phase::AwaitElected;
                }
                Phase::AwaitElected => match self.released(k, stage::ELECTED) {
                    Verdict::Released => {
                        self.t_stage[3] = k.now();
                        self.build_drain_jobs(k);
                        self.phase = Phase::DrainRun;
                        // Per-socket drain overhead (handshakes, fcntl probes).
                        let d = k.w.spec.drain_overhead;
                        let n = self.jobs.len() as u32;
                        if n > 0 {
                            return Step::Sleep(Nanos(d.0 * n as u64));
                        }
                    }
                    Verdict::Aborted => self.do_abort(k, false),
                    Verdict::Blocked => return Step::Block,
                },
                Phase::DrainRun => match self.run_drain(k) {
                    Ok(true) => {
                        self.finish_drain(k);
                        self.send_barrier(k, stage::DRAINED);
                        self.phase = Phase::AwaitDrained;
                    }
                    Ok(false) => return Step::Yield,
                    Err(()) => return Step::Block,
                },
                Phase::AwaitDrained => match self.released(k, stage::DRAINED) {
                    Verdict::Released => {
                        self.t_stage[4] = k.now();
                        self.phase = Phase::WriteImage;
                    }
                    Verdict::Aborted => self.do_abort(k, true),
                    Verdict::Blocked => return Step::Block,
                },
                Phase::WriteImage => {
                    let resume_at = self.do_write(k);
                    self.phase = Phase::WriteDone;
                    let now = k.now();
                    if resume_at > now {
                        return Step::Sleep(resume_at - now);
                    }
                }
                Phase::WriteDone => {
                    // Optional durability work before declaring the stage
                    // done (§5.2). `AfterCheckpoint` waits for this image's
                    // dirty bytes to hit the platter; `Previous` only waits
                    // for writeback older than the current write burst —
                    // i.e. the previous generation — which is free unless
                    // the disk is badly behind. Skipped in forked mode: the
                    // image is not even written yet at this point.
                    let pid = k.pid;
                    let sync_mode = hijack_of(k.w, pid).map(|h| h.sync).unwrap_or_default();
                    let now = k.now();
                    let wait = if self.forked.is_some() {
                        simkit::Nanos::ZERO
                    } else {
                        match sync_mode {
                            crate::launch::SyncMode::None => simkit::Nanos::ZERO,
                            crate::launch::SyncMode::AfterCheckpoint => {
                                let node = k.node();
                                let done = k.w.nodes[node.0 as usize].disk.sync(now);
                                done.saturating_sub(now)
                            }
                            crate::launch::SyncMode::Previous => {
                                // The previous generation finished writing a
                                // full interval ago; its pages are almost
                                // always clean by now. Charge only a syscall.
                                simkit::Nanos::from_micros(300)
                            }
                        }
                    };
                    if self.forked.is_none() {
                        // In-line write: the image is durable here, so the
                        // drain barrier is acked immediately — the
                        // coordinator holds its release until REFILLED, and
                        // the two-phase protocol degenerates to the old
                        // single-phase one.
                        self.send_barrier(k, stage::CKPT_WRITTEN);
                    }
                    self.send_barrier(k, stage::CHECKPOINTED);
                    self.phase = Phase::AwaitCheckpointed;
                    if wait > simkit::Nanos::ZERO {
                        return Step::Sleep(wait);
                    }
                }
                Phase::AwaitCheckpointed => match self.released(k, stage::CHECKPOINTED) {
                    Verdict::Released => {
                        self.t_stage[5] = k.now();
                        self.build_refill_jobs(k);
                        self.phase = Phase::RefillRun;
                    }
                    Verdict::Aborted => self.do_abort(k, true),
                    Verdict::Blocked => return Step::Block,
                },
                Phase::RefillRun => match self.run_refill(k) {
                    Ok(true) => {
                        self.restore_owners(k);
                        self.send_barrier(k, stage::REFILLED);
                        self.phase = Phase::AwaitRefilled;
                    }
                    Ok(false) => return Step::Yield,
                    Err(()) => return Step::Block,
                },
                Phase::AwaitRefilled => match self.released(k, stage::REFILLED) {
                    Verdict::Released => {
                        self.t_stage[6] = k.now();
                        self.phase = Phase::Resume;
                    }
                    // The refill already ran (our buffers hold the drained
                    // bytes again); nothing further to re-inject.
                    Verdict::Aborted => self.do_abort(k, false),
                    Verdict::Blocked => return Step::Block,
                },
                Phase::Resume => {
                    let pid = k.pid;
                    k.w.resume_user_threads(k.sim, pid);
                    self.record_stats(k);
                    let gen = self.cur_gen;
                    if self.forked.is_some() {
                        // Perceived downtime ends here; the overlapped
                        // drain phase continues behind the application.
                        k.trace_with("manager", || {
                            format!("gen {gen} resumed; background write draining")
                        });
                        self.phase = Phase::BgWait;
                    } else {
                        self.phase = Phase::Idle;
                        k.trace_with("manager", || format!("gen {gen} complete"));
                    }
                }
                Phase::BgWait => {
                    let done_at = self
                        .forked
                        .as_ref()
                        .expect("forked write in flight")
                        .report
                        .image_complete_at;
                    let now = k.now();
                    if now < done_at {
                        // (Re-)sleep the remainder; spurious wakes (late
                        // coordinator retransmissions) land here too.
                        return Step::Sleep(done_at - now);
                    }
                    // The COW child's pipeline drained: the image is
                    // durable. Close the dirty ledger, surface the image to
                    // the fault injector and the restart script, and ack.
                    let fw = self.forked.take().expect("forked write in flight");
                    let pid = k.pid;
                    let (dirty_bytes, incremental) =
                        (fw.report.captured_raw_bytes, fw.report.incremental);
                    let stats = fw.finish(k.w, pid);
                    if k.obs().journal.wants(obs::journal::CLASS_STAGE) {
                        let gen = self.cur_gen;
                        let vpid = self.vpid(k) as u64;
                        let args = [
                            ("gen", gen),
                            ("vpid", vpid),
                            ("dirty_bytes", dirty_bytes),
                            ("incremental", incremental as u64),
                        ];
                        k.obs().journal.record(
                            now,
                            obs::journal::CLASS_STAGE,
                            "drain.done",
                            None,
                            &args,
                            "",
                        );
                    }
                    let path = std::mem::take(&mut self.bg_path);
                    let node = k.node();
                    let host = k.hostname();
                    faultkit::image_written(k.w, self.cur_gen, node, &path);
                    let root_port = hijack_of(k.w, k.pid).expect("traced").root_port;
                    record_image(k.w, root_port, path, host);
                    let gen = self.cur_gen;
                    let start = self.t_stage[6];
                    let track = k.track();
                    let obs = k.obs();
                    obs.metrics
                        .observe("core.stage.background", gen, (now - start).0);
                    obs.spans.complete(
                        track,
                        "stage.background_write",
                        "ckpt",
                        start,
                        now,
                        vec![
                            ("gen", gen),
                            ("cow_copied_bytes", stats.copied_bytes),
                            ("cow_copied_regions", stats.copied_regions),
                        ],
                    );
                    self.send_barrier(k, stage::CKPT_WRITTEN);
                    self.phase = Phase::AwaitWritten;
                }
                Phase::AwaitWritten => match self.released(k, stage::CKPT_WRITTEN) {
                    Verdict::Released => {
                        let gen = self.cur_gen;
                        k.trace_with("manager", || format!("gen {gen} complete (background)"));
                        self.phase = Phase::Idle;
                    }
                    Verdict::Aborted => {
                        // A peer died during the overlapped drain. User
                        // threads are already running — nothing to roll
                        // back; our image simply never joins a restart
                        // script (restart uses the previous generation).
                        let gen = self.cur_gen;
                        k.obs().metrics.inc("core.ckpt.drain_aborts_seen", 0);
                        k.trace_with("manager", || format!("gen {gen} drain aborted"));
                        self.phase = Phase::Idle;
                    }
                    Verdict::Blocked => return Step::Block,
                },
                // ---------------- restart path ----------------
                Phase::RestartInit => match self.connect_coord(k) {
                    Ok(()) => {
                        let pid = k.pid;
                        self.cur_gen = {
                            let h = hijack_of(k.w, pid).expect("restored process traced");
                            h.gen
                        };
                        self.send_barrier(k, stage::RESTORED);
                        self.phase = Phase::AwaitRestored;
                    }
                    Err(step) => return step,
                },
                Phase::AwaitRestored => {
                    match self.released(k, stage::RESTORED) {
                        Verdict::Released => {}
                        Verdict::Aborted => panic!("checkpoint abort during restart"),
                        Verdict::Blocked => return Step::Block,
                    }
                    // Every process of the computation exists again: rewire
                    // the pid-virtualization map to the new real pids.
                    let pid = k.pid;
                    crate::restart::fixup_pid_map(k.w, pid);
                    self.t_stage[5] = k.now(); // refill starts here on restart
                    self.build_refill_jobs(k);
                    self.phase = Phase::RestartRefillRun;
                }
                Phase::RestartRefillRun => match self.run_refill(k) {
                    Ok(true) => {
                        self.send_barrier(k, stage::RESTART_REFILLED);
                        self.phase = Phase::AwaitRestartRefilled;
                    }
                    Ok(false) => return Step::Yield,
                    Err(()) => return Step::Block,
                },
                Phase::AwaitRestartRefilled => {
                    match self.released(k, stage::RESTART_REFILLED) {
                        Verdict::Released => {}
                        Verdict::Aborted => panic!("checkpoint abort during restart"),
                        Verdict::Blocked => return Step::Block,
                    }
                    self.phase = Phase::RestartResume;
                }
                Phase::RestartResume => {
                    let pid = k.pid;
                    k.w.resume_user_threads(k.sim, pid);
                    let refill = k.now() - self.t_stage[5];
                    let (now, track) = (k.now(), k.track());
                    let gen = self.cur_gen;
                    k.obs().spans.complete(
                        track,
                        "restart.refill",
                        "restart",
                        now - refill,
                        now,
                        vec![("gen", gen)],
                    );
                    let (vpid, partial) = {
                        let h = hijack_of(k.w, pid).expect("traced");
                        h.restarts += 1;
                        (h.vpid, h.restart_partial.take())
                    };
                    if let Some(partial) = partial {
                        crate::restart::record_restart_sample(k.w, vpid, gen, partial, refill);
                    }
                    self.phase = Phase::Idle;
                    k.trace("manager", "restart complete");
                }
            }
        }
    }

    fn tag(&self) -> &'static str {
        "dmtcp-manager"
    }

    fn save(&self) -> Vec<u8> {
        unreachable!("the manager thread is not captured in images (it is rebuilt at restart)")
    }
}
