//! Feature coverage beyond the headline path: ptys + terminal modes,
//! the dmtcpaware API, pid virtualization with conflict-detecting fork,
//! shared memory, and shared file offsets — each through a full
//! checkpoint → kill → restart cycle.

mod common;

use common::*;
use dmtcp::gsid::global;
use dmtcp::session::run_for;
use dmtcp::{aware, ExpectCkpt, Options, RestartPlan, Session};
use oskit::program::{Program, Registry, Step};
use oskit::world::{NodeId, OsSim, Pid, World};
use oskit::{Errno, Fd, HwSpec, Kernel};
use simkit::{Nanos, Sim, Snap};

const EV: u64 = 5_000_000;

fn opts() -> Options {
    Options::builder().ckpt_dir("/shared/ckpt").build()
}

fn full_cycle(w: &mut World, sim: &mut OsSim, s: &Session, ckpt_at: Nanos) {
    run_for(w, sim, ckpt_at);
    let stat = s.checkpoint_and_wait(w, sim, EV).expect_ckpt();
    let gen = stat.gen;
    s.kill_computation(w, sim);
    RestartPlan::from_generation(w, s.opts.coord_port, gen)
        .expect("restart script written")
        .execute(s, w, sim)
        .expect("identity restart");
    Session::wait_restart_done(w, sim, gen, EV);
    assert!(sim.run_bounded(w, EV), "post-restart deadlock");
}

// ---------------------------------------------------------------------
// Pty session (TightVNC-style) across checkpoint/restart
// ---------------------------------------------------------------------

/// Parent = terminal emulator holding the master; forked child = shell on
/// the slave. The parent sends commands, the child echoes processed
/// responses; terminal modes set before the checkpoint must survive it.
struct PtySession {
    pc: u8,
    master: Fd,
    slave: Fd,
    round: u32,
    rounds: u32,
    buf: Vec<u8>,
}
simkit::impl_snap!(struct PtySession { pc, master, slave, round, rounds, buf });

impl Program for PtySession {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    let (m, sfd) = k.openpty();
                    self.master = m;
                    self.slave = sfd;
                    let mut t = k.tcgetattr(m).expect("termios");
                    t.echo = false;
                    t.rows = 48;
                    t.cols = 120;
                    k.tcsetattr(m, t).expect("set termios");
                    self.pc = 1;
                    let _child = k.fork_snapshot(self).expect("fork shell");
                }
                1 => match k.fork_ret() {
                    Some(0) => {
                        k.clear_fork_ret();
                        k.close(self.master).expect("shell closes master");
                        k.set_ctty(self.slave).expect("controlling tty");
                        self.pc = 10;
                    }
                    _ => {
                        k.clear_fork_ret();
                        k.close(self.slave).expect("emulator closes slave");
                        self.pc = 20;
                    }
                },
                // ---- child: the "shell" ----
                10 => match k.read(self.slave, 64) {
                    Ok(b) if b.is_empty() => return Step::Exit(0), // master gone
                    Ok(b) => {
                        self.buf.extend_from_slice(&b);
                        if let Some(nl) = self.buf.iter().position(|&c| c == b'\n') {
                            let line: Vec<u8> = self.buf.drain(..=nl).collect();
                            if line.starts_with(b"quit") {
                                k.write(self.slave, b"bye\n").expect("bye");
                                return Step::Exit(0);
                            }
                            let mut reply = b"ok:".to_vec();
                            reply.extend_from_slice(&line);
                            k.write(self.slave, &reply).expect("reply");
                        }
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("shell read: {e:?}"),
                },
                // ---- parent: the terminal emulator ----
                20 => {
                    if self.round == self.rounds {
                        k.write(self.master, b"quit\n").expect("quit");
                    } else {
                        k.write(self.master, format!("cmd{}\n", self.round).as_bytes())
                            .expect("cmd");
                    }
                    self.buf.clear();
                    self.pc = 21;
                    return Step::Compute(100_000);
                }
                21 => match k.read(self.master, 256) {
                    Ok(b) if b.is_empty() => panic!("shell died early"),
                    Ok(b) => {
                        self.buf.extend_from_slice(&b);
                        // onlcr: replies end \r\n.
                        if self.buf.ends_with(b"\r\n") {
                            if self.round == self.rounds {
                                assert_eq!(self.buf, b"bye\r\n");
                                let t = k.tcgetattr(self.master).expect("termios");
                                assert!(!t.echo, "echo setting lost");
                                assert_eq!((t.rows, t.cols), (48, 120), "winsize lost");
                                let fd = k.open("/shared/pty_result", true).expect("result");
                                k.write(fd, format!("{} rounds", self.round).as_bytes())
                                    .expect("w");
                                return Step::Exit(0);
                            }
                            let expect = format!("ok:cmd{}\r\n", self.round).into_bytes();
                            assert_eq!(self.buf, expect, "pty transcript corrupted");
                            self.round += 1;
                            self.pc = 20;
                        }
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("emulator read: {e:?}"),
                },
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "pty-session"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

#[test]
fn pty_session_survives_checkpoint_and_restart() {
    let mut reg = test_registry();
    reg.register_snap::<PtySession>("pty-session");
    let mut w = World::new(HwSpec::cluster(), 1, reg);
    let mut sim = Sim::new();
    let s = Session::start(&mut w, &mut sim, opts());
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "vnc-like",
        Box::new(PtySession {
            pc: 0,
            master: -1,
            slave: -1,
            round: 0,
            rounds: 600,
            buf: Vec::new(),
        }),
    );
    full_cycle(&mut w, &mut sim, &s, Nanos::from_millis(8));
    assert_eq!(
        shared_result(&w, "/shared/pty_result").as_deref(),
        Some("600 rounds")
    );
}

/// Raw-mode pty with bytes pending in *both* queues at checkpoint time.
///
/// The PtySession test above exercises canonical mode with an empty pipeline
/// at the instant of the checkpoint; this one freezes mid-flight: canonical,
/// echo and onlcr are all switched off, unread bytes sit in the keyboard
/// (to-slave) and display (to-master) directions, and both the raw termios
/// and the pending bytes must come back byte-exact after restart.
struct RawPty {
    pc: u8,
    master: Fd,
    slave: Fd,
}
simkit::impl_snap!(struct RawPty { pc, master, slave });

impl Program for RawPty {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        match self.pc {
            0 => {
                let (m, sfd) = k.openpty();
                self.master = m;
                self.slave = sfd;
                let mut t = k.tcgetattr(m).expect("termios");
                t.canonical = false;
                t.echo = false;
                t.onlcr = false;
                t.rows = 10;
                t.cols = 33;
                k.tcsetattr(m, t).expect("set raw");
                // Leave bytes pending in both directions across the
                // checkpoint. echo=false: the master write must NOT be
                // reflected back; onlcr=false: the slave's \n must NOT
                // become \r\n.
                k.write(self.master, b"pend-in").expect("keyboard bytes");
                k.write(self.slave, b"pend-out\n").expect("display bytes");
                self.pc = 1;
                Step::Sleep(Nanos::from_millis(10)) // ckpt lands here
            }
            1 => {
                let t = k.tcgetattr(self.master).expect("termios");
                assert!(!t.canonical, "canonical flag reset by restart");
                assert!(!t.echo, "echo flag reset by restart");
                assert!(!t.onlcr, "onlcr flag reset by restart");
                assert_eq!((t.rows, t.cols), (10, 33), "winsize lost");
                let inb = k.read(self.slave, 64).expect("slave read");
                assert_eq!(inb, b"pend-in", "keyboard-direction bytes lost");
                let outb = k.read(self.master, 64).expect("master read");
                assert_eq!(
                    outb, b"pend-out\n",
                    "display-direction bytes lost or onlcr-mangled"
                );
                let fd = k.open("/shared/raw_pty_result", true).expect("result");
                k.write(fd, b"raw-ok").expect("w");
                Step::Exit(0)
            }
            _ => unreachable!(),
        }
    }
    fn tag(&self) -> &'static str {
        "raw-pty"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

#[test]
fn raw_mode_pty_with_pending_bytes_survives_restart() {
    let mut reg = test_registry();
    reg.register_snap::<RawPty>("raw-pty");
    let mut w = World::new(HwSpec::cluster(), 1, reg);
    let mut sim = Sim::new();
    let s = Session::start(&mut w, &mut sim, opts());
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "raw-pty",
        Box::new(RawPty {
            pc: 0,
            master: -1,
            slave: -1,
        }),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(2));
    // Precondition: the checkpoint really does land with bytes queued in
    // both directions.
    assert!(
        w.ptys
            .values()
            .any(|p| !p.to_slave.is_empty() && !p.to_master.is_empty()),
        "expected pending bytes in both pty directions before checkpoint"
    );
    full_cycle(&mut w, &mut sim, &s, Nanos::from_millis(1));
    assert_eq!(
        shared_result(&w, "/shared/raw_pty_result").as_deref(),
        Some("raw-ok")
    );
}

// ---------------------------------------------------------------------
// dmtcpaware
// ---------------------------------------------------------------------

struct AwareApp {
    pc: u8,
    loops: u32,
    start_gen: u64,
}
simkit::impl_snap!(struct AwareApp { pc, loops, start_gen });

impl Program for AwareApp {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        match self.pc {
            0 => {
                assert!(aware::is_running_under_dmtcp(k));
                self.start_gen = aware::status(k).expect("status").generation;
                // Critical section: no checkpoint may land inside.
                aware::delay_checkpoints(k);
                self.pc = 1;
                // Application-requested checkpoint — must be held until
                // the critical section ends.
                assert!(aware::request_checkpoint(k));
                Step::Compute(2_000_000) // 2 ms critical work
            }
            1 => {
                let st = aware::status(k).expect("status");
                assert_eq!(
                    st.generation, self.start_gen,
                    "checkpoint intruded into the delayed critical section"
                );
                assert!(st.delayed);
                aware::allow_checkpoints(k);
                self.pc = 2;
                Step::Yield
            }
            2 => {
                // Wait until the requested checkpoint completes.
                let st = aware::status(k).expect("status");
                if st.generation > self.start_gen {
                    let fd = k.open("/shared/aware_result", true).expect("result");
                    k.write(fd, format!("gen{}", st.generation).as_bytes())
                        .expect("w");
                    return Step::Exit(0);
                }
                if self.loops > 10_000 {
                    panic!("requested checkpoint never happened");
                }
                self.loops += 1;
                Step::Sleep(Nanos::from_micros(200))
            }
            _ => unreachable!(),
        }
    }
    fn tag(&self) -> &'static str {
        "aware-app"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

#[test]
fn dmtcpaware_request_and_delay() {
    let mut reg = test_registry();
    reg.register_snap::<AwareApp>("aware-app");
    let mut w = World::new(HwSpec::cluster(), 1, reg);
    let mut sim = Sim::new();
    let s = Session::start(&mut w, &mut sim, opts());
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "aware",
        Box::new(AwareApp {
            pc: 0,
            loops: 0,
            start_gen: 0,
        }),
    );
    assert!(sim.run_bounded(&mut w, EV), "aware app deadlocked");
    assert_eq!(
        shared_result(&w, "/shared/aware_result").as_deref(),
        Some("gen1")
    );
}

// ---------------------------------------------------------------------
// Pid virtualization
// ---------------------------------------------------------------------

struct Sleeper;
impl Program for Sleeper {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        k.block_forever();
        Step::Block
    }
    fn tag(&self) -> &'static str {
        "sleeper"
    }
    fn save(&self) -> Vec<u8> {
        Vec::new()
    }
}
struct SleeperSnap;
simkit::impl_snap!(
    struct SleeperSnap {}
);
impl Program for SleeperSnap {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        k.block_forever();
        Step::Block
    }
    fn tag(&self) -> &'static str {
        "sleeper-snap"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

struct VpidApp {
    pc: u8,
    my_vpid: u32,
    child: u32,
    post_restart_child: u32,
}
simkit::impl_snap!(struct VpidApp { pc, my_vpid, child, post_restart_child });

impl Program for VpidApp {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    self.my_vpid = k.getpid().0;
                    let child = k.spawn_process("sleeper", Box::new(SleeperSnap));
                    self.child = child.0;
                    self.pc = 1;
                    return Step::Sleep(Nanos::from_millis(2)); // checkpoint lands here
                }
                1 => {
                    // Runs again after restart. getpid must still report the
                    // virtual pid.
                    assert_eq!(k.getpid().0, self.my_vpid, "vpid lost across restart");
                    // Spawn another child post-restart (may trigger the
                    // conflict-detecting fork).
                    let c2 = k.spawn_process("sleeper2", Box::new(SleeperSnap));
                    self.post_restart_child = c2.0;
                    // Kill the original child via its (now stale) vpid — the
                    // translation layer must route it to the new real pid.
                    k.kill(Pid(self.child), oskit::proc::sig::SIGKILL);
                    self.pc = 2;
                }
                2 => match k.waitpid(Pid(self.child)) {
                    Ok(code) => {
                        assert_eq!(code, 137, "SIGKILL exit code");
                        k.kill(Pid(self.post_restart_child), oskit::proc::sig::SIGKILL);
                        self.pc = 3;
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("waitpid old child: {e:?}"),
                },
                3 => match k.waitpid(Pid(self.post_restart_child)) {
                    Ok(_) => {
                        let fd = k.open("/shared/vpid_result", true).expect("result");
                        k.write(fd, b"ok").expect("w");
                        return Step::Exit(0);
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("waitpid new child: {e:?}"),
                },
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "vpid-app"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

#[test]
fn pid_virtualization_across_restart() {
    let mut reg = test_registry();
    reg.register_snap::<VpidApp>("vpid-app");
    reg.register_snap::<SleeperSnap>("sleeper-snap");
    let mut w = World::new(HwSpec::cluster(), 1, reg);
    let mut sim = Sim::new();
    let s = Session::start(&mut w, &mut sim, opts());
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "vpid-app",
        Box::new(VpidApp {
            pc: 0,
            my_vpid: 0,
            child: 0,
            post_restart_child: 0,
        }),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(1));
    let stat = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
    let gen = stat.gen;
    assert_eq!(stat.participants, 2);
    s.kill_computation(&mut w, &mut sim);
    // Fill the pid space a bit so the restored children's old pids are taken
    // by strangers, forcing translation (and possibly conflict re-forks).
    use std::collections::BTreeMap;
    for _ in 0..3 {
        w.spawn(
            &mut sim,
            NodeId(0),
            "stranger",
            Box::new(Sleeper),
            Pid(1),
            BTreeMap::new(),
        );
    }
    RestartPlan::from_generation(&w, s.opts.coord_port, gen)
        .expect("restart script written")
        .execute(&s, &mut w, &mut sim)
        .expect("identity restart");
    Session::wait_restart_done(&mut w, &mut sim, gen, EV);
    assert!(sim.run_bounded(&mut w, EV), "vpid app deadlocked");
    assert_eq!(
        shared_result(&w, "/shared/vpid_result").as_deref(),
        Some("ok")
    );
    // The restored process's real pid differs from its virtual pid.
    let mismatch = w
        .procs
        .values()
        .any(|p| p.virt_pid.map(|v| v != p.pid.0).unwrap_or(false));
    assert!(
        mismatch,
        "expected at least one vpid ≠ real pid after restart"
    );
}

#[test]
fn fork_wrapper_rekeys_conflicting_pids() {
    // Model the paper's scenario: virtual pids 4..10 belong to checkpointed
    // (restorable) processes; the kernel's allocator will hand fresh forks
    // exactly those pids, and the fork wrapper must detect and re-fork.
    let mut reg = test_registry();
    reg.register_snap::<SleeperSnap>("sleeper-snap");
    let mut w = World::new(HwSpec::cluster(), 1, reg);
    let mut sim = Sim::new();
    let s = Session::start(&mut w, &mut sim, opts());
    for v in 4..10u32 {
        global(&mut w).checkpointed_vpids.insert(v);
        global(&mut w).session_vpids.insert(v);
    }
    struct Spawner {
        n: u32,
    }
    simkit::impl_snap!(struct Spawner { n });
    impl Program for Spawner {
        fn step(&mut self, k: &mut Kernel<'_>) -> Step {
            if self.n > 0 {
                self.n -= 1;
                k.spawn_process("sleeper", Box::new(SleeperSnap));
                return Step::Yield;
            }
            k.block_forever();
            Step::Block
        }
        fn tag(&self) -> &'static str {
            "spawner"
        }
        fn save(&self) -> Vec<u8> {
            self.n.to_snap_bytes()
        }
    }
    let mut reg_add = Registry::new();
    reg_add.register("spawner", |b| {
        Ok(Box::new(Spawner {
            n: u32::from_snap_bytes(b)?,
        }))
    });
    let _ = reg_add; // this test never restores the spawner
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "spawner",
        Box::new(Spawner { n: 4 }),
    );
    assert!(sim.run_bounded(&mut w, EV));
    // The kernel wanted to hand out pids 4.. for the children; every one of
    // those collided with a restorable vpid and was re-forked.
    let retries = global(&mut w).fork_retries;
    assert!(
        retries >= 4,
        "expected ≥4 pid-conflict re-forks, got {retries}"
    );
    // No traced process ended up on a reserved vpid.
    for p in w.procs.values() {
        if let Some(v) = p.virt_pid {
            if p.cmd == "sleeper" {
                assert!(!(4..10).contains(&v), "child got reserved vpid {v}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Shared memory via mmap across checkpoint/restart
// ---------------------------------------------------------------------

struct ShmPing {
    pc: u8,
    region: u64,
    turns: u32,
    total: u32,
    me: u8, // 0 writes even slots, 1 writes odd
}
simkit::impl_snap!(struct ShmPing { pc, region, turns, total, me });

impl Program for ShmPing {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    self.region = k.mmap_shared("/tmp/shm-ping", 4096).expect("mmap") as u64;
                    self.pc = 1;
                }
                1 => {
                    if self.turns == self.total {
                        if self.me == 0 {
                            // Verify the full alternating pattern.
                            let data =
                                k.mem_read(self.region as usize, 0, (self.total * 2) as usize);
                            for (i, &b) in data.iter().enumerate() {
                                assert_eq!(b, (i % 2) as u8 + 1, "shm pattern broken at {i}");
                            }
                            let fd = k.open("/shared/shm_result", true).expect("result");
                            k.write(fd, b"shm-ok").expect("w");
                        }
                        return Step::Exit(0);
                    }
                    let slot = (self.turns * 2 + self.me as u32) as u64;
                    k.mem_write(self.region as usize, slot, &[self.me + 1]);
                    self.turns += 1;
                    return Step::Compute(50_000);
                }
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "shm-ping"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

#[test]
fn shared_memory_restored_and_still_shared() {
    let mut reg = test_registry();
    reg.register_snap::<ShmPing>("shm-ping");
    let mut w = World::new(HwSpec::cluster(), 1, reg);
    let mut sim = Sim::new();
    let s = Session::start(&mut w, &mut sim, opts());
    for me in 0..2u8 {
        s.launch(
            &mut w,
            &mut sim,
            NodeId(0),
            "shm-ping",
            Box::new(ShmPing {
                pc: 0,
                region: 0,
                turns: 0,
                total: 400,
                me,
            }),
        );
    }
    full_cycle(&mut w, &mut sim, &s, Nanos::from_millis(10));
    assert_eq!(
        shared_result(&w, "/shared/shm_result").as_deref(),
        Some("shm-ok")
    );
    // Restored segment is genuinely shared: exactly one live segment object.
    assert!(w.shm_segs.len() <= 2, "segments: {}", w.shm_segs.len());
}

// ---------------------------------------------------------------------
// File offsets across restart
// ---------------------------------------------------------------------

struct FileReader {
    pc: u8,
    fd: Fd,
    first: Vec<u8>,
    second: Vec<u8>,
}
simkit::impl_snap!(struct FileReader { pc, fd, first, second });

impl Program for FileReader {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        match self.pc {
            0 => {
                self.fd = k.open("/shared/input.dat", false).expect("input exists");
                self.first = k.read(self.fd, 10).expect("first half");
                assert_eq!(self.first, b"0123456789");
                self.pc = 1;
                Step::Sleep(Nanos::from_millis(5)) // ckpt lands here
            }
            1 => {
                // After restart the shared offset must continue at 10.
                self.second = k.read(self.fd, 10).expect("second half");
                assert_eq!(self.second, b"abcdefghij", "file offset lost");
                let fd = k.open("/shared/file_result", true).expect("result");
                k.write(fd, b"offset-ok").expect("w");
                Step::Exit(0)
            }
            _ => unreachable!(),
        }
    }
    fn tag(&self) -> &'static str {
        "file-reader"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

#[test]
fn open_file_offsets_survive_restart() {
    let mut reg = test_registry();
    reg.register_snap::<FileReader>("file-reader");
    let mut w = World::new(HwSpec::cluster(), 1, reg);
    let mut sim = Sim::new();
    w.shared_fs
        .write_all("/shared/input.dat", b"0123456789abcdefghij")
        .expect("input");
    let s = Session::start(&mut w, &mut sim, opts());
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "reader",
        Box::new(FileReader {
            pc: 0,
            fd: -1,
            first: Vec::new(),
            second: Vec::new(),
        }),
    );
    full_cycle(&mut w, &mut sim, &s, Nanos::from_millis(2));
    assert_eq!(
        shared_result(&w, "/shared/file_result").as_deref(),
        Some("offset-ok")
    );
}

// ---------------------------------------------------------------------
// Synthetic ballast + compression end to end
// ---------------------------------------------------------------------

#[test]
fn compression_shrinks_images_of_compressible_apps() {
    let run = |compress: bool| -> u64 {
        let mut w = World::new(HwSpec::cluster(), 2, test_registry());
        let mut sim = Sim::new();
        let s = Session::start(
            &mut w,
            &mut sim,
            Options::builder()
                .ckpt_dir("/shared/ckpt")
                .compression(compress)
                .build(),
        );
        s.launch(
            &mut w,
            &mut sim,
            NodeId(1),
            "server",
            Box::new(EchoPlusOne::new(9000)),
        );
        s.launch(
            &mut w,
            &mut sim,
            NodeId(0),
            "client",
            Box::new(ChainClient::new("node01", 9000, 4000).with_ballast(32)),
        );
        run_for(&mut w, &mut sim, Nanos::from_millis(30));
        s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
        w.shared_fs
            .list_prefix("/shared/ckpt/")
            .map(|p| w.shared_fs.size(p).expect("image"))
            .sum()
    };
    let raw = run(false);
    let gz = run(true);
    assert!(raw > 32 << 20, "ballast in image: {raw}");
    assert!(
        gz < raw / 3,
        "text ballast should compress ≥3×: {gz} vs {raw}"
    );
}

// ---------------------------------------------------------------------
// The drained-bytes invariant, asserted at the kernel level
// ---------------------------------------------------------------------

#[test]
fn drain_preserves_exact_in_flight_bytes() {
    // Freeze a transfer mid-flight, checkpoint, and compare kernel buffer
    // contents before/after the refill stage.
    let (mut w, mut sim) = cluster(2);
    let s = Session::start(&mut w, &mut sim, opts());
    launch_chain(&mut w, &mut sim, &s, 10_000);
    run_for(&mut w, &mut sim, Nanos::from_millis(25));

    // Per-connection byte equality is enforced by the applications' own
    // sequence checks in every other test; here we assert the direct
    // property that a checkpoint in the middle of a heavy stream completes
    // and stream totals are conserved (refill re-sends, never loses).
    let before_tx: u64 = w
        .conns
        .values()
        .map(|c| c.dirs[0].tx_total + c.dirs[1].tx_total)
        .sum();
    s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
    let after_tx: u64 = w
        .conns
        .values()
        .map(|c| c.dirs[0].tx_total + c.dirs[1].tx_total)
        .sum();
    // Only DMTCP's drain/refill traffic moved during the frozen window;
    // application bytes resumed after. The refill re-send means totals grow,
    // never shrink.
    assert!(after_tx >= before_tx);
}

fn launch_chain(w: &mut World, sim: &mut OsSim, s: &Session, rounds: u64) {
    s.launch(
        w,
        sim,
        NodeId(1),
        "server",
        Box::new(EchoPlusOne::new(9000)),
    );
    s.launch(
        w,
        sim,
        NodeId(0),
        "client",
        Box::new(ChainClient::new("node01", 9000, rounds)),
    );
}

// ---------------------------------------------------------------------
// Post-checkpoint sync policies (§5.2)
// ---------------------------------------------------------------------

#[test]
fn sync_after_checkpoint_costs_extra_pause() {
    use dmtcp::launch::SyncMode;
    let run = |sync: SyncMode| -> f64 {
        let mut w = World::new(HwSpec::cluster(), 1, test_registry());
        let mut sim = Sim::new();
        let s = Session::start(
            &mut w,
            &mut sim,
            Options::builder().ckpt_dir("/ckpt").sync(sync).build(),
        );
        s.launch(
            &mut w,
            &mut sim,
            NodeId(0),
            "client",
            Box::new(ChainClient::new("node00", 9999, u64::MAX).with_ballast(256)),
        );
        // No server: the client retries connect forever — a convenient
        // stand-in for a long-running single process with a big footprint.
        run_for(&mut w, &mut sim, Nanos::from_millis(20));
        let g = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
        g.total_pause().expect("complete").as_secs_f64()
    };
    let none = run(SyncMode::None);
    let after = run(SyncMode::AfterCheckpoint);
    let previous = run(SyncMode::Previous);
    assert!(
        after > none + 0.2,
        "sync-after must wait for the platter: {after} vs {none}"
    );
    assert!(
        previous < none + 0.05,
        "sync-previous is nearly free: {previous} vs {none}"
    );
}

// ---------------------------------------------------------------------
// TightVNC pattern: uncheckpointed viewers between checkpoints (§5.1)
// ---------------------------------------------------------------------

/// An *untraced* viewer that connects to a traced server, interacts, and
/// disconnects — as the paper's vncviewers do between checkpoints.
struct Viewer {
    pc: u8,
    fd: oskit::Fd,
    reqs: u32,
}
impl Program for Viewer {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => match k.connect("node00", 9000) {
                    Ok(fd) => {
                        self.fd = fd;
                        self.pc = 1;
                    }
                    Err(oskit::Errno::ConnRefused) => return Step::Sleep(Nanos::from_millis(2)),
                    Err(e) => panic!("viewer connect: {e:?}"),
                },
                1 => {
                    if self.reqs == 20 {
                        k.close(self.fd).expect("viewer disconnects");
                        return Step::Exit(0);
                    }
                    let v = (self.reqs as u64).to_le_bytes();
                    k.write(self.fd, &v).expect("req");
                    self.reqs += 1;
                    self.pc = 2;
                }
                2 => match k.read(self.fd, 8) {
                    Ok(b) if b.is_empty() => panic!("server gone"),
                    Ok(_) => self.pc = 1,
                    Err(oskit::Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("viewer read: {e:?}"),
                },
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "viewer"
    }
    fn save(&self) -> Vec<u8> {
        unreachable!("viewers are never checkpointed")
    }
}

/// A display server that outlives its clients: accepts any number of
/// connections and echoes; never exits.
struct MultiServe {
    pc: u8,
    lfd: Fd,
    clients: Vec<Fd>,
}
simkit::impl_snap!(struct MultiServe { pc, lfd, clients });
impl Program for MultiServe {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        if self.pc == 0 {
            let (fd, _) = k.listen_on(9000).expect("listen");
            self.lfd = fd;
            self.pc = 1;
        }
        loop {
            let mut progressed = false;
            loop {
                match k.accept(self.lfd) {
                    Ok(fd) => {
                        self.clients.push(fd);
                        progressed = true;
                    }
                    Err(Errno::WouldBlock) => break,
                    Err(e) => panic!("accept: {e:?}"),
                }
            }
            let mut gone = Vec::new();
            for (i, &fd) in self.clients.iter().enumerate() {
                match k.read(fd, 4096) {
                    Ok(b) if b.is_empty() => gone.push(i),
                    Ok(b) => {
                        let _ = k.write(fd, &b);
                        progressed = true;
                    }
                    Err(Errno::WouldBlock) => {}
                    Err(e) => panic!("serve: {e:?}"),
                }
            }
            for i in gone.into_iter().rev() {
                let fd = self.clients.remove(i);
                let _ = k.close(fd);
                progressed = true;
            }
            if !progressed {
                return Step::Block;
            }
        }
    }
    fn tag(&self) -> &'static str {
        "multi-serve"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

#[test]
fn untraced_viewer_between_checkpoints() {
    // Traced display server; untraced viewer connects, interacts,
    // disconnects; THEN the checkpoint runs.
    let mut reg = test_registry();
    reg.register_snap::<MultiServe>("multi-serve");
    let mut w = World::new(HwSpec::cluster(), 1, reg);
    let mut sim = Sim::new();
    let s = Session::start(&mut w, &mut sim, opts());
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "vncserver",
        Box::new(MultiServe {
            pc: 0,
            lfd: -1,
            clients: Vec::new(),
        }),
    );
    // Plain spawn — no DMTCP env, so the hook leaves it alone.
    use std::collections::BTreeMap;
    w.spawn(
        &mut sim,
        NodeId(0),
        "vncviewer",
        Box::new(Viewer {
            pc: 0,
            fd: -1,
            reqs: 0,
        }),
        Pid(1),
        BTreeMap::new(),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(30));
    // Viewer has finished and closed its socket.
    assert_eq!(
        w.procs
            .values()
            .filter(|p| p.alive() && p.cmd == "vncviewer")
            .count(),
        0,
        "viewer disconnected before the checkpoint"
    );
    let stat = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
    assert_eq!(stat.participants, 1, "only the server is checkpointed");
    // The server survives: a new viewer can connect after the checkpoint.
    w.spawn(
        &mut sim,
        NodeId(0),
        "vncviewer2",
        Box::new(Viewer {
            pc: 0,
            fd: -1,
            reqs: 0,
        }),
        Pid(1),
        BTreeMap::new(),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(50));
    assert_eq!(
        w.procs
            .values()
            .filter(|p| p.alive() && p.cmd == "vncviewer2")
            .count(),
        0,
        "second viewer served and gone"
    );
}
