//! Checkpointable test applications shared by the dmtcp integration tests.
#![allow(dead_code)] // each test binary uses a different subset
//!
//! These are honest applications: they never mention DMTCP (except the
//! `aware_*` variants), keep all state in snap-serializable structs, and
//! verify their own data integrity, so a checkpoint/restart that corrupts
//! a byte stream or loses in-flight data fails the test through the
//! application's own checks.

use oskit::program::{Program, Registry, Step};
use oskit::world::{OsSim, World};
use oskit::{Errno, Fd, HwSpec, Kernel};
use simkit::{Nanos, Sim, Snap};

/// A TCP server: accepts one client, then for each 8-byte LE integer
/// received replies with value + 1. Exits on client EOF, recording the
/// number of rounds served in `/shared/server_result`.
pub struct EchoPlusOne {
    pub pc: u8,
    pub lfd: Fd,
    pub cfd: Fd,
    pub port: u16,
    pub rounds: u64,
    pub inbuf: Vec<u8>,
}
simkit::impl_snap!(struct EchoPlusOne { pc, lfd, cfd, port, rounds, inbuf });

impl EchoPlusOne {
    pub fn new(port: u16) -> Self {
        EchoPlusOne {
            pc: 0,
            lfd: -1,
            cfd: -1,
            port,
            rounds: 0,
            inbuf: Vec::new(),
        }
    }
}

impl Program for EchoPlusOne {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    let (fd, _) = k.listen_on(self.port).expect("server listen");
                    self.lfd = fd;
                    self.pc = 1;
                }
                1 => match k.accept(self.lfd) {
                    Ok(fd) => {
                        self.cfd = fd;
                        self.pc = 2;
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("server accept: {e:?}"),
                },
                2 => {
                    match k.read(self.cfd, 8 - self.inbuf.len()) {
                        Ok(b) if b.is_empty() => {
                            // Client done.
                            let fd = k.open("/shared/server_result", true).expect("result");
                            k.write(fd, self.rounds.to_string().as_bytes()).expect("w");
                            return Step::Exit(0);
                        }
                        Ok(b) => {
                            self.inbuf.extend_from_slice(&b);
                            if self.inbuf.len() == 8 {
                                let v =
                                    u64::from_le_bytes(self.inbuf[..].try_into().expect("8 bytes"));
                                self.inbuf.clear();
                                self.rounds += 1;
                                let reply = (v + 1).to_le_bytes();
                                let n = k.write(self.cfd, &reply).expect("reply");
                                assert_eq!(n, 8);
                            }
                        }
                        Err(Errno::WouldBlock) => return Step::Block,
                        Err(e) => panic!("server read: {e:?}"),
                    }
                }
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "echo-plus-one"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

/// The client: `rounds` request/response exchanges with compute in between,
/// verifying each reply is its value + 1; records the final accumulator in
/// `/shared/client_result`.
pub struct ChainClient {
    pub pc: u8,
    pub fd: Fd,
    pub server: String,
    pub port: u16,
    pub sent: u64,
    pub rounds: u64,
    pub value: u64,
    pub inbuf: Vec<u8>,
    /// MiB of synthetic memory ballast (exercises image size effects).
    pub ballast_mb: u64,
}
simkit::impl_snap!(struct ChainClient { pc, fd, server, port, sent, rounds, value, inbuf, ballast_mb });

impl ChainClient {
    pub fn new(server: &str, port: u16, rounds: u64) -> Self {
        ChainClient {
            pc: 0,
            fd: -1,
            server: server.to_string(),
            port,
            sent: 0,
            rounds,
            value: 1,
            inbuf: Vec::new(),
            ballast_mb: 0,
        }
    }

    pub fn with_ballast(mut self, mb: u64) -> Self {
        self.ballast_mb = mb;
        self
    }
}

impl Program for ChainClient {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => match k.connect(&self.server, self.port) {
                    Ok(fd) => {
                        if self.ballast_mb > 0 {
                            k.mmap_synthetic(
                                "client-ballast",
                                self.ballast_mb << 20,
                                77,
                                oskit::mem::FillProfile::Text,
                            );
                        }
                        self.fd = fd;
                        self.pc = 1;
                    }
                    Err(Errno::ConnRefused) => return Step::Sleep(Nanos::from_millis(2)),
                    Err(e) => panic!("client connect: {e:?}"),
                },
                1 => {
                    if self.sent == self.rounds {
                        k.close(self.fd).expect("close");
                        let fd = k.open("/shared/client_result", true).expect("result");
                        k.write(fd, self.value.to_string().as_bytes()).expect("w");
                        return Step::Exit(0);
                    }
                    let n = k.write(self.fd, &self.value.to_le_bytes()).expect("send");
                    assert_eq!(n, 8);
                    self.sent += 1;
                    self.pc = 2;
                    // A little compute between rounds keeps user threads
                    // busy when the checkpoint lands.
                    return Step::Compute(200_000);
                }
                2 => match k.read(self.fd, 8 - self.inbuf.len()) {
                    Ok(b) if b.is_empty() => panic!("server hung up mid-round"),
                    Ok(b) => {
                        self.inbuf.extend_from_slice(&b);
                        if self.inbuf.len() == 8 {
                            let v = u64::from_le_bytes(self.inbuf[..].try_into().expect("8"));
                            assert_eq!(v, self.value + 1, "stream corrupted");
                            self.value = v;
                            self.inbuf.clear();
                            self.pc = 1;
                        }
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("client read: {e:?}"),
                },
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "chain-client"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

/// A fork-based pipe chain: the parent creates a pipe and forks; the child
/// (fork_ret == 0) writes `total` sequenced bytes and exits; the parent
/// reads and verifies them, then records the checksum.
pub struct PipeChain {
    pub pc: u8,
    pub rfd: Fd,
    pub wfd: Fd,
    pub total: u64,
    pub progress: u64,
    pub checksum: u64,
    pub child: u32,
}
simkit::impl_snap!(struct PipeChain { pc, rfd, wfd, total, progress, checksum, child });

impl PipeChain {
    pub fn new(total: u64) -> Self {
        PipeChain {
            pc: 0,
            rfd: -1,
            wfd: -1,
            total,
            progress: 0,
            checksum: 0,
            child: 0,
        }
    }
}

impl Program for PipeChain {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    let (r, w) = k.pipe();
                    self.rfd = r;
                    self.wfd = w;
                    self.pc = 1;
                    let child = k.fork_snapshot(self).expect("fork");
                    self.child = child.0;
                }
                1 => match k.fork_ret() {
                    Some(0) => {
                        k.clear_fork_ret();
                        k.close(self.rfd).expect("child closes read end");
                        self.pc = 10; // writer
                    }
                    _ => {
                        k.clear_fork_ret();
                        k.close(self.wfd).expect("parent closes write end");
                        self.pc = 20; // reader
                    }
                },
                // ---- child: writer ----
                10 => {
                    if self.progress >= self.total {
                        k.close(self.wfd).expect("writer done");
                        return Step::Exit(0);
                    }
                    let n = (self.total - self.progress).min(2048) as usize;
                    let chunk: Vec<u8> = (self.progress..self.progress + n as u64)
                        .map(|i| (i % 251) as u8)
                        .collect();
                    match k.write(self.wfd, &chunk) {
                        Ok(sent) => {
                            self.progress += sent as u64;
                            return Step::Compute(50_000);
                        }
                        Err(Errno::WouldBlock) => return Step::Block,
                        Err(e) => panic!("pipe write: {e:?}"),
                    }
                }
                // ---- parent: reader ----
                20 => match k.read(self.rfd, 4096) {
                    Ok(b) if b.is_empty() => {
                        assert_eq!(self.progress, self.total, "short pipe stream");
                        let fd = k.open("/shared/pipe_result", true).expect("result");
                        k.write(fd, self.checksum.to_string().as_bytes())
                            .expect("w");
                        self.pc = 21;
                    }
                    Ok(b) => {
                        for &byte in &b {
                            assert_eq!(
                                byte,
                                (self.progress % 251) as u8,
                                "pipe byte order broken at {}",
                                self.progress
                            );
                            self.checksum =
                                self.checksum.wrapping_mul(31).wrapping_add(byte as u64);
                            self.progress += 1;
                        }
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("pipe read: {e:?}"),
                },
                21 => match k.waitpid(oskit::world::Pid(self.child)) {
                    Ok(code) => {
                        assert_eq!(code, 0);
                        return Step::Exit(0);
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("waitpid: {e:?}"),
                },
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "pipe-chain"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

/// A two-thread process: the main thread spawns a worker; both count to a
/// target with compute steps; main joins by polling a shared heap cell the
/// worker bumps, then records both counters.
pub struct TwinMain {
    pub pc: u8,
    pub heap: u64,
    pub count: u64,
    pub target: u64,
}
simkit::impl_snap!(struct TwinMain { pc, heap, count, target });

pub struct TwinWorker {
    pub heap: u64,
    pub count: u64,
    pub target: u64,
}
simkit::impl_snap!(struct TwinWorker { heap, count, target });

impl Program for TwinWorker {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        if self.count < self.target {
            self.count += 1;
            return Step::Compute(100_000);
        }
        k.mem_write(self.heap as usize, 0, &1u64.to_le_bytes());
        Step::ExitThread
    }
    fn tag(&self) -> &'static str {
        "twin-worker"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

impl Program for TwinMain {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    self.heap = k.mmap_anon("twin-flag", 8) as u64;
                    let worker = TwinWorker {
                        heap: self.heap,
                        count: 0,
                        target: self.target,
                    };
                    k.spawn_thread(Box::new(worker), true);
                    self.pc = 1;
                }
                1 => {
                    if self.count < self.target {
                        self.count += 1;
                        return Step::Compute(100_000);
                    }
                    self.pc = 2;
                }
                2 => {
                    let flag = k.mem_read(self.heap as usize, 0, 8);
                    if u64::from_le_bytes(flag.try_into().expect("8")) == 1 {
                        let fd = k.open("/shared/twin_result", true).expect("result");
                        k.write(fd, format!("{}", self.count * 2).as_bytes())
                            .expect("w");
                        return Step::Exit(0);
                    }
                    return Step::Sleep(Nanos::from_millis(1));
                }
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "twin-main"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

/// Like [`ChainClient`], but fault-tolerant: when the server dies mid-run
/// (fault-injection cells kill processes at protocol stages) the client
/// exits with a nonzero status *without* writing its result file. A faulted
/// run may therefore produce no answer — never a wrong one.
pub struct FtChainClient {
    pub inner: ChainClient,
}
simkit::impl_snap!(struct FtChainClient { inner });

impl FtChainClient {
    pub fn new(server: &str, port: u16, rounds: u64) -> Self {
        FtChainClient {
            inner: ChainClient::new(server, port, rounds),
        }
    }
}

impl Program for FtChainClient {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        let c = &mut self.inner;
        loop {
            match c.pc {
                0 => match k.connect(&c.server, c.port) {
                    Ok(fd) => {
                        c.fd = fd;
                        c.pc = 1;
                    }
                    Err(Errno::ConnRefused) => return Step::Sleep(Nanos::from_millis(2)),
                    Err(e) => panic!("ft client connect: {e:?}"),
                },
                1 => {
                    if c.sent == c.rounds {
                        let _ = k.close(c.fd);
                        let fd = k.open("/shared/client_result", true).expect("result");
                        k.write(fd, c.value.to_string().as_bytes()).expect("w");
                        return Step::Exit(0);
                    }
                    match k.write(c.fd, &c.value.to_le_bytes()) {
                        Ok(n) => {
                            assert_eq!(n, 8);
                            c.sent += 1;
                            c.pc = 2;
                            return Step::Compute(200_000);
                        }
                        Err(Errno::WouldBlock) => return Step::Block,
                        // Server killed by a fault: die without an answer.
                        Err(Errno::Pipe) => return Step::Exit(1),
                        Err(e) => panic!("ft client send: {e:?}"),
                    }
                }
                2 => match k.read(c.fd, 8 - c.inbuf.len()) {
                    // Server hung up mid-round: tolerated, but no result.
                    Ok(b) if b.is_empty() => return Step::Exit(1),
                    Ok(b) => {
                        c.inbuf.extend_from_slice(&b);
                        if c.inbuf.len() == 8 {
                            let v = u64::from_le_bytes(c.inbuf[..].try_into().expect("8"));
                            assert_eq!(v, c.value + 1, "stream corrupted");
                            c.value = v;
                            c.inbuf.clear();
                            c.pc = 1;
                        }
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("ft client read: {e:?}"),
                },
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "ft-chain-client"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

/// Like [`PipeChain`], but fault-tolerant: if the writer child is killed
/// the reader sees a short stream and exits nonzero without a result; if
/// the reader dies the writer's EPIPE is likewise a clean exit. Used by the
/// fault matrix, where a kill mid-protocol must never yield a wrong answer.
pub struct FtPipeChain {
    pub inner: PipeChain,
}
simkit::impl_snap!(struct FtPipeChain { inner });

impl FtPipeChain {
    pub fn new(total: u64) -> Self {
        FtPipeChain {
            inner: PipeChain::new(total),
        }
    }
}

impl Program for FtPipeChain {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            // `fork_snapshot` needs `self` whole, so re-borrow per iteration.
            if self.inner.pc == 0 {
                let (r, w) = k.pipe();
                self.inner.rfd = r;
                self.inner.wfd = w;
                self.inner.pc = 1;
                let child = k.fork_snapshot(self).expect("fork");
                self.inner.child = child.0;
                continue;
            }
            let c = &mut self.inner;
            match c.pc {
                1 => match k.fork_ret() {
                    Some(0) => {
                        k.clear_fork_ret();
                        k.close(c.rfd).expect("child closes read end");
                        c.pc = 10;
                    }
                    _ => {
                        k.clear_fork_ret();
                        k.close(c.wfd).expect("parent closes write end");
                        c.pc = 20;
                    }
                },
                // ---- child: writer ----
                10 => {
                    if c.progress >= c.total {
                        let _ = k.close(c.wfd);
                        return Step::Exit(0);
                    }
                    let n = (c.total - c.progress).min(2048) as usize;
                    let chunk: Vec<u8> = (c.progress..c.progress + n as u64)
                        .map(|i| (i % 251) as u8)
                        .collect();
                    match k.write(c.wfd, &chunk) {
                        Ok(sent) => {
                            c.progress += sent as u64;
                            return Step::Compute(50_000);
                        }
                        Err(Errno::WouldBlock) => return Step::Block,
                        // Reader killed by a fault: die without an answer.
                        Err(Errno::Pipe) => return Step::Exit(1),
                        Err(e) => panic!("ft pipe write: {e:?}"),
                    }
                }
                // ---- parent: reader ----
                20 => match k.read(c.rfd, 4096) {
                    Ok(b) if b.is_empty() => {
                        if c.progress != c.total {
                            // Writer killed mid-stream: no result.
                            return Step::Exit(1);
                        }
                        let fd = k.open("/shared/pipe_result", true).expect("result");
                        k.write(fd, c.checksum.to_string().as_bytes()).expect("w");
                        c.pc = 21;
                    }
                    Ok(b) => {
                        for &byte in &b {
                            assert_eq!(
                                byte,
                                (c.progress % 251) as u8,
                                "pipe byte order broken at {}",
                                c.progress
                            );
                            c.checksum = c.checksum.wrapping_mul(31).wrapping_add(byte as u64);
                            c.progress += 1;
                        }
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("ft pipe read: {e:?}"),
                },
                21 => match k.waitpid(oskit::world::Pid(c.child)) {
                    // The child may have been SIGKILLed *after* it finished
                    // writing — the stream was complete, so any exit code
                    // is acceptable here.
                    Ok(_) => return Step::Exit(0),
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("ft waitpid: {e:?}"),
                },
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "ft-pipe-chain"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

/// Fills an anonymous region with a deterministic pattern, then — when the
/// test raises the `/shared/cow_go` flag — overwrites the whole region: the
/// canonical probe for copy-on-write forked checkpoints, where that write
/// must be charged a physical copy and must NOT leak into the in-flight
/// image. On `/shared/cow_dump` it records the region's rolling checksum in
/// `/shared/cow_result` and exits.
pub struct CowProbe {
    pub pc: u8,
    pub region: u64,
    pub len: u64,
    pub wrote: u8,
}
simkit::impl_snap!(struct CowProbe { pc, region, len, wrote });

impl CowProbe {
    pub fn new(len: u64) -> Self {
        CowProbe {
            pc: 0,
            region: 0,
            len,
            wrote: 0,
        }
    }

    /// The bytes the region holds at fork time.
    pub fn pattern(len: u64) -> Vec<u8> {
        (0..len).map(|i| (i % 251) as u8).collect()
    }

    /// Rolling checksum matching what the probe records.
    pub fn checksum(bytes: &[u8]) -> u64 {
        bytes
            .iter()
            .fold(0u64, |a, &b| a.wrapping_mul(31).wrapping_add(b as u64))
    }
}

impl Program for CowProbe {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    self.region = k.mmap_anon("cow-probe", self.len as usize) as u64;
                    k.mem_write(self.region as usize, 0, &Self::pattern(self.len));
                    let fd = k.open("/shared/cow_ready", true).expect("flag");
                    k.close(fd).expect("close flag");
                    self.pc = 1;
                }
                1 => {
                    if let Ok(fd) = k.open("/shared/cow_dump", false) {
                        k.close(fd).expect("close");
                        let bytes = k.mem_read(self.region as usize, 0, self.len as usize);
                        let fd = k.open("/shared/cow_result", true).expect("result");
                        k.write(fd, Self::checksum(&bytes).to_string().as_bytes())
                            .expect("w");
                        return Step::Exit(0);
                    }
                    if self.wrote == 0 {
                        if let Ok(fd) = k.open("/shared/cow_go", false) {
                            k.close(fd).expect("close");
                            k.mem_write(self.region as usize, 0, &vec![0xBB; self.len as usize]);
                            self.wrote = 1;
                            let fd = k.open("/shared/cow_done", true).expect("flag");
                            k.close(fd).expect("close flag");
                        }
                    }
                    return Step::Sleep(Nanos(200_000));
                }
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "cow-probe"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

/// Like [`CowProbe`] but over an `mmap(MAP_SHARED)` segment: writes go
/// through to the live segment (never copy-on-write), so a forked
/// checkpoint must charge nothing for them. Flags: `/shared/shm_go`,
/// `/shared/shm_done`, `/shared/shm_dump`, result `/shared/shm_result`.
pub struct ShmProbe {
    pub pc: u8,
    pub region: u64,
    pub len: u64,
    pub wrote: u8,
}
simkit::impl_snap!(struct ShmProbe { pc, region, len, wrote });

impl ShmProbe {
    pub fn new(len: u64) -> Self {
        ShmProbe {
            pc: 0,
            region: 0,
            len,
            wrote: 0,
        }
    }
}

impl Program for ShmProbe {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    let id = k.mmap_shared("/shm_probe", self.len as usize).expect("shm");
                    self.region = id as u64;
                    k.mem_write(self.region as usize, 0, &CowProbe::pattern(self.len));
                    let fd = k.open("/shared/shm_ready", true).expect("flag");
                    k.close(fd).expect("close flag");
                    self.pc = 1;
                }
                1 => {
                    if let Ok(fd) = k.open("/shared/shm_dump", false) {
                        k.close(fd).expect("close");
                        let bytes = k.mem_read(self.region as usize, 0, self.len as usize);
                        let fd = k.open("/shared/shm_result", true).expect("result");
                        k.write(fd, CowProbe::checksum(&bytes).to_string().as_bytes())
                            .expect("w");
                        return Step::Exit(0);
                    }
                    if self.wrote == 0 {
                        if let Ok(fd) = k.open("/shared/shm_go", false) {
                            k.close(fd).expect("close");
                            k.mem_write(self.region as usize, 0, &vec![0x5A; self.len as usize]);
                            self.wrote = 1;
                            let fd = k.open("/shared/shm_done", true).expect("flag");
                            k.close(fd).expect("close flag");
                        }
                    }
                    return Step::Sleep(Nanos(200_000));
                }
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "shm-probe"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

/// Registry with every test application.
pub fn test_registry() -> Registry {
    let mut r = Registry::new();
    r.register_snap::<EchoPlusOne>("echo-plus-one");
    r.register_snap::<ChainClient>("chain-client");
    r.register_snap::<PipeChain>("pipe-chain");
    r.register_snap::<TwinMain>("twin-main");
    r.register_snap::<TwinWorker>("twin-worker");
    r.register_snap::<FtChainClient>("ft-chain-client");
    r.register_snap::<FtPipeChain>("ft-pipe-chain");
    r.register_snap::<CowProbe>("cow-probe");
    r.register_snap::<ShmProbe>("shm-probe");
    r
}

/// A standard 2-node world + sim.
pub fn cluster(nodes: usize) -> (World, OsSim) {
    (
        World::new(HwSpec::cluster(), nodes, test_registry()),
        Sim::new(),
    )
}

/// Event budget for bounded simulation runs.
///
/// Defaults to 8 million events; override with `DMTCP_TEST_EV_BUDGET` when a
/// slow machine or an unusually deep workload needs more headroom. Tests use
/// this through `Sim::run_budgeted` so that an exhausted budget is reported
/// distinctly from a genuine deadlock (drained queue, unfinished app).
pub fn run_budget() -> u64 {
    std::env::var("DMTCP_TEST_EV_BUDGET")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(8_000_000)
}

/// Read a /shared result file as a string.
pub fn shared_result(w: &World, path: &str) -> Option<String> {
    w.shared_fs
        .read_all(path)
        .ok()
        .map(|b| String::from_utf8(b).expect("utf8"))
}
