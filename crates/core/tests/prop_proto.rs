//! Property-style round-trip tests for the coordinator wire protocol.
//!
//! No external property-testing crate: a seeded [`DetRng`] generates
//! thousands of random message sequences, the wire bytes are re-chunked at
//! random boundaries, and the decoder must reproduce the exact sequence.
//! Malformed frames — truncated bodies, corrupt payloads, lying length
//! prefixes — must surface as `Err`, never a panic or a wrong message.

use dmtcp::gsid::Gsid;
use dmtcp::proto::{frame, FrameBuf, Msg, RejectReason};
use simkit::DetRng;

/// Every wire message, drawn with random payloads. Keeping the arm count in
/// one place means a new `Msg` variant shows up here or the exhaustiveness
/// check below goes stale.
const VARIANTS: u64 = 21;

fn rand_string(rng: &mut DetRng) -> String {
    let len = rng.below(24) as usize;
    (0..len)
        .map(|_| char::from(b'a' + rng.below(26) as u8))
        .collect()
}

fn rand_msg(rng: &mut DetRng) -> Msg {
    match rng.below(VARIANTS) {
        0 => Msg::Register(rng.next_u32(), rand_string(rng)),
        1 => Msg::CkptRequest(rng.next_u64()),
        2 => Msg::BarrierReached(rng.next_u64(), rng.below(16) as u8),
        3 => Msg::BarrierRelease(rng.next_u64(), rng.below(16) as u8),
        4 => Msg::Advertise(
            Gsid(rng.next_u64()),
            rand_string(rng),
            rng.next_u32() as u16,
        ),
        5 => Msg::Query(Gsid(rng.next_u64())),
        6 => Msg::QueryReply(
            Gsid(rng.next_u64()),
            rand_string(rng),
            rng.next_u32() as u16,
        ),
        7 => Msg::RestartPlan(rng.next_u32(), rng.next_u64()),
        8 => {
            let len = rng.below(512) as usize;
            Msg::Refill((0..len).map(|_| rng.next_u32() as u8).collect())
        }
        9 => Msg::CkptAbort(rng.next_u64()),
        10 => Msg::RelayRegister(rand_string(rng)),
        11 => Msg::RelayMembership(rng.next_u32(), rng.next_u32()),
        12 => Msg::BarrierAckN(rng.next_u64(), rng.below(16) as u8, rng.next_u32()),
        13 => Msg::RelayPing(rng.next_u64()),
        14 => Msg::RelayPong(rng.next_u64()),
        15 => Msg::OpenSession(rand_string(rng), rng.next_u32()),
        16 => Msg::SessionAccepted(rng.next_u64(), rng.next_u32() as u16, rand_string(rng)),
        17 => Msg::SessionRejected(rng.below(8) as u8, rand_string(rng)),
        18 => Msg::CloseSession(rng.next_u64()),
        19 => Msg::SessionCkpt(rng.next_u64()),
        _ => Msg::MigratePlan(rng.next_u32(), rng.next_u64()),
    }
}

#[test]
fn random_sequences_roundtrip_under_random_chunking() {
    let mut rng = DetRng::seed_from_u64(0x9807_0ded);
    for round in 0..200 {
        let msgs: Vec<Msg> = (0..1 + rng.below(40)).map(|_| rand_msg(&mut rng)).collect();
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&frame(m));
        }
        // Deliver in random-size chunks (1..=17 bytes), popping eagerly.
        let mut fb = FrameBuf::new();
        let mut got = Vec::new();
        let mut off = 0;
        while off < wire.len() {
            let n = (1 + rng.below(17) as usize).min(wire.len() - off);
            fb.feed(&wire[off..off + n]);
            off += n;
            while let Some(m) = fb.pop().expect("well-formed frames decode") {
                got.push(m);
            }
        }
        assert_eq!(got, msgs, "round {round}: sequence mangled");
        assert_eq!(fb.pending(), 0, "round {round}: leftover bytes");
    }
}

#[test]
fn every_variant_roundtrips() {
    // Guarantee each of the 20 variants is hit at least once, independent of
    // what the random draw above happens to cover.
    let mut rng = DetRng::seed_from_u64(0xc0ff_ee00);
    let mut seen = [false; VARIANTS as usize];
    let mut draws = 0;
    while seen.iter().any(|s| !s) {
        let m = rand_msg(&mut rng);
        let idx = match &m {
            Msg::Register(..) => 0,
            Msg::CkptRequest(..) => 1,
            Msg::BarrierReached(..) => 2,
            Msg::BarrierRelease(..) => 3,
            Msg::Advertise(..) => 4,
            Msg::Query(..) => 5,
            Msg::QueryReply(..) => 6,
            Msg::RestartPlan(..) => 7,
            Msg::Refill(..) => 8,
            Msg::CkptAbort(..) => 9,
            Msg::RelayRegister(..) => 10,
            Msg::RelayMembership(..) => 11,
            Msg::BarrierAckN(..) => 12,
            Msg::RelayPing(..) => 13,
            Msg::RelayPong(..) => 14,
            Msg::OpenSession(..) => 15,
            Msg::SessionAccepted(..) => 16,
            Msg::SessionRejected(..) => 17,
            Msg::CloseSession(..) => 18,
            Msg::SessionCkpt(..) => 19,
            Msg::MigratePlan(..) => 20,
        };
        seen[idx] = true;
        let mut fb = FrameBuf::new();
        fb.feed(&frame(&m));
        assert_eq!(fb.pop().expect("valid"), Some(m));
        assert_eq!(fb.pending(), 0);
        draws += 1;
        assert!(draws < 10_000, "variant never drawn: {seen:?}");
    }
}

#[test]
fn truncated_frames_never_yield_a_message() {
    let mut rng = DetRng::seed_from_u64(0x7123_4cad);
    for _ in 0..500 {
        let m = rand_msg(&mut rng);
        let full = frame(&m);
        // Any strict prefix must decode to "not yet", never to a message.
        let cut = rng.below(full.len() as u64) as usize;
        let mut fb = FrameBuf::new();
        fb.feed(&full[..cut]);
        assert_eq!(fb.pop().expect("prefix is merely incomplete"), None);
        // Completing the frame recovers the message exactly.
        fb.feed(&full[cut..]);
        assert_eq!(fb.pop().expect("completed"), Some(m));
    }
}

#[test]
fn corrupt_bodies_are_rejected_not_panics() {
    let mut rng = DetRng::seed_from_u64(0xbad_f00d);
    let mut rejected = 0u32;
    for _ in 0..500 {
        let m = rand_msg(&mut rng);
        let mut wire = frame(&m);
        // Flip one random byte of the body (never the length prefix, which
        // would merely re-segment the stream).
        if wire.len() <= 4 {
            continue;
        }
        let idx = 4 + rng.below((wire.len() - 4) as u64) as usize;
        wire[idx] ^= 1 << rng.below(8);
        let mut fb = FrameBuf::new();
        fb.feed(&wire);
        match fb.pop() {
            Err(_) => rejected += 1,
            // A flip landing in payload bytes (string contents, counts, or
            // encoding slack the decoder ignores) can still yield a message;
            // the property under test is "never a panic", plus the decoder
            // actually rejecting structurally broken bodies often enough to
            // prove validation is live.
            Ok(Some(_)) => {}
            Ok(None) => unreachable!("full frame was fed"),
        }
    }
    assert!(rejected > 0, "no corruption was ever rejected");
}

#[test]
fn unknown_variant_tag_is_rejected() {
    // The first body byte carries the variant tag; 0xFF names no variant.
    let mut wire = frame(&Msg::RelayPong(1));
    wire[4] = 0xFF;
    let mut fb = FrameBuf::new();
    fb.feed(&wire);
    assert!(fb.pop().is_err(), "an unknown message tag must be rejected");
}

#[test]
fn reject_reason_codes_roundtrip_and_unknowns_are_none() {
    // Every named reason survives a trip through its wire byte, and the
    // bytes that name nothing decode to None — a daemon from a newer build
    // can add reasons without crashing older clients.
    for r in [
        RejectReason::SessionsFull,
        RejectReason::TooManyProcs,
        RejectReason::QuotaExceeded,
        RejectReason::BadRequest,
    ] {
        assert_eq!(RejectReason::from_code(r as u8), Some(r));
    }
    for code in [0u8, 5, 6, 42, 255] {
        assert_eq!(RejectReason::from_code(code), None);
    }
}

#[test]
fn lying_length_prefix_is_an_error() {
    // A frame whose length prefix promises more body than the message has:
    // decoding the (complete, but short) body must error out.
    let body_short = {
        let mut f = frame(&Msg::CkptRequest(7));
        let body_len = u32::from_le_bytes(f[..4].try_into().unwrap());
        f[..4].copy_from_slice(&(body_len - 2).to_le_bytes());
        f
    };
    let mut fb = FrameBuf::new();
    fb.feed(&body_short);
    assert!(
        fb.pop().is_err(),
        "a truncated body behind a satisfied length prefix must be rejected"
    );
}
