//! Focused diagnosis harness for the restart path (kept as a regression
//! test with verbose state dumps on failure).

mod common;

use common::*;
use dmtcp::session::run_for;
use dmtcp::{ExpectCkpt, Options, RestartPlan, Session};
use oskit::proc::ThreadState;
use oskit::world::NodeId;
use simkit::Nanos;

#[test]
fn restart_diagnosis() {
    let rounds = 400;
    let (mut w, mut sim) = cluster(2);
    w.trace.set_enabled(true);
    let s = Session::start(
        &mut w,
        &mut sim,
        Options::builder().ckpt_dir("/shared/ckpt").build(),
    );
    s.launch(
        &mut w,
        &mut sim,
        NodeId(1),
        "server",
        Box::new(EchoPlusOne::new(9000)),
    );
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "client",
        Box::new(ChainClient::new("node01", 9000, rounds)),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(40));
    let stat = s
        .checkpoint_and_wait(&mut w, &mut sim, 5_000_000)
        .expect_ckpt();
    let gen = stat.gen;
    run_for(&mut w, &mut sim, Nanos::from_millis(20));
    s.kill_computation(&mut w, &mut sim);
    RestartPlan::from_generation(&w, s.opts.coord_port, gen)
        .expect("restart script written")
        .execute(&s, &mut w, &mut sim)
        .expect("identity restart");
    Session::wait_restart_done(&mut w, &mut sim, gen, 5_000_000);
    let drained_ok = sim.run_bounded(&mut w, 5_000_000);

    let result = shared_result(&w, "/shared/client_result");
    if result.is_none() || !drained_ok {
        eprintln!("=== sim stalled; process dump ===");
        for (pid, p) in &w.procs {
            eprintln!(
                "pid {} cmd {} state {:?} suspended {} threads:",
                pid.0, p.cmd, p.state, p.user_suspended
            );
            for t in &p.threads {
                eprintln!(
                    "   tid {} user {} state {:?} pending {} prog {}",
                    t.tid.0,
                    t.user,
                    t.state,
                    t.dispatch_pending,
                    t.program.tag()
                );
                let _ = ThreadState::Runnable;
            }
            for (fd, e) in p.fds.iter() {
                eprintln!("   fd {fd} -> {:?}", e.obj);
            }
        }
        eprintln!("=== conns ===");
        for (cid, c) in &w.conns {
            eprintln!(
                "conn {} kind {:?} nodes {:?} refs {:?} closed {:?} buf0 {} inflight0 {} buf1 {} inflight1 {}",
                cid.0, c.kind, c.node, c.end_refs, c.closed,
                c.dirs[0].recv_buf.len(), c.dirs[0].in_flight,
                c.dirs[1].recv_buf.len(), c.dirs[1].in_flight,
            );
        }
        eprintln!("=== last trace ===");
        let ev = w.trace.events();
        for e in ev.iter().rev().take(40).collect::<Vec<_>>().iter().rev() {
            eprintln!("{} [{}] {}", e.at, e.tag, e.detail);
        }
        panic!("restart diagnosis failed: result {result:?}");
    }
}

#[test]
fn exact_copy_of_failing_test() {
    let rounds = 400;
    // reference run first, as in the failing test
    {
        let (mut w, mut sim) = cluster(2);
        use std::collections::BTreeMap;
        w.spawn(
            &mut sim,
            NodeId(1),
            "server",
            Box::new(EchoPlusOne::new(9000)),
            oskit::world::Pid(1),
            BTreeMap::new(),
        );
        w.spawn(
            &mut sim,
            NodeId(0),
            "client",
            Box::new(ChainClient::new("node01", 9000, rounds)),
            oskit::world::Pid(1),
            BTreeMap::new(),
        );
        assert!(sim.run_bounded(&mut w, 5_000_000));
        eprintln!(
            "reference client = {:?}",
            shared_result(&w, "/shared/client_result")
        );
    }
    let (mut w, mut sim) = cluster(2);
    let s = Session::start(
        &mut w,
        &mut sim,
        Options::builder().ckpt_dir("/shared/ckpt").build(),
    );
    s.launch(
        &mut w,
        &mut sim,
        NodeId(1),
        "server",
        Box::new(EchoPlusOne::new(9000)),
    );
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "client",
        Box::new(ChainClient::new("node01", 9000, rounds)),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(40));
    let stat = s
        .checkpoint_and_wait(&mut w, &mut sim, 5_000_000)
        .expect_ckpt();
    let gen = stat.gen;
    run_for(&mut w, &mut sim, Nanos::from_millis(20));
    s.kill_computation(&mut w, &mut sim);
    assert_eq!(w.live_procs(), 1);
    assert!(
        shared_result(&w, "/shared/client_result").is_none(),
        "client finished before kill!"
    );
    RestartPlan::from_generation(&w, s.opts.coord_port, gen)
        .expect("restart script written")
        .execute(&s, &mut w, &mut sim)
        .expect("identity restart");
    Session::wait_restart_done(&mut w, &mut sim, gen, 5_000_000);
    assert!(sim.run_bounded(&mut w, 5_000_000), "post-restart deadlock");
    eprintln!(
        "client_result = {:?}",
        shared_result(&w, "/shared/client_result")
    );
    eprintln!(
        "server_result = {:?}",
        shared_result(&w, "/shared/server_result")
    );
    if shared_result(&w, "/shared/server_result").is_none() {
        for (pid, p) in &w.procs {
            eprintln!(
                "pid {} cmd {} state {:?} suspended {}",
                pid.0, p.cmd, p.state, p.user_suspended
            );
            for t in &p.threads {
                eprintln!(
                    "   tid {} user {} state {:?} pending {} prog {}",
                    t.tid.0,
                    t.user,
                    t.state,
                    t.dispatch_pending,
                    t.program.tag()
                );
            }
            for (fd, e) in p.fds.iter() {
                eprintln!("   fd {fd} -> {:?}", e.obj);
            }
        }
        for (cid, c) in &w.conns {
            eprintln!(
                "conn {} kind {:?} refs {:?} closed {:?} d0(buf {} fly {}) d1(buf {} fly {})",
                cid.0,
                c.kind,
                c.end_refs,
                c.closed,
                c.dirs[0].recv_buf.len(),
                c.dirs[0].in_flight,
                c.dirs[1].recv_buf.len(),
                c.dirs[1].in_flight
            );
        }
        panic!("server stalled");
    }
}

#[test]
fn pipe_ckpt_diagnosis() {
    let (mut w, mut sim) = cluster(1);
    w.trace.set_enabled(true);
    let s = Session::start(
        &mut w,
        &mut sim,
        Options::builder().ckpt_dir("/shared/ckpt").build(),
    );
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "pipechain",
        Box::new(PipeChain::new(3_000_000)),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(30));
    s.request_checkpoint(&mut w, &mut sim);
    let done = sim.run_bounded(&mut w, 5_000_000);
    let stat = Session::last_gen_stat(&mut w);
    let complete = stat
        .as_ref()
        .map(|g| g.releases.contains_key(&6u8))
        .unwrap_or(false);
    if !complete {
        eprintln!("drained={done} stat={stat:?}");
        for (pid, p) in &w.procs {
            eprintln!(
                "pid {} cmd {} state {:?} susp {}",
                pid.0, p.cmd, p.state, p.user_suspended
            );
            for t in &p.threads {
                eprintln!(
                    "   tid {} user {} st {:?} pend {} prog {}",
                    t.tid.0,
                    t.user,
                    t.state,
                    t.dispatch_pending,
                    t.program.tag()
                );
            }
            for (fd, e) in p.fds.iter() {
                eprintln!("   fd {fd} -> {:?}", e.obj);
            }
        }
        for (cid, c) in &w.conns {
            eprintln!("conn {} kind {:?} refs {:?} closed {:?} owners {:?} d0(buf {} fly {}) d1(buf {} fly {})",
              cid.0, c.kind, c.end_refs, c.closed, c.owner_pid, c.dirs[0].recv_buf.len(), c.dirs[0].in_flight, c.dirs[1].recv_buf.len(), c.dirs[1].in_flight);
        }
        for e in w
            .trace
            .events()
            .iter()
            .rev()
            .take(30)
            .collect::<Vec<_>>()
            .iter()
            .rev()
        {
            eprintln!("{} [{}] {}", e.at, e.tag, e.detail);
        }
        panic!("pipe checkpoint stalled");
    }
}
