//! `ckptstore` under a full DMTCP session: incremental generations dedup
//! unchanged memory, the store never changes what a restart computes, and a
//! restart proceeds from a peer replica when the primary node's store is
//! wiped.
mod common;

use common::*;
use dmtcp::session::run_for;
use dmtcp::{ExpectCkpt, Options, Session};
use oskit::mem::FillProfile;
use oskit::program::{Program, Step};
use oskit::world::NodeId;
use oskit::Kernel;
use simkit::{Nanos, Snap};

/// A process whose address space is dominated by ballast that never
/// changes after startup — the ideal case for incremental checkpoints.
struct MemHog {
    pc: u8,
    ticks: u64,
}
simkit::impl_snap!(struct MemHog { pc, ticks });

impl Program for MemHog {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        if self.pc == 0 {
            k.mmap_synthetic("ballast", 16 << 20, 0xb0a7, FillProfile::Random);
            self.pc = 1;
        }
        self.ticks += 1;
        Step::Compute(100_000)
    }
    fn tag(&self) -> &'static str {
        "memhog"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

/// Generation N ≥ 2 of an unchanged process stores ≥ 90 % fewer bytes than
/// generation 1: the ballast chunks dedup and only the mutated head (thread
/// state, counters) plus a manifest go back to storage.
#[test]
fn unchanged_generations_dedup_90_percent() {
    let budget = run_budget();
    let (mut w, mut sim) = cluster(2);
    ckptstore::install(&mut w, ckptstore::Config::default());
    let s = Session::start(
        &mut w,
        &mut sim,
        Options::builder().ckpt_dir("/shared/ckpt").build(),
    );
    s.launch(
        &mut w,
        &mut sim,
        NodeId(1),
        "memhog",
        Box::new(MemHog { pc: 0, ticks: 0 }),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(4));

    let g1 = s
        .checkpoint_and_wait(&mut w, &mut sim, budget)
        .expect_ckpt();
    assert_eq!(g1.gen, 1);
    let gen1_bytes = w.obs.metrics.counter_total("ckptstore.bytes_written");
    assert!(gen1_bytes > 0, "gen 1 must store the image");

    run_for(&mut w, &mut sim, Nanos::from_millis(2));
    let g2 = s
        .checkpoint_and_wait(&mut w, &mut sim, budget)
        .expect_ckpt();
    assert_eq!(g2.gen, 2);
    let gen2_bytes = w.obs.metrics.counter_total("ckptstore.bytes_written") - gen1_bytes;
    assert!(
        gen2_bytes * 10 <= gen1_bytes,
        "gen 2 stored {gen2_bytes} bytes, more than 10% of gen 1's {gen1_bytes}"
    );
    assert!(
        w.obs.metrics.counter_total("ckptstore.bytes_deduped") > 0,
        "the ballast must dedup"
    );
}

fn pipe_run(store: bool, wipe_primary_store: bool) -> String {
    let budget = run_budget();
    let (mut w, mut sim) = cluster(2);
    if store {
        ckptstore::install(&mut w, ckptstore::Config::default());
    }
    let s = Session::start(
        &mut w,
        &mut sim,
        Options::builder().ckpt_dir("/shared/ckpt").build(),
    );
    s.launch(
        &mut w,
        &mut sim,
        NodeId(1),
        "pipe",
        Box::new(FtPipeChain::new(900_000)),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(6));
    let g1 = s
        .checkpoint_and_wait(&mut w, &mut sim, budget)
        .expect_ckpt();
    assert_eq!(g1.gen, 1);
    run_for(&mut w, &mut sim, Nanos::from_millis(2));
    let g2 = s
        .checkpoint_and_wait(&mut w, &mut sim, budget)
        .expect_ckpt();
    assert_eq!(g2.gen, 2);
    run_for(&mut w, &mut sim, Nanos::from_millis(6));
    s.kill_computation(&mut w, &mut sim);
    let _ = w.shared_fs.remove("/shared/pipe_result");
    if wipe_primary_store {
        // Node-local disk loss on the node that wrote the images.
        let doomed: Vec<String> = w.nodes[1]
            .fs
            .list_prefix(oskit::fs::STORE_ROOT)
            .map(|p| p.to_string())
            .collect();
        assert!(!doomed.is_empty(), "the primary store must exist to wipe");
        for p in doomed {
            w.nodes[1].fs.remove(&p).unwrap();
        }
    }
    let hosts: Vec<(String, NodeId)> = (0..w.nodes.len())
        .map(|i| (w.nodes[i].hostname.clone(), NodeId(i as u32)))
        .collect();
    let remap = move |h: &str| {
        hosts
            .iter()
            .find(|(n, _)| n == h)
            .map(|(_, x)| *x)
            .expect("known host")
    };
    let restored = s
        .restart_resilient(&mut w, &mut sim, &remap)
        .expect("restart");
    assert_eq!(restored.gen, 2, "latest generation restarts");
    Session::wait_restart_done(&mut w, &mut sim, restored.gen, budget);
    assert!(
        !matches!(
            sim.run_budgeted(&mut w, budget),
            simkit::RunOutcome::BudgetExhausted
        ),
        "restarted computation must finish"
    );
    if wipe_primary_store {
        assert!(
            w.obs.metrics.counter_total("ckptstore.replica_fetch_bytes") > 0,
            "the image must have been fetched from a peer replica"
        );
    }
    shared_result(&w, "/shared/pipe_result").expect("restarted run writes its answer")
}

/// Transparency: checkpoint/restart through the store computes exactly what
/// a plain-file checkpoint computes.
#[test]
fn store_restart_matches_plain_restart() {
    assert_eq!(pipe_run(false, false), pipe_run(true, false));
}

/// Losing every store file on the image-holding node is survivable: the
/// restart assembles the image from the ring replica on the peer node.
#[test]
fn restart_proceeds_from_replica_after_primary_store_loss() {
    assert_eq!(pipe_run(false, false), pipe_run(true, true));
}
