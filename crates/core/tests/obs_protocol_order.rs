//! Protocol-order invariants verified through the observability layer:
//! the span stream and metrics registry are the witnesses, not ad-hoc
//! instrumentation.
//!
//! Figure 1's contract: no process may begin writing its checkpoint image
//! until the coordinator has released the DRAINED barrier (otherwise the
//! image could miss in-flight socket data), and every byte drained from a
//! kernel buffer must be refilled after the write — none lost, none
//! invented.

mod common;

use common::*;
use dmtcp::session::run_for;
use dmtcp::{ExpectCkpt, Options, Session};
use oskit::world::NodeId;
use simkit::Nanos;

const EV: u64 = 5_000_000;

#[test]
fn mtcp_writes_wait_for_drained_barrier_and_refill_conserves_bytes() {
    let rounds = 400;
    let (mut w, mut sim) = cluster(2);
    w.obs.spans.set_enabled(true);
    let s = Session::start(
        &mut w,
        &mut sim,
        Options::builder().ckpt_dir("/shared/ckpt").build(),
    );
    s.launch(
        &mut w,
        &mut sim,
        NodeId(1),
        "server",
        Box::new(EchoPlusOne::new(9000)),
    );
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "client",
        Box::new(ChainClient::new("node01", 9000, rounds)),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(40)); // mid-stream
    let g = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
    assert_eq!(g.participants, 2);
    // Managers record their stage samples when they resume user threads,
    // shortly after the final barrier releases.
    run_for(&mut w, &mut sim, Nanos::from_millis(50));
    let gen = g.gen;

    // (1) No image write begins before the DRAINED barrier releases.
    let spans = w.obs.spans.spans();
    let drained_at = spans
        .iter()
        .find(|s| s.name == "release.drained" && s.arg("gen") == Some(gen))
        .expect("DRAINED release instant recorded")
        .start;
    let writes: Vec<_> = spans.iter().filter(|s| s.name == "mtcp.write").collect();
    assert_eq!(writes.len(), 2, "one image write per process: {writes:?}");
    for wr in &writes {
        assert!(
            wr.start >= drained_at,
            "mtcp.write began at {:?}, before DRAINED released at {:?}",
            wr.start,
            drained_at
        );
    }

    // (2) One complete span per Figure-1 stage per process.
    for name in [
        "stage.suspend",
        "stage.elect",
        "stage.drain",
        "stage.write",
        "stage.refill",
    ] {
        let n = w
            .obs
            .spans
            .with_name(name)
            .filter(|s| s.arg("gen") == Some(gen))
            .count();
        assert_eq!(n, 2, "{name}: want one span per checkpointed process");
    }

    // (3) Byte conservation: total drained == total refilled for the
    // generation (the resend writes are counted as they land).
    let drained = w.obs.metrics.counter("core.drain.bytes", gen);
    let refilled = w.obs.metrics.counter("core.refill.bytes", gen);
    assert_eq!(
        drained, refilled,
        "drain/refill byte conservation for gen {gen}"
    );

    // The computation must still finish correctly afterwards.
    assert!(sim.run_bounded(&mut w, EV), "post-checkpoint deadlock");
    assert!(shared_result(&w, "/shared/client_result").is_some());

    // (4) The witnesses themselves must be lossless: a span ring that
    // silently evicted entries would make every assertion above vacuous.
    w.obs.sync_drop_counters();
    assert_eq!(
        w.obs.metrics.counter_total("obs.spans_dropped"),
        0,
        "span ring dropped entries; the protocol-order evidence is incomplete"
    );
}
