//! End-to-end distributed checkpoint/restart: the headline behaviour of the
//! paper, verified by the applications' own integrity checks.

mod common;

use common::*;
use dmtcp::coord::{coord_shared, stage};
use dmtcp::session::{run_for, transplant_storage};
use dmtcp::{ExpectCkpt, Options, RestartPlan, Session};
use oskit::proc::ProcState;
use oskit::world::NodeId;
use simkit::Nanos;

const EV: u64 = 5_000_000;

fn opts_shared_dir() -> Options {
    Options::builder().ckpt_dir("/shared/ckpt").build()
}

/// Reference: run the chain app with no DMTCP at all.
fn chain_reference(rounds: u64) -> (String, String) {
    let (mut w, mut sim) = cluster(2);
    use std::collections::BTreeMap;
    w.spawn(
        &mut sim,
        NodeId(1),
        "server",
        Box::new(EchoPlusOne::new(9000)),
        oskit::world::Pid(1),
        BTreeMap::new(),
    );
    w.spawn(
        &mut sim,
        NodeId(0),
        "client",
        Box::new(ChainClient::new("node01", 9000, rounds)),
        oskit::world::Pid(1),
        BTreeMap::new(),
    );
    assert!(sim.run_bounded(&mut w, EV));
    (
        shared_result(&w, "/shared/client_result").expect("client finished"),
        shared_result(&w, "/shared/server_result").expect("server finished"),
    )
}

fn launch_chain(
    w: &mut oskit::world::World,
    sim: &mut oskit::world::OsSim,
    s: &Session,
    rounds: u64,
) {
    s.launch(
        w,
        sim,
        NodeId(1),
        "server",
        Box::new(EchoPlusOne::new(9000)),
    );
    s.launch(
        w,
        sim,
        NodeId(0),
        "client",
        Box::new(ChainClient::new("node01", 9000, rounds)),
    );
}

#[test]
fn checkpoint_mid_stream_then_continue() {
    let rounds = 400;
    let (ref_client, ref_server) = chain_reference(rounds);

    let (mut w, mut sim) = cluster(2);
    let s = Session::start(&mut w, &mut sim, opts_shared_dir());
    launch_chain(&mut w, &mut sim, &s, rounds);
    run_for(&mut w, &mut sim, Nanos::from_millis(40)); // mid-computation
    assert!(w.live_procs() >= 3, "apps + coordinator alive");

    let stat = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
    assert_eq!(stat.participants, 2);
    assert!(stat.checkpoint_time().is_some());

    // Images + restart script exist on the shared fs.
    let images: Vec<_> = w.shared_fs.list_prefix("/shared/ckpt/").collect();
    assert_eq!(images.len(), 2, "one image per process: {images:?}");
    assert!(w.shared_fs.exists("/shared/dmtcp_restart_script.sh"));

    // The computation continues to the right answer.
    assert!(sim.run_bounded(&mut w, EV), "post-checkpoint deadlock");
    assert_eq!(
        shared_result(&w, "/shared/client_result").as_deref(),
        Some(ref_client.as_str())
    );
    assert_eq!(
        shared_result(&w, "/shared/server_result").as_deref(),
        Some(ref_server.as_str())
    );
}

#[test]
fn kill_and_restart_in_same_world() {
    let rounds = 400;
    let (ref_client, ref_server) = chain_reference(rounds);

    let (mut w, mut sim) = cluster(2);
    let s = Session::start(&mut w, &mut sim, opts_shared_dir());
    launch_chain(&mut w, &mut sim, &s, rounds);
    run_for(&mut w, &mut sim, Nanos::from_millis(40));
    let stat = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
    let gen = stat.gen;

    // Run a little further (progress past the checkpoint is discarded),
    // then kill the whole computation.
    run_for(&mut w, &mut sim, Nanos::from_millis(20));
    s.kill_computation(&mut w, &mut sim);
    assert_eq!(w.live_procs(), 1, "only the coordinator survives");
    // Results from the pre-kill run must not exist yet.
    assert!(shared_result(&w, "/shared/client_result").is_none());

    // Restart via the typed plan: identity placement, same hosts.
    let outcome = RestartPlan::from_generation(&w, s.opts.coord_port, gen)
        .expect("restart script written")
        .execute(&s, &mut w, &mut sim)
        .expect("identity restart");
    assert_eq!(
        outcome.placement.len(),
        2,
        "two hosts in placement: {:?}",
        outcome.placement
    );
    Session::wait_restart_done(&mut w, &mut sim, gen, EV);

    // The computation resumes and completes with the reference answers.
    assert!(sim.run_bounded(&mut w, EV), "post-restart deadlock");
    assert_eq!(
        shared_result(&w, "/shared/client_result").as_deref(),
        Some(ref_client.as_str())
    );
    assert_eq!(
        shared_result(&w, "/shared/server_result").as_deref(),
        Some(ref_server.as_str())
    );
}

#[test]
fn migrate_cluster_to_single_laptop() {
    // The paper's use case 6: checkpoint on a cluster, restart everything
    // on one machine.
    let rounds = 300;
    let (ref_client, ref_server) = chain_reference(rounds);

    let (mut w, mut sim) = cluster(2);
    let s = Session::start(&mut w, &mut sim, opts_shared_dir());
    launch_chain(&mut w, &mut sim, &s, rounds);
    run_for(&mut w, &mut sim, Nanos::from_millis(40));
    let stat = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
    let gen = stat.gen;

    // "Laptop": a fresh single-node world; only the shared storage moved.
    let (mut laptop, mut sim2) = {
        let mut lw = oskit::World::new(oskit::HwSpec::desktop(), 1, test_registry());
        transplant_storage(&w, &mut lw);
        // Results were not produced before the crash.
        let _ = lw.shared_fs.remove("/shared/client_result");
        (lw, simkit::Sim::new())
    };
    drop(w);
    drop(sim);

    let s2 = Session::start(&mut laptop, &mut sim2, opts_shared_dir());
    RestartPlan::builder()
        .generation(gen)
        .topology([NodeId(0)])
        .build()
        .execute(&s2, &mut laptop, &mut sim2)
        .expect("pack-down restart onto the laptop");
    Session::wait_restart_done(&mut laptop, &mut sim2, gen, EV);
    assert!(sim2.run_bounded(&mut laptop, EV), "laptop deadlock");
    assert_eq!(
        shared_result(&laptop, "/shared/client_result").as_deref(),
        Some(ref_client.as_str())
    );
    assert_eq!(
        shared_result(&laptop, "/shared/server_result").as_deref(),
        Some(ref_server.as_str())
    );
    // Loopback restore: the former cross-node socket now lives on one node.
    assert!(laptop.nodes.len() == 1);
}

#[test]
fn pipes_and_fork_survive_checkpoint_restart() {
    let total = 3_000_000; // ~45 windows of pipe data; runs well past the ckpt
    let (mut w, mut sim) = cluster(1);
    let s = Session::start(&mut w, &mut sim, opts_shared_dir());
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "pipechain",
        Box::new(PipeChain::new(total)),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(30));
    // Parent and forked child are both traced.
    let stat = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
    assert_eq!(stat.participants, 2, "fork wrapper traced the child");
    let gen = stat.gen;
    s.kill_computation(&mut w, &mut sim);
    RestartPlan::from_generation(&w, s.opts.coord_port, gen)
        .expect("restart script written")
        .execute(&s, &mut w, &mut sim)
        .expect("identity restart");
    Session::wait_restart_done(&mut w, &mut sim, gen, EV);
    assert!(
        sim.run_bounded(&mut w, EV),
        "pipe chain deadlocked after restart"
    );
    // The reader's own assertions verified the byte stream; the checksum
    // must match an uninterrupted run.
    let got = shared_result(&w, "/shared/pipe_result").expect("finished");
    let (mut w2, mut sim2) = cluster(1);
    use std::collections::BTreeMap;
    w2.spawn(
        &mut sim2,
        NodeId(0),
        "ref",
        Box::new(PipeChain::new(total)),
        oskit::world::Pid(1),
        BTreeMap::new(),
    );
    assert!(sim2.run_bounded(&mut w2, EV));
    assert_eq!(Some(got), shared_result(&w2, "/shared/pipe_result"));
}

#[test]
fn multithreaded_process_restores_both_threads() {
    let (mut w, mut sim) = cluster(1);
    let s = Session::start(&mut w, &mut sim, opts_shared_dir());
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "twin",
        Box::new(TwinMain {
            pc: 0,
            heap: 0,
            count: 0,
            target: 300,
        }),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(15)); // both threads mid-count
    let stat = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
    let gen = stat.gen;
    s.kill_computation(&mut w, &mut sim);
    RestartPlan::from_generation(&w, s.opts.coord_port, gen)
        .expect("restart script written")
        .execute(&s, &mut w, &mut sim)
        .expect("identity restart");
    Session::wait_restart_done(&mut w, &mut sim, gen, EV);
    assert!(sim.run_bounded(&mut w, EV));
    assert_eq!(
        shared_result(&w, "/shared/twin_result").as_deref(),
        Some("600")
    );
}

#[test]
fn interval_checkpointing_produces_multiple_generations() {
    let (mut w, mut sim) = cluster(2);
    let s = Session::start(
        &mut w,
        &mut sim,
        Options::builder()
            .ckpt_dir("/shared/ckpt")
            .interval(Nanos::from_millis(30))
            .build(),
    );
    launch_chain(&mut w, &mut sim, &s, 1500);
    assert!(
        sim.run_bounded(&mut w, 20_000_000),
        "interval run deadlocked"
    );
    let gens = coord_shared(&mut w).gen_stats.len();
    assert!(
        gens >= 3,
        "expected several interval checkpoints, got {gens}"
    );
    for g in &coord_shared(&mut w).gen_stats {
        assert!(
            g.releases.contains_key(&stage::REFILLED),
            "gen {} incomplete",
            g.gen
        );
    }
    // And the app still finished correctly.
    let (ref_client, _) = chain_reference(1500);
    assert_eq!(
        shared_result(&w, "/shared/client_result").as_deref(),
        Some(ref_client.as_str())
    );
}

#[test]
fn second_checkpoint_after_restart_works() {
    // Checkpoint → kill → restart → checkpoint again → kill → restart:
    // generations must keep advancing and the answer must stay right.
    let rounds = 600;
    let (ref_client, _) = chain_reference(rounds);
    let (mut w, mut sim) = cluster(2);
    let s = Session::start(&mut w, &mut sim, opts_shared_dir());
    launch_chain(&mut w, &mut sim, &s, rounds);
    run_for(&mut w, &mut sim, Nanos::from_millis(30));
    let g1 = s
        .checkpoint_and_wait(&mut w, &mut sim, EV)
        .expect_ckpt()
        .gen;
    s.kill_computation(&mut w, &mut sim);
    RestartPlan::from_generation(&w, s.opts.coord_port, g1)
        .expect("restart script written")
        .execute(&s, &mut w, &mut sim)
        .expect("identity restart");
    Session::wait_restart_done(&mut w, &mut sim, g1, EV);

    run_for(&mut w, &mut sim, Nanos::from_millis(20));
    let stat2 = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
    assert!(stat2.gen > g1, "generation advanced: {} > {g1}", stat2.gen);
    s.kill_computation(&mut w, &mut sim);
    RestartPlan::from_generation(&w, s.opts.coord_port, stat2.gen)
        .expect("restart script written")
        .execute(&s, &mut w, &mut sim)
        .expect("identity restart");
    Session::wait_restart_done(&mut w, &mut sim, stat2.gen, EV);
    assert!(sim.run_bounded(&mut w, EV));
    assert_eq!(
        shared_result(&w, "/shared/client_result").as_deref(),
        Some(ref_client.as_str())
    );
}

#[test]
fn forked_checkpointing_shortens_the_pause() {
    let rounds = 800;
    let run = |forked: bool| -> (Nanos, String) {
        let (mut w, mut sim) = cluster(2);
        let s = Session::start(
            &mut w,
            &mut sim,
            Options::builder()
                .ckpt_dir("/shared/ckpt")
                .forked(forked)
                .build(),
        );
        // A sizable image makes the write stage dominate, which is what
        // forked checkpointing optimizes (Table 1).
        s.launch(
            &mut w,
            &mut sim,
            NodeId(1),
            "server",
            Box::new(EchoPlusOne::new(9000)),
        );
        s.launch(
            &mut w,
            &mut sim,
            NodeId(0),
            "client",
            Box::new(ChainClient::new("node01", 9000, rounds).with_ballast(64)),
        );
        run_for(&mut w, &mut sim, Nanos::from_millis(40));
        let stat = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
        assert!(sim.run_bounded(&mut w, EV));
        (
            stat.total_pause().expect("complete"),
            shared_result(&w, "/shared/client_result").expect("finished"),
        )
    };
    let (pause_normal, r1) = run(false);
    let (pause_forked, r2) = run(true);
    assert_eq!(r1, r2, "forked mode must not change results");
    assert!(
        pause_forked < pause_normal,
        "forked {pause_forked:?} !< normal {pause_normal:?}"
    );
}

/// Byte `j` of the stream sent by peer `role` (self-verifying pattern).
fn flood_pat(j: u64, role: u8) -> u8 {
    ((j * 7 + role as u64) % 251) as u8
}

/// One of a symmetric pair: fills its send direction to exactly the kernel
/// buffer capacity while the peer does the same, sleeps (so the checkpoint
/// lands with both directions full), then drains and verifies the peer's
/// stream.
struct FloodPeer {
    pc: u8,
    role: u8, // 0 = listener, 1 = connector
    lfd: oskit::Fd,
    fd: oskit::Fd,
    port: u16,
    server: String,
    sent: u64,
    rcvd: u64,
    target: u64,
}
simkit::impl_snap!(struct FloodPeer { pc, role, lfd, fd, port, server, sent, rcvd, target });

impl FloodPeer {
    fn listener(port: u16, target: u64) -> Self {
        FloodPeer {
            pc: 0,
            role: 0,
            lfd: -1,
            fd: -1,
            port,
            server: String::new(),
            sent: 0,
            rcvd: 0,
            target,
        }
    }
    fn connector(server: &str, port: u16, target: u64) -> Self {
        FloodPeer {
            pc: 0,
            role: 1,
            lfd: -1,
            fd: -1,
            port,
            server: server.to_string(),
            sent: 0,
            rcvd: 0,
            target,
        }
    }
    fn result_path(&self) -> &'static str {
        if self.role == 0 {
            "/shared/flood_a"
        } else {
            "/shared/flood_b"
        }
    }
}

impl oskit::program::Program for FloodPeer {
    fn step(&mut self, k: &mut oskit::Kernel<'_>) -> oskit::program::Step {
        use oskit::program::Step;
        use oskit::Errno;
        loop {
            match self.pc {
                0 => {
                    if self.role == 0 {
                        let (fd, _) = k.listen_on(self.port).expect("flood listen");
                        self.lfd = fd;
                        self.pc = 1;
                    } else {
                        match k.connect(&self.server, self.port) {
                            Ok(fd) => {
                                self.fd = fd;
                                self.pc = 2;
                            }
                            Err(Errno::ConnRefused) => return Step::Sleep(Nanos::from_millis(2)),
                            Err(e) => panic!("flood connect: {e:?}"),
                        }
                    }
                }
                1 => match k.accept(self.lfd) {
                    Ok(fd) => {
                        self.fd = fd;
                        self.pc = 2;
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("flood accept: {e:?}"),
                },
                // Fill: write exactly `target` bytes without reading a thing.
                2 => {
                    if self.sent == self.target {
                        self.pc = 3;
                        // Think time with both directions brimful — the
                        // checkpoint is taken inside this window.
                        return Step::Sleep(Nanos::from_millis(25));
                    }
                    let n = (self.target - self.sent).min(2048) as usize;
                    let chunk: Vec<u8> = (self.sent..self.sent + n as u64)
                        .map(|j| flood_pat(j, self.role))
                        .collect();
                    match k.write(self.fd, &chunk) {
                        Ok(sent) => self.sent += sent as u64,
                        Err(Errno::WouldBlock) => return Step::Block,
                        Err(e) => panic!("flood write: {e:?}"),
                    }
                }
                // Drain: read and verify the peer's full stream.
                3 => match k.read(self.fd, 4096) {
                    Ok(b) if b.is_empty() => panic!("flood peer hung up early"),
                    Ok(b) => {
                        for &byte in &b {
                            assert_eq!(
                                byte,
                                flood_pat(self.rcvd, 1 - self.role),
                                "flood stream corrupted at byte {}",
                                self.rcvd
                            );
                            self.rcvd += 1;
                        }
                        if self.rcvd == self.target {
                            let fd = k.open(self.result_path(), true).expect("result");
                            k.write(fd, format!("ok:{}", self.rcvd).as_bytes())
                                .expect("w");
                            return Step::Exit(0);
                        }
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("flood read: {e:?}"),
                },
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "flood-peer"
    }
    fn save(&self) -> Vec<u8> {
        use simkit::Snap as _;
        self.to_snap_bytes()
    }
}

#[test]
fn checkpoint_with_kernel_buffers_full_both_directions() {
    let target = oskit::net::CONN_CAPACITY;
    let mut reg = test_registry();
    reg.register_snap::<FloodPeer>("flood-peer");
    let mut w = oskit::World::new(oskit::HwSpec::cluster(), 2, reg);
    let mut sim = simkit::Sim::new();
    let s = Session::start(&mut w, &mut sim, opts_shared_dir());
    s.launch(
        &mut w,
        &mut sim,
        NodeId(1),
        "flood-a",
        Box::new(FloodPeer::listener(9100, target)),
    );
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "flood-b",
        Box::new(FloodPeer::connector("node01", 9100, target)),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(8));

    // Both peers are asleep with the connection saturated in BOTH
    // directions — the checkpoint drain has to move 2×64 KiB with no help
    // from the applications.
    let full = w.conns.values().any(|c| {
        c.dirs[0].recv_buf.len() as u64 + c.dirs[0].in_flight == target
            && c.dirs[1].recv_buf.len() as u64 + c.dirs[1].in_flight == target
    });
    assert!(full, "setup failed: no connection is full both ways");

    let stat = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
    assert_eq!(stat.participants, 2);
    let gen = stat.gen;
    s.kill_computation(&mut w, &mut sim);
    assert!(shared_result(&w, "/shared/flood_a").is_none());

    RestartPlan::from_generation(&w, s.opts.coord_port, gen)
        .expect("restart script written")
        .execute(&s, &mut w, &mut sim)
        .expect("identity restart");
    Session::wait_restart_done(&mut w, &mut sim, gen, EV);
    assert!(
        sim.run_bounded(&mut w, EV),
        "flood deadlocked after restart"
    );

    // Each peer verified every byte of the other's stream itself; the
    // results just confirm both got all the way through.
    let want = format!("ok:{target}");
    assert_eq!(
        shared_result(&w, "/shared/flood_a").as_deref(),
        Some(want.as_str())
    );
    assert_eq!(
        shared_result(&w, "/shared/flood_b").as_deref(),
        Some(want.as_str())
    );
}

/// Echo server that takes its time: one reply per compute quantum, so a
/// half-closed client connection stays half-closed across a long window.
struct SlowEcho {
    pc: u8,
    lfd: oskit::Fd,
    cfd: oskit::Fd,
    port: u16,
    rounds: u64,
    inbuf: Vec<u8>,
}
simkit::impl_snap!(struct SlowEcho { pc, lfd, cfd, port, rounds, inbuf });

impl oskit::program::Program for SlowEcho {
    fn step(&mut self, k: &mut oskit::Kernel<'_>) -> oskit::program::Step {
        use oskit::program::Step;
        use oskit::Errno;
        loop {
            match self.pc {
                0 => {
                    let (fd, _) = k.listen_on(self.port).expect("slow-echo listen");
                    self.lfd = fd;
                    self.pc = 1;
                }
                1 => match k.accept(self.lfd) {
                    Ok(fd) => {
                        self.cfd = fd;
                        self.pc = 2;
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("slow-echo accept: {e:?}"),
                },
                2 => match k.read(self.cfd, 8 - self.inbuf.len()) {
                    Ok(b) if b.is_empty() => {
                        // Client's write side closed and all requests served.
                        let fd = k.open("/shared/server_result", true).expect("result");
                        k.write(fd, self.rounds.to_string().as_bytes()).expect("w");
                        return Step::Exit(0);
                    }
                    Ok(b) => {
                        self.inbuf.extend_from_slice(&b);
                        if self.inbuf.len() == 8 {
                            let v = u64::from_le_bytes(self.inbuf[..].try_into().expect("8"));
                            self.inbuf.clear();
                            self.rounds += 1;
                            let n = k.write(self.cfd, &(v + 1).to_le_bytes()).expect("reply");
                            assert_eq!(n, 8);
                            return Step::Compute(200_000);
                        }
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("slow-echo read: {e:?}"),
                },
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "slow-echo"
    }
    fn save(&self) -> Vec<u8> {
        use simkit::Snap as _;
        self.to_snap_bytes()
    }
}

/// Sends all its requests up front, then `shutdown`s its write side and
/// consumes the replies through the half-closed socket. Verifies the
/// half-close itself survives checkpoint/restart (a write must still fail
/// with EPIPE afterwards).
struct HalfCloseClient {
    pc: u8,
    fd: oskit::Fd,
    server: String,
    port: u16,
    rounds: u64,
    sent: u64,
    got: u64,
    sum: u64,
    inbuf: Vec<u8>,
    probed: bool,
}
simkit::impl_snap!(struct HalfCloseClient { pc, fd, server, port, rounds, sent, got, sum, inbuf, probed });

impl oskit::program::Program for HalfCloseClient {
    fn step(&mut self, k: &mut oskit::Kernel<'_>) -> oskit::program::Step {
        use oskit::program::Step;
        use oskit::Errno;
        loop {
            match self.pc {
                0 => match k.connect(&self.server, self.port) {
                    Ok(fd) => {
                        self.fd = fd;
                        self.pc = 1;
                    }
                    Err(Errno::ConnRefused) => return Step::Sleep(Nanos::from_millis(2)),
                    Err(e) => panic!("half-close connect: {e:?}"),
                },
                1 => {
                    while self.sent < self.rounds {
                        let v = self.sent + 1;
                        let n = k.write(self.fd, &v.to_le_bytes()).expect("request");
                        assert_eq!(n, 8);
                        self.sent += 1;
                    }
                    k.shutdown_write(self.fd).expect("shutdown(SHUT_WR)");
                    self.pc = 2;
                }
                2 => {
                    if !self.probed && self.got == self.rounds / 2 {
                        // Mid-drain (before or after restart, whichever side
                        // the checkpoint landed on): the write side must
                        // still be closed.
                        self.probed = true;
                        assert!(
                            matches!(k.write(self.fd, b"x"), Err(Errno::Pipe)),
                            "write after shutdown must fail with EPIPE"
                        );
                    }
                    match k.read(self.fd, 8 - self.inbuf.len()) {
                        Ok(b) if b.is_empty() => {
                            assert_eq!(self.got, self.rounds, "replies lost on half-closed conn");
                            let fd = k.open("/shared/client_result", true).expect("result");
                            k.write(fd, self.sum.to_string().as_bytes()).expect("w");
                            return Step::Exit(0);
                        }
                        Ok(b) => {
                            self.inbuf.extend_from_slice(&b);
                            if self.inbuf.len() == 8 {
                                let v = u64::from_le_bytes(self.inbuf[..].try_into().expect("8"));
                                self.inbuf.clear();
                                assert_eq!(v, self.got + 2, "reply out of order");
                                self.got += 1;
                                self.sum = self.sum.wrapping_add(v);
                            }
                        }
                        Err(Errno::WouldBlock) => return Step::Block,
                        Err(e) => panic!("half-close read: {e:?}"),
                    }
                }
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "half-close-client"
    }
    fn save(&self) -> Vec<u8> {
        use simkit::Snap as _;
        self.to_snap_bytes()
    }
}

fn half_close_registry() -> oskit::program::Registry {
    let mut reg = test_registry();
    reg.register_snap::<SlowEcho>("slow-echo");
    reg.register_snap::<HalfCloseClient>("half-close-client");
    reg
}

fn half_close_world() -> (oskit::World, oskit::world::OsSim) {
    (
        oskit::World::new(oskit::HwSpec::cluster(), 2, half_close_registry()),
        simkit::Sim::new(),
    )
}

fn spawn_half_close(w: &mut oskit::World, sim: &mut oskit::world::OsSim, rounds: u64) {
    use std::collections::BTreeMap;
    w.spawn(
        sim,
        NodeId(1),
        "server",
        Box::new(SlowEcho {
            pc: 0,
            lfd: -1,
            cfd: -1,
            port: 9200,
            rounds: 0,
            inbuf: Vec::new(),
        }),
        oskit::world::Pid(1),
        BTreeMap::new(),
    );
    w.spawn(
        sim,
        NodeId(0),
        "client",
        Box::new(HalfCloseClient {
            pc: 0,
            fd: -1,
            server: "node01".into(),
            port: 9200,
            rounds,
            sent: 0,
            got: 0,
            sum: 0,
            inbuf: Vec::new(),
            probed: false,
        }),
        oskit::world::Pid(1),
        BTreeMap::new(),
    );
}

#[test]
fn checkpoint_with_half_closed_connection() {
    let rounds = 100;

    // Uninterrupted reference.
    let (ref_client, ref_server) = {
        let (mut w, mut sim) = half_close_world();
        spawn_half_close(&mut w, &mut sim, rounds);
        assert!(sim.run_bounded(&mut w, EV), "reference deadlocked");
        (
            shared_result(&w, "/shared/client_result").expect("client"),
            shared_result(&w, "/shared/server_result").expect("server"),
        )
    };

    let (mut w, mut sim) = half_close_world();
    let s = Session::start(&mut w, &mut sim, opts_shared_dir());
    s.launch(
        &mut w,
        &mut sim,
        NodeId(1),
        "server",
        Box::new(SlowEcho {
            pc: 0,
            lfd: -1,
            cfd: -1,
            port: 9200,
            rounds: 0,
            inbuf: Vec::new(),
        }),
    );
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "client",
        Box::new(HalfCloseClient {
            pc: 0,
            fd: -1,
            server: "node01".into(),
            port: 9200,
            rounds,
            sent: 0,
            got: 0,
            sum: 0,
            inbuf: Vec::new(),
            probed: false,
        }),
    );
    // The client sends everything and shuts down its write side within the
    // first millisecond; the slow server is mid-backlog at 8 ms, so the
    // checkpointed connection is genuinely half-closed with data pending
    // both ways.
    run_for(&mut w, &mut sim, Nanos::from_millis(8));
    let half_closed = w
        .conns
        .values()
        .any(|c| c.wr_closed.iter().filter(|&&x| x).count() == 1);
    assert!(half_closed, "setup failed: no half-closed connection");

    let stat = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
    assert_eq!(stat.participants, 2);
    let gen = stat.gen;
    s.kill_computation(&mut w, &mut sim);
    let _ = w.shared_fs.remove("/shared/client_result");
    let _ = w.shared_fs.remove("/shared/server_result");

    RestartPlan::from_generation(&w, s.opts.coord_port, gen)
        .expect("restart script written")
        .execute(&s, &mut w, &mut sim)
        .expect("identity restart");
    Session::wait_restart_done(&mut w, &mut sim, gen, EV);
    assert!(
        sim.run_bounded(&mut w, EV),
        "half-close deadlocked after restart"
    );

    assert_eq!(
        shared_result(&w, "/shared/client_result").as_deref(),
        Some(ref_client.as_str())
    );
    assert_eq!(
        shared_result(&w, "/shared/server_result").as_deref(),
        Some(ref_server.as_str())
    );
}

#[test]
fn zombie_free_teardown_and_coordinator_client_tracking() {
    let (mut w, mut sim) = cluster(2);
    let s = Session::start(&mut w, &mut sim, opts_shared_dir());
    launch_chain(&mut w, &mut sim, &s, 50);
    assert!(sim.run_bounded(&mut w, EV));
    // Apps done; only the coordinator still runs.
    assert_eq!(w.live_procs(), 1);
    for p in w.procs.values() {
        if p.alive() {
            assert_eq!(p.cmd, "dmtcp_coordinator");
        } else {
            assert!(matches!(p.state, ProcState::Zombie(0)), "{:?}", p.state);
        }
    }
}

#[test]
fn hierarchical_topology_full_cycle() {
    // The relay layer must be invisible to the application: same protocol
    // outcome, same bytes, with the root talking to per-node relays instead
    // of every manager.
    let rounds = 400;
    let (ref_client, ref_server) = chain_reference(rounds);

    let (mut w, mut sim) = cluster(2);
    let s = Session::start(
        &mut w,
        &mut sim,
        Options::builder()
            .ckpt_dir("/shared/ckpt")
            .topology(dmtcp::Topology::Hierarchical)
            .build(),
    );
    launch_chain(&mut w, &mut sim, &s, rounds);
    run_for(&mut w, &mut sim, Nanos::from_millis(40));

    let stat = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
    assert_eq!(
        stat.participants, 2,
        "both managers checkpointed via relays"
    );
    let gen = stat.gen;
    assert!(
        w.obs.metrics.counter("relay.fanout", gen) > 0,
        "relays forwarded barrier traffic for gen {gen}"
    );
    assert!(
        w.obs.metrics.counter("coord.root_msgs", gen) > 0,
        "root message accounting is live"
    );

    // Progress past the checkpoint is discarded by the kill.
    run_for(&mut w, &mut sim, Nanos::from_millis(20));
    s.kill_computation(&mut w, &mut sim);
    assert!(shared_result(&w, "/shared/client_result").is_none());

    // Restart bypasses the relays: restored managers register directly
    // with the root, exactly like a flat-topology restart.
    let outcome = RestartPlan::from_generation(&w, s.opts.coord_port, gen)
        .expect("restart script written")
        .execute(&s, &mut w, &mut sim)
        .expect("identity restart");
    assert_eq!(
        outcome.placement.len(),
        2,
        "two hosts in placement: {:?}",
        outcome.placement
    );
    Session::wait_restart_done(&mut w, &mut sim, gen, EV);

    assert!(sim.run_bounded(&mut w, EV), "post-restart deadlock");
    assert_eq!(
        shared_result(&w, "/shared/client_result").as_deref(),
        Some(ref_client.as_str())
    );
    assert_eq!(
        shared_result(&w, "/shared/server_result").as_deref(),
        Some(ref_server.as_str())
    );
}

#[test]
fn hierarchical_second_generation_after_clean_first() {
    // Two back-to-back hierarchical generations: the relay must reset its
    // per-generation aggregation state and the root its relay accounting.
    let (mut w, mut sim) = cluster(2);
    let s = Session::start(
        &mut w,
        &mut sim,
        Options::builder()
            .ckpt_dir("/shared/ckpt")
            .topology(dmtcp::Topology::Hierarchical)
            .build(),
    );
    launch_chain(&mut w, &mut sim, &s, 2000);
    run_for(&mut w, &mut sim, Nanos::from_millis(20));
    let g1 = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
    assert_eq!(g1.gen, 1);
    run_for(&mut w, &mut sim, Nanos::from_millis(10));
    let g2 = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
    assert_eq!(g2.gen, 2);
    assert_eq!(g2.participants, 2);
}
