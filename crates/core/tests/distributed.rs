//! End-to-end distributed checkpoint/restart: the headline behaviour of the
//! paper, verified by the applications' own integrity checks.

mod common;

use common::*;
use dmtcp::coord::{coord_shared, stage};
use dmtcp::session::{run_for, transplant_storage};
use dmtcp::{Options, Session};
use oskit::proc::ProcState;
use oskit::world::NodeId;
use simkit::Nanos;

const EV: u64 = 5_000_000;

fn opts_shared_dir() -> Options {
    Options {
        ckpt_dir: "/shared/ckpt".into(),
        ..Options::default()
    }
}

/// Reference: run the chain app with no DMTCP at all.
fn chain_reference(rounds: u64) -> (String, String) {
    let (mut w, mut sim) = cluster(2);
    use std::collections::BTreeMap;
    w.spawn(
        &mut sim,
        NodeId(1),
        "server",
        Box::new(EchoPlusOne::new(9000)),
        oskit::world::Pid(1),
        BTreeMap::new(),
    );
    w.spawn(
        &mut sim,
        NodeId(0),
        "client",
        Box::new(ChainClient::new("node01", 9000, rounds)),
        oskit::world::Pid(1),
        BTreeMap::new(),
    );
    assert!(sim.run_bounded(&mut w, EV));
    (
        shared_result(&w, "/shared/client_result").expect("client finished"),
        shared_result(&w, "/shared/server_result").expect("server finished"),
    )
}

fn launch_chain(
    w: &mut oskit::world::World,
    sim: &mut oskit::world::OsSim,
    s: &Session,
    rounds: u64,
) {
    s.launch(
        w,
        sim,
        NodeId(1),
        "server",
        Box::new(EchoPlusOne::new(9000)),
    );
    s.launch(
        w,
        sim,
        NodeId(0),
        "client",
        Box::new(ChainClient::new("node01", 9000, rounds)),
    );
}

#[test]
fn checkpoint_mid_stream_then_continue() {
    let rounds = 400;
    let (ref_client, ref_server) = chain_reference(rounds);

    let (mut w, mut sim) = cluster(2);
    let s = Session::start(&mut w, &mut sim, opts_shared_dir());
    launch_chain(&mut w, &mut sim, &s, rounds);
    run_for(&mut w, &mut sim, Nanos::from_millis(40)); // mid-computation
    assert!(w.live_procs() >= 3, "apps + coordinator alive");

    let stat = s.checkpoint_and_wait(&mut w, &mut sim, EV);
    assert_eq!(stat.participants, 2);
    assert!(stat.checkpoint_time().is_some());

    // Images + restart script exist on the shared fs.
    let images: Vec<_> = w.shared_fs.list_prefix("/shared/ckpt/").collect();
    assert_eq!(images.len(), 2, "one image per process: {images:?}");
    assert!(w.shared_fs.exists("/shared/dmtcp_restart_script.sh"));

    // The computation continues to the right answer.
    assert!(sim.run_bounded(&mut w, EV), "post-checkpoint deadlock");
    assert_eq!(
        shared_result(&w, "/shared/client_result").as_deref(),
        Some(ref_client.as_str())
    );
    assert_eq!(
        shared_result(&w, "/shared/server_result").as_deref(),
        Some(ref_server.as_str())
    );
}

#[test]
fn kill_and_restart_in_same_world() {
    let rounds = 400;
    let (ref_client, ref_server) = chain_reference(rounds);

    let (mut w, mut sim) = cluster(2);
    let s = Session::start(&mut w, &mut sim, opts_shared_dir());
    launch_chain(&mut w, &mut sim, &s, rounds);
    run_for(&mut w, &mut sim, Nanos::from_millis(40));
    let stat = s.checkpoint_and_wait(&mut w, &mut sim, EV);
    let gen = stat.gen;

    // Run a little further (progress past the checkpoint is discarded),
    // then kill the whole computation.
    run_for(&mut w, &mut sim, Nanos::from_millis(20));
    s.kill_computation(&mut w, &mut sim);
    assert_eq!(w.live_procs(), 1, "only the coordinator survives");
    // Results from the pre-kill run must not exist yet.
    assert!(shared_result(&w, "/shared/client_result").is_none());

    // Restart from the script, same hosts.
    let script = Session::parse_restart_script(&w);
    assert_eq!(script.len(), 2, "two hosts in script: {script:?}");
    let w_ref = &w;
    let remap = move |h: &str| -> NodeId { w_ref.resolve(h).expect("host exists") };
    // (borrow juggling: precompute the mapping)
    let mapping: Vec<(String, NodeId)> =
        script.iter().map(|(h, _)| (h.clone(), remap(h))).collect();
    let remap2 = move |h: &str| -> NodeId {
        mapping
            .iter()
            .find(|(name, _)| name == h)
            .map(|(_, n)| *n)
            .expect("host in mapping")
    };
    s.restart_from_script(&mut w, &mut sim, &script, &remap2, gen);
    Session::wait_restart_done(&mut w, &mut sim, gen, EV);

    // The computation resumes and completes with the reference answers.
    assert!(sim.run_bounded(&mut w, EV), "post-restart deadlock");
    assert_eq!(
        shared_result(&w, "/shared/client_result").as_deref(),
        Some(ref_client.as_str())
    );
    assert_eq!(
        shared_result(&w, "/shared/server_result").as_deref(),
        Some(ref_server.as_str())
    );
}

#[test]
fn migrate_cluster_to_single_laptop() {
    // The paper's use case 6: checkpoint on a cluster, restart everything
    // on one machine.
    let rounds = 300;
    let (ref_client, ref_server) = chain_reference(rounds);

    let (mut w, mut sim) = cluster(2);
    let s = Session::start(&mut w, &mut sim, opts_shared_dir());
    launch_chain(&mut w, &mut sim, &s, rounds);
    run_for(&mut w, &mut sim, Nanos::from_millis(40));
    let stat = s.checkpoint_and_wait(&mut w, &mut sim, EV);
    let gen = stat.gen;
    let script = Session::parse_restart_script(&w);

    // "Laptop": a fresh single-node world; only the shared storage moved.
    let (mut laptop, mut sim2) = {
        let mut lw = oskit::World::new(oskit::HwSpec::desktop(), 1, test_registry());
        transplant_storage(&w, &mut lw);
        // Results were not produced before the crash.
        let _ = lw.shared_fs.remove("/shared/client_result");
        (lw, simkit::Sim::new())
    };
    drop(w);
    drop(sim);

    let s2 = Session::start(&mut laptop, &mut sim2, opts_shared_dir());
    let everything_to_node0 = |_h: &str| NodeId(0);
    s2.restart_from_script(&mut laptop, &mut sim2, &script, &everything_to_node0, gen);
    Session::wait_restart_done(&mut laptop, &mut sim2, gen, EV);
    assert!(sim2.run_bounded(&mut laptop, EV), "laptop deadlock");
    assert_eq!(
        shared_result(&laptop, "/shared/client_result").as_deref(),
        Some(ref_client.as_str())
    );
    assert_eq!(
        shared_result(&laptop, "/shared/server_result").as_deref(),
        Some(ref_server.as_str())
    );
    // Loopback restore: the former cross-node socket now lives on one node.
    assert!(laptop.nodes.len() == 1);
}

#[test]
fn pipes_and_fork_survive_checkpoint_restart() {
    let total = 3_000_000; // ~45 windows of pipe data; runs well past the ckpt
    let (mut w, mut sim) = cluster(1);
    let s = Session::start(&mut w, &mut sim, opts_shared_dir());
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "pipechain",
        Box::new(PipeChain::new(total)),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(30));
    // Parent and forked child are both traced.
    let stat = s.checkpoint_and_wait(&mut w, &mut sim, EV);
    assert_eq!(stat.participants, 2, "fork wrapper traced the child");
    let gen = stat.gen;
    s.kill_computation(&mut w, &mut sim);
    let script = Session::parse_restart_script(&w);
    let to0 = |_h: &str| NodeId(0);
    s.restart_from_script(&mut w, &mut sim, &script, &to0, gen);
    Session::wait_restart_done(&mut w, &mut sim, gen, EV);
    assert!(
        sim.run_bounded(&mut w, EV),
        "pipe chain deadlocked after restart"
    );
    // The reader's own assertions verified the byte stream; the checksum
    // must match an uninterrupted run.
    let got = shared_result(&w, "/shared/pipe_result").expect("finished");
    let (mut w2, mut sim2) = cluster(1);
    use std::collections::BTreeMap;
    w2.spawn(
        &mut sim2,
        NodeId(0),
        "ref",
        Box::new(PipeChain::new(total)),
        oskit::world::Pid(1),
        BTreeMap::new(),
    );
    assert!(sim2.run_bounded(&mut w2, EV));
    assert_eq!(Some(got), shared_result(&w2, "/shared/pipe_result"));
}

#[test]
fn multithreaded_process_restores_both_threads() {
    let (mut w, mut sim) = cluster(1);
    let s = Session::start(&mut w, &mut sim, opts_shared_dir());
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "twin",
        Box::new(TwinMain {
            pc: 0,
            heap: 0,
            count: 0,
            target: 300,
        }),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(15)); // both threads mid-count
    let stat = s.checkpoint_and_wait(&mut w, &mut sim, EV);
    let gen = stat.gen;
    s.kill_computation(&mut w, &mut sim);
    let script = Session::parse_restart_script(&w);
    let to0 = |_h: &str| NodeId(0);
    s.restart_from_script(&mut w, &mut sim, &script, &to0, gen);
    Session::wait_restart_done(&mut w, &mut sim, gen, EV);
    assert!(sim.run_bounded(&mut w, EV));
    assert_eq!(
        shared_result(&w, "/shared/twin_result").as_deref(),
        Some("600")
    );
}

#[test]
fn interval_checkpointing_produces_multiple_generations() {
    let (mut w, mut sim) = cluster(2);
    let s = Session::start(
        &mut w,
        &mut sim,
        Options {
            ckpt_dir: "/shared/ckpt".into(),
            interval: Some(Nanos::from_millis(30)),
            ..Options::default()
        },
    );
    launch_chain(&mut w, &mut sim, &s, 1500);
    assert!(
        sim.run_bounded(&mut w, 20_000_000),
        "interval run deadlocked"
    );
    let gens = coord_shared(&mut w).gen_stats.len();
    assert!(
        gens >= 3,
        "expected several interval checkpoints, got {gens}"
    );
    for g in &coord_shared(&mut w).gen_stats {
        assert!(
            g.releases.contains_key(&stage::REFILLED),
            "gen {} incomplete",
            g.gen
        );
    }
    // And the app still finished correctly.
    let (ref_client, _) = chain_reference(1500);
    assert_eq!(
        shared_result(&w, "/shared/client_result").as_deref(),
        Some(ref_client.as_str())
    );
}

#[test]
fn second_checkpoint_after_restart_works() {
    // Checkpoint → kill → restart → checkpoint again → kill → restart:
    // generations must keep advancing and the answer must stay right.
    let rounds = 600;
    let (ref_client, _) = chain_reference(rounds);
    let (mut w, mut sim) = cluster(2);
    let s = Session::start(&mut w, &mut sim, opts_shared_dir());
    launch_chain(&mut w, &mut sim, &s, rounds);
    run_for(&mut w, &mut sim, Nanos::from_millis(30));
    let g1 = s.checkpoint_and_wait(&mut w, &mut sim, EV).gen;
    s.kill_computation(&mut w, &mut sim);
    let script1 = Session::parse_restart_script(&w);
    let id = {
        let names: Vec<(String, NodeId)> = script1
            .iter()
            .map(|(h, _)| (h.clone(), w.resolve(h).expect("host")))
            .collect();
        move |h: &str| {
            names
                .iter()
                .find(|(n, _)| n == h)
                .map(|(_, x)| *x)
                .expect("host")
        }
    };
    s.restart_from_script(&mut w, &mut sim, &script1, &id, g1);
    Session::wait_restart_done(&mut w, &mut sim, g1, EV);

    run_for(&mut w, &mut sim, Nanos::from_millis(20));
    let stat2 = s.checkpoint_and_wait(&mut w, &mut sim, EV);
    assert!(stat2.gen > g1, "generation advanced: {} > {g1}", stat2.gen);
    s.kill_computation(&mut w, &mut sim);
    let script2 = Session::parse_restart_script(&w);
    s.restart_from_script(&mut w, &mut sim, &script2, &id, stat2.gen);
    Session::wait_restart_done(&mut w, &mut sim, stat2.gen, EV);
    assert!(sim.run_bounded(&mut w, EV));
    assert_eq!(
        shared_result(&w, "/shared/client_result").as_deref(),
        Some(ref_client.as_str())
    );
}

#[test]
fn forked_checkpointing_shortens_the_pause() {
    let rounds = 800;
    let run = |forked: bool| -> (Nanos, String) {
        let (mut w, mut sim) = cluster(2);
        let s = Session::start(
            &mut w,
            &mut sim,
            Options {
                ckpt_dir: "/shared/ckpt".into(),
                forked,
                ..Options::default()
            },
        );
        // A sizable image makes the write stage dominate, which is what
        // forked checkpointing optimizes (Table 1).
        s.launch(
            &mut w,
            &mut sim,
            NodeId(1),
            "server",
            Box::new(EchoPlusOne::new(9000)),
        );
        s.launch(
            &mut w,
            &mut sim,
            NodeId(0),
            "client",
            Box::new(ChainClient::new("node01", 9000, rounds).with_ballast(64)),
        );
        run_for(&mut w, &mut sim, Nanos::from_millis(40));
        let stat = s.checkpoint_and_wait(&mut w, &mut sim, EV);
        assert!(sim.run_bounded(&mut w, EV));
        (
            stat.total_pause().expect("complete"),
            shared_result(&w, "/shared/client_result").expect("finished"),
        )
    };
    let (pause_normal, r1) = run(false);
    let (pause_forked, r2) = run(true);
    assert_eq!(r1, r2, "forked mode must not change results");
    assert!(
        pause_forked < pause_normal,
        "forked {pause_forked:?} !< normal {pause_normal:?}"
    );
}

#[test]
fn zombie_free_teardown_and_coordinator_client_tracking() {
    let (mut w, mut sim) = cluster(2);
    let s = Session::start(&mut w, &mut sim, opts_shared_dir());
    launch_chain(&mut w, &mut sim, &s, 50);
    assert!(sim.run_bounded(&mut w, EV));
    // Apps done; only the coordinator still runs.
    assert_eq!(w.live_procs(), 1);
    for p in w.procs.values() {
        if p.alive() {
            assert_eq!(p.cmd, "dmtcp_coordinator");
        } else {
            assert!(matches!(p.state, ProcState::Zombie(0)), "{:?}", p.state);
        }
    }
}
