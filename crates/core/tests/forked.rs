//! Copy-on-write edge cases for forked (two-phase) checkpointing.
//!
//! The stop-the-world phase ends at the REFILLED release; the image is then
//! compressed and written in the background while the application runs.
//! These tests pin down the three semantic corners of that overlap:
//!
//! * a write landing mid-drain is charged a physical copy and must NOT leak
//!   into the in-flight image — restart sees the pre-fork bytes;
//! * a second checkpoint request during the drain is queued behind the
//!   `CKPT_WRITTEN` acknowledgment, never interleaved;
//! * `mmap(MAP_SHARED)` segments write through (no copy-on-write), so a
//!   mid-drain shm write charges nothing and the drain still completes.

mod common;

use common::{cluster, run_budget, shared_result, CowProbe, ShmProbe};
use dmtcp::coord::{coord_shared, stage};
use dmtcp::session::run_for;
use dmtcp::{ExpectCkpt, Options, Session};
use oskit::world::{NodeId, OsSim, World};
use simkit::{Nanos, RunOutcome};

const MB: u64 = 1 << 20;

fn forked_opts() -> Options {
    Options::builder()
        .ckpt_dir("/shared/ckpt")
        .forked(true)
        .build()
}

/// Kill the computation, clear the probe's flag files, raise `dump`, and
/// restart; returns once the restored probe has written its result file.
fn restart_and_dump(s: &Session, w: &mut World, sim: &mut OsSim, flags: &[&str], dump: &str) {
    let budget = run_budget();
    s.kill_computation(w, sim);
    for f in flags {
        let _ = w.shared_fs.remove(f);
    }
    w.shared_fs.write_all(dump, b"1").expect("dump flag");
    let hosts: Vec<(String, NodeId)> = (0..w.nodes.len())
        .map(|i| (w.nodes[i].hostname.clone(), NodeId(i as u32)))
        .collect();
    let remap = move |h: &str| {
        hosts
            .iter()
            .find(|(n, _)| n == h)
            .map(|(_, x)| *x)
            .expect("known host")
    };
    let restored = s.restart_resilient(w, sim, &remap).expect("restart");
    assert!(restored.rejected.is_empty(), "no image may be rejected");
    Session::wait_restart_done(w, sim, restored.gen, budget);
    match sim.run_budgeted(w, budget) {
        RunOutcome::Quiescent | RunOutcome::Halted => {}
        RunOutcome::BudgetExhausted => panic!("restored probe did not finish"),
    }
}

/// An application write during the overlapped drain forces a charged copy,
/// and the image keeps the pre-fork bytes: restart reproduces the pattern
/// as of the fork instant, not the 0xBB overwrite.
#[test]
fn mid_drain_write_keeps_prefork_bytes() {
    let budget = run_budget();
    let len = 2 * MB;
    let (mut w, mut sim) = cluster(2);
    let s = Session::start(&mut w, &mut sim, forked_opts());
    s.launch(
        &mut w,
        &mut sim,
        NodeId(1),
        "cow",
        Box::new(CowProbe::new(len)),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(2));
    assert!(
        w.shared_fs.exists("/shared/cow_ready"),
        "probe never set up"
    );

    let g1 = s
        .checkpoint_and_wait(&mut w, &mut sim, budget)
        .expect_ckpt();
    assert_eq!(g1.gen, 1);
    // The application is running again but the background write is still in
    // flight: poke the probe into overwriting the snapshotted region now.
    let copied_before = w.obs.metrics.counter_total("oskit.mem.cow_copied_bytes");
    w.shared_fs.write_all("/shared/cow_go", b"1").expect("flag");

    let gw = Session::wait_ckpt_written(&mut w, &mut sim, 1, budget).expect("drain completes");
    assert!(
        w.shared_fs.exists("/shared/cow_done"),
        "probe never wrote mid-drain"
    );
    let copied = w.obs.metrics.counter_total("oskit.mem.cow_copied_bytes") - copied_before;
    assert!(
        copied >= len,
        "overwriting a {len}-byte snapshotted region must charge at least \
         that much copy-on-write work, charged {copied}"
    );
    // Perceived downtime (request → resume) must be a strict subset of the
    // total checkpoint time (request → CKPT_WRITTEN).
    let pause = gw.total_pause().expect("refilled");
    let total = gw.written_time().expect("written");
    assert!(
        pause < total,
        "stop-the-world ({pause:?}) must end before the drain ({total:?})"
    );

    restart_and_dump(
        &s,
        &mut w,
        &mut sim,
        &["/shared/cow_ready", "/shared/cow_go", "/shared/cow_done"],
        "/shared/cow_dump",
    );
    let want = CowProbe::checksum(&CowProbe::pattern(len)).to_string();
    assert_eq!(
        shared_result(&w, "/shared/cow_result").as_deref(),
        Some(want.as_str()),
        "restart must see the pre-fork pattern, not the mid-drain overwrite"
    );
}

/// A checkpoint requested while a drain is still in flight is queued: the
/// second generation must not start before the first one's `CKPT_WRITTEN`
/// release.
#[test]
fn overlapping_requests_serialize_on_ckpt_written() {
    let budget = run_budget();
    let (mut w, mut sim) = cluster(2);
    let s = Session::start(&mut w, &mut sim, forked_opts());
    s.launch(
        &mut w,
        &mut sim,
        NodeId(1),
        "cow",
        Box::new(CowProbe::new(4 * MB)),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(2));

    let g1 = s
        .checkpoint_and_wait(&mut w, &mut sim, budget)
        .expect_ckpt();
    assert_eq!(g1.gen, 1);
    // Gen 1's drain is open; this request must be parked until it finishes.
    let g2 = s
        .checkpoint_and_wait(&mut w, &mut sim, budget)
        .expect_ckpt();
    assert_eq!(g2.gen, 2);

    let written1 = coord_shared(&mut w)
        .gen_stats
        .iter()
        .find(|g| g.gen == 1)
        .expect("gen 1 stat")
        .releases
        .get(&stage::CKPT_WRITTEN)
        .copied()
        .expect("gen 1 drained");
    assert!(
        g2.requested_at >= written1,
        "gen 2 started at {:?}, before gen 1's CKPT_WRITTEN at {:?}",
        g2.requested_at,
        written1
    );
}

/// Forking over an `mmap(MAP_SHARED)` region: shm writes go through to the
/// live segment — never copy-on-write, never charged — and the drain still
/// completes and restarts cleanly.
#[test]
fn shm_region_writes_through_uncharged() {
    let budget = run_budget();
    let len = 256 * 1024;
    let (mut w, mut sim) = cluster(2);
    let s = Session::start(&mut w, &mut sim, forked_opts());
    s.launch(
        &mut w,
        &mut sim,
        NodeId(1),
        "shm",
        Box::new(ShmProbe::new(len)),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(2));
    assert!(
        w.shared_fs.exists("/shared/shm_ready"),
        "probe never set up"
    );

    let g1 = s
        .checkpoint_and_wait(&mut w, &mut sim, budget)
        .expect_ckpt();
    assert_eq!(g1.gen, 1);
    let copied_before = w.obs.metrics.counter_total("oskit.mem.cow_copied_bytes");
    w.shared_fs.write_all("/shared/shm_go", b"1").expect("flag");

    Session::wait_ckpt_written(&mut w, &mut sim, 1, budget).expect("drain completes");
    assert!(
        w.shared_fs.exists("/shared/shm_done"),
        "probe never wrote mid-drain"
    );
    assert_eq!(
        w.obs.metrics.counter_total("oskit.mem.cow_copied_bytes"),
        copied_before,
        "shared-segment writes must not be charged copy-on-write"
    );

    restart_and_dump(
        &s,
        &mut w,
        &mut sim,
        &["/shared/shm_ready", "/shared/shm_go", "/shared/shm_done"],
        "/shared/shm_dump",
    );
    assert!(
        shared_result(&w, "/shared/shm_result").is_some(),
        "restored probe must run to completion over the shm mapping"
    );
}
