//! Differential proof of incremental checkpointing: at every generation an
//! incremental image (dirty regions captured, clean regions aliased into
//! the previous generation) must restore *bit-identically* to a full image
//! taken at the same suspended instant, and a computation checkpointed
//! incrementally must produce exactly the answer a full-capture run does.
//!
//! The write patterns are driven by [`simkit::DetRng`] seeds: 32 seeds,
//! each a generation chain 6 deep, with a random subset of regions mutated
//! (plus MAP_SHARED writes, late mappings, and unmappings) between
//! generations.
mod common;

use common::*;
use dmtcp::session::run_for;
use dmtcp::{ExpectCkpt, Options, Session};
use oskit::mem::{Content, FillProfile, RegionId, RegionKind, PROT_W};
use oskit::program::{Program, Step};
use oskit::world::{NodeId, OsSim, Pid, World};
use simkit::{DetRng, Nanos, Snap};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Lays out the address space the differential chains mutate: eight 16 KiB
/// writable anonymous regions, one MAP_SHARED segment, and synthetic text
/// ballast (never written — the always-aliasable bulk). Then computes
/// forever so checkpoints can land at any time.
struct Churn {
    pc: u8,
}
simkit::impl_snap!(struct Churn { pc });

impl Program for Churn {
    fn step(&mut self, k: &mut oskit::Kernel<'_>) -> Step {
        if self.pc == 0 {
            for i in 0..8u64 {
                let id = k.mmap_anon(&format!("churn{i}"), 16 << 10);
                k.mem_write(id, 0, &vec![i as u8 + 1; 16 << 10]);
            }
            let shm = k.mmap_shared("/churn_shm", 16 << 10).expect("shm");
            k.mem_write(shm, 0, &vec![0xAA; 16 << 10]);
            k.mmap_synthetic("ballast", 4 << 20, 0xba11a57, FillProfile::Text);
            self.pc = 1;
        }
        Step::Compute(100_000)
    }
    fn tag(&self) -> &'static str {
        "churn"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

/// A restore target: sleeps forever, owns nothing.
struct Idle;
simkit::impl_snap!(
    struct Idle {}
);

impl Program for Idle {
    fn step(&mut self, _k: &mut oskit::Kernel<'_>) -> Step {
        Step::Sleep(Nanos::from_millis(1_000))
    }
    fn tag(&self) -> &'static str {
        "idle"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

fn registry() -> oskit::program::Registry {
    let mut r = test_registry();
    r.register_snap::<Churn>("churn");
    r.register_snap::<Idle>("idle");
    r
}

/// The writable regions a chain mutates (the `churn*` anons plus the
/// shared segment) — everything else stays clean and must alias.
fn mutable_regions(w: &World, pid: Pid) -> Vec<RegionId> {
    w.procs[&pid]
        .mem
        .iter()
        .filter(|(_, r)| {
            r.prot & PROT_W != 0 && (r.name.starts_with("churn") || r.name.contains("shm"))
        })
        .map(|(id, _)| id)
        .collect()
}

/// Apply one generation's random write pattern directly through the
/// process's address space (the same code path `Kernel::mem_write` takes,
/// so dirty tracking sees exactly these writes).
fn mutate(w: &mut World, pid: Pid, rng: &mut DetRng) {
    let ids = mutable_regions(w, pid);
    let mem = &mut w.procs.get_mut(&pid).expect("live process").mem;
    for _ in 0..rng.range(1, 5) {
        let id = ids[rng.below(ids.len() as u64) as usize];
        let len = mem.region(id).expect("live region").len();
        let off = rng.below(len - 64);
        let mut buf = [0u8; 64];
        rng.fill_bytes(&mut buf);
        mem.write(id, off, &buf);
    }
}

/// Per-region `(name, len, digest)` fingerprint of a process's memory.
fn mem_fingerprint(w: &World, pid: Pid) -> Vec<(String, u64, u64)> {
    w.procs[&pid]
        .mem
        .iter()
        .map(|(_, r)| (r.name.clone(), r.len(), r.content.digest()))
        .collect()
}

/// Write both images at the same suspended instant, verify both, restore
/// both, and require identical region-level fingerprints.
#[allow(clippy::too_many_arguments)]
fn write_and_compare(
    w: &mut World,
    sim: &OsSim,
    pid: Pid,
    scratch_i: Pid,
    scratch_f: Pid,
    gen: u32,
    seed: u64,
) -> (mtcp::WriteReport, mtcp::WriteReport) {
    let inc_path = format!("/ckpt/ckpt_1_gen{gen}.dmtcp");
    let full_path = format!("/ckpt/full_1_gen{gen}.dmtcp");
    let r_inc = mtcp::write_image(
        w,
        sim.now(),
        pid,
        &inc_path,
        mtcp::WriteMode::Compressed,
        1,
        vec![],
    );
    let r_full = mtcp::write_image_full(
        w,
        sim.now(),
        pid,
        &full_path,
        mtcp::WriteMode::Compressed,
        1,
        vec![],
    );
    assert_eq!(
        r_inc.raw_bytes, r_full.raw_bytes,
        "same instant, same address space"
    );
    let img_i = mtcp::verify_image(w, NodeId(0), &inc_path)
        .unwrap_or_else(|e| panic!("seed {seed} gen {gen}: incremental verify: {e:?}"));
    let img_f = mtcp::verify_image(w, NodeId(0), &full_path)
        .unwrap_or_else(|e| panic!("seed {seed} gen {gen}: full verify: {e:?}"));
    mtcp::restore_into(w, sim.now(), scratch_i, NodeId(0), &inc_path, &img_i)
        .unwrap_or_else(|e| panic!("seed {seed} gen {gen}: incremental restore: {e:?}"));
    mtcp::restore_into(w, sim.now(), scratch_f, NodeId(0), &full_path, &img_f)
        .unwrap_or_else(|e| panic!("seed {seed} gen {gen}: full restore: {e:?}"));
    assert_eq!(
        mem_fingerprint(w, scratch_i),
        mem_fingerprint(w, scratch_f),
        "seed {seed} gen {gen}: incremental restore diverged from full"
    );
    (r_inc, r_full)
}

fn chain_world(seed: u64) -> (World, OsSim, Pid, Pid, Pid) {
    let mut w = World::new(oskit::HwSpec::cluster(), 2, registry());
    let mut sim: OsSim = simkit::Sim::new();
    ckptstore::install(&mut w, ckptstore::Config::default());
    let pid = w.spawn(
        &mut sim,
        NodeId(0),
        "churn",
        Box::new(Churn { pc: 0 }),
        Pid(1),
        BTreeMap::new(),
    );
    let scratch_i = w.spawn(
        &mut sim,
        NodeId(0),
        "idle",
        Box::new(Idle),
        Pid(800 + seed as u32),
        BTreeMap::new(),
    );
    let scratch_f = w.spawn(
        &mut sim,
        NodeId(0),
        "idle",
        Box::new(Idle),
        Pid(900 + seed as u32),
        BTreeMap::new(),
    );
    sim.run_until(&mut w, Nanos::from_millis(2));
    w.suspend_user_threads(&mut sim, pid);
    (w, sim, pid, scratch_i, scratch_f)
}

/// The tentpole property, 32 seeds deep: every generation of a 6-deep
/// chain restores bit-identically whether captured incrementally or in
/// full, while generations ≥ 2 actually go incremental (alias extents
/// emitted, only the dirty subset read and compressed).
#[test]
fn incremental_restores_bit_identical_to_full_across_chains() {
    for seed in 0..32u64 {
        let (mut w, sim, pid, scratch_i, scratch_f) = chain_world(seed);
        let mut rng = DetRng::seed_from_u64(simkit::mix2(0x1ec4, seed));
        let mut late: Option<RegionId> = None;
        for gen in 1..=6u32 {
            if gen > 1 {
                mutate(&mut w, pid, &mut rng);
            }
            // Exercise mapping churn mid-chain: a region mapped after the
            // last capture is dirty by definition; an unmapped one must
            // simply vanish from the next image.
            if gen == 3 {
                let mem = &mut w.procs.get_mut(&pid).expect("live").mem;
                late = Some(mem.map(
                    "late-arena",
                    RegionKind::Anon,
                    oskit::mem::PROT_R | PROT_W,
                    Content::Real(Rc::new(vec![0x3C; 8 << 10])),
                ));
            }
            if gen == 5 {
                let mem = &mut w.procs.get_mut(&pid).expect("live").mem;
                mem.unmap(late.take().expect("mapped at gen 3"));
            }
            let (r_inc, r_full) =
                write_and_compare(&mut w, &sim, pid, scratch_i, scratch_f, gen, seed);
            if gen == 1 {
                assert!(!r_inc.incremental, "no baseline at generation 1");
            } else {
                assert!(r_inc.incremental, "seed {seed} gen {gen} stayed full");
                assert!(
                    r_inc.captured_raw_bytes < r_full.captured_raw_bytes,
                    "seed {seed} gen {gen}: incremental captured {} of {} raw bytes",
                    r_inc.captured_raw_bytes,
                    r_full.captured_raw_bytes,
                );
            }
        }
        assert!(
            w.obs.metrics.counter_total("mtcp.incr.aliased_regions") > 0,
            "seed {seed}: chain never emitted an alias extent"
        );
    }
}

/// An aborted forked generation must roll the incremental baseline back:
/// the next capture is relative to the last *durable* image, including
/// regions dirtied both before and during the doomed drain.
#[test]
fn aborted_forked_generation_rolls_baseline_back() {
    let (mut w, sim, pid, scratch_i, scratch_f) = chain_world(77);
    let mut rng = DetRng::seed_from_u64(0xab047);
    write_and_compare(&mut w, &sim, pid, scratch_i, scratch_f, 1, 77);

    // Generation 2 goes forked and dies mid-drain.
    mutate(&mut w, pid, &mut rng);
    let fw = mtcp::begin_forked_write(&mut w, sim.now(), pid, "/ckpt/ckpt_1_gen2.dmtcp", 1, vec![]);
    assert!(fw.report.incremental, "generation 2 plans incrementally");
    mutate(&mut w, pid, &mut rng); // dirtied while the drain was in flight
    fw.abort(&mut w, pid);

    // The retried generation must still restore identically to a full
    // capture — stale aliasing after the abort would diverge here.
    let (r_inc, _) = write_and_compare(&mut w, &sim, pid, scratch_i, scratch_f, 2, 77);
    assert!(r_inc.incremental, "retry still aliases clean regions");
}

/// Full-protocol answer equivalence: the same computation, checkpointed
/// every 2 ms through the store, killed, and restarted from its latest
/// generation, computes the same answer whether incremental capture is on
/// (default) or forced off — inline and forked both.
fn protocol_run(incremental: bool, forked: bool) -> String {
    let budget = run_budget();
    let (mut w, mut sim) = cluster(2);
    ckptstore::install(&mut w, ckptstore::Config::default());
    mtcp::incr::set_enabled(&mut w, incremental);
    let s = Session::start(
        &mut w,
        &mut sim,
        Options::builder()
            .ckpt_dir("/shared/ckpt")
            .forked(forked)
            .build(),
    );
    s.launch(
        &mut w,
        &mut sim,
        NodeId(1),
        "pipe",
        Box::new(FtPipeChain::new(900_000)),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(6));
    for gen in 1..=5u64 {
        let g = s
            .checkpoint_and_wait(&mut w, &mut sim, budget)
            .expect_ckpt();
        assert_eq!(g.gen, gen);
        run_for(&mut w, &mut sim, Nanos::from_millis(2));
    }
    if incremental {
        assert!(
            w.obs.metrics.counter_total("mtcp.incr.images") > 0,
            "a 5-generation chain must write incremental images"
        );
    } else {
        assert_eq!(w.obs.metrics.counter_total("mtcp.incr.images"), 0);
    }
    s.kill_computation(&mut w, &mut sim);
    let _ = w.shared_fs.remove("/shared/pipe_result");
    let hosts: Vec<(String, NodeId)> = (0..w.nodes.len())
        .map(|i| (w.nodes[i].hostname.clone(), NodeId(i as u32)))
        .collect();
    let remap = move |h: &str| {
        hosts
            .iter()
            .find(|(n, _)| n == h)
            .map(|(_, x)| *x)
            .expect("known host")
    };
    let restored = s
        .restart_resilient(&mut w, &mut sim, &remap)
        .expect("restart");
    assert_eq!(restored.gen, 5, "latest generation restarts");
    Session::wait_restart_done(&mut w, &mut sim, restored.gen, budget);
    assert!(
        !matches!(
            sim.run_budgeted(&mut w, budget),
            simkit::RunOutcome::BudgetExhausted
        ),
        "restarted computation must finish"
    );
    shared_result(&w, "/shared/pipe_result").expect("restarted run writes its answer")
}

#[test]
fn inline_incremental_computes_the_same_answer() {
    assert_eq!(protocol_run(true, false), protocol_run(false, false));
}

#[test]
fn forked_incremental_computes_the_same_answer() {
    assert_eq!(protocol_run(true, true), protocol_run(false, true));
}
