//! Crash-consistency fault matrix for the checkpoint/restart protocol.
//!
//! Every cell of (workload × fault kind × protocol stage) runs the same
//! experiment: take a clean generation-1 checkpoint, then request a second
//! checkpoint with a seeded fault armed against it — a dropped / delayed /
//! reordered coordinator message, a process or node kill at a barrier-stage
//! release, a bounded network partition, a torn (truncated / bit-flipped)
//! image write, or node-local disk loss that deletes a just-written primary
//! image (restart must proceed from a `ckptstore` replica). The transparency
//! invariant asserted for every cell:
//!
//! * either the faulted generation completes and the cluster restarts from
//!   it, or it aborts cleanly / fails validation and the restart falls back
//!   to an older complete generation;
//! * after restart the applications finish with *exactly* the reference
//!   answer of an uninterrupted run — never a wrong answer, hang, or panic.
//!
//! Every cell is driven by a seed derived from a base seed, so any failure
//! is reproducible from the seeds printed in the failure report:
//!
//! ```text
//! DMTCP_FAULT_SEEDS=<base> DMTCP_FAULT_ONLY='<cell id>' \
//!     cargo test -p dmtcp --test faults crash_consistency_matrix
//! ```
//!
//! Knobs (all optional):
//! * `DMTCP_FAULT_SEEDS`   — comma-separated base seeds (hex `0x…` or
//!   decimal) replacing the built-in fixed set.
//! * `DMTCP_FAULT_ROTATING` — additionally run N date-derived base seeds
//!   (fresh coverage each day; the seeds are printed so failures remain
//!   reproducible). Default 0, so a plain `cargo test` is deterministic.
//! * `DMTCP_FAULT_ONLY`    — substring filter on cell ids.
//! * `DMTCP_FAULT_SKIP_DEFAULT` — set to `1` to skip the matrix entirely
//!   (CI runs it as a dedicated stage and skips it in the workspace pass).
//! * `DMTCP_TEST_EV_BUDGET` — event budget per bounded run (see common).

mod common;

use common::*;
use dmtcp::coord::stage;
use dmtcp::session::{enable_flight_recorder, export_journal, run_for, CkptOutcome};
use dmtcp::{ExpectCkpt, Options, Session};
use faultkit::{FaultKind, FaultPlan};
use obs::journal::{CLASS_FAULT, CLASS_NET, CLASS_STAGE};
use oskit::world::{NodeId, OsSim, Pid, World};
use simkit::{mix2, Nanos, RunOutcome};
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// Rounds for the distributed request/response workload (finishes well after
/// the faulted checkpoint lands, so every cell interrupts it mid-flight).
const CHAIN_ROUNDS: u64 = 120;
/// Bytes for the fork+pipe workload.
const PIPE_TOTAL: u64 = 900_000;

/// Fixed base seeds: a plain `cargo test` run is fully deterministic.
const DEFAULT_BASES: [u64; 2] = [0x5EED_0001, 0x00D3_17C0];

#[derive(Clone, Copy, PartialEq, Eq)]
enum Workload {
    Chain = 0,
    Pipe = 1,
}

impl Workload {
    const ALL: [Workload; 2] = [Workload::Chain, Workload::Pipe];

    fn name(self) -> &'static str {
        match self {
            Workload::Chain => "chain",
            Workload::Pipe => "pipe",
        }
    }

    /// Result files the workload writes; compared against the reference and
    /// removed before every restart.
    fn results(self) -> &'static [&'static str] {
        match self {
            Workload::Chain => &["/shared/client_result", "/shared/server_result"],
            Workload::Pipe => &["/shared/pipe_result"],
        }
    }
}

/// One cell of the matrix. `variant` distinguishes multiple seeded torn-write
/// cells that share the same (kind, workload) coordinates; `forked` runs the
/// cell with copy-on-write forked checkpointing, so the fault lands during
/// (or around) the overlapped background drain; `store` installs the chunk
/// store, which turns generation 2 into an *incremental* capture (clean
/// regions aliased into generation 1's chunks), so the fault attacks the
/// incremental drain and restart must cope with aliased manifests.
#[derive(Clone, Copy)]
struct Cell {
    kind: FaultKind,
    stage: u8,
    wl: Workload,
    base: u64,
    variant: u64,
    forked: bool,
    store: bool,
}

impl Cell {
    fn seed(&self) -> u64 {
        // `forked` and `store` feed the mix in bit positions the small
        // workload enum never uses, so all pre-existing cell seeds are
        // unchanged.
        mix2(
            self.base,
            mix2(
                ((self.kind as u64) << 8) | self.stage as u64,
                mix2(
                    self.wl as u64 | ((self.forked as u64) << 8) | ((self.store as u64) << 9),
                    self.variant,
                ),
            ),
        )
    }

    fn id(&self) -> String {
        format!(
            "{}@stage{}/{}+v{}{}{}",
            self.kind.name(),
            self.stage,
            self.wl.name(),
            self.variant,
            if self.forked { "+forked" } else { "" },
            if self.store { "+store" } else { "" }
        )
    }
}

/// Enumerate the full matrix for the given base seeds. Per base: 6 live
/// fault kinds × 5 protocol stages × 2 workloads, plus 2 torn-write kinds
/// × 2 workloads × 4 seeded variants, plus the image-delete kind × 2
/// workloads × 2 seeded variants, plus 18 forked-checkpoint cells (kills at
/// the start of the overlapped drain, lossy-network faults against the
/// `CKPT_WRITTEN` acknowledgment, torn background writes), plus 12
/// incremental-store cells (kills and torn writes against the incremental
/// drain, where generation 2 aliases generation 1's chunks) — 110 cells,
/// 220 with the two default bases.
fn cells(bases: &[u64]) -> Vec<Cell> {
    const STAGES: [u8; 5] = [
        stage::SUSPENDED,
        stage::ELECTED,
        stage::DRAINED,
        stage::CHECKPOINTED,
        stage::REFILLED,
    ];
    const LIVE: [FaultKind; 6] = [
        FaultKind::DropMsg,
        FaultKind::DelayMsg,
        FaultKind::ReorderMsg,
        FaultKind::KillProc,
        FaultKind::KillNode,
        FaultKind::Partition,
    ];
    const TORN: [FaultKind; 2] = [FaultKind::TornTruncate, FaultKind::TornBitFlip];

    let mut out = Vec::new();
    for &base in bases {
        for &kind in &LIVE {
            for &stg in &STAGES {
                for &wl in &Workload::ALL {
                    out.push(Cell {
                        kind,
                        stage: stg,
                        wl,
                        base,
                        variant: 0,
                        forked: false,
                        store: false,
                    });
                }
            }
        }
        for &kind in &TORN {
            for &wl in &Workload::ALL {
                for variant in 0..4 {
                    // Torn faults fire at image-write time; the stage field
                    // is nominal.
                    out.push(Cell {
                        kind,
                        stage: stage::CHECKPOINTED,
                        wl,
                        base,
                        variant,
                        forked: false,
                        store: false,
                    });
                }
            }
        }
        for &wl in &Workload::ALL {
            for variant in 0..2 {
                // Image-delete fires at the CHECKPOINTED release, after
                // every image of the generation has been written; the
                // variant seeds a different victim image.
                out.push(Cell {
                    kind: FaultKind::ImageDelete,
                    stage: stage::CHECKPOINTED,
                    wl,
                    base,
                    variant,
                    forked: false,
                    store: false,
                });
            }
        }
        // Forked (copy-on-write) checkpointing: the same transparency bar
        // with the overlapped background drain on. Kills at the REFILLED
        // release land right as the application resumes and the drain
        // begins; lossy-network faults at CKPT_WRITTEN attack the drain's
        // acknowledgment round; torn writes corrupt the background image.
        for &kind in &[FaultKind::KillProc, FaultKind::KillNode] {
            for &wl in &Workload::ALL {
                out.push(Cell {
                    kind,
                    stage: stage::REFILLED,
                    wl,
                    base,
                    variant: 0,
                    forked: true,
                    store: false,
                });
            }
        }
        for &kind in &[
            FaultKind::DropMsg,
            FaultKind::DelayMsg,
            FaultKind::ReorderMsg,
        ] {
            for &wl in &Workload::ALL {
                out.push(Cell {
                    kind,
                    stage: stage::CKPT_WRITTEN,
                    wl,
                    base,
                    variant: 0,
                    forked: true,
                    store: false,
                });
            }
        }
        for &kind in &TORN {
            for &wl in &Workload::ALL {
                for variant in 0..2 {
                    out.push(Cell {
                        kind,
                        stage: stage::CHECKPOINTED,
                        wl,
                        base,
                        variant,
                        forked: true,
                        store: false,
                    });
                }
            }
        }
        // Incremental-store cells: with the chunk store installed the
        // second generation is an *incremental* forked drain — clean
        // regions are slice refs into generation 1's chunks. Kills at the
        // REFILLED release abort the incremental drain mid-flight (the
        // dirty set must merge back, restart falls to gen 1); torn writes
        // corrupt the incremental image (validation rejects it, restart
        // falls back through the aliased manifest chain).
        for &kind in &[FaultKind::KillProc, FaultKind::KillNode] {
            for &wl in &Workload::ALL {
                out.push(Cell {
                    kind,
                    stage: stage::REFILLED,
                    wl,
                    base,
                    variant: 0,
                    forked: true,
                    store: true,
                });
            }
        }
        for &kind in &TORN {
            for &wl in &Workload::ALL {
                for variant in 0..2 {
                    out.push(Cell {
                        kind,
                        stage: stage::CHECKPOINTED,
                        wl,
                        base,
                        variant,
                        forked: true,
                        store: true,
                    });
                }
            }
        }
    }
    out
}

fn parse_seed(s: &str) -> Option<u64> {
    let t = s.trim().replace('_', "");
    if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(h, 16).ok()
    } else {
        t.parse().ok()
    }
}

/// Base seeds: `DMTCP_FAULT_SEEDS` (or the fixed default set), plus
/// `DMTCP_FAULT_ROTATING` extra date-derived seeds, printed so a failure
/// under a rotating seed is still reproducible.
fn base_seeds() -> Vec<u64> {
    let mut bases: Vec<u64> = match std::env::var("DMTCP_FAULT_SEEDS") {
        Ok(v) => v.split(',').filter_map(parse_seed).collect(),
        Err(_) => DEFAULT_BASES.to_vec(),
    };
    if bases.is_empty() {
        bases = DEFAULT_BASES.to_vec();
    }
    let rotating: u64 = std::env::var("DMTCP_FAULT_ROTATING")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0);
    if rotating > 0 {
        let day = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_secs()
            / 86_400;
        for i in 0..rotating {
            let seed = mix2(0xDA7E_5EED, day.wrapping_add(i));
            eprintln!(
                "faults: rotating base seed {seed:#x} \
                 (reproduce with DMTCP_FAULT_SEEDS={seed:#x})"
            );
            bases.push(seed);
        }
    }
    bases
}

/// Reference answers from an uninterrupted, un-checkpointed run.
fn reference(wl: Workload, budget: u64) -> Vec<(&'static str, String)> {
    let (mut w, mut sim) = cluster(2);
    match wl {
        Workload::Chain => {
            w.spawn(
                &mut sim,
                NodeId(1),
                "server",
                Box::new(EchoPlusOne::new(9000)),
                Pid(1),
                BTreeMap::new(),
            );
            w.spawn(
                &mut sim,
                NodeId(0),
                "client",
                Box::new(FtChainClient::new("node01", 9000, CHAIN_ROUNDS)),
                Pid(1),
                BTreeMap::new(),
            );
        }
        Workload::Pipe => {
            w.spawn(
                &mut sim,
                NodeId(1),
                "pipe",
                Box::new(FtPipeChain::new(PIPE_TOTAL)),
                Pid(1),
                BTreeMap::new(),
            );
        }
    }
    assert!(
        sim.run_bounded(&mut w, budget),
        "reference run exceeded budget"
    );
    wl.results()
        .iter()
        .map(|p| (*p, shared_result(&w, p).expect("reference result")))
        .collect()
}

/// Event classes every recorded cell journals. Scheduler dispatches are
/// deliberately excluded: they are by far the chattiest class and the
/// protocol/fault/barrier timeline is what a red cell needs to be replayed.
const CELL_CLASSES: u8 = CLASS_NET | CLASS_FAULT | CLASS_STAGE;

/// Where failed-cell journals land: `<workspace>/target/replay/`.
fn replay_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/replay")
}

/// Turn the flight recorder on for a cell run, stamping everything needed
/// to rebuild the cell into the journal header.
fn record_cell(w: &mut World, cell: &Cell, budget: u64) {
    enable_flight_recorder(
        w,
        CELL_CLASSES,
        &[
            ("cell", &cell.id()),
            ("kind", cell.kind.name()),
            ("stage", &cell.stage.to_string()),
            ("workload", cell.wl.name()),
            ("base", &format!("{:#x}", cell.base)),
            ("variant", &cell.variant.to_string()),
            ("forked", if cell.forked { "1" } else { "0" }),
            ("store", if cell.store { "1" } else { "0" }),
            ("seed", &format!("{:#x}", cell.seed())),
            ("budget", &budget.to_string()),
        ],
    );
}

/// Run one matrix cell with the flight recorder on; panics (caught by the
/// harness) on any invariant violation. On failure the journal is written
/// to `target/replay/<seed>.jsonl` and the exact `replay_cell` invocation
/// that re-executes the run to the moment of death is printed.
fn run_cell(cell: &Cell, reference: &[(&'static str, String)], budget: u64) {
    let (mut w, mut sim) = cluster(2);
    record_cell(&mut w, cell, budget);
    let result = catch_unwind(AssertUnwindSafe(|| {
        drive_cell(cell, reference, budget, &mut w, &mut sim)
    }));
    if let Err(e) = result {
        let died_at = sim.now();
        w.obs.journal.set_meta("end_ns", died_at.0.to_string());
        let dropped = w.obs.journal.evicted();
        let jsonl = export_journal(&mut w);
        let dir = replay_dir();
        let path = dir.join(format!("{:#x}.jsonl", cell.seed()));
        match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &jsonl)) {
            Ok(()) => {
                eprintln!(
                    "cell {} died at {}ns; flight recorder journal ({} events, \
                     {} evicted): {}",
                    cell.id(),
                    died_at.0,
                    w.obs.journal.len(),
                    dropped,
                    path.display()
                );
                eprintln!(
                    "replay it to the moment of death with:\n  \
                     DMTCP_REPLAY={} DMTCP_REPLAY_SEEK={} \
                     DMTCP_FAULT_SEEDS={:#x} DMTCP_FAULT_ONLY='{}' \
                     cargo test -p dmtcp --test faults replay_cell -- --nocapture",
                    path.display(),
                    died_at.0,
                    cell.base,
                    cell.id()
                );
            }
            Err(io) => eprintln!(
                "cell {}: could not write replay journal to {}: {io}",
                cell.id(),
                path.display()
            ),
        }
        resume_unwind(e);
    }
}

/// The cell experiment itself, against a caller-owned world (so the caller
/// can salvage the flight-recorder journal when this panics).
fn drive_cell(
    cell: &Cell,
    reference: &[(&'static str, String)],
    budget: u64,
    w: &mut World,
    sim: &mut OsSim,
) {
    let s = Session::start(
        &mut *w,
        &mut *sim,
        Options::builder()
            .ckpt_dir("/shared/ckpt")
            .forked(cell.forked)
            .build(),
    );
    // Image-delete cells model node-local disk loss: the primary copy of a
    // just-written image vanishes, and restart must proceed from the chunk
    // store's replica on the peer node. The store stays installed through
    // restart — the reader resolves images through it. `store` cells
    // install it too, which also makes generation 2 incremental: with the
    // store present, clean regions of gen 2 are aliased into gen 1's
    // chunks, so the fault lands on the incremental drain and any
    // replica-served restart walks aliased (slice-ref) manifests.
    if cell.kind == FaultKind::ImageDelete || cell.store {
        ckptstore::install(&mut *w, ckptstore::Config::default());
    }
    // Install before launch: the per-process managers register their
    // coordinator connections at connect time, and message faults only see
    // connections registered that way. Generation numbering is
    // deterministic, so targeting gen 2 arms the fault against the second
    // (faulted) checkpoint while leaving the clean gen-1 checkpoint alone.
    faultkit::install(
        &mut *w,
        FaultPlan {
            seed: cell.seed(),
            kind: cell.kind,
            stage: cell.stage,
            target_gen: 2,
        },
    );
    match cell.wl {
        Workload::Chain => {
            s.launch(
                &mut *w,
                &mut *sim,
                NodeId(1),
                "server",
                Box::new(EchoPlusOne::new(9000)),
            );
            s.launch(
                &mut *w,
                &mut *sim,
                NodeId(0),
                "client",
                Box::new(FtChainClient::new("node01", 9000, CHAIN_ROUNDS)),
            );
        }
        Workload::Pipe => {
            s.launch(
                &mut *w,
                &mut *sim,
                NodeId(1),
                "pipe",
                Box::new(FtPipeChain::new(PIPE_TOTAL)),
            );
        }
    }

    run_for(&mut *w, &mut *sim, Nanos::from_millis(6));
    let g1 = s
        .checkpoint_and_wait(&mut *w, &mut *sim, budget)
        .expect_ckpt();
    assert_eq!(g1.gen, 1, "first generation must be 1");
    run_for(&mut *w, &mut *sim, Nanos::from_millis(2));

    let outcome = s.checkpoint_until_settled(&mut *w, &mut *sim, budget);
    // In forked mode the stop-the-world phase has settled but the background
    // drain is still in flight; let it finish (or drain-abort, if the fault
    // kills a participant) while the fault is still armed.
    let written2 = if cell.forked && matches!(outcome, CkptOutcome::Completed(_)) {
        Session::wait_ckpt_written(&mut *w, &mut *sim, 2, budget).is_some()
    } else {
        false
    };
    let injected: Vec<String> = faultkit::state(&*w)
        .map(|st| st.borrow().injected().to_vec())
        .unwrap_or_default();
    // `uninstall_at` journals the hook removal: taking the hooks out changes
    // how later packets are treated, so a replay must do it at the same
    // virtual instant.
    faultkit::uninstall_at(&mut *w, sim.now());
    // Deliberate mid-protocol death, for exercising (and demonstrating) the
    // red-cell debugging loop: journal dump, printed replay invocation,
    // substrate snapshot at the moment of death.
    assert!(
        std::env::var("DMTCP_FAULT_DEMO_FAIL").as_deref() != Ok("1"),
        "deliberate failure (DMTCP_FAULT_DEMO_FAIL=1) after the faulted \
         checkpoint settled (injected: {injected:?})"
    );

    match cell.kind {
        FaultKind::DropMsg | FaultKind::DelayMsg | FaultKind::ReorderMsg | FaultKind::Partition => {
            // No process died, so the protocol must heal (retransmits,
            // duplicate-release resends) and complete.
            assert!(
                matches!(outcome, CkptOutcome::Completed(_)),
                "lossy-network fault must not abort the generation \
                 (injected: {injected:?})"
            );
        }
        FaultKind::TornTruncate | FaultKind::TornBitFlip => {
            assert!(
                matches!(outcome, CkptOutcome::Completed(_)),
                "torn-image faults kill no participant; the protocol itself \
                 completes (injected: {injected:?})"
            );
        }
        FaultKind::ImageDelete => {
            // Disk loss after the CHECKPOINTED barrier kills no participant
            // and the generation is already durable on the replica.
            assert!(
                matches!(outcome, CkptOutcome::Completed(_)),
                "image-delete faults kill no participant; the protocol \
                 completes (injected: {injected:?})"
            );
        }
        FaultKind::KillProc | FaultKind::KillNode => {
            // A kill at the final barrier lands after the generation is
            // already complete; at any earlier stage the coordinator must
            // abort rather than trust partial images.
            if let CkptOutcome::Completed(g) = &outcome {
                assert_eq!(
                    cell.stage,
                    stage::REFILLED,
                    "kill at stage {} must abort, but gen {} completed \
                     (injected: {injected:?})",
                    cell.stage,
                    g.gen
                );
            }
        }
        FaultKind::RelayKill | FaultKind::RelaySever => {
            unreachable!("relay faults run as dedicated hierarchical tests, not matrix cells")
        }
        FaultKind::NodeLoss => {
            unreachable!("node-loss fires at migration time and runs as dedicated migration cells")
        }
    }
    if cell.store {
        // The cell only attacks the incremental path if generation 2
        // actually went incremental — the image (complete or doomed) was
        // committed before the fault's barrier release fired.
        assert!(
            w.obs.metrics.counter_total("mtcp.incr.images") > 0,
            "a store cell's second generation must capture incrementally \
             (injected: {injected:?})"
        );
    }

    // Let scheduled kills fire and survivors notice dead peers, then tear
    // the computation down as a crash would.
    run_for(&mut *w, &mut *sim, Nanos::from_millis(6));
    s.kill_computation(&mut *w, &mut *sim);
    for p in cell.wl.results() {
        let _ = w.shared_fs.remove(p);
    }

    let hosts: Vec<(String, NodeId)> = (0..w.nodes.len())
        .map(|i| (w.nodes[i].hostname.clone(), NodeId(i as u32)))
        .collect();
    let remap = move |h: &str| {
        hosts
            .iter()
            .find(|(n, _)| n == h)
            .map(|(_, x)| *x)
            .expect("known host")
    };
    let restored = s
        .restart_resilient(&mut *w, &mut *sim, &remap)
        .expect("gen 1 completed cleanly, so a usable generation exists");

    if cell.forked {
        match cell.kind {
            FaultKind::KillProc | FaultKind::KillNode => {
                // The kill fires at the REFILLED release — before the
                // background write can finish — so CKPT_WRITTEN never
                // releases and the restart script still names the previous
                // durable generation: the transparency invariant for a
                // crash during the overlapped drain.
                assert!(
                    !written2,
                    "kill at drain start must prevent the CKPT_WRITTEN \
                     release (injected: {injected:?})"
                );
                assert_eq!(
                    restored.gen, 1,
                    "restart after a kill mid-drain must fall back to the \
                     last durably written generation (injected: {injected:?})"
                );
            }
            FaultKind::DropMsg | FaultKind::DelayMsg | FaultKind::ReorderMsg => {
                // Two legitimate outcomes: the ack round heals via
                // retransmission (restart from the drained generation), or
                // the application finishes and exits while the ack is still
                // in flight — the coordinator cannot tell a clean exit from
                // a crash at the socket, so it conservatively drain-aborts
                // and the previous durable generation is kept. Either way
                // the restart generation must match what was acknowledged.
                assert_eq!(
                    restored.gen,
                    if written2 { 2 } else { 1 },
                    "restart generation must match the CKPT_WRITTEN outcome \
                     (written2={written2}, injected: {injected:?})"
                );
            }
            _ => {
                // Torn background writes: the drain itself completes; the
                // corrupt image is caught below at restart validation.
                assert!(
                    written2,
                    "torn writes kill no participant; the background drain \
                     completes (injected: {injected:?})"
                );
            }
        }
    }
    if cell.kind == FaultKind::ImageDelete {
        assert!(
            !injected.is_empty(),
            "image-delete fault armed for gen 2 never fired"
        );
        assert!(
            restored.rejected.is_empty(),
            "every image must resolve from a replica, none rejected: {:?}",
            restored.rejected
        );
        assert_eq!(
            restored.gen, 2,
            "the faulted generation is durable on the replica and must be \
             the one restarted (injected: {injected:?})"
        );
    }
    if matches!(cell.kind, FaultKind::TornTruncate | FaultKind::TornBitFlip) {
        assert!(
            !injected.is_empty(),
            "torn fault armed for gen 2 never fired"
        );
        assert!(
            !restored.rejected.is_empty(),
            "the torn gen-2 image must fail header/CRC validation"
        );
        assert_eq!(
            restored.gen, 1,
            "restart must fall back to the previous complete generation; \
             rejected: {:?}",
            restored.rejected
        );
    }

    Session::wait_restart_done(&mut *w, &mut *sim, restored.gen, budget);
    match sim.run_budgeted(&mut *w, budget) {
        RunOutcome::Quiescent | RunOutcome::Halted => {}
        RunOutcome::BudgetExhausted => panic!(
            "event budget exhausted after restart ({budget} events) — raise \
             DMTCP_TEST_EV_BUDGET, or suspect a livelock (injected: {injected:?})"
        ),
    }
    for (path, want) in reference {
        let got = shared_result(&*w, path);
        assert_eq!(
            got.as_deref(),
            Some(want.as_str()),
            "wrong answer in {} after restart from gen {} (injected: {:?})",
            path,
            restored.gen,
            injected
        );
    }
}

fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    e.downcast_ref::<String>()
        .cloned()
        .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "<non-string panic payload>".into())
}

#[test]
fn crash_consistency_matrix() {
    // CI runs the matrix as its own `faults` stage; the workspace-wide test
    // stage sets this knob so the matrix is not executed twice per pipeline.
    if std::env::var("DMTCP_FAULT_SKIP_DEFAULT").as_deref() == Ok("1") {
        eprintln!(
            "crash_consistency_matrix: skipped (DMTCP_FAULT_SKIP_DEFAULT=1); \
             run it via `scripts/tier1.sh faults`"
        );
        return;
    }
    let budget = run_budget();
    let bases = base_seeds();
    let only = std::env::var("DMTCP_FAULT_ONLY").ok();
    let all = cells(&bases);

    let ref_chain = reference(Workload::Chain, budget);
    let ref_pipe = reference(Workload::Pipe, budget);

    let mut failures: Vec<String> = Vec::new();
    let mut ran = 0u32;
    for cell in &all {
        if let Some(f) = &only {
            if !cell.id().contains(f.as_str()) {
                continue;
            }
        }
        ran += 1;
        eprintln!(
            "cell {} base={:#x} seed={:#x}",
            cell.id(),
            cell.base,
            cell.seed()
        );
        let reference = match cell.wl {
            Workload::Chain => &ref_chain,
            Workload::Pipe => &ref_pipe,
        };
        if let Err(e) = catch_unwind(AssertUnwindSafe(|| run_cell(cell, reference, budget))) {
            let line = format!(
                "{} base={:#x} cell-seed={:#x}: {}",
                cell.id(),
                cell.base,
                cell.seed(),
                panic_message(&*e)
            );
            eprintln!("FAIL {line}");
            failures.push(line);
        }
    }
    assert!(ran > 0, "DMTCP_FAULT_ONLY matched no cells");
    assert!(
        failures.is_empty(),
        "{}/{} fault cells violated the transparency invariant:\n  {}\n\
         reproduce one with:\n  DMTCP_FAULT_SEEDS=<base> \
         DMTCP_FAULT_ONLY='<cell id>' cargo test -p dmtcp --test faults \
         crash_consistency_matrix -- --nocapture",
        failures.len(),
        ran,
        failures.join("\n  ")
    );
}

/// The matrix floor promised by the test plan: ≥ 4 fault kinds (we field 9),
/// ≥ 5 protocol stages, ≥ 2 workloads, ≥ 150 seeded cells — all with the
/// default deterministic seed set, independent of environment knobs.
#[test]
fn matrix_meets_minimum_dimensions() {
    let all = cells(&DEFAULT_BASES);
    assert!(all.len() >= 150, "matrix has only {} cells", all.len());

    let kinds: BTreeSet<&str> = all.iter().map(|c| c.kind.name()).collect();
    let stages: BTreeSet<u8> = all.iter().map(|c| c.stage).collect();
    let wls: BTreeSet<&str> = all.iter().map(|c| c.wl.name()).collect();
    assert!(kinds.len() >= 4, "only {} fault kinds", kinds.len());
    assert!(stages.len() >= 5, "only {} protocol stages", stages.len());
    assert!(wls.len() >= 2, "only {} workloads", wls.len());
    assert!(
        all.iter().any(|c| c.forked),
        "matrix must cover forked checkpointing"
    );
    assert!(
        all.iter().any(|c| c.stage == stage::CKPT_WRITTEN),
        "matrix must attack the overlapped-drain acknowledgment round"
    );
    assert!(
        all.iter()
            .any(|c| c.store && matches!(c.kind, FaultKind::KillProc | FaultKind::KillNode)),
        "matrix must kill participants during an incremental drain"
    );
    assert!(
        all.iter()
            .any(|c| c.store && matches!(c.kind, FaultKind::TornTruncate | FaultKind::TornBitFlip)),
        "matrix must tear incremental images"
    );

    // Seed derivation must give every cell a distinct seed, or two cells
    // would silently explore the same fault timing.
    let seeds: BTreeSet<u64> = all.iter().map(Cell::seed).collect();
    assert_eq!(seeds.len(), all.len(), "cell seed collision");
}

// ---------------------------------------------------------------------
// Relay faults (hierarchical topology). These are not matrix cells: the
// matrix runs the flat topology, and a relay fault only exists when the
// per-node relay layer is in play. Each test drives the same chain
// workload through relays and asserts the two promised outcomes: the root
// aborts the in-flight generation (no hung barrier), and restart falls
// back to the previous durable generation with the right answers.
// ---------------------------------------------------------------------

fn run_relay_fault(kind: FaultKind) {
    let budget = run_budget();
    let reference = reference(Workload::Chain, budget);

    let (mut w, mut sim) = cluster(2);
    let s = Session::start(
        &mut w,
        &mut sim,
        Options::builder()
            .ckpt_dir("/shared/ckpt")
            .topology(dmtcp::Topology::Hierarchical)
            .build(),
    );
    // Install before launch so the relays register their pids and root
    // connections with the fault layer as they come up.
    faultkit::install(
        &mut w,
        FaultPlan {
            seed: mix2(0x0E1A_5EED, kind as u64),
            kind,
            stage: stage::DRAINED,
            target_gen: 2,
        },
    );
    s.launch(
        &mut w,
        &mut sim,
        NodeId(1),
        "server",
        Box::new(EchoPlusOne::new(9000)),
    );
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "client",
        Box::new(FtChainClient::new("node01", 9000, CHAIN_ROUNDS)),
    );

    run_for(&mut w, &mut sim, Nanos::from_millis(6));
    let g1 = s
        .checkpoint_and_wait(&mut w, &mut sim, budget)
        .expect_ckpt();
    assert_eq!(g1.gen, 1, "first generation must complete cleanly");
    run_for(&mut w, &mut sim, Nanos::from_millis(2));

    // Gen 2: the fault fires at the DRAINED release. Whether the relay
    // process dies or its uplink is partitioned, the root must abort the
    // generation rather than hang the barrier.
    let err = s
        .checkpoint_and_wait(&mut w, &mut sim, budget)
        .expect_err("a lost relay must abort the generation");
    match err {
        dmtcp::CkptError::Aborted { gen, .. } => assert_eq!(gen, 2, "aborted the faulted gen"),
        other => panic!("expected an abort, not {other:?}"),
    }
    let injected: Vec<String> = faultkit::state(&w)
        .map(|st| st.borrow().injected().to_vec())
        .unwrap_or_default();
    assert!(
        !injected.is_empty(),
        "relay fault armed for gen 2 never fired"
    );

    // Give the partitioned relay time to give up on the silent root and
    // release its local clients, then tear down and restart.
    run_for(&mut w, &mut sim, Nanos::from_millis(200));
    if kind == FaultKind::RelaySever {
        assert!(
            w.obs.metrics.counter_total("coord.relay_timeouts")
                + w.obs.metrics.counter_total("relay.give_ups")
                > 0,
            "a partition must be detected by liveness on at least one side"
        );
    }
    faultkit::uninstall(&mut w);
    s.kill_computation(&mut w, &mut sim);
    for p in Workload::Chain.results() {
        let _ = w.shared_fs.remove(p);
    }

    let hosts: Vec<(String, NodeId)> = (0..w.nodes.len())
        .map(|i| (w.nodes[i].hostname.clone(), NodeId(i as u32)))
        .collect();
    let remap = move |h: &str| {
        hosts
            .iter()
            .find(|(n, _)| n == h)
            .map(|(_, x)| *x)
            .expect("known host")
    };
    let restored = s
        .restart_resilient(&mut w, &mut sim, &remap)
        .expect("gen 1 completed cleanly, so a usable generation exists");
    assert_eq!(
        restored.gen, 1,
        "restart must fall back to the previous durable generation \
         (injected: {injected:?})"
    );
    Session::wait_restart_done(&mut w, &mut sim, restored.gen, budget);
    match sim.run_budgeted(&mut w, budget) {
        RunOutcome::Quiescent | RunOutcome::Halted => {}
        RunOutcome::BudgetExhausted => {
            panic!("post-restart livelock (injected: {injected:?})")
        }
    }
    for (path, want) in &reference {
        assert_eq!(
            shared_result(&w, path).as_deref(),
            Some(want.as_str()),
            "wrong answer in {path} after restart (injected: {injected:?})"
        );
    }
}

#[test]
fn relay_death_mid_drain_aborts_to_previous_generation() {
    run_relay_fault(FaultKind::RelayKill);
}

#[test]
fn relay_partition_behaves_like_lost_participant() {
    run_relay_fault(FaultKind::RelaySever);
}

// ---------------------------------------------------------------------
// Time-travel replay of a recorded cell. When a matrix cell fails, its
// flight-recorder journal lands in `target/replay/<seed>.jsonl` and the
// failure report prints the exact invocation of this test. The journal's
// metadata names the cell, so the replay rebuilds the identical world,
// re-delivers the recorded schedule up to the requested virtual time
// (default: the instant of death), and dumps the substrate as structured
// JSON — sockets, fds, barrier state, the causal event tail.
// ---------------------------------------------------------------------

/// Rebuild the matrix cell a journal was recorded from, using the metadata
/// `record_cell` stamped into its header.
fn cell_from_meta(j: &obs::journal::DecodedJournal) -> Cell {
    let get = |k: &str| {
        j.meta_value(k)
            .unwrap_or_else(|| panic!("journal meta lacks {k:?} — not a fault-matrix recording"))
    };
    let kind_name = get("kind");
    let kind = FaultKind::ALL
        .iter()
        .copied()
        .chain([FaultKind::RelayKill, FaultKind::RelaySever])
        .find(|k| k.name() == kind_name)
        .unwrap_or_else(|| panic!("unknown fault kind {kind_name:?}"));
    let wl_name = get("workload");
    let wl = Workload::ALL
        .iter()
        .copied()
        .find(|w| w.name() == wl_name)
        .unwrap_or_else(|| panic!("unknown workload {wl_name:?}"));
    let cell = Cell {
        kind,
        stage: get("stage").parse().expect("stage meta"),
        wl,
        base: parse_seed(get("base")).expect("base meta"),
        variant: get("variant").parse().expect("variant meta"),
        forked: get("forked") == "1",
        // Journals recorded before the incremental-store cells existed
        // lack the key; those cells all ran storeless.
        store: j.meta_value("store").map(|v| v == "1").unwrap_or(false),
    };
    // The seed stamped at record time must match the rebuilt cell, or the
    // seed derivation changed since the journal was written and replaying
    // it would explore a different fault timing entirely.
    assert_eq!(
        format!("{:#x}", cell.seed()),
        get("seed"),
        "cell-seed mismatch: the matrix changed since this journal was recorded"
    );
    cell
}

/// Re-execute a recorded red cell to any virtual time (`DMTCP_REPLAY` names
/// the journal, `DMTCP_REPLAY_SEEK` the nanosecond to stop at — default the
/// recorded moment of death) and dump the substrate there. Without
/// `DMTCP_REPLAY` the test is a no-op, so plain `cargo test` stays green.
#[test]
fn replay_cell() {
    let Ok(path) = std::env::var("DMTCP_REPLAY") else {
        eprintln!(
            "replay_cell: skipped (set DMTCP_REPLAY=target/replay/<seed>.jsonl; \
             a failing matrix cell prints the exact invocation)"
        );
        return;
    };
    let jsonl = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read journal {path}: {e}"));
    let recorded = obs::journal::decode_jsonl(&jsonl)
        .unwrap_or_else(|e| panic!("journal {path} does not decode: {e:?}"));
    let cell = cell_from_meta(&recorded);
    let seek = match std::env::var("DMTCP_REPLAY_SEEK") {
        Ok(s) => Nanos(parse_seed(&s).expect("DMTCP_REPLAY_SEEK must be nanoseconds")),
        Err(_) => Nanos(
            recorded
                .meta_value("end_ns")
                .and_then(|s| s.parse().ok())
                .expect("journal lacks end_ns metadata; pass DMTCP_REPLAY_SEEK"),
        ),
    };
    eprintln!(
        "replaying cell {} (seed {:#x}) to t={}ns from {path}",
        cell.id(),
        cell.seed(),
        seek.0
    );

    // Reconstruct the recorded world exactly: same cluster, same session
    // options, same fault plan, same launches — then let the journal drive.
    let (mut w, mut sim) = cluster(2);
    dmtcp::replay::arm(&mut w, &recorded).expect("recording arms");
    let s = Session::start(
        &mut w,
        &mut sim,
        Options::builder()
            .ckpt_dir("/shared/ckpt")
            .forked(cell.forked)
            .build(),
    );
    if cell.kind == FaultKind::ImageDelete || cell.store {
        ckptstore::install(&mut w, ckptstore::Config::default());
    }
    faultkit::install(
        &mut w,
        FaultPlan {
            seed: cell.seed(),
            kind: cell.kind,
            stage: cell.stage,
            target_gen: 2,
        },
    );
    match cell.wl {
        Workload::Chain => {
            s.launch(
                &mut w,
                &mut sim,
                NodeId(1),
                "server",
                Box::new(EchoPlusOne::new(9000)),
            );
            s.launch(
                &mut w,
                &mut sim,
                NodeId(0),
                "client",
                Box::new(FtChainClient::new("node01", 9000, CHAIN_ROUNDS)),
            );
        }
        Workload::Pipe => {
            s.launch(
                &mut w,
                &mut sim,
                NodeId(1),
                "pipe",
                Box::new(FtPipeChain::new(PIPE_TOTAL)),
            );
        }
    }

    let report = dmtcp::replay::drive(&mut w, &mut sim, &s, &recorded, Some(seek));
    eprintln!("{}", report.verdict());
    println!("{}", report.snapshot);
    assert!(
        report.divergence.is_none(),
        "replay diverged from the recording:\n{}",
        report.verdict()
    );
}
