//! Flight-recorder replay smoke tests (the CI `replay` stage).
//!
//! Records a full checkpointed run with the flight recorder on, then
//! re-executes it from the journal with [`dmtcp::replay::drive`] and
//! requires *zero* divergence and a bit-identical final answer — the
//! determinism contract that makes `dmtcp replay` a debugger rather than a
//! best-effort approximation. A second test seeks to the middle of the
//! recording and checks the substrate snapshot is produced there.

mod common;

use common::*;
use dmtcp::session::{enable_flight_recorder, export_journal, run_for};
use dmtcp::{ExpectCkpt, Options, Session};
use obs::journal::{CLASS_FAULT, CLASS_NET, CLASS_STAGE};
use oskit::world::{NodeId, OsSim, World};
use simkit::{Nanos, RunOutcome, Sim};

const ROUNDS: u64 = 40;

/// Session options shared by the recording and the replay (they must be
/// identical, or the worlds themselves differ).
fn options() -> Options {
    Options::builder().ckpt_dir("/shared/ckpt").build()
}

/// Launch the chain workload exactly the same way in both worlds.
fn launch_workload(w: &mut World, sim: &mut OsSim, s: &Session) {
    s.launch(
        w,
        sim,
        NodeId(1),
        "server",
        Box::new(EchoPlusOne::new(9000)),
    );
    s.launch(
        w,
        sim,
        NodeId(0),
        "client",
        Box::new(ChainClient::new("node01", 9000, ROUNDS)),
    );
}

/// Record a run to completion; returns the journal JSONL and the final
/// answers.
fn record(budget: u64) -> (String, String, String) {
    record_on(Sim::new, budget)
}

/// Like [`record`], but on an explicit queue engine — the cross-engine test
/// records on the pre-overhaul reference heap.
fn record_on(mk: fn() -> OsSim, budget: u64) -> (String, String, String) {
    let (mut w, _) = cluster(2);
    let mut sim = mk();
    enable_flight_recorder(
        &mut w,
        CLASS_NET | CLASS_FAULT | CLASS_STAGE,
        &[("test", "replay-smoke")],
    );
    let s = Session::start(&mut w, &mut sim, options());
    launch_workload(&mut w, &mut sim, &s);
    run_for(&mut w, &mut sim, Nanos::from_millis(6));
    let g = s
        .checkpoint_and_wait(&mut w, &mut sim, budget)
        .expect_ckpt();
    assert_eq!(g.gen, 1);
    assert!(
        matches!(
            sim.run_budgeted(&mut w, budget),
            RunOutcome::Quiescent | RunOutcome::Halted
        ),
        "recorded run did not finish"
    );
    let client = shared_result(&w, "/shared/client_result").expect("client answer");
    let server = shared_result(&w, "/shared/server_result").expect("server answer");
    // Stamp the run's final virtual time so a replay can seek all the way
    // to quiescence (the last journaled event may precede it).
    w.obs.journal.set_meta("end_ns", format!("{}", sim.now().0));
    assert_eq!(w.obs.journal.evicted(), 0, "smoke journal must be lossless");
    (export_journal(&mut w), client, server)
}

#[test]
fn unmodified_run_replays_with_zero_divergence() {
    let budget = run_budget();
    let (jsonl, client, server) = record(budget);
    let recorded = obs::journal::decode_jsonl(&jsonl).expect("journal decodes");
    assert!(!recorded.events.is_empty(), "recording captured nothing");
    let end = Nanos(
        recorded
            .meta_value("end_ns")
            .and_then(|s| s.parse().ok())
            .expect("end_ns meta"),
    );

    let (mut w, mut sim) = cluster(2);
    dmtcp::replay::arm(&mut w, &recorded).expect("lossless recording arms");
    let s = Session::start(&mut w, &mut sim, options());
    launch_workload(&mut w, &mut sim, &s);
    let report = dmtcp::replay::drive(&mut w, &mut sim, &s, &recorded, Some(end));

    assert!(
        report.divergence.is_none(),
        "replay diverged:\n{}",
        report.verdict()
    );
    assert_eq!(
        report.checked,
        recorded.events.len() as u64,
        "replay must match every recorded event"
    );
    assert_eq!(report.expected_remaining, 0);
    assert_eq!(
        shared_result(&w, "/shared/client_result").as_deref(),
        Some(client.as_str()),
        "replay must reproduce the client answer bit-for-bit"
    );
    assert_eq!(
        shared_result(&w, "/shared/server_result").as_deref(),
        Some(server.as_str()),
        "replay must reproduce the server answer bit-for-bit"
    );
    obs::json::validate(&report.snapshot).expect("snapshot is well-formed JSON");
}

/// The ISSUE-9 compatibility bar for the engine swap: a journal recorded on
/// the pre-overhaul reference-heap engine must replay with zero divergence
/// on the timer wheel, with bit-identical final answers — recordings made
/// before the overhaul stay debuggable after it.
#[test]
fn heap_recorded_journal_replays_on_wheel_engine() {
    let budget = run_budget();
    let (jsonl, client, server) = record_on(Sim::new_reference, budget);
    let recorded = obs::journal::decode_jsonl(&jsonl).expect("journal decodes");
    assert!(!recorded.events.is_empty(), "recording captured nothing");
    let end = Nanos(
        recorded
            .meta_value("end_ns")
            .and_then(|s| s.parse().ok())
            .expect("end_ns meta"),
    );

    let (mut w, _) = cluster(2);
    let mut sim: OsSim = Sim::new_wheel();
    dmtcp::replay::arm(&mut w, &recorded).expect("lossless recording arms");
    let s = Session::start(&mut w, &mut sim, options());
    launch_workload(&mut w, &mut sim, &s);
    let report = dmtcp::replay::drive(&mut w, &mut sim, &s, &recorded, Some(end));

    assert!(
        report.divergence.is_none(),
        "wheel replay of a heap recording diverged:\n{}",
        report.verdict()
    );
    assert_eq!(report.checked, recorded.events.len() as u64);
    assert_eq!(report.expected_remaining, 0);
    assert_eq!(
        shared_result(&w, "/shared/client_result").as_deref(),
        Some(client.as_str())
    );
    assert_eq!(
        shared_result(&w, "/shared/server_result").as_deref(),
        Some(server.as_str())
    );
}

#[test]
fn seek_to_mid_run_dumps_substrate_at_that_instant() {
    let budget = run_budget();
    let (jsonl, _, _) = record(budget);
    let recorded = obs::journal::decode_jsonl(&jsonl).expect("journal decodes");
    // Seek to the virtual time of the middle event — mid-protocol, with the
    // checkpoint barriers in flight.
    let mid = recorded.events[recorded.events.len() / 2].at;

    let (mut w, mut sim) = cluster(2);
    dmtcp::replay::arm(&mut w, &recorded).expect("lossless recording arms");
    let s = Session::start(&mut w, &mut sim, options());
    launch_workload(&mut w, &mut sim, &s);
    let report = dmtcp::replay::drive(&mut w, &mut sim, &s, &recorded, Some(mid));

    assert!(
        report.divergence.is_none(),
        "prefix replay diverged:\n{}",
        report.verdict()
    );
    assert_eq!(report.at, mid, "replay must stop exactly at the seek time");
    assert!(
        report.expected_remaining > 0,
        "seeking mid-run leaves recorded events unreached"
    );
    obs::json::validate(&report.snapshot).expect("snapshot is well-formed JSON");
    assert!(
        report.snapshot.contains("\"substrate\""),
        "snapshot must embed the kernel object model"
    );
}
