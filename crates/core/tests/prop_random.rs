//! The strongest transparency property we can state: for *any* checkpoint
//! instant and any kill delay, kill + restart must produce exactly the
//! answer of an uninterrupted run. A deterministic RNG drives the instant
//! across the protocol's life (wiring, steady state, mid-drain of a
//! previous generation's leftovers, near completion).
//!
//! The event budget is shared tooling: `common::run_budget()` reads
//! `DMTCP_TEST_EV_BUDGET` (default 8M events). When a run exhausts it we
//! say so explicitly — "budget exhausted" means the simulation was still
//! making progress and the budget may simply be too small for the
//! workload, which is a different failure from a deadlock (event queue
//! drained with the result file never written).

mod common;

use common::*;
use dmtcp::session::run_for;
use dmtcp::{ExpectCkpt, Options, RestartPlan, Session};
use oskit::world::{NodeId, OsSim, World};
use simkit::{DetRng, Nanos, RunOutcome};

/// Drive the sim to quiescence within the configured budget, then return
/// the result file — distinguishing "budget exhausted" (raise
/// `DMTCP_TEST_EV_BUDGET`) from a genuine deadlock or missing result.
fn finish(w: &mut World, sim: &mut OsSim, what: &str) -> String {
    let budget = run_budget();
    match sim.run_budgeted(w, budget) {
        RunOutcome::BudgetExhausted => panic!(
            "{what}: budget exhausted after {budget} events \
             (virtual time {:?}) — still progressing, not deadlocked; \
             raise DMTCP_TEST_EV_BUDGET to give it more room",
            sim.now()
        ),
        RunOutcome::Quiescent | RunOutcome::Halted => shared_result(w, "/shared/client_result")
            .unwrap_or_else(|| {
                panic!(
                    "{what}: deadlock — event queue drained at virtual time {:?} \
                     with no /shared/client_result written",
                    sim.now()
                )
            }),
    }
}

fn reference(rounds: u64) -> String {
    let (mut w, mut sim) = cluster(2);
    use std::collections::BTreeMap;
    w.spawn(
        &mut sim,
        NodeId(1),
        "server",
        Box::new(EchoPlusOne::new(9000)),
        oskit::world::Pid(1),
        BTreeMap::new(),
    );
    w.spawn(
        &mut sim,
        NodeId(0),
        "client",
        Box::new(ChainClient::new("node01", 9000, rounds)),
        oskit::world::Pid(1),
        BTreeMap::new(),
    );
    finish(&mut w, &mut sim, "reference run")
}

fn ckpt_kill_restart_at(rounds: u64, ckpt_at_ms: u64, kill_delay_ms: u64, merge: bool) -> String {
    let (mut w, mut sim) = cluster(2);
    let s = Session::start(
        &mut w,
        &mut sim,
        Options::builder().ckpt_dir("/shared/ckpt").build(),
    );
    s.launch(
        &mut w,
        &mut sim,
        NodeId(1),
        "server",
        Box::new(EchoPlusOne::new(9000)),
    );
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "client",
        Box::new(ChainClient::new("node01", 9000, rounds)),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(ckpt_at_ms));
    let stat = s
        .checkpoint_and_wait(&mut w, &mut sim, run_budget())
        .expect_ckpt();
    run_for(&mut w, &mut sim, Nanos::from_millis(kill_delay_ms));
    s.kill_computation(&mut w, &mut sim);
    let _ = w.shared_fs.remove("/shared/client_result");
    let mut plan = RestartPlan::builder().generation(stat.gen);
    if merge {
        plan = plan.topology([NodeId(0)]);
    }
    plan.build()
        .execute(&s, &mut w, &mut sim)
        .expect("restart plan");
    Session::wait_restart_done(&mut w, &mut sim, stat.gen, run_budget());
    finish(&mut w, &mut sim, "post-restart run")
}

#[test]
fn any_checkpoint_instant_is_transparent() {
    // 400 rounds ≈ 80 ms of virtual runtime, so the instant sweeps
    // wiring, steady state, and near-completion.
    let rounds = 400;
    let expect = reference(rounds);
    let mut rng = DetRng::seed_from_u64(0x7A2A_5EED);
    for case in 0..12 {
        let ckpt_at_ms = rng.range(3, 68);
        let kill_delay_ms = rng.below(25);
        let merge = rng.chance(0.5);
        let got = ckpt_kill_restart_at(rounds, ckpt_at_ms, kill_delay_ms, merge);
        assert_eq!(
            got, expect,
            "case {case}: ckpt_at {ckpt_at_ms}ms kill_delay {kill_delay_ms}ms merge {merge}"
        );
    }
}
