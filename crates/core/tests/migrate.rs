//! Heterogeneous restart and live migration, through the typed
//! [`RestartPlan`] API.
//!
//! * **Differential restart**: one committed generation mapped onto 1×, ½×
//!   and 2× node counts must produce bit-identical answers, and the
//!   [`RestartOutcome::placement`] accounting must sum exactly to the
//!   original process set in every topology.
//! * **Live migration**: a closed subset of processes moves between nodes
//!   while bystanders keep computing; rolling upgrade drains nodes one at
//!   a time under continuous checkpoint traffic.
//! * **Red cells**: node loss during migration — a dying source node is
//!   served by the chunk store's replicas (the transfer channel); a dying
//!   target aborts the migration and the movers fall back cleanly onto a
//!   healthy node, with bystander generations untouched. Failing cells
//!   dump their flight-recorder journal to `target/replay/<seed>.jsonl`.

mod common;

use common::*;
use dmtcp::coord::{coord_shared, stage};
use dmtcp::hijack::Hijack;
use dmtcp::session::{enable_flight_recorder, export_journal, run_for, transplant_storage};
use dmtcp::{ExpectCkpt, Options, Packing, RestartError, RestartPlan, Session};
use faultkit::{FaultKind, FaultPlan};
use obs::journal::{CLASS_FAULT, CLASS_NET, CLASS_STAGE};
use oskit::program::{Program, Registry, Step};
use oskit::world::{NodeId, OsSim, Pid, World};
use oskit::{HwSpec, Kernel};
use simkit::{Nanos, Sim, Snap};
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// A standalone compute loop: counts to `target`, then records the count in
/// `/shared/tick_<id>`. No sockets, no fork — the minimal migratable unit.
struct Ticker {
    id: u32,
    count: u64,
    target: u64,
}
simkit::impl_snap!(struct Ticker { id, count, target });

impl Ticker {
    fn new(id: u32, target: u64) -> Self {
        Ticker {
            id,
            count: 0,
            target,
        }
    }

    fn result_path(id: u32) -> String {
        format!("/shared/tick_{id}")
    }
}

impl Program for Ticker {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        if self.count < self.target {
            self.count += 1;
            return Step::Compute(200_000);
        }
        let fd = k.open(&Ticker::result_path(self.id), true).expect("result");
        k.write(fd, format!("{}", self.count).as_bytes())
            .expect("w");
        Step::Exit(0)
    }
    fn tag(&self) -> &'static str {
        "ticker"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

fn registry() -> Registry {
    let mut r = test_registry();
    r.register_snap::<Ticker>("ticker");
    r
}

fn world(nodes: usize) -> (World, OsSim) {
    (World::new(HwSpec::cluster(), nodes, registry()), Sim::new())
}

fn opts() -> Options {
    Options::builder().ckpt_dir("/shared/ckpt").build()
}

/// Reference: the chain workload with no DMTCP at all.
fn chain_reference(rounds: u64) -> (String, String) {
    let (mut w, mut sim) = world(2);
    w.spawn(
        &mut sim,
        NodeId(1),
        "server",
        Box::new(EchoPlusOne::new(9000)),
        Pid(1),
        BTreeMap::new(),
    );
    w.spawn(
        &mut sim,
        NodeId(0),
        "client",
        Box::new(ChainClient::new("node01", 9000, rounds)),
        Pid(1),
        BTreeMap::new(),
    );
    assert!(sim.run_bounded(&mut w, run_budget()));
    (
        shared_result(&w, "/shared/client_result").expect("client finished"),
        shared_result(&w, "/shared/server_result").expect("server finished"),
    )
}

/// Virtual pid of the (unique) live traced process running `cmd`.
fn vpid_of(w: &World, cmd: &str) -> u32 {
    w.procs
        .values()
        .find(|p| p.alive() && p.cmd == cmd)
        .and_then(|p| p.ext.as_ref())
        .and_then(|e| e.downcast_ref::<Hijack>())
        .map(|h| h.vpid)
        .unwrap_or_else(|| panic!("{cmd} is not a live traced process"))
}

/// Node hosting the (unique) live process running `cmd`.
fn node_of(w: &World, cmd: &str) -> NodeId {
    w.procs
        .values()
        .find(|p| p.alive() && p.cmd == cmd)
        .map(|p| p.node)
        .unwrap_or_else(|| panic!("{cmd} is not alive"))
}

/// Virtual pids of every live traced process (optionally: on one node).
fn traced_vpids(w: &World, node: Option<NodeId>) -> BTreeSet<u32> {
    w.procs
        .values()
        .filter(|p| p.alive() && node.is_none_or(|n| p.node == n))
        .filter_map(|p| p.ext.as_ref())
        .filter_map(|e| e.downcast_ref::<Hijack>())
        .map(|h| h.vpid)
        .collect()
}

// ---------------------------------------------------------------------
// Differential restart: 1×, ½×, 2× node counts, bit-identical answers,
// placement accounting summing to the original process set.
// ---------------------------------------------------------------------

#[test]
fn same_generation_restarts_onto_one_half_and_double_node_counts() {
    let rounds = 300;
    let tick_target = 400;
    let (ref_client, ref_server) = chain_reference(rounds);
    let budget = run_budget();

    // Source computation on 2 nodes: a cross-node TCP pair + a standalone
    // compute process.
    let (mut w, mut sim) = world(2);
    let s = Session::start(&mut w, &mut sim, opts());
    s.launch(
        &mut w,
        &mut sim,
        NodeId(1),
        "server",
        Box::new(EchoPlusOne::new(9000)),
    );
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "client",
        Box::new(ChainClient::new("node01", 9000, rounds)),
    );
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "tick",
        Box::new(Ticker::new(0, tick_target)),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(40));
    let original = traced_vpids(&w, None);
    let stat = s
        .checkpoint_and_wait(&mut w, &mut sim, budget)
        .expect_ckpt();
    assert_eq!(stat.participants, 3);
    let gen = stat.gen;

    let results = [
        "/shared/client_result",
        "/shared/server_result",
        "/shared/tick_0",
    ];
    let cases: [(&str, Vec<NodeId>, usize, Packing); 3] = [
        ("1x", vec![NodeId(0), NodeId(1)], 2, Packing::RoundRobin),
        ("half", vec![NodeId(0)], 1, Packing::Fill),
        ("2x", (0..4).map(NodeId).collect(), 4, Packing::RoundRobin),
    ];
    for (label, targets, nodes, pack) in cases {
        // Fresh world of the target size; only the storage survives.
        let (mut w2, mut sim2) = world(nodes);
        transplant_storage(&w, &mut w2);
        for p in results {
            let _ = w2.shared_fs.remove(p);
        }
        let s2 = Session::start(&mut w2, &mut sim2, opts());
        let outcome = RestartPlan::builder()
            .generation(gen)
            .topology(targets.iter().copied())
            .pack(pack)
            .build()
            .execute(&s2, &mut w2, &mut sim2)
            .unwrap_or_else(|e| panic!("{label}: restart plan failed: {e}"));
        assert_eq!(outcome.gen, gen, "{label}");

        // Accounting invariant: every vpid placed exactly once, onto a
        // target node, and the union reproduces the original process set.
        let mut placed = BTreeSet::new();
        let mut total = 0usize;
        for (node, vpids) in &outcome.placement {
            assert!(targets.contains(node), "{label}: {node:?} not a target");
            total += vpids.len();
            placed.extend(vpids.iter().copied());
        }
        assert_eq!(total, original.len(), "{label}: a vpid was placed twice");
        assert_eq!(
            placed, original,
            "{label}: placement does not sum to the original process set"
        );

        Session::wait_restart_done(&mut w2, &mut sim2, gen, budget);
        assert!(sim2.run_bounded(&mut w2, budget), "{label}: deadlock");
        assert_eq!(
            shared_result(&w2, "/shared/client_result").as_deref(),
            Some(ref_client.as_str()),
            "{label}: client answer diverged"
        );
        assert_eq!(
            shared_result(&w2, "/shared/server_result").as_deref(),
            Some(ref_server.as_str()),
            "{label}: server answer diverged"
        );
        assert_eq!(
            shared_result(&w2, "/shared/tick_0").as_deref(),
            Some(tick_target.to_string().as_str()),
            "{label}: ticker answer diverged"
        );
    }
}

// ---------------------------------------------------------------------
// Live migration: movers restored elsewhere, bystanders keep running.
// ---------------------------------------------------------------------

#[test]
fn live_migration_moves_subset_while_bystanders_run() {
    let rounds = 500;
    let tick_target = 3_000;
    let (ref_client, ref_server) = chain_reference(rounds);
    let budget = run_budget();

    let (mut w, mut sim) = world(3);
    let s = Session::start(&mut w, &mut sim, opts());
    s.launch(
        &mut w,
        &mut sim,
        NodeId(1),
        "server",
        Box::new(EchoPlusOne::new(9000)),
    );
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "client",
        Box::new(ChainClient::new("node01", 9000, rounds)),
    );
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "tick",
        Box::new(Ticker::new(0, tick_target)),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(20));
    let tick = vpid_of(&w, "tick");
    assert_eq!(node_of(&w, "tick"), NodeId(0));

    let report = RestartPlan::builder()
        .only_pids([tick])
        .topology([NodeId(2)])
        .build()
        .migrate(&s, &mut w, &mut sim, budget)
        .expect("live migration");
    assert_eq!(report.moved, BTreeSet::from([tick]));
    assert_eq!(report.placement, vec![(NodeId(2), vec![tick])]);
    assert!(report.pause.0 > 0, "pause window recorded");
    assert_eq!(node_of(&w, "tick"), NodeId(2), "mover landed on the target");

    // No generation was abandoned: bystanders were checkpointed and
    // resumed, never aborted.
    assert!(
        coord_shared(&mut w).gen_stats.iter().all(|g| !g.aborted),
        "no generation aborted during live migration"
    );

    assert!(sim.run_bounded(&mut w, budget), "post-migration deadlock");
    assert_eq!(
        shared_result(&w, "/shared/client_result").as_deref(),
        Some(ref_client.as_str()),
        "bystander answer diverged"
    );
    assert_eq!(
        shared_result(&w, "/shared/server_result").as_deref(),
        Some(ref_server.as_str()),
        "bystander answer diverged"
    );
    assert_eq!(
        shared_result(&w, "/shared/tick_0").as_deref(),
        Some(tick_target.to_string().as_str()),
        "mover answer diverged"
    );
}

#[test]
fn rolling_upgrade_drains_nodes_one_at_a_time() {
    let budget = run_budget();
    let (mut w, mut sim) = world(3);
    let s = Session::start(&mut w, &mut sim, opts());
    // One worker per upgradable node; targets sized to outlive both
    // upgrades comfortably.
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "tick0",
        Box::new(Ticker::new(0, 5_000)),
    );
    s.launch(
        &mut w,
        &mut sim,
        NodeId(1),
        "tick1",
        Box::new(Ticker::new(1, 5_000)),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(10));

    // Drain node 0, then node 1, onto the spare node 2 — with ordinary
    // checkpoint traffic continuing between the upgrades.
    for node in [NodeId(0), NodeId(1)] {
        let movers = traced_vpids(&w, Some(node));
        assert!(!movers.is_empty(), "{node:?} hosts a worker");
        let report = RestartPlan::builder()
            .only_pids(movers.iter().copied())
            .topology([NodeId(2)])
            .build()
            .migrate(&s, &mut w, &mut sim, budget)
            .unwrap_or_else(|e| panic!("upgrade of {node:?} failed: {e}"));
        assert_eq!(report.moved, movers);
        assert!(
            traced_vpids(&w, Some(node)).is_empty(),
            "{node:?} drained after its upgrade"
        );
        // The next interval checkpoint between upgrades must still work.
        run_for(&mut w, &mut sim, Nanos::from_millis(5));
        s.checkpoint_and_wait(&mut w, &mut sim, budget)
            .expect_ckpt();
    }

    assert!(sim.run_bounded(&mut w, budget), "post-upgrade deadlock");
    assert_eq!(shared_result(&w, "/shared/tick_0").as_deref(), Some("5000"));
    assert_eq!(shared_result(&w, "/shared/tick_1").as_deref(), Some("5000"));
}

// ---------------------------------------------------------------------
// Typed error surface.
// ---------------------------------------------------------------------

#[test]
fn migrating_half_a_connection_is_rejected_and_harmless() {
    let rounds = 400;
    let (ref_client, ref_server) = chain_reference(rounds);
    let budget = run_budget();
    let (mut w, mut sim) = world(3);
    let s = Session::start(&mut w, &mut sim, opts());
    s.launch(
        &mut w,
        &mut sim,
        NodeId(1),
        "server",
        Box::new(EchoPlusOne::new(9000)),
    );
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "client",
        Box::new(ChainClient::new("node01", 9000, rounds)),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(20));
    let client = vpid_of(&w, "client");

    // The client's connection gsid is shared with the server: the subset
    // {client} is not closed, so the plan is rejected *before* anything is
    // killed — the computation keeps running.
    let err = RestartPlan::builder()
        .only_pids([client])
        .topology([NodeId(2)])
        .build()
        .migrate(&s, &mut w, &mut sim, budget)
        .expect_err("half a connection cannot migrate");
    assert!(
        matches!(err, RestartError::SubsetNotClosed { .. }),
        "unexpected error: {err}"
    );

    assert!(sim.run_bounded(&mut w, budget), "post-rejection deadlock");
    assert_eq!(
        shared_result(&w, "/shared/client_result").as_deref(),
        Some(ref_client.as_str())
    );
    assert_eq!(
        shared_result(&w, "/shared/server_result").as_deref(),
        Some(ref_server.as_str())
    );
}

#[test]
fn plan_validation_yields_typed_errors() {
    let budget = run_budget();
    let (mut w, mut sim) = world(2);
    let s = Session::start(&mut w, &mut sim, opts());

    // Before any checkpoint: no script.
    assert!(matches!(
        RestartPlan::from_generation(&w, s.opts.coord_port, 1),
        Err(RestartError::NoScript)
    ));

    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "tick",
        Box::new(Ticker::new(0, 2_000)),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(5));
    let stat = s
        .checkpoint_and_wait(&mut w, &mut sim, budget)
        .expect_ckpt();

    // A generation that never committed.
    assert!(matches!(
        RestartPlan::from_generation(&w, s.opts.coord_port, 99),
        Err(RestartError::MissingGeneration { gen: 99 })
    ));

    // An empty target topology can hold nothing.
    s.kill_computation(&mut w, &mut sim);
    let err = RestartPlan::builder()
        .generation(stat.gen)
        .topology([])
        .build()
        .execute(&s, &mut w, &mut sim)
        .expect_err("empty topology");
    assert!(
        matches!(err, RestartError::TopologyTooSmall { got: 0, .. }),
        "unexpected error: {err}"
    );
}

// ---------------------------------------------------------------------
// Red cells: node loss during live migration. A failing cell dumps its
// flight-recorder journal to target/replay/<seed>.jsonl for time-travel
// replay, like the crash-consistency matrix in `faults.rs`.
// ---------------------------------------------------------------------

const CELL_CLASSES: u8 = CLASS_NET | CLASS_FAULT | CLASS_STAGE;

fn with_replay_journal(
    name: &str,
    seed: u64,
    w: &mut World,
    sim: &mut OsSim,
    f: impl FnOnce(&mut World, &mut OsSim),
) {
    enable_flight_recorder(
        w,
        CELL_CLASSES,
        &[("cell", name), ("seed", &format!("{seed:#x}"))],
    );
    let result = catch_unwind(AssertUnwindSafe(|| f(w, sim)));
    if let Err(e) = result {
        w.obs.journal.set_meta("end_ns", sim.now().0.to_string());
        let jsonl = export_journal(w);
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/replay");
        let path = dir.join(format!("{seed:#x}.jsonl"));
        match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &jsonl)) {
            Ok(()) => eprintln!(
                "red cell {name} died at {}ns; flight-recorder journal: {}",
                sim.now().0,
                path.display()
            ),
            Err(io) => eprintln!("red cell {name}: could not write journal: {io}"),
        }
        resume_unwind(e);
    }
}

#[test]
fn source_node_loss_mid_migration_is_served_by_replicas() {
    let seed: u64 = 0x51DE_0001;
    let budget = run_budget();
    // Node-local images + replicated chunk store: losing the source node's
    // disk must leave the replicas as the only transfer channel.
    let (mut w, mut sim) = world(3);
    ckptstore::install(
        &mut w,
        ckptstore::Config {
            replicas: 2,
            ..Default::default()
        },
    );
    let s = Session::start(
        &mut w,
        &mut sim,
        Options::builder().ckpt_dir("/ckpt").build(),
    );
    // Bystander on the coordinator's node, mover alone on the doomed one.
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "tick0",
        Box::new(Ticker::new(0, 3_000)),
    );
    s.launch(
        &mut w,
        &mut sim,
        NodeId(1),
        "tick1",
        Box::new(Ticker::new(1, 3_000)),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(10));
    let mover = vpid_of(&w, "tick1");

    // Node 1 dies the instant the migration's images are committed and
    // validated — after checkpoint-on-source, before restore-on-target.
    let st = faultkit::install(
        &mut w,
        FaultPlan {
            seed,
            kind: FaultKind::NodeLoss,
            stage: stage::CKPT_WRITTEN,
            target_gen: 1,
        },
    );
    st.borrow_mut().pin_victim_node(NodeId(1));

    with_replay_journal("migrate-source-loss", seed, &mut w, &mut sim, |w, sim| {
        let report = RestartPlan::builder()
            .only_pids([mover])
            .topology([NodeId(2)])
            .build()
            .migrate(&s, w, sim, budget)
            .expect("replica-served restore survives source-node loss");
        assert_eq!(report.placement, vec![(NodeId(2), vec![mover])]);
        let injected: Vec<String> = faultkit::state(w)
            .map(|st| st.borrow().injected().to_vec())
            .unwrap_or_default();
        assert!(
            injected.iter().any(|i| i.contains("node-loss")),
            "the node-loss fault fired: {injected:?}"
        );
        assert!(
            w.obs.metrics.counter_total("faultkit.node_loss") > 0,
            "node loss recorded"
        );
        assert!(sim.run_bounded(w, budget), "post-migration deadlock");
        assert_eq!(
            shared_result(w, "/shared/tick_0").as_deref(),
            Some("3000"),
            "bystander diverged"
        );
        assert_eq!(
            shared_result(w, "/shared/tick_1").as_deref(),
            Some("3000"),
            "mover diverged"
        );
    });
    faultkit::uninstall_at(&mut w, sim.now());
}

#[test]
fn target_node_loss_aborts_migration_and_movers_fall_back() {
    let seed: u64 = 0x51DE_0002;
    let budget = run_budget();
    let (mut w, mut sim) = world(3);
    let s = Session::start(&mut w, &mut sim, opts());
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "tick0",
        Box::new(Ticker::new(0, 4_000)),
    );
    s.launch(
        &mut w,
        &mut sim,
        NodeId(1),
        "tick1",
        Box::new(Ticker::new(1, 4_000)),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(10));
    let mover = vpid_of(&w, "tick1");

    // The *target* node dies before the movers can re-register: the
    // migration must abort with a typed error, not hang or kill
    // bystanders.
    let st = faultkit::install(
        &mut w,
        FaultPlan {
            seed,
            kind: FaultKind::NodeLoss,
            stage: stage::CKPT_WRITTEN,
            target_gen: 1,
        },
    );
    st.borrow_mut().pin_victim_node(NodeId(2));

    with_replay_journal("migrate-target-loss", seed, &mut w, &mut sim, |w, sim| {
        let err = RestartPlan::builder()
            .only_pids([mover])
            .topology([NodeId(2)])
            .build()
            .migrate(&s, w, sim, budget)
            .expect_err("migration onto a dead node aborts");
        assert!(
            matches!(err, RestartError::AbortedDuringMigration { .. }),
            "unexpected error: {err}"
        );
        // The bystanders' checkpoint generation is untouched: gen 1's
        // checkpoint stat completed and was never aborted, and the
        // bystander is still computing.
        assert!(
            coord_shared(w)
                .gen_stats
                .iter()
                .any(|g| g.gen == 1 && g.releases.contains_key(&stage::CKPT_WRITTEN) && !g.aborted),
            "bystander generation stays committed"
        );
        // The bystander is either still computing or already ran to its
        // correct completion — in no case was it restarted or killed.
        assert!(
            traced_vpids(w, Some(NodeId(0))).len() == 1
                || shared_result(w, "/shared/tick_0").as_deref() == Some("4000"),
            "bystander untouched by the aborted migration"
        );
    });
    faultkit::uninstall_at(&mut w, sim.now());

    // Fall back cleanly: cold-restore the movers from the committed
    // generation onto a healthy node, bystanders still untouched.
    let outcome = RestartPlan::builder()
        .generation(1)
        .only_pids([mover])
        .topology([NodeId(0)])
        .build()
        .execute(&s, &mut w, &mut sim)
        .expect("fallback restore onto a healthy node");
    assert_eq!(outcome.placement, vec![(NodeId(0), vec![mover])]);
    Session::wait_restart_done(&mut w, &mut sim, 1, budget);

    assert!(sim.run_bounded(&mut w, budget), "post-fallback deadlock");
    assert_eq!(
        shared_result(&w, "/shared/tick_0").as_deref(),
        Some("4000"),
        "bystander diverged"
    );
    assert_eq!(
        shared_result(&w, "/shared/tick_1").as_deref(),
        Some("4000"),
        "mover diverged after fallback"
    );
}
