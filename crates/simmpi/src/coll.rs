//! MPI collectives over the point-to-point runtime.
//!
//! Star-topology implementations (everyone ↔ root), which is accurate
//! enough for the cluster scales of the paper and keeps the poll-model
//! state small. Each collective instance owns a [`CollOp`] whose tag is
//! derived from a per-rank sequence number; because every rank executes
//! collectives in the same program order, sequence numbers agree without
//! negotiation (the standard MPI context-id argument).

use crate::rt::MpiRt;
use oskit::Kernel;
use simkit::impl_snap;

const KIND_BARRIER: u32 = 1;
const KIND_BCAST: u32 = 2;
const KIND_REDUCE: u32 = 3;
const KIND_ALLREDUCE_B: u32 = 4;
const KIND_ALLTOALL: u32 = 5;
const KIND_GATHER: u32 = 6;

fn tag_for(kind: u32, seq: u32) -> u32 {
    0x8000_0000 | (kind << 24) | (seq & 0x00FF_FFFF)
}

/// Progress state for one collective invocation. Construct with the
/// matching `CollOp::new_*`, then call the matching `*_poll` method each
/// step until it returns `Some`/`true`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CollOp {
    seq: u32,
    sent: bool,
    /// For root: which peers have contributed.
    got: Vec<Option<Vec<u8>>>,
    /// Second phase flag (reduce→bcast of allreduce, ack of barrier).
    phase2: bool,
}
impl_snap!(struct CollOp { seq, sent, got, phase2 });

impl CollOp {
    /// New collective instance; bumps the runtime's sequence counter.
    pub fn begin(rt: &mut MpiRt) -> CollOp {
        CollOp {
            seq: rt.next_coll_seq(),
            sent: false,
            got: vec![None; rt.size as usize],
            phase2: false,
        }
    }

    /// Barrier: true when every rank has arrived and been released.
    pub fn barrier(&mut self, rt: &mut MpiRt, k: &mut Kernel<'_>) -> bool {
        let tag = tag_for(KIND_BARRIER, self.seq);
        if rt.rank == 0 {
            // Collect size-1 arrivals, then release everyone.
            if !self.phase2 {
                loop {
                    let missing = (1..rt.size).find(|&r| self.got[r as usize].is_none());
                    let Some(_r) = missing else {
                        for r in 1..rt.size {
                            rt.send(r, tag, b"");
                        }
                        self.phase2 = true;
                        break;
                    };
                    match rt.recv_any_or_block(k, tag) {
                        Some((from, d)) => self.got[from as usize] = Some(d),
                        None => return false,
                    }
                }
            }
            // Release sends flush opportunistically.
            rt.pump(k);
            true
        } else {
            if !self.sent {
                rt.send(0, tag, b"");
                self.sent = true;
            }
            rt.recv_or_block(k, 0, tag).is_some()
        }
    }

    /// Broadcast `data` from `root`; non-roots receive into `data`.
    /// True when complete.
    pub fn bcast(
        &mut self,
        rt: &mut MpiRt,
        k: &mut Kernel<'_>,
        root: u32,
        data: &mut Vec<u8>,
    ) -> bool {
        let tag = tag_for(KIND_BCAST, self.seq);
        if rt.rank == root {
            if !self.sent {
                for r in 0..rt.size {
                    if r != root {
                        rt.send(r, tag, data);
                    }
                }
                self.sent = true;
            }
            rt.pump(k);
            true
        } else {
            match rt.recv_or_block(k, root, tag) {
                Some(d) => {
                    *data = d;
                    true
                }
                None => false,
            }
        }
    }

    /// Sum-reduce f64 vectors to `root`. On completion, root's `out` holds
    /// the element-wise sum (including its own `contrib`); non-roots get
    /// their contrib echoed into `out`. True when complete.
    pub fn reduce_sum_f64(
        &mut self,
        rt: &mut MpiRt,
        k: &mut Kernel<'_>,
        root: u32,
        contrib: &[f64],
        out: &mut Vec<f64>,
    ) -> bool {
        let tag = tag_for(KIND_REDUCE, self.seq);
        if rt.rank == root {
            loop {
                let missing = (0..rt.size).find(|&r| r != root && self.got[r as usize].is_none());
                let Some(_) = missing else {
                    let mut acc = contrib.to_vec();
                    for (r, slot) in self.got.iter().enumerate() {
                        if r as u32 == root {
                            continue;
                        }
                        let xs = crate::bytes_to_f64s(slot.as_ref().expect("collected"));
                        assert_eq!(xs.len(), acc.len(), "reduce length mismatch");
                        for (a, x) in acc.iter_mut().zip(&xs) {
                            *a += x;
                        }
                    }
                    *out = acc;
                    return true;
                };
                match rt.recv_any_or_block(k, tag) {
                    Some((from, d)) => self.got[from as usize] = Some(d),
                    None => return false,
                }
            }
        } else {
            if !self.sent {
                rt.send(root, tag, &crate::f64s_to_bytes(contrib));
                self.sent = true;
                *out = contrib.to_vec();
            }
            rt.pump(k);
            true
        }
    }

    /// Allreduce (sum) of f64 vectors. True when complete; `out` holds the
    /// global sum on every rank.
    pub fn allreduce_sum_f64(
        &mut self,
        rt: &mut MpiRt,
        k: &mut Kernel<'_>,
        contrib: &[f64],
        out: &mut Vec<f64>,
    ) -> bool {
        let rtag = tag_for(KIND_REDUCE, self.seq);
        let btag = tag_for(KIND_ALLREDUCE_B, self.seq);
        if rt.rank == 0 {
            if !self.phase2 {
                loop {
                    let missing = (1..rt.size).find(|&r| self.got[r as usize].is_none());
                    let Some(_) = missing else {
                        let mut acc = contrib.to_vec();
                        for (r, slot) in self.got.iter().enumerate() {
                            if r == 0 {
                                continue;
                            }
                            let xs = crate::bytes_to_f64s(slot.as_ref().expect("collected"));
                            for (a, x) in acc.iter_mut().zip(&xs) {
                                *a += x;
                            }
                        }
                        let payload = crate::f64s_to_bytes(&acc);
                        for r in 1..rt.size {
                            rt.send(r, btag, &payload);
                        }
                        *out = acc;
                        self.phase2 = true;
                        break;
                    };
                    match rt.recv_any_or_block(k, rtag) {
                        Some((from, d)) => self.got[from as usize] = Some(d),
                        None => return false,
                    }
                }
            }
            rt.pump(k);
            true
        } else {
            if !self.sent {
                rt.send(0, rtag, &crate::f64s_to_bytes(contrib));
                self.sent = true;
            }
            match rt.recv_or_block(k, 0, btag) {
                Some(d) => {
                    *out = crate::bytes_to_f64s(&d);
                    true
                }
                None => false,
            }
        }
    }

    /// All-to-all: `sends[r]` goes to rank r (self delivery is a copy);
    /// `recvs[r]` is filled with rank r's message. True when complete.
    pub fn alltoall(
        &mut self,
        rt: &mut MpiRt,
        k: &mut Kernel<'_>,
        sends: &[Vec<u8>],
        recvs: &mut [Option<Vec<u8>>],
    ) -> bool {
        assert_eq!(sends.len(), rt.size as usize);
        assert_eq!(recvs.len(), rt.size as usize);
        let tag = tag_for(KIND_ALLTOALL, self.seq);
        if !self.sent {
            for r in 0..rt.size {
                if r == rt.rank {
                    self.got[r as usize] = Some(sends[r as usize].clone());
                } else {
                    rt.send(r, tag, &sends[r as usize]);
                }
            }
            self.sent = true;
        }
        // Accumulate into self.got (not the caller's buffer): payloads
        // consumed before a block must survive the block.
        loop {
            let missing = (0..rt.size).find(|&r| r != rt.rank && self.got[r as usize].is_none());
            let Some(r) = missing else {
                rt.pump(k); // keep flushing our own sends
                for (slot, got) in recvs.iter_mut().zip(self.got.iter()) {
                    *slot = got.clone();
                }
                return true;
            };
            match rt.recv_or_block(k, r, tag) {
                Some(d) => self.got[r as usize] = Some(d),
                None => return false,
            }
        }
    }

    /// Gather byte payloads to `root`; `out[r]` filled on root. True when
    /// complete.
    pub fn gather(
        &mut self,
        rt: &mut MpiRt,
        k: &mut Kernel<'_>,
        root: u32,
        contrib: &[u8],
        out: &mut [Option<Vec<u8>>],
    ) -> bool {
        let tag = tag_for(KIND_GATHER, self.seq);
        if rt.rank == root {
            self.got[root as usize] = Some(contrib.to_vec());
            loop {
                let missing = (0..rt.size).find(|&r| r != root && self.got[r as usize].is_none());
                if missing.is_none() {
                    for (slot, got) in out.iter_mut().zip(self.got.iter()) {
                        *slot = got.clone();
                    }
                    return true;
                }
                match rt.recv_any_or_block(k, tag) {
                    Some((from, d)) => self.got[from as usize] = Some(d),
                    None => return false,
                }
            }
        } else {
            if !self.sent {
                rt.send(root, tag, contrib);
                self.sent = true;
            }
            rt.pump(k);
            true
        }
    }
}
