//! MPI job launch models.
//!
//! The paper's MPICH2 runs are started as `dmtcp_checkpoint mpdboot -n 32`
//! followed by `dmtcp_checkpoint mpirun <prog>`: the MPD resource-manager
//! daemons are checkpointed along with the computation (Figure 5 notes "an
//! additional 21 to 161 MPICH2 resource management processes are also
//! checkpointed"). OpenMPI runs go through `orterun` and its OpenRTE
//! daemons. This module models both shapes:
//!
//! * a **console** process (`mpdboot+mpirun` or `orterun`) on the first
//!   node, which ssh-spawns one daemon per node — under DMTCP the ssh
//!   wrapper transparently traces the remote daemons;
//! * **MPD daemons** connected in a ring (MPICH2) or **OpenRTE daemons**
//!   connected in a star to the console (OpenMPI);
//! * per-node **rank spawning** by each daemon (fork wrapper traces the
//!   ranks), with ranks wiring their own full mesh via [`crate::MpiRt`].

use oskit::program::{Program, Step};
use oskit::world::{NodeId, OsSim, Pid, World};
use oskit::{Errno, Fd, Kernel};
use simkit::{Nanos, Snap, SnapWriter};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Which MPI implementation's management topology to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// MPICH2: MPD daemons in a ring.
    Mpich2,
    /// OpenMPI: OpenRTE daemons in a star to the console.
    OpenMpi,
}

/// Job description.
#[derive(Debug, Clone)]
pub struct MpiJob {
    /// Implementation flavor.
    pub flavor: Flavor,
    /// Nodes that get one daemon each.
    pub nodes: Vec<NodeId>,
    /// Ranks per node.
    pub procs_per_node: usize,
    /// Rank listener base port.
    pub base_port: u16,
}

impl MpiJob {
    /// Total rank count.
    pub fn size(&self) -> u32 {
        (self.nodes.len() * self.procs_per_node) as u32
    }
}

/// Builds the rank program for `(rank, size, rank_hosts, base_port)`.
pub type RankFactory = Rc<dyn Fn(u32, u32, Vec<String>, u16) -> Box<dyn Program>>;

/// How to start the console process.
pub enum Launcher<'a> {
    /// Plain spawn (no checkpointing).
    Raw,
    /// Under `dmtcp_checkpoint` via the given session.
    Dmtcp(&'a dmtcp::Session),
}

/// `mpdboot && mpirun` / `orterun`: start the whole MPI job. Returns the
/// console pid (its exit means the job finished).
pub fn mpirun(
    w: &mut World,
    sim: &mut OsSim,
    launcher: Launcher<'_>,
    job: &MpiJob,
    factory: RankFactory,
) -> Pid {
    let rank_hosts: Vec<String> = job
        .nodes
        .iter()
        .flat_map(|n| std::iter::repeat_n(w.node(*n).hostname.clone(), job.procs_per_node))
        .collect();
    let daemon_hosts: Vec<String> = job
        .nodes
        .iter()
        .map(|n| w.node(*n).hostname.clone())
        .collect();
    let console = Console {
        pc: 0,
        job: job.clone(),
        rank_hosts,
        daemon_hosts,
        factory: Some(factory),
        daemons: Vec::new(),
    };
    let cmd = match job.flavor {
        Flavor::Mpich2 => "mpirun(mpich2)",
        Flavor::OpenMpi => "orterun",
    };
    match launcher {
        Launcher::Raw => w.spawn(
            sim,
            job.nodes[0],
            cmd,
            Box::new(console),
            Pid(1),
            BTreeMap::new(),
        ),
        Launcher::Dmtcp(s) => s.launch(w, sim, job.nodes[0], cmd, Box::new(console)),
    }
}

/// The console: ssh-spawns daemons, waits for them all, exits.
struct Console {
    pc: u8,
    job: MpiJob,
    rank_hosts: Vec<String>,
    daemon_hosts: Vec<String>,
    factory: Option<RankFactory>,
    daemons: Vec<u32>,
}

impl Program for Console {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    let factory = self.factory.clone().expect("factory present at launch");
                    for (i, host) in self.daemon_hosts.clone().iter().enumerate() {
                        let daemon = Daemon {
                            pc: 0,
                            flavor_openmpi: self.job.flavor == Flavor::OpenMpi,
                            node_index: i as u32,
                            n_nodes: self.daemon_hosts.len() as u32,
                            ppn: self.job.procs_per_node as u32,
                            base_port: self.job.base_port,
                            rank_hosts: self.rank_hosts.clone(),
                            daemon_hosts: self.daemon_hosts.clone(),
                            factory: Some(factory.clone()),
                            lfd: -1,
                            ring_fd: -1,
                            inbound: Vec::new(),
                            kids: Vec::new(),
                        };
                        let cmd = match self.job.flavor {
                            Flavor::Mpich2 => "mpd",
                            Flavor::OpenMpi => "orted",
                        };
                        let pid = k
                            .ssh_spawn(host, cmd, Box::new(daemon), BTreeMap::new())
                            .expect("daemon host reachable");
                        self.daemons.push(pid.0);
                    }
                    self.factory = None;
                    self.pc = 1;
                }
                1 => {
                    let Some(&d) = self.daemons.last() else {
                        return Step::Exit(0);
                    };
                    match k.waitpid(Pid(d)) {
                        Ok(_) => {
                            self.daemons.pop();
                        }
                        Err(Errno::WouldBlock) => return Step::Block,
                        Err(e) => panic!("console waitpid daemon: {e:?}"),
                    }
                }
                _ => unreachable!(),
            }
        }
    }

    fn tag(&self) -> &'static str {
        "mpi-console"
    }

    fn save(&self) -> Vec<u8> {
        assert!(
            self.factory.is_none(),
            "checkpoint during job launch is unsupported (daemons not yet spawned)"
        );
        let mut w = SnapWriter::new();
        self.pc.save(&mut w);
        self.daemons.save(&mut w);
        w.into_bytes()
    }
}

/// Loader for restored consoles (post-launch state only).
pub fn register_console(reg: &mut oskit::program::Registry) {
    reg.register("mpi-console", |bytes| {
        let mut r = simkit::SnapReader::new(bytes);
        let pc = u8::load(&mut r)?;
        let daemons = Vec::<u32>::load(&mut r)?;
        Ok(Box::new(Console {
            pc,
            job: MpiJob {
                flavor: Flavor::Mpich2,
                nodes: Vec::new(),
                procs_per_node: 0,
                base_port: 0,
            },
            rank_hosts: Vec::new(),
            daemon_hosts: Vec::new(),
            factory: None,
            daemons,
        }))
    });
}

/// One resource-manager daemon (MPD or OpenRTE flavor).
struct Daemon {
    pc: u8,
    flavor_openmpi: bool,
    node_index: u32,
    n_nodes: u32,
    ppn: u32,
    base_port: u16,
    rank_hosts: Vec<String>,
    daemon_hosts: Vec<String>,
    factory: Option<RankFactory>,
    lfd: Fd,
    ring_fd: Fd,
    inbound: Vec<Fd>,
    kids: Vec<u32>,
}

impl Daemon {
    /// Control connections this daemon must accept: its ring predecessor
    /// (MPICH2) or, for the OpenRTE head daemon, every other daemon.
    fn expected_inbound(&self) -> usize {
        if self.n_nodes <= 1 {
            0
        } else if self.flavor_openmpi {
            if self.node_index == 0 {
                self.n_nodes as usize - 1
            } else {
                0
            }
        } else {
            1
        }
    }
}

impl Daemon {
    fn control_port(&self, i: u32) -> u16 {
        self.base_port - 1000 + i as u16
    }
}

impl Program for Daemon {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    // Management-plane wiring: MPD ring (connect to the next
                    // daemon) or OpenRTE star (connect to the console's
                    // node-0 daemon). These idle connections are part of
                    // what DMTCP checkpoints.
                    let (fd, _) = k
                        .listen_on(self.control_port(self.node_index))
                        .expect("daemon port free");
                    self.lfd = fd;
                    self.pc = 1;
                }
                1 => {
                    let target = if self.flavor_openmpi {
                        0
                    } else {
                        (self.node_index + 1) % self.n_nodes
                    };
                    if target == self.node_index {
                        self.pc = 2; // single-node job: no peer link
                        continue;
                    }
                    let host = self.daemon_hosts[target as usize].clone();
                    match k.connect(&host, self.control_port(target)) {
                        Ok(fd) => {
                            self.ring_fd = fd;
                            self.pc = 2;
                        }
                        Err(Errno::ConnRefused) => return Step::Sleep(Nanos::from_millis(2)),
                        Err(e) => panic!("daemon wiring: {e:?}"),
                    }
                }
                2 => {
                    // Accept the inbound control connections (leaving them
                    // half-open in the backlog would leave sockets no drain
                    // peer can ever answer for).
                    while self.inbound.len() < self.expected_inbound() {
                        match k.accept(self.lfd) {
                            Ok(fd) => self.inbound.push(fd),
                            Err(Errno::WouldBlock) => return Step::Block,
                            Err(e) => panic!("daemon accept: {e:?}"),
                        }
                    }
                    self.pc = 5;
                }
                5 => {
                    // Spawn the local ranks (one per core, as in the paper).
                    let factory = self.factory.take().expect("spawn once");
                    let size = self.rank_hosts.len() as u32;
                    for j in 0..self.ppn {
                        let rank = self.node_index * self.ppn + j;
                        let prog = factory(rank, size, self.rank_hosts.clone(), self.base_port);
                        let pid = k.spawn_process(&format!("rank{rank}"), prog);
                        self.kids.push(pid.0);
                    }
                    self.pc = 3;
                }
                3 => {
                    let Some(&kid) = self.kids.last() else {
                        return Step::Exit(0);
                    };
                    match k.waitpid(Pid(kid)) {
                        Ok(_) => {
                            self.kids.pop();
                        }
                        Err(Errno::WouldBlock) => return Step::Block,
                        Err(e) => panic!("daemon waitpid rank: {e:?}"),
                    }
                }
                _ => unreachable!(),
            }
        }
    }

    fn tag(&self) -> &'static str {
        "mpi-daemon"
    }

    fn save(&self) -> Vec<u8> {
        assert!(
            self.factory.is_none(),
            "checkpoint while daemon is still spawning ranks is unsupported"
        );
        let mut w = SnapWriter::new();
        self.pc.save(&mut w);
        self.lfd.save(&mut w);
        self.ring_fd.save(&mut w);
        self.inbound.save(&mut w);
        self.kids.save(&mut w);
        w.into_bytes()
    }
}

/// Loader for restored daemons (post-spawn state only).
pub fn register_daemon(reg: &mut oskit::program::Registry) {
    reg.register("mpi-daemon", |bytes| {
        let mut r = simkit::SnapReader::new(bytes);
        let pc = u8::load(&mut r)?;
        let lfd = Fd::load(&mut r)?;
        let ring_fd = Fd::load(&mut r)?;
        let inbound = Vec::<Fd>::load(&mut r)?;
        let kids = Vec::<u32>::load(&mut r)?;
        Ok(Box::new(Daemon {
            pc,
            flavor_openmpi: false,
            node_index: 0,
            n_nodes: 0,
            ppn: 0,
            base_port: 0,
            rank_hosts: Vec::new(),
            daemon_hosts: Vec::new(),
            factory: None,
            lfd,
            ring_fd,
            inbound,
            kids,
        }))
    });
}

/// Register the management-process loaders (consoles + daemons) so jobs can
/// be restored from checkpoints.
pub fn register_management(reg: &mut oskit::program::Registry) {
    register_console(reg);
    register_daemon(reg);
}
