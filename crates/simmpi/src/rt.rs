//! The per-rank MPI runtime.
//!
//! `MpiRt` lives inside each rank's program struct. Every field is
//! snap-serializable, so checkpointing a rank mid-communication (partial
//! frames, queued sends, half-connected mesh) restores exactly — DMTCP's
//! drain/refill recovers the kernel-side bytes, and this struct carries the
//! user-side state.
//!
//! Wire format per message: `tag: u32 LE · len: u32 LE · payload`. Sends
//! enqueue into unbounded user-space out-queues (MPI buffered semantics —
//! sends never deadlock) that [`MpiRt::pump`] flushes opportunistically.

use oskit::{Errno, Fd, Kernel};
use simkit::impl_snap;

/// Base port for rank listeners; rank `r` listens on `base + r`.
pub const DEFAULT_BASE_PORT: u16 = 30_000;

/// Per-peer output queue with a send offset.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OutQ {
    /// Pending bytes.
    pub buf: Vec<u8>,
    /// How much of `buf` has been handed to the kernel.
    pub off: usize,
}
impl_snap!(struct OutQ { buf, off });

impl OutQ {
    fn compact(&mut self) {
        if self.off == self.buf.len() {
            self.buf.clear();
            self.off = 0;
        } else if self.off > 4096 {
            self.buf.drain(..self.off);
            self.off = 0;
        }
    }
}

/// A received, fully parsed message.
#[derive(Debug, Clone, PartialEq)]
pub struct MpiMsg {
    /// Message tag.
    pub tag: u32,
    /// Payload bytes.
    pub data: Vec<u8>,
}
impl_snap!(struct MpiMsg { tag, data });

/// Mesh-construction progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitPhase {
    /// Not started.
    Fresh,
    /// Listener bound; connecting to lower ranks / accepting higher ones.
    Wiring,
    /// Fully connected.
    Ready,
}
impl_snap!(
    enum InitPhase {
        Fresh,
        Wiring,
        Ready,
    }
);

/// The embedded MPI runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct MpiRt {
    /// This rank.
    pub rank: u32,
    /// World size.
    pub size: u32,
    /// Listener port base.
    pub base_port: u16,
    /// Hostname of each rank's node (set by the launcher).
    pub rank_hosts: Vec<String>,
    phase: InitPhase,
    lfd: Fd,
    /// fd per peer rank (-1 until connected; self stays -1).
    fds: Vec<Fd>,
    /// Pending inbound handshakes: (fd, bytes so far).
    pending_accepts: Vec<(Fd, Vec<u8>)>,
    /// Per-peer partial inbound frame bytes.
    in_partial: Vec<Vec<u8>>,
    /// Parsed inboxes per peer.
    inbox: Vec<Vec<MpiMsg>>,
    /// Out queues per peer.
    outq: Vec<OutQ>,
    /// Collective sequence counter (tags uniqueness).
    pub coll_seq: u32,
}
impl_snap!(struct MpiRt {
    rank, size, base_port, rank_hosts, phase, lfd, fds, pending_accepts,
    in_partial, inbox, outq, coll_seq
});

impl MpiRt {
    /// A runtime for `rank` of `size`, with `rank_hosts[r]` naming the node
    /// of each rank.
    pub fn new(rank: u32, size: u32, base_port: u16, rank_hosts: Vec<String>) -> Self {
        assert_eq!(rank_hosts.len(), size as usize);
        MpiRt {
            rank,
            size,
            base_port,
            rank_hosts,
            phase: InitPhase::Fresh,
            lfd: -1,
            fds: vec![-1; size as usize],
            pending_accepts: Vec::new(),
            in_partial: vec![Vec::new(); size as usize],
            inbox: vec![Vec::new(); size as usize],
            outq: vec![OutQ::default(); size as usize],
            coll_seq: 0,
        }
    }

    /// Is the mesh fully wired?
    pub fn ready(&self) -> bool {
        self.phase == InitPhase::Ready
    }

    /// Drive mesh construction; returns true when ready. Callers should
    /// return `Step::Sleep(~1ms)` while false (peers may not be up yet).
    pub fn init(&mut self, k: &mut Kernel<'_>) -> bool {
        match self.phase {
            InitPhase::Ready => return true,
            InitPhase::Fresh => {
                let port = self.base_port + self.rank as u16;
                let (lfd, _) = k.listen_on(port).expect("rank port free");
                self.lfd = lfd;
                self.phase = InitPhase::Wiring;
            }
            InitPhase::Wiring => {}
        }
        // Connect to every lower rank not yet wired.
        for peer in 0..self.rank {
            if self.fds[peer as usize] >= 0 {
                continue;
            }
            let host = self.rank_hosts[peer as usize].clone();
            match k.connect(&host, self.base_port + peer as u16) {
                Ok(fd) => {
                    let hello = self.rank.to_le_bytes();
                    let n = k.write(fd, &hello).expect("rank handshake");
                    assert_eq!(n, 4);
                    self.fds[peer as usize] = fd;
                }
                Err(Errno::ConnRefused) | Err(Errno::HostUnreach) => {
                    // Peer not listening yet; retry on the next poll.
                }
                Err(e) => panic!("rank {} connect to {}: {e:?}", self.rank, peer),
            }
        }
        // Accept connections from higher ranks.
        loop {
            match k.accept(self.lfd) {
                Ok(fd) => self.pending_accepts.push((fd, Vec::new())),
                Err(Errno::WouldBlock) => break,
                Err(e) => panic!("rank accept: {e:?}"),
            }
        }
        let mut still = Vec::new();
        for (fd, mut buf) in std::mem::take(&mut self.pending_accepts) {
            loop {
                if buf.len() == 4 {
                    let peer = u32::from_le_bytes(buf[..].try_into().expect("4 bytes"));
                    assert!(peer > self.rank && peer < self.size, "bad peer {peer}");
                    self.fds[peer as usize] = fd;
                    break;
                }
                match k.read(fd, 4 - buf.len()) {
                    Ok(b) if b.is_empty() => panic!("peer died during handshake"),
                    Ok(b) => buf.extend_from_slice(&b),
                    Err(Errno::WouldBlock) => {
                        still.push((fd, buf));
                        break;
                    }
                    Err(e) => panic!("handshake read: {e:?}"),
                }
            }
        }
        self.pending_accepts = still;
        let wired = (0..self.size)
            .filter(|&r| r != self.rank)
            .all(|r| self.fds[r as usize] >= 0);
        if wired && self.pending_accepts.is_empty() {
            self.phase = InitPhase::Ready;
        }
        self.phase == InitPhase::Ready
    }

    /// Queue a message (never blocks; MPI buffered-send semantics).
    pub fn send(&mut self, to: u32, tag: u32, data: &[u8]) {
        assert_ne!(to, self.rank, "send to self");
        let q = &mut self.outq[to as usize];
        q.buf.extend_from_slice(&tag.to_le_bytes());
        q.buf.extend_from_slice(&(data.len() as u32).to_le_bytes());
        q.buf.extend_from_slice(data);
    }

    /// Flush out-queues and ingest inbound bytes. Returns true if anything
    /// moved. Registers wakers on every blocked direction, so a caller that
    /// sees no progress and no completed receive may safely `Step::Block`.
    pub fn pump(&mut self, k: &mut Kernel<'_>) -> bool {
        let mut progressed = false;
        for peer in 0..self.size as usize {
            let fd = self.fds[peer];
            if fd < 0 {
                continue;
            }
            // Flush.
            loop {
                let q = &mut self.outq[peer];
                if q.off >= q.buf.len() {
                    q.compact();
                    break;
                }
                match k.write(fd, &q.buf[q.off..]) {
                    Ok(n) => {
                        q.off += n;
                        progressed = true;
                    }
                    Err(Errno::WouldBlock) => break,
                    Err(Errno::Pipe) => {
                        // Peer finished and closed; sends to it are dropped
                        // (matches a finished MPI rank).
                        q.off = q.buf.len();
                        q.compact();
                        break;
                    }
                    Err(e) => panic!("mpi flush: {e:?}"),
                }
            }
            // Ingest.
            loop {
                match k.read(fd, 64 * 1024) {
                    Ok(b) if b.is_empty() => break, // peer done
                    Ok(b) => {
                        self.in_partial[peer].extend_from_slice(&b);
                        progressed = true;
                    }
                    Err(Errno::WouldBlock) => break,
                    Err(e) => panic!("mpi ingest: {e:?}"),
                }
            }
            // Parse complete frames.
            let part = &mut self.in_partial[peer];
            let mut pos = 0usize;
            while part.len() - pos >= 8 {
                let tag = u32::from_le_bytes(part[pos..pos + 4].try_into().expect("4"));
                let len =
                    u32::from_le_bytes(part[pos + 4..pos + 8].try_into().expect("4")) as usize;
                if part.len() - pos - 8 < len {
                    break;
                }
                let data = part[pos + 8..pos + 8 + len].to_vec();
                self.inbox[peer].push(MpiMsg { tag, data });
                pos += 8 + len;
            }
            if pos > 0 {
                part.drain(..pos);
            }
        }
        progressed
    }

    /// Non-blocking matched receive: first queued message from `from` with
    /// `tag`.
    pub fn try_recv(&mut self, from: u32, tag: u32) -> Option<Vec<u8>> {
        let q = &mut self.inbox[from as usize];
        let idx = q.iter().position(|m| m.tag == tag)?;
        Some(q.remove(idx).data)
    }

    /// Pump, then matched receive. `None` means "block and retry" (wakers
    /// are registered).
    pub fn recv_or_block(&mut self, k: &mut Kernel<'_>, from: u32, tag: u32) -> Option<Vec<u8>> {
        if let Some(d) = self.try_recv(from, tag) {
            return Some(d);
        }
        self.pump(k);
        self.try_recv(from, tag)
    }

    /// Receive from any peer with `tag`; returns `(from, data)`.
    pub fn recv_any_or_block(&mut self, k: &mut Kernel<'_>, tag: u32) -> Option<(u32, Vec<u8>)> {
        let probe = |inbox: &mut Vec<Vec<MpiMsg>>| -> Option<(u32, Vec<u8>)> {
            for (peer, q) in inbox.iter_mut().enumerate() {
                if let Some(idx) = q.iter().position(|m| m.tag == tag) {
                    return Some((peer as u32, q.remove(idx).data));
                }
            }
            None
        };
        if let Some(hit) = probe(&mut self.inbox) {
            return Some(hit);
        }
        self.pump(k);
        probe(&mut self.inbox)
    }

    /// Bytes still queued outbound (tests use this to exercise drains).
    pub fn outbound_pending(&self) -> usize {
        self.outq.iter().map(|q| q.buf.len() - q.off).sum()
    }

    /// Flush everything outbound; true once the kernel has accepted every
    /// queued byte. Programs must poll this to completion before exiting,
    /// or their last messages die in user space (the moral equivalent of
    /// `MPI_Finalize` waiting on pending sends).
    pub fn drain_out(&mut self, k: &mut Kernel<'_>) -> bool {
        self.pump(k);
        self.outbound_pending() == 0
    }

    /// Allocate a unique tag namespace id for the next collective.
    pub fn next_coll_seq(&mut self) -> u32 {
        self.coll_seq += 1;
        self.coll_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Snap;

    #[test]
    fn rt_state_snap_roundtrips_mid_flight() {
        let mut rt = MpiRt::new(
            1,
            4,
            30_000,
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
        );
        rt.send(0, 7, b"hello");
        rt.inbox[2].push(MpiMsg {
            tag: 9,
            data: vec![1, 2],
        });
        rt.in_partial[3] = vec![5, 0, 0, 0];
        rt.coll_seq = 12;
        let back = MpiRt::from_snap_bytes(&rt.to_snap_bytes()).expect("roundtrip");
        assert_eq!(back, rt);
    }

    #[test]
    fn try_recv_matches_tag_in_fifo_order() {
        let mut rt = MpiRt::new(0, 2, 30_000, vec!["a".into(), "b".into()]);
        rt.inbox[1].push(MpiMsg {
            tag: 1,
            data: vec![1],
        });
        rt.inbox[1].push(MpiMsg {
            tag: 2,
            data: vec![2],
        });
        rt.inbox[1].push(MpiMsg {
            tag: 1,
            data: vec![3],
        });
        assert_eq!(rt.try_recv(1, 2), Some(vec![2]));
        assert_eq!(rt.try_recv(1, 1), Some(vec![1]));
        assert_eq!(rt.try_recv(1, 1), Some(vec![3]));
        assert_eq!(rt.try_recv(1, 1), None);
    }
}
