//! `simmpi` — the message-passing substrates the paper's evaluation runs on.
//!
//! The distributed experiments (§5.2) use MPICH2 (with its MPD resource
//! manager) and OpenMPI (with OpenRTE daemons); ParGeant4 additionally runs
//! over TOP-C. DMTCP checkpoints all of it — compute ranks *and* the
//! management processes — without knowing it is MPI, which is the paper's
//! central claim. This crate therefore implements:
//!
//! * [`rt`] — an MPI runtime embedded in each rank program: full-mesh
//!   socket setup over the simulated kernel, length+tag framed messages,
//!   non-blocking pump with unbounded user-space send queues (MPI buffered
//!   semantics). Its entire state is snap-serializable, so ranks checkpoint
//!   and restore transparently mid-communication.
//! * [`coll`] — collectives (barrier, bcast, reduce, allreduce, alltoall,
//!   gather) built from point-to-point messages with sequence-tagged
//!   uniqueness.
//! * [`launch`] — `mpdboot`/`mpirun` (MPICH2) and `orterun` (OpenMPI)
//!   process models: a console process, one daemon per node (MPD daemons in
//!   a ring, OpenRTE daemons in a star), and per-node rank spawning, all of
//!   which end up traced by DMTCP through the ssh/fork wrappers.
//! * [`topc`] — a minimal TOP-C master/worker task-distribution layer over
//!   the runtime (what ParGeant4 uses).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coll;
pub mod launch;
pub mod rt;
pub mod topc;

pub use coll::CollOp;
pub use launch::{mpirun, Flavor, MpiJob};
pub use rt::MpiRt;

/// Encode a f64 slice as little-endian bytes.
pub fn f64s_to_bytes(xs: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(xs.len() * 8);
    for x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Decode little-endian bytes into f64s.
pub fn bytes_to_f64s(b: &[u8]) -> Vec<f64> {
    assert_eq!(b.len() % 8, 0, "f64 payload length");
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

/// Encode a u64 slice as little-endian bytes.
pub fn u64s_to_bytes(xs: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(xs.len() * 8);
    for x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Decode little-endian bytes into u64s.
pub fn bytes_to_u64s(b: &[u8]) -> Vec<u64> {
    assert_eq!(b.len() % 8, 0, "u64 payload length");
    b.chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn byte_codecs_roundtrip() {
        let xs = vec![1.5f64, -0.0, f64::MAX, 3.25e-300];
        assert_eq!(super::bytes_to_f64s(&super::f64s_to_bytes(&xs)), xs);
        let us = vec![0u64, 1, u64::MAX];
        assert_eq!(super::bytes_to_u64s(&super::u64s_to_bytes(&us)), us);
    }
}
