//! TOP-C (Task Oriented Parallel C/C++) — the master-worker layer ParGeant4
//! runs on, itself built over MPI (the paper's configuration builds TOP-C
//! on MPICH2).
//!
//! Rank 0 is the master: it keeps every worker loaded with one outstanding
//! task, collects results, and broadcasts shutdown when the task pool
//! drains. Workers report for duty, receive opaque task payloads, and
//! submit opaque results; the application supplies the payloads and the
//! compute (which may span many scheduler steps — Monte-Carlo tracking in
//! ParGeant4's case).

use crate::rt::MpiRt;
use oskit::Kernel;
use simkit::impl_snap;

const TAG_TASK: u32 = 0x7F00_0001;
const TAG_RESULT: u32 = 0x7F00_0002;
const TAG_DONE: u32 = 0x7F00_0003;

/// Master-side distribution state (embed in the rank-0 program).
#[derive(Debug, Clone, PartialEq)]
pub struct TopcMaster {
    /// Next task index to hand out.
    pub next_task: u32,
    /// Total tasks in the pool.
    pub total: u32,
    /// Task currently outstanding per worker rank (index 0 unused).
    pub outstanding: Vec<Option<u32>>,
    /// Collected results, in completion order: `(task, worker, payload)`.
    pub results: Vec<(u32, u32, Vec<u8>)>,
    /// Workers that have been sent DONE.
    pub released: Vec<bool>,
}
impl_snap!(struct TopcMaster { next_task, total, outstanding, results, released });

impl TopcMaster {
    /// A master distributing `total` tasks over `size - 1` workers.
    pub fn new(total: u32, size: u32) -> Self {
        TopcMaster {
            next_task: 0,
            total,
            outstanding: vec![None; size as usize],
            results: Vec::new(),
            released: vec![false; size as usize],
        }
    }

    /// Drive distribution. `make_task(i)` produces task `i`'s payload.
    /// Returns true when every task is done and every worker released.
    pub fn poll(
        &mut self,
        rt: &mut MpiRt,
        k: &mut Kernel<'_>,
        make_task: impl Fn(u32) -> Vec<u8>,
    ) -> bool {
        loop {
            // Keep every idle worker loaded (or release it).
            let mut sent_any = false;
            for w in 1..rt.size {
                if self.outstanding[w as usize].is_some() || self.released[w as usize] {
                    continue;
                }
                if self.next_task < self.total {
                    let t = self.next_task;
                    self.next_task += 1;
                    let mut payload = t.to_le_bytes().to_vec();
                    payload.extend_from_slice(&make_task(t));
                    rt.send(w, TAG_TASK, &payload);
                    self.outstanding[w as usize] = Some(t);
                    sent_any = true;
                } else {
                    rt.send(w, TAG_DONE, b"");
                    self.released[w as usize] = true;
                    sent_any = true;
                }
            }
            if self.results.len() as u32 == self.total
                && (1..rt.size).all(|w| self.released[w as usize])
            {
                // Flush the final DONE messages.
                return rt.drain_out(k);
            }
            match rt.recv_any_or_block(k, TAG_RESULT) {
                Some((from, data)) => {
                    let t = self.outstanding[from as usize]
                        .take()
                        .expect("result from an idle worker");
                    self.results.push((t, from, data));
                }
                None => {
                    if !sent_any {
                        return false; // block; wakers registered
                    }
                }
            }
        }
    }
}

/// What a worker should do next.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerPoll {
    /// Nothing available; block.
    Idle,
    /// A task arrived: `(task id, payload)`. Compute, then
    /// [`TopcWorker::submit`].
    Task(u32, Vec<u8>),
    /// The master released this worker.
    Done,
}

/// Worker-side state (embed in worker rank programs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TopcWorker {
    /// Tasks completed by this worker.
    pub completed: u32,
}
impl_snap!(struct TopcWorker { completed });

impl TopcWorker {
    /// Check for work.
    pub fn poll(&mut self, rt: &mut MpiRt, k: &mut Kernel<'_>) -> WorkerPoll {
        if let Some(d) = rt.recv_or_block(k, 0, TAG_TASK) {
            let t = u32::from_le_bytes(d[..4].try_into().expect("task id"));
            return WorkerPoll::Task(t, d[4..].to_vec());
        }
        if rt.try_recv(0, TAG_DONE).is_some() {
            return WorkerPoll::Done;
        }
        WorkerPoll::Idle
    }

    /// Submit a result for the last task.
    pub fn submit(&mut self, rt: &mut MpiRt, result: &[u8]) {
        rt.send(0, TAG_RESULT, result);
        self.completed += 1;
    }
}
