//! MPI semantics end to end: mesh wiring, point-to-point ordering,
//! collectives correctness, the management-process models, TOP-C, and —
//! the paper's headline — transparent checkpoint/restart of a full MPI job
//! including its resource managers.

use dmtcp::session::run_for;
use dmtcp::{ExpectCkpt, Options, RestartPlan, Session};
use oskit::program::{Program, Registry, Step};
use oskit::world::{NodeId, OsSim, Pid, World};
use oskit::{HwSpec, Kernel};
use simkit::{Nanos, Sim, Snap};
use simmpi::coll::CollOp;
use simmpi::launch::{mpirun, register_management, Flavor, Launcher, MpiJob};
use simmpi::rt::MpiRt;
use simmpi::topc::{TopcMaster, TopcWorker, WorkerPoll};
use std::rc::Rc;

const EV: u64 = 20_000_000;

/// A rank that alternates compute with allreduce iterations, then verifies
/// the converged value and (rank 0) writes it to the shared fs.
struct IterRank {
    rt: MpiRt,
    pc: u8,
    iter: u32,
    iters: u32,
    local: f64,
    global: Vec<f64>,
    coll: CollOp,
}
simkit::impl_snap!(struct IterRank { rt, pc, iter, iters, local, global, coll });

impl IterRank {
    fn new(rank: u32, size: u32, hosts: Vec<String>, port: u16, iters: u32) -> Self {
        IterRank {
            rt: MpiRt::new(rank, size, port, hosts),
            pc: 0,
            iter: 0,
            iters,
            local: (rank + 1) as f64,
            global: Vec::new(),
            coll: CollOp::default(),
        }
    }
}

impl Program for IterRank {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    if !self.rt.init(k) {
                        return Step::Sleep(Nanos::from_millis(1));
                    }
                    self.pc = 1;
                }
                1 => {
                    if self.iter == self.iters {
                        self.pc = 3;
                        continue;
                    }
                    // Deterministic "compute": fold the global sum back in.
                    let g = self.global.first().copied().unwrap_or(0.0);
                    self.local = self.local * 0.5 + g / self.rt.size as f64 + 1.0;
                    self.coll = CollOp::begin(&mut self.rt);
                    self.pc = 2;
                    return Step::Compute(1_000_000);
                }
                2 => {
                    let contrib = [self.local];
                    let mut out = std::mem::take(&mut self.global);
                    let done = self
                        .coll
                        .allreduce_sum_f64(&mut self.rt, k, &contrib, &mut out);
                    self.global = out;
                    if !done {
                        return Step::Block;
                    }
                    self.iter += 1;
                    self.pc = 1;
                }
                3 => {
                    if !self.rt.drain_out(k) {
                        return Step::Block;
                    }
                    if self.rt.rank == 0 {
                        let fd = k.open("/shared/mpi_result", true).expect("result");
                        k.write(fd, format!("{:.9e}", self.global[0]).as_bytes())
                            .expect("w");
                    }
                    return Step::Exit(0);
                }
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "iter-rank"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

fn registry() -> Registry {
    let mut r = Registry::new();
    r.register_snap::<IterRank>("iter-rank");
    r.register_snap::<GeantRank>("geant-rank");
    register_management(&mut r);
    r
}

fn job(nodes: usize, ppn: usize, flavor: Flavor) -> MpiJob {
    MpiJob {
        flavor,
        nodes: (0..nodes as u32).map(NodeId).collect(),
        procs_per_node: ppn,
        base_port: 30_000,
    }
}

fn iter_factory(iters: u32) -> simmpi::launch::RankFactory {
    Rc::new(move |rank, size, hosts, port| {
        Box::new(IterRank::new(rank, size, hosts, port, iters)) as Box<dyn Program>
    })
}

fn world(nodes: usize) -> (World, OsSim) {
    (World::new(HwSpec::cluster(), nodes, registry()), Sim::new())
}

fn mpi_reference(nodes: usize, ppn: usize, iters: u32, flavor: Flavor) -> String {
    let (mut w, mut sim) = world(nodes);
    mpirun(
        &mut w,
        &mut sim,
        Launcher::Raw,
        &job(nodes, ppn, flavor),
        iter_factory(iters),
    );
    assert!(sim.run_bounded(&mut w, EV), "reference MPI run deadlocked");
    String::from_utf8(w.shared_fs.read_all("/shared/mpi_result").expect("result")).expect("utf8")
}

#[test]
fn allreduce_converges_identically_for_both_flavors() {
    let a = mpi_reference(4, 2, 20, Flavor::Mpich2);
    let b = mpi_reference(4, 2, 20, Flavor::OpenMpi);
    assert_eq!(a, b, "flavor must not affect numerics");
    // Closed form check for one iteration step is awkward; instead pin
    // determinism: a third run must agree bit-for-bit.
    assert_eq!(a, mpi_reference(4, 2, 20, Flavor::Mpich2));
}

#[test]
fn management_processes_exist_and_tear_down() {
    let (mut w, mut sim) = world(3);
    mpirun(
        &mut w,
        &mut sim,
        Launcher::Raw,
        &job(3, 2, Flavor::Mpich2),
        iter_factory(1000),
    );
    // Mid-run: console + 3 daemons + 6 ranks alive.
    sim.run_until(&mut w, Nanos::from_millis(60));
    let alive = w.live_procs();
    assert!(alive >= 10, "console+daemons+ranks alive, got {alive}");
    assert!(sim.run_bounded(&mut w, EV));
    assert_eq!(w.live_procs(), 0, "everything exits when the job finishes");
}

#[test]
fn mpi_job_checkpoint_kill_restart_same_answer() {
    let iters = 300;
    let reference = mpi_reference(2, 2, iters, Flavor::Mpich2);

    let (mut w, mut sim) = world(2);
    let s = Session::start(
        &mut w,
        &mut sim,
        Options::builder().ckpt_dir("/shared/ckpt").build(),
    );
    mpirun(
        &mut w,
        &mut sim,
        Launcher::Dmtcp(&s),
        &job(2, 2, Flavor::Mpich2),
        iter_factory(iters),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(150)); // mid-iterations
    let stat = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
    // console + 2 daemons + 4 ranks = 7 traced processes.
    assert_eq!(
        stat.participants, 7,
        "management processes are checkpointed too"
    );
    let gen = stat.gen;
    s.kill_computation(&mut w, &mut sim);
    let _ = w.shared_fs.remove("/shared/mpi_result");
    RestartPlan::from_generation(&w, s.opts.coord_port, gen)
        .expect("restart script written")
        .execute(&s, &mut w, &mut sim)
        .expect("identity restart");
    Session::wait_restart_done(&mut w, &mut sim, gen, EV);
    assert!(sim.run_bounded(&mut w, EV), "restored MPI job deadlocked");
    let got = String::from_utf8(w.shared_fs.read_all("/shared/mpi_result").expect("result"))
        .expect("utf8");
    assert_eq!(got, reference, "restored MPI job diverged");
}

// ---------------------------------------------------------------------
// TOP-C master/worker (the ParGeant4 shape)
// ---------------------------------------------------------------------

struct GeantRank {
    rt: MpiRt,
    pc: u8,
    master: TopcMaster,
    worker: TopcWorker,
    tasks: u32,
    current_task: u32,
    acc: u64,
}
simkit::impl_snap!(struct GeantRank { rt, pc, master, worker, tasks, current_task, acc });

impl Program for GeantRank {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    if !self.rt.init(k) {
                        return Step::Sleep(Nanos::from_millis(1));
                    }
                    self.pc = if self.rt.rank == 0 { 1 } else { 10 };
                }
                // master
                1 => {
                    let done = self.master.poll(&mut self.rt, k, |t| {
                        // task payload: a seed derived from the task id
                        (t as u64 * 0x9E3779B9).to_le_bytes().to_vec()
                    });
                    if !done {
                        return Step::Block;
                    }
                    // Aggregate results deterministically (sorted by task).
                    let mut rs = self.master.results.clone();
                    rs.sort_by_key(|(t, _, _)| *t);
                    let mut acc = 0u64;
                    for (_, _, payload) in rs {
                        acc = acc
                            .wrapping_add(u64::from_le_bytes(payload[..8].try_into().expect("8")));
                    }
                    let fd = k.open("/shared/topc_result", true).expect("result");
                    k.write(fd, format!("{acc}").as_bytes()).expect("w");
                    return Step::Exit(0);
                }
                // worker: poll for a task
                10 => match self.worker.poll(&mut self.rt, k) {
                    WorkerPoll::Idle => return Step::Block,
                    WorkerPoll::Done => {
                        if !self.rt.drain_out(k) {
                            return Step::Block;
                        }
                        return Step::Exit(0);
                    }
                    WorkerPoll::Task(t, payload) => {
                        self.current_task = t;
                        self.acc = u64::from_le_bytes(payload[..8].try_into().expect("8"));
                        self.pc = 11;
                        return Step::Compute(2_000_000); // "Monte-Carlo tracking"
                    }
                },
                // worker: finish the task
                11 => {
                    // Deterministic pseudo-physics on the seed.
                    let mut x = self.acc;
                    for _ in 0..32 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                    }
                    self.worker.submit(&mut self.rt, &x.to_le_bytes());
                    self.pc = 10;
                }
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "geant-rank"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

fn geant_factory(tasks: u32) -> simmpi::launch::RankFactory {
    Rc::new(move |rank, size, hosts, port| {
        Box::new(GeantRank {
            rt: MpiRt::new(rank, size, port, hosts),
            pc: 0,
            master: TopcMaster::new(tasks, size),
            worker: TopcWorker::default(),
            tasks,
            current_task: 0,
            acc: 0,
        }) as Box<dyn Program>
    })
}

fn topc_reference(tasks: u32) -> String {
    let (mut w, mut sim) = world(2);
    mpirun(
        &mut w,
        &mut sim,
        Launcher::Raw,
        &job(2, 2, Flavor::Mpich2),
        geant_factory(tasks),
    );
    assert!(sim.run_bounded(&mut w, EV));
    String::from_utf8(w.shared_fs.read_all("/shared/topc_result").expect("result")).expect("utf8")
}

#[test]
fn topc_distributes_all_tasks_and_aggregates() {
    let r = topc_reference(40);
    // The aggregate is a pure function of the task seeds, independent of
    // which worker computed what.
    assert_eq!(r, topc_reference(40));
}

#[test]
fn topc_job_survives_checkpoint_restart() {
    let tasks = 400;
    let reference = topc_reference(tasks);
    let (mut w, mut sim) = world(2);
    let s = Session::start(
        &mut w,
        &mut sim,
        Options::builder().ckpt_dir("/shared/ckpt").build(),
    );
    mpirun(
        &mut w,
        &mut sim,
        Launcher::Dmtcp(&s),
        &job(2, 2, Flavor::Mpich2),
        geant_factory(tasks),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(150));
    let stat = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
    let gen = stat.gen;
    s.kill_computation(&mut w, &mut sim);
    let _ = w.shared_fs.remove("/shared/topc_result");
    RestartPlan::from_generation(&w, s.opts.coord_port, gen)
        .expect("restart script written")
        .execute(&s, &mut w, &mut sim)
        .expect("identity restart");
    Session::wait_restart_done(&mut w, &mut sim, gen, EV);
    assert!(sim.run_bounded(&mut w, EV), "restored TOP-C job deadlocked");
    let got = String::from_utf8(w.shared_fs.read_all("/shared/topc_result").expect("result"))
        .expect("utf8");
    assert_eq!(got, reference);
}

// Keep Pid referenced (used in debugging sessions).
#[allow(dead_code)]
fn _t(_: Pid) {}
