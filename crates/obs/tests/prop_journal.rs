//! Property-style round-trip tests for the flight-recorder journal codec.
//!
//! Mirrors `core/tests/prop_proto.rs`: no external property-testing crate —
//! a seeded [`DetRng`] generates thousands of random journals (metadata,
//! event payloads, detail strings full of JSON-hostile characters), the
//! JSONL capture is re-chunked at random byte boundaries through the
//! streaming [`JournalReader`], and the decode must reproduce the journal
//! exactly. Malformed captures — truncated, corrupt, future-versioned,
//! empty — must surface as the right [`JournalError`], never a panic or a
//! silently wrong timeline.

use obs::journal::{
    decode_jsonl, EventId, Journal, JournalError, JournalReader, CLASS_FAULT, CLASS_NET,
    CLASS_SCHED, CLASS_STAGE,
};
use simkit::{DetRng, Nanos};

const CLASSES: [u8; 4] = [CLASS_SCHED, CLASS_NET, CLASS_FAULT, CLASS_STAGE];

/// Dotted kinds drawn from the real recorder's vocabulary plus stage kinds
/// that exercise the auto happens-before linkage.
const KINDS: [&str; 8] = [
    "msg.send",
    "msg.deliver",
    "sched.step",
    "fault.net.drop",
    "stage.request",
    "stage.release",
    "stage.reach",
    "session.kill",
];

/// Detail strings deliberately include every character class the JSON
/// encoder must escape: quotes, backslashes, control characters, multi-byte
/// UTF-8.
fn rand_detail(rng: &mut DetRng) -> String {
    const ALPHABET: [&str; 10] = [
        "a", "Z", "\"", "\\", "\n", "\t", "\u{1}", "é", "barrier", " ",
    ];
    let len = rng.below(12) as usize;
    (0..len)
        .map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize])
        .collect()
}

fn rand_journal(rng: &mut DetRng) -> Journal {
    let mut j = Journal::new();
    j.enable(CLASS_SCHED | CLASS_NET | CLASS_FAULT | CLASS_STAGE);
    for i in 0..rng.below(4) {
        j.set_meta(&format!("k{i}"), rand_detail(rng));
    }
    let mut at = 0u64;
    for _ in 0..rng.below(60) {
        at += rng.below(10_000);
        let class = CLASSES[rng.below(4) as usize];
        let kind = KINDS[rng.below(KINDS.len() as u64) as usize];
        let cause = if rng.below(3) == 0 && !j.is_empty() {
            Some(EventId(rng.below(j.len() as u64)))
        } else {
            None
        };
        let mut nums: Vec<(&str, u64)> = Vec::new();
        for (name, odds) in [("gen", 2), ("stage", 3), ("conn", 3), ("bytes", 3)] {
            if rng.below(odds) == 0 {
                nums.push((name, rng.next_u64()));
            }
        }
        j.record(Nanos(at), class, kind, cause, &nums, rand_detail(rng));
    }
    j
}

/// Decode a capture by feeding it to a [`JournalReader`] in random-size
/// chunks (1..=23 bytes).
fn decode_chunked(
    rng: &mut DetRng,
    capture: &str,
) -> Result<obs::journal::DecodedJournal, JournalError> {
    let wire = capture.as_bytes();
    let mut r = JournalReader::new();
    let mut off = 0;
    while off < wire.len() {
        let n = (1 + rng.below(23) as usize).min(wire.len() - off);
        r.feed(&wire[off..off + n]);
        off += n;
    }
    r.finish()
}

#[test]
fn random_journals_roundtrip_under_random_chunking() {
    let mut rng = DetRng::seed_from_u64(0x0b5e_0001);
    for round in 0..300 {
        let j = rand_journal(&mut rng);
        let capture = j.to_jsonl();
        let d = decode_chunked(&mut rng, &capture)
            .unwrap_or_else(|e| panic!("round {round}: well-formed capture rejected: {e}"));
        assert_eq!(d.version, obs::journal::JOURNAL_VERSION);
        assert_eq!(d.meta, j.meta(), "round {round}: metadata mangled");
        assert_eq!(d.events, j.events(), "round {round}: timeline mangled");
        assert_eq!(d.evicted, j.evicted());
        assert_eq!(d.next_id, j.len() as u64);
        // Re-encoding the decode must be byte-identical: the capture is the
        // canonical form, so journals survive any number of round trips.
        assert_eq!(
            decode_jsonl(&capture).expect("whole-capture decode"),
            d,
            "round {round}: streaming and whole-capture decodes disagree"
        );
    }
}

#[test]
fn evicted_ring_roundtrips_with_stable_ids() {
    // Overflow a tiny ring: the capture keeps only the tail, but ids and the
    // eviction count survive the round trip (and mark the capture as unfit
    // for divergence-anchoring).
    let mut rng = DetRng::seed_from_u64(0x0b5e_0002);
    let mut j = Journal::new();
    j.enable(CLASS_NET);
    j.set_capacity(8);
    for i in 0..50u64 {
        j.record(Nanos(i), CLASS_NET, "msg.send", None, &[("conn", i)], "");
    }
    assert!(j.evicted() > 0, "tiny ring never evicted");
    assert_eq!(j.evicted() + j.len() as u64, 50);
    let d = decode_chunked(&mut rng, &j.to_jsonl()).expect("decodes");
    assert_eq!(d.evicted, j.evicted());
    assert_eq!(d.next_id, 50);
    assert_eq!(d.events, j.events());
    // Ids are global, not ring-relative: the oldest surviving event's id
    // equals the eviction count.
    assert_eq!(d.events.first().map(|e| e.id), Some(EventId(d.evicted)));
}

#[test]
fn truncated_captures_are_rejected() {
    let mut rng = DetRng::seed_from_u64(0x0b5e_0003);
    // Dropping the footer line is the canonical truncation.
    let j = rand_journal(&mut rng);
    let capture = j.to_jsonl();
    let without_footer: String = {
        let mut lines: Vec<&str> = capture.lines().collect();
        lines.pop();
        lines.join("\n") + "\n"
    };
    assert!(
        matches!(
            decode_chunked(&mut rng, &without_footer),
            Err(JournalError::Truncated(_))
        ),
        "a capture without its footer must be Truncated"
    );
    // Dropping an event line leaves the footer's count lying.
    if !j.is_empty() {
        let mut lines: Vec<&str> = capture.lines().collect();
        lines.remove(1 + rng.below(j.len() as u64) as usize);
        let missing_event = lines.join("\n") + "\n";
        assert!(
            matches!(
                decode_chunked(&mut rng, &missing_event),
                Err(JournalError::Truncated(_))
            ),
            "a footer count mismatch must be Truncated"
        );
    }
    // Any byte-level cut must error out — Truncated when the cut lands on a
    // line boundary, Corrupt when it tears a line — never a partial success.
    for _ in 0..200 {
        let cut = 1 + rng.below(capture.len() as u64 - 1) as usize;
        assert!(
            decode_chunked(&mut rng, &capture[..cut]).is_err(),
            "prefix of {cut} bytes decoded successfully"
        );
    }
}

#[test]
fn corrupt_lines_are_rejected_not_panics() {
    let mut rng = DetRng::seed_from_u64(0x0b5e_0004);
    let mut rejected = 0u32;
    for _ in 0..300 {
        let j = rand_journal(&mut rng);
        let capture = j.to_jsonl();
        let mut bytes = capture.clone().into_bytes();
        // Flip one random non-newline byte (a newline flip merely re-splits
        // lines, which the byte-cut test above already covers).
        let idx = rng.below(bytes.len() as u64) as usize;
        if bytes[idx] == b'\n' {
            continue;
        }
        bytes[idx] ^= 1 << rng.below(8);
        let Ok(text) = String::from_utf8(bytes) else {
            // Invalid UTF-8 goes through the reader's byte path instead.
            continue;
        };
        // A flip inside string content can still be a well-formed capture;
        // the property is "never a panic", plus corruption being caught
        // often enough to prove validation is live.
        if decode_chunked(&mut rng, &text).is_err() {
            rejected += 1;
        }
    }
    assert!(rejected > 100, "almost no corruption rejected ({rejected})");
}

#[test]
fn unknown_version_is_rejected_with_the_version() {
    let mut rng = DetRng::seed_from_u64(0x0b5e_0005);
    let capture = rand_journal(&mut rng).to_jsonl();
    let future = capture.replacen("\"v\":1", "\"v\":99", 1);
    assert_ne!(capture, future, "header version field not found");
    assert_eq!(
        decode_chunked(&mut rng, &future),
        Err(JournalError::UnknownVersion(99)),
        "a future format version must be named in the rejection"
    );
}

#[test]
fn empty_and_headerless_captures_are_empty() {
    assert_eq!(decode_jsonl(""), Err(JournalError::Empty));
    // A capture whose first line is not a header is corrupt, not empty:
    // there was data, it just wasn't a journal.
    assert!(matches!(
        decode_jsonl("{\"type\":\"footer\",\"events\":0,\"evicted\":0,\"next_id\":0}\n"),
        Err(JournalError::Corrupt { line: 1, .. })
    ));
}

#[test]
fn trailing_garbage_after_footer_is_corrupt() {
    let mut rng = DetRng::seed_from_u64(0x0b5e_0006);
    let mut capture = rand_journal(&mut rng).to_jsonl();
    capture.push_str("{\"type\":\"event\"}\n");
    assert!(
        matches!(
            decode_chunked(&mut rng, &capture),
            Err(JournalError::Corrupt { .. })
        ),
        "data after the footer must be rejected"
    );
}
