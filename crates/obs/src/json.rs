//! A hand-rolled JSON writer (and a small validator for tests).
//!
//! The crate is deliberately std-only so the workspace builds in offline
//! environments; this module is the entire serialization stack.

use std::fmt::Write as _;

/// Append `s` to `out` as a JSON string literal (with surrounding quotes).
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A streaming JSON writer with automatic comma placement.
///
/// Values written at the top of an object must be preceded by [`JsonWriter::key`];
/// values inside arrays are written directly.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: `true` once it has at least one element.
    stack: Vec<bool>,
    /// Set between `key()` and the value it introduces.
    pending_key: bool,
}

impl JsonWriter {
    pub fn new() -> Self {
        JsonWriter::default()
    }

    /// Finish and return the accumulated JSON text.
    pub fn into_string(self) -> String {
        debug_assert!(self.stack.is_empty(), "unclosed JSON container");
        self.out
    }

    fn before_value(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some(has_elems) = self.stack.last_mut() {
            if *has_elems {
                self.out.push(',');
            }
            *has_elems = true;
        }
    }

    pub fn obj_begin(&mut self) -> &mut Self {
        self.before_value();
        self.out.push('{');
        self.stack.push(false);
        self
    }

    pub fn obj_end(&mut self) -> &mut Self {
        self.stack.pop();
        self.out.push('}');
        self
    }

    pub fn arr_begin(&mut self) -> &mut Self {
        self.before_value();
        self.out.push('[');
        self.stack.push(false);
        self
    }

    pub fn arr_end(&mut self) -> &mut Self {
        self.stack.pop();
        self.out.push(']');
        self
    }

    /// Write an object key; the next write is its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        if let Some(has_elems) = self.stack.last_mut() {
            if *has_elems {
                self.out.push(',');
            }
            *has_elems = true;
        }
        push_escaped(&mut self.out, k);
        self.out.push(':');
        self.pending_key = true;
        self
    }

    pub fn val_str(&mut self, v: &str) -> &mut Self {
        self.before_value();
        push_escaped(&mut self.out, v);
        self
    }

    pub fn val_u64(&mut self, v: u64) -> &mut Self {
        self.before_value();
        let _ = write!(self.out, "{v}");
        self
    }

    pub fn val_i64(&mut self, v: i64) -> &mut Self {
        self.before_value();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Finite floats print with shortest round-trip formatting; NaN and
    /// infinities (illegal in JSON) degrade to `null`.
    pub fn val_f64(&mut self, v: f64) -> &mut Self {
        self.before_value();
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push_str("null");
        }
        self
    }

    pub fn val_bool(&mut self, v: bool) -> &mut Self {
        self.before_value();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k).val_str(v)
    }

    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k).val_u64(v)
    }

    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k).val_f64(v)
    }
}

/// Validate that `s` is one syntactically well-formed JSON value.
///
/// A recursive-descent checker used by tests (the workspace has no JSON
/// parser dependency). Returns the byte offset of the first error.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    parse_value(b, &mut i, 0)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing garbage at byte {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize, depth: usize) -> Result<(), String> {
    if depth > 256 {
        return Err("nesting too deep".into());
    }
    match b.get(*i) {
        Some(b'{') => parse_obj(b, i, depth),
        Some(b'[') => parse_arr(b, i, depth),
        Some(b'"') => parse_string(b, i),
        Some(b't') => parse_lit(b, i, "true"),
        Some(b'f') => parse_lit(b, i, "false"),
        Some(b'n') => parse_lit(b, i, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, i),
        _ => Err(format!("expected value at byte {i}")),
    }
}

fn parse_obj(b: &[u8], i: &mut usize, depth: usize) -> Result<(), String> {
    *i += 1; // '{'
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        parse_string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected ':' at byte {i}"));
        }
        *i += 1;
        skip_ws(b, i);
        parse_value(b, i, depth + 1)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {i}")),
        }
    }
}

fn parse_arr(b: &[u8], i: &mut usize, depth: usize) -> Result<(), String> {
    *i += 1; // '['
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        parse_value(b, i, depth + 1)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {i}")),
        }
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<(), String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at byte {i}"));
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        for k in 1..=4 {
                            if !b.get(*i + k).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {i}"));
                            }
                        }
                        *i += 5;
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                }
            }
            0x00..=0x1f => return Err(format!("raw control char in string at byte {i}")),
            _ => *i += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_lit(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {i}"))
    }
}

fn parse_number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let digits = |b: &[u8], i: &mut usize| {
        let s = *i;
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
        *i > s
    };
    if !digits(b, i) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        if !digits(b, i) {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        if !digits(b, i) {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_valid_json() {
        let mut w = JsonWriter::new();
        w.obj_begin();
        w.field_str("name", "he said \"hi\"\n");
        w.field_u64("count", 42);
        w.key("xs").arr_begin();
        w.val_f64(1.5)
            .val_f64(f64::NAN)
            .val_bool(true)
            .val_str("t\tab");
        w.arr_end();
        w.key("nested").obj_begin().field_f64("pi", 3.25).obj_end();
        w.obj_end();
        let s = w.into_string();
        validate(&s).unwrap();
        assert!(s.contains("\\\"hi\\\""));
        assert!(s.contains("null")); // NaN degraded
        assert_eq!(
            s,
            r#"{"name":"he said \"hi\"\n","count":42,"xs":[1.5,null,true,"t\tab"],"nested":{"pi":3.25}}"#
        );
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate(r#"{"a":[1,2.5,-3e2,"x",null,true,{}]}"#).unwrap();
        validate("[]").unwrap();
        assert!(validate(r#"{"a":1,}"#).is_err());
        assert!(validate(r#"{"a" 1}"#).is_err());
        assert!(validate("[1 2]").is_err());
        assert!(validate("{\"a\":01e}").is_err());
        assert!(validate("\"unterminated").is_err());
        assert!(validate("[1] extra").is_err());
    }
}
