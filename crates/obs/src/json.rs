//! A hand-rolled JSON writer (and a small validator for tests).
//!
//! The crate is deliberately std-only so the workspace builds in offline
//! environments; this module is the entire serialization stack.

use std::fmt::Write as _;

/// Append `s` to `out` as a JSON string literal (with surrounding quotes).
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A streaming JSON writer with automatic comma placement.
///
/// Values written at the top of an object must be preceded by [`JsonWriter::key`];
/// values inside arrays are written directly.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: `true` once it has at least one element.
    stack: Vec<bool>,
    /// Set between `key()` and the value it introduces.
    pending_key: bool,
}

impl JsonWriter {
    pub fn new() -> Self {
        JsonWriter::default()
    }

    /// Finish and return the accumulated JSON text.
    pub fn into_string(self) -> String {
        debug_assert!(self.stack.is_empty(), "unclosed JSON container");
        self.out
    }

    fn before_value(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some(has_elems) = self.stack.last_mut() {
            if *has_elems {
                self.out.push(',');
            }
            *has_elems = true;
        }
    }

    pub fn obj_begin(&mut self) -> &mut Self {
        self.before_value();
        self.out.push('{');
        self.stack.push(false);
        self
    }

    pub fn obj_end(&mut self) -> &mut Self {
        self.stack.pop();
        self.out.push('}');
        self
    }

    pub fn arr_begin(&mut self) -> &mut Self {
        self.before_value();
        self.out.push('[');
        self.stack.push(false);
        self
    }

    pub fn arr_end(&mut self) -> &mut Self {
        self.stack.pop();
        self.out.push(']');
        self
    }

    /// Write an object key; the next write is its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        if let Some(has_elems) = self.stack.last_mut() {
            if *has_elems {
                self.out.push(',');
            }
            *has_elems = true;
        }
        push_escaped(&mut self.out, k);
        self.out.push(':');
        self.pending_key = true;
        self
    }

    pub fn val_str(&mut self, v: &str) -> &mut Self {
        self.before_value();
        push_escaped(&mut self.out, v);
        self
    }

    pub fn val_u64(&mut self, v: u64) -> &mut Self {
        self.before_value();
        let _ = write!(self.out, "{v}");
        self
    }

    pub fn val_i64(&mut self, v: i64) -> &mut Self {
        self.before_value();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Finite floats print with shortest round-trip formatting; NaN and
    /// infinities (illegal in JSON) degrade to `null`.
    pub fn val_f64(&mut self, v: f64) -> &mut Self {
        self.before_value();
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push_str("null");
        }
        self
    }

    pub fn val_bool(&mut self, v: bool) -> &mut Self {
        self.before_value();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k).val_str(v)
    }

    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k).val_u64(v)
    }

    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k).val_f64(v)
    }

    /// Splice pre-serialized JSON in as the next value. The caller vouches
    /// that `json` is a single well-formed value (used to embed one
    /// document inside another, e.g. the substrate dump in a replay
    /// snapshot, without re-parsing).
    pub fn val_raw(&mut self, json: &str) -> &mut Self {
        self.before_value();
        self.out.push_str(json);
        self
    }
}

/// Validate that `s` is one syntactically well-formed JSON value.
///
/// A recursive-descent checker used by tests (the workspace has no JSON
/// parser dependency). Returns the byte offset of the first error.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    parse_value(b, &mut i, 0)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing garbage at byte {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize, depth: usize) -> Result<(), String> {
    if depth > 256 {
        return Err("nesting too deep".into());
    }
    match b.get(*i) {
        Some(b'{') => parse_obj(b, i, depth),
        Some(b'[') => parse_arr(b, i, depth),
        Some(b'"') => parse_string(b, i),
        Some(b't') => parse_lit(b, i, "true"),
        Some(b'f') => parse_lit(b, i, "false"),
        Some(b'n') => parse_lit(b, i, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, i),
        _ => Err(format!("expected value at byte {i}")),
    }
}

fn parse_obj(b: &[u8], i: &mut usize, depth: usize) -> Result<(), String> {
    *i += 1; // '{'
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        parse_string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected ':' at byte {i}"));
        }
        *i += 1;
        skip_ws(b, i);
        parse_value(b, i, depth + 1)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {i}")),
        }
    }
}

fn parse_arr(b: &[u8], i: &mut usize, depth: usize) -> Result<(), String> {
    *i += 1; // '['
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        parse_value(b, i, depth + 1)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {i}")),
        }
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<(), String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at byte {i}"));
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        for k in 1..=4 {
                            if !b.get(*i + k).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {i}"));
                            }
                        }
                        *i += 5;
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                }
            }
            0x00..=0x1f => return Err(format!("raw control char in string at byte {i}")),
            _ => *i += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_lit(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {i}"))
    }
}

fn parse_number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let digits = |b: &[u8], i: &mut usize| {
        let s = *i;
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
        *i > s
    };
    if !digits(b, i) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        if !digits(b, i) {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        if !digits(b, i) {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

/// A parsed JSON value, used by the journal decoder.
///
/// Numbers keep their raw source text: the journal carries 64-bit seeds and
/// event ids that do not survive a round-trip through `f64`, so integer
/// accessors parse the original digits instead.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// Raw number text, e.g. `"-3e2"` or `"18446744073709551615"`.
    Num(String),
    Str(String),
    Arr(Vec<JsonValue>),
    /// Key/value pairs in document order (duplicates preserved).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse one JSON document. Errors carry the byte offset of the fault.
    pub fn parse(s: &str) -> Result<JsonValue, String> {
        let b = s.as_bytes();
        let mut i = 0usize;
        skip_ws(b, &mut i);
        let v = build_value(b, &mut i, 0)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing garbage at byte {i}"));
        }
        Ok(v)
    }

    /// First value under `key` if this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer value, exact for the full `u64` range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    /// Object entries in document order.
    pub fn entries(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(entries) => Some(entries),
            _ => None,
        }
    }
}

fn build_value(b: &[u8], i: &mut usize, depth: usize) -> Result<JsonValue, String> {
    if depth > 256 {
        return Err("nesting too deep".into());
    }
    match b.get(*i) {
        Some(b'{') => {
            *i += 1;
            let mut entries = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(JsonValue::Obj(entries));
            }
            loop {
                skip_ws(b, i);
                let k = build_string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at byte {i}"));
                }
                *i += 1;
                skip_ws(b, i);
                let v = build_value(b, i, depth + 1)?;
                entries.push((k, v));
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(JsonValue::Obj(entries));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {i}")),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            let mut xs = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(JsonValue::Arr(xs));
            }
            loop {
                skip_ws(b, i);
                xs.push(build_value(b, i, depth + 1)?);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(JsonValue::Arr(xs));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {i}")),
                }
            }
        }
        Some(b'"') => build_string(b, i).map(JsonValue::Str),
        Some(b't') => parse_lit(b, i, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, i, "false").map(|()| JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, i, "null").map(|()| JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *i;
            parse_number(b, i)?;
            Ok(JsonValue::Num(
                std::str::from_utf8(&b[start..*i])
                    .map_err(|_| format!("invalid utf-8 in number at byte {start}"))?
                    .to_string(),
            ))
        }
        _ => Err(format!("expected value at byte {i}")),
    }
}

fn build_string(b: &[u8], i: &mut usize) -> Result<String, String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at byte {i}"));
    }
    let start = *i;
    parse_string(b, i)?;
    let raw = std::str::from_utf8(&b[start + 1..*i - 1])
        .map_err(|_| format!("invalid utf-8 in string at byte {start}"))?;
    if !raw.contains('\\') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('/') => out.push('/'),
            Some('b') => out.push('\u{8}'),
            Some('f') => out.push('\u{c}'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let cp = u32::from_str_radix(&hex, 16)
                    .map_err(|_| format!("bad \\u escape in string at byte {start}"))?;
                // Surrogate pairs are not produced by our writer; map lone
                // surrogates to the replacement character.
                out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
            }
            _ => return Err(format!("bad escape in string at byte {start}")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_valid_json() {
        let mut w = JsonWriter::new();
        w.obj_begin();
        w.field_str("name", "he said \"hi\"\n");
        w.field_u64("count", 42);
        w.key("xs").arr_begin();
        w.val_f64(1.5)
            .val_f64(f64::NAN)
            .val_bool(true)
            .val_str("t\tab");
        w.arr_end();
        w.key("nested").obj_begin().field_f64("pi", 3.25).obj_end();
        w.obj_end();
        let s = w.into_string();
        validate(&s).unwrap();
        assert!(s.contains("\\\"hi\\\""));
        assert!(s.contains("null")); // NaN degraded
        assert_eq!(
            s,
            r#"{"name":"he said \"hi\"\n","count":42,"xs":[1.5,null,true,"t\tab"],"nested":{"pi":3.25}}"#
        );
    }

    #[test]
    fn value_parser_round_trips_writer_output() {
        let mut w = JsonWriter::new();
        w.obj_begin();
        w.field_str("s", "a\n\"b\"\t\\");
        w.field_u64("big", u64::MAX);
        w.key("xs").arr_begin();
        w.val_u64(1).val_bool(false).val_str("x");
        w.arr_end();
        w.key("o").obj_begin().field_u64("n", 7).obj_end();
        w.key("raw").val_raw("[1,2]");
        w.obj_end();
        let s = w.into_string();
        validate(&s).unwrap();
        let v = JsonValue::parse(&s).unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("a\n\"b\"\t\\"));
        // u64::MAX survives exactly (would be lossy through f64).
        assert_eq!(v.get("big").and_then(JsonValue::as_u64), Some(u64::MAX));
        assert_eq!(v.get("xs").and_then(JsonValue::as_arr).unwrap().len(), 3);
        assert_eq!(
            v.get("o")
                .and_then(|o| o.get("n"))
                .and_then(JsonValue::as_u64),
            Some(7)
        );
        assert_eq!(
            v.get("raw").and_then(JsonValue::as_arr).unwrap(),
            &[JsonValue::Num("1".into()), JsonValue::Num("2".into())]
        );
        assert!(JsonValue::parse("{\"a\":1,}").is_err());
        assert!(JsonValue::parse("[1] junk").is_err());
    }

    #[test]
    fn value_parser_unescapes() {
        let v = JsonValue::parse(r#""Aé\n""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé\n"));
        assert!(JsonValue::parse(r#""\q""#).is_err());
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate(r#"{"a":[1,2.5,-3e2,"x",null,true,{}]}"#).unwrap();
        validate("[]").unwrap();
        assert!(validate(r#"{"a":1,}"#).is_err());
        assert!(validate(r#"{"a" 1}"#).is_err());
        assert!(validate("[1 2]").is_err());
        assert!(validate("{\"a\":01e}").is_err());
        assert!(validate("\"unterminated").is_err());
        assert!(validate("[1] extra").is_err());
    }
}
