//! The flight recorder: a causal journal of scheduler decisions, protocol
//! message sends/deliveries, fault injections, and barrier stage
//! transitions, stamped with virtual time and linked by happens-before
//! edges.
//!
//! Because the whole substrate is a deterministic DES, a journal plus the
//! world's construction seeds pins down a run exactly: `dmtcp replay`
//! (crates/core) re-executes the run, re-arms the recorded journal as the
//! *expected* timeline, and reports the first divergence with both
//! timelines. The journal is bounded (a [`Ring`]) so an enabled recorder on
//! a long simulation costs bounded memory; evictions are counted and
//! surfaced as the `obs.journal_dropped` metric.
//!
//! ## Event model
//!
//! Every event carries:
//! * a **stable id** — dense, monotonically increasing per journal; two
//!   identical runs assign identical ids, which is what makes ids usable as
//!   cross-run happens-before anchors;
//! * a **class** bit ([`CLASS_SCHED`], [`CLASS_NET`], [`CLASS_FAULT`],
//!   [`CLASS_STAGE`]) so recording can be scoped (e.g. the fault matrix
//!   records NET|FAULT|STAGE and leaves the chatty scheduler class off);
//! * an optional **cause**: the id of the event that had to happen first.
//!   A `msg.deliver` is caused by its `msg.send`; a `fault.net.drop` by the
//!   send it killed; a `stage.release` by the `stage.request` that opened
//!   its generation (auto-linked by generation number).
//!
//! ## Serialization
//!
//! [`Journal::to_jsonl`] writes versioned JSONL: one header line carrying
//! the format version and free-form metadata (seeds, cell id, workload),
//! one line per event, and one footer line with the event count — the
//! footer is how [`decode_jsonl`] distinguishes a truncated capture from a
//! complete one. See DESIGN.md §12 for the format and divergence rules.

use crate::json::{push_escaped, JsonValue, JsonWriter};
use simkit::trace::Ring;
use simkit::Nanos;
use std::collections::BTreeMap;
use std::fmt;

/// Journal serialization format version (the `v` field of the header line).
pub const JOURNAL_VERSION: u64 = 1;

/// Scheduler decisions: which `(node, pid, tid)` the dispatcher stepped.
pub const CLASS_SCHED: u8 = 1 << 0;
/// Protocol message sends, deliveries, and drops on connections.
pub const CLASS_NET: u8 = 1 << 1;
/// Fault injections (network verdicts, image corruption, kills).
pub const CLASS_FAULT: u8 = 1 << 2;
/// Barrier stage transitions and checkpoint driver actions.
pub const CLASS_STAGE: u8 = 1 << 3;
/// Every class.
pub const CLASS_ALL: u8 = CLASS_SCHED | CLASS_NET | CLASS_FAULT | CLASS_STAGE;

/// Default number of events retained before the ring evicts the oldest.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1 << 16;

/// Human name of a class bit (diagnostics).
pub fn class_name(class: u8) -> &'static str {
    match class {
        CLASS_SCHED => "sched",
        CLASS_NET => "net",
        CLASS_FAULT => "fault",
        CLASS_STAGE => "stage",
        _ => "?",
    }
}

/// A stable, per-journal event id. Dense and monotonically increasing;
/// identical runs assign identical ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One journaled event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEvent {
    /// Stable id (see [`EventId`]).
    pub id: EventId,
    /// Virtual time of the event.
    pub at: Nanos,
    /// Class bit (exactly one of the `CLASS_*` constants).
    pub class: u8,
    /// Dotted kind, e.g. `msg.send`, `stage.release`, `fault.net.drop`.
    pub kind: String,
    /// Happens-before edge: the event that had to precede this one.
    pub cause: Option<EventId>,
    /// Named numeric payload (`conn`, `gen`, `stage`, `bytes`, …) in
    /// recording order.
    pub nums: Vec<(String, u64)>,
    /// Free-form detail (message name, program tag, fault description).
    pub detail: String,
}

impl JournalEvent {
    /// Payload value by name.
    pub fn num(&self, key: &str) -> Option<u64> {
        self.nums.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }

    /// One-line human rendering, used in divergence reports.
    pub fn describe(&self) -> String {
        let mut s = format!(
            "{} @{}ns [{}] {}",
            self.id,
            self.at.0,
            class_name(self.class),
            self.kind
        );
        if let Some(c) = self.cause {
            s.push_str(&format!(" cause={c}"));
        }
        for (k, v) in &self.nums {
            s.push_str(&format!(" {k}={v}"));
        }
        if !self.detail.is_empty() {
            s.push_str(&format!(" {:?}", self.detail));
        }
        s
    }

    fn to_json_line(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj_begin();
        w.field_str("type", "event");
        w.field_u64("id", self.id.0);
        w.field_u64("at", self.at.0);
        w.field_u64("class", self.class as u64);
        w.field_str("kind", &self.kind);
        if let Some(c) = self.cause {
            w.field_u64("cause", c.0);
        }
        w.key("nums").obj_begin();
        for (k, v) in &self.nums {
            w.key(k).val_u64(*v);
        }
        w.obj_end();
        w.field_str("detail", &self.detail);
        w.obj_end();
        w.into_string()
    }

    fn from_json(v: &JsonValue) -> Result<JournalEvent, String> {
        let id = v
            .get("id")
            .and_then(JsonValue::as_u64)
            .ok_or("event missing id")?;
        let at = v
            .get("at")
            .and_then(JsonValue::as_u64)
            .ok_or("event missing at")?;
        let class = v
            .get("class")
            .and_then(JsonValue::as_u64)
            .filter(|c| *c <= u8::MAX as u64)
            .ok_or("event missing class")? as u8;
        let kind = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or("event missing kind")?
            .to_string();
        let cause = match v.get("cause") {
            None | Some(JsonValue::Null) => None,
            Some(c) => Some(EventId(c.as_u64().ok_or("bad cause")?)),
        };
        let nums = match v.get("nums") {
            None => Vec::new(),
            Some(obj) => obj
                .entries()
                .ok_or("nums is not an object")?
                .iter()
                .map(|(k, n)| n.as_u64().map(|n| (k.clone(), n)).ok_or("bad num value"))
                .collect::<Result<Vec<_>, _>>()?,
        };
        let detail = v
            .get("detail")
            .and_then(JsonValue::as_str)
            .unwrap_or("")
            .to_string();
        Ok(JournalEvent {
            id: EventId(id),
            at: Nanos(at),
            class,
            kind,
            cause,
            nums,
            detail,
        })
    }
}

/// The first mismatch between a replay and its recorded journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Index into the expected timeline at which the mismatch occurred.
    pub index: u64,
    /// What the recording says should have happened (`None`: the replay
    /// produced an event past the end of the recorded timeline).
    pub expected: Option<JournalEvent>,
    /// What the replay actually recorded.
    pub got: JournalEvent,
}

impl Divergence {
    /// Multi-line report showing both timelines at the fork point.
    pub fn report(&self) -> String {
        let expected = match &self.expected {
            Some(e) => e.describe(),
            None => "(end of recorded timeline)".to_string(),
        };
        format!(
            "replay diverged at event index {}\n  recorded: {}\n  replayed: {}",
            self.index,
            expected,
            self.got.describe()
        )
    }
}

struct ExpectState {
    events: Vec<JournalEvent>,
    cursor: usize,
}

/// Decodes a framed protocol message into a display name.
type MsgTagger = Box<dyn Fn(&[u8]) -> Option<String>>;

/// The flight recorder. Embedded in [`crate::Obs`]; off (classes = 0) by
/// default so the hot path costs one branch.
pub struct Journal {
    classes: u8,
    next_id: u64,
    events: Ring<JournalEvent>,
    meta: Vec<(String, String)>,
    /// `gen -> stage.request event`, for auto happens-before on stage events.
    stage_requests: BTreeMap<u64, EventId>,
    expect: Option<ExpectState>,
    divergence: Option<Divergence>,
    /// Installed by the checkpoint layer; `obs` itself knows nothing about
    /// the wire format.
    tagger: Option<MsgTagger>,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("classes", &self.classes)
            .field("events", &self.events.len())
            .field("evicted", &self.events.evicted())
            .field("divergence", &self.divergence)
            .finish()
    }
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new()
    }
}

impl Journal {
    /// A disabled journal.
    pub fn new() -> Self {
        Journal {
            classes: 0,
            next_id: 0,
            events: Ring::new(DEFAULT_JOURNAL_CAPACITY),
            meta: Vec::new(),
            stage_requests: BTreeMap::new(),
            expect: None,
            divergence: None,
            tagger: None,
        }
    }

    /// Enable recording for the given class bits (0 disables).
    pub fn enable(&mut self, classes: u8) {
        self.classes = classes & CLASS_ALL;
    }

    /// The enabled class bits.
    pub fn enabled_classes(&self) -> u8 {
        self.classes
    }

    /// Whether any class is enabled.
    pub fn is_enabled(&self) -> bool {
        self.classes != 0
    }

    /// Whether events of `class` are recorded. Call sites gate expensive
    /// payload construction on this.
    pub fn wants(&self, class: u8) -> bool {
        self.classes & class != 0
    }

    /// Change the retention bound.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.events.set_capacity(capacity);
    }

    /// Set a header metadata entry (replaces an existing key).
    pub fn set_meta(&mut self, key: &str, value: impl Into<String>) {
        let value = value.into();
        match self.meta.iter_mut().find(|(k, _)| k == key) {
            Some(entry) => entry.1 = value,
            None => self.meta.push((key.to_string(), value)),
        }
    }

    /// Header metadata in insertion order.
    pub fn meta(&self) -> &[(String, String)] {
        &self.meta
    }

    /// A metadata value by key.
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Install the protocol-message tagger used by [`Journal::tag_bytes`].
    pub fn set_msg_tagger(&mut self, f: impl Fn(&[u8]) -> Option<String> + 'static) {
        self.tagger = Some(Box::new(f));
    }

    /// Best-effort display name for a protocol payload ("" when no tagger
    /// is installed or the bytes are not a complete frame).
    pub fn tag_bytes(&self, bytes: &[u8]) -> String {
        match &self.tagger {
            Some(f) => f(bytes).unwrap_or_default(),
            None => String::new(),
        }
    }

    /// Record an event. Returns its id, or `None` when the class is not
    /// enabled (so callers can thread send→deliver causality only when
    /// recording).
    ///
    /// Happens-before edges for stage events are auto-filled: a
    /// `stage.request` registers its generation; any later `stage.*` event
    /// carrying the same `gen` and no explicit cause links back to it.
    pub fn record(
        &mut self,
        at: Nanos,
        class: u8,
        kind: &str,
        cause: Option<EventId>,
        nums: &[(&str, u64)],
        detail: impl Into<String>,
    ) -> Option<EventId> {
        if self.classes & class == 0 {
            return None;
        }
        let id = EventId(self.next_id);
        self.next_id += 1;
        let mut cause = cause;
        let gen = nums.iter().find(|(k, _)| *k == "gen").map(|(_, v)| *v);
        if kind == "stage.request" {
            if let Some(g) = gen {
                self.stage_requests.insert(g, id);
            }
        } else if cause.is_none() && kind.starts_with("stage.") {
            if let Some(g) = gen {
                cause = self.stage_requests.get(&g).copied();
            }
        }
        let ev = JournalEvent {
            id,
            at,
            class,
            kind: kind.to_string(),
            cause,
            nums: nums.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            detail: detail.into(),
        };
        self.check_against_expected(&ev);
        self.events.push(ev);
        Some(id)
    }

    fn check_against_expected(&mut self, ev: &JournalEvent) {
        let Some(exp) = self.expect.as_mut() else {
            return;
        };
        if self.divergence.is_some() {
            return;
        }
        let index = exp.cursor as u64;
        let expected = exp.events.get(exp.cursor).cloned();
        exp.cursor += 1;
        match &expected {
            Some(e) if e == ev => {}
            _ => {
                self.divergence = Some(Divergence {
                    index,
                    expected,
                    got: ev.clone(),
                });
            }
        }
    }

    /// Arm divergence detection: every subsequently recorded event is
    /// compared against `recorded`'s timeline; the first mismatch is kept
    /// (see [`Journal::divergence`]). Fails if the recording lost events to
    /// ring eviction — a partial timeline cannot anchor event ids.
    pub fn arm_divergence_check(&mut self, recorded: &DecodedJournal) -> Result<(), String> {
        if recorded.evicted > 0 {
            return Err(format!(
                "recorded journal lost {} events to ring eviction; raise the journal \
                 capacity when recording to enable divergence checking",
                recorded.evicted
            ));
        }
        self.expect = Some(ExpectState {
            events: recorded.events.clone(),
            cursor: 0,
        });
        self.divergence = None;
        Ok(())
    }

    /// The first divergence found since [`Journal::arm_divergence_check`].
    pub fn divergence(&self) -> Option<&Divergence> {
        self.divergence.as_ref()
    }

    /// How many replayed events have been compared so far.
    pub fn replay_checked(&self) -> u64 {
        self.expect.as_ref().map_or(0, |e| e.cursor as u64)
    }

    /// Expected events not yet reproduced by the replay (0 means the full
    /// recorded timeline was matched).
    pub fn expected_remaining(&self) -> u64 {
        self.expect
            .as_ref()
            .map_or(0, |e| e.events.len().saturating_sub(e.cursor) as u64)
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> &[JournalEvent] {
        self.events.as_slice()
    }

    /// Events evicted by the retention bound.
    pub fn evicted(&self) -> u64 {
        self.events.evicted()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drop all recorded state (events, ids, meta, causal maps, divergence
    /// arming) but keep the enabled classes and capacity.
    pub fn clear(&mut self) {
        self.events.clear();
        self.next_id = 0;
        self.meta.clear();
        self.stage_requests.clear();
        self.expect = None;
        self.divergence = None;
    }

    /// Serialize as versioned JSONL: header, events, footer.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let mut header = JsonWriter::new();
        header.obj_begin();
        header.field_str("type", "header");
        header.field_u64("v", JOURNAL_VERSION);
        header.key("meta").obj_begin();
        for (k, v) in &self.meta {
            header.key(k).val_str(v);
        }
        header.obj_end();
        header.obj_end();
        out.push_str(&header.into_string());
        out.push('\n');
        for ev in self.events.iter() {
            out.push_str(&ev.to_json_line());
            out.push('\n');
        }
        let mut footer = JsonWriter::new();
        footer.obj_begin();
        footer.field_str("type", "footer");
        footer.field_u64("events", self.events.len() as u64);
        footer.field_u64("evicted", self.events.evicted());
        footer.field_u64("next_id", self.next_id);
        footer.obj_end();
        out.push_str(&footer.into_string());
        out.push('\n');
        out
    }
}

/// Why a journal capture failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// No data / no header line.
    Empty,
    /// The header declares a version this decoder does not understand.
    UnknownVersion(u64),
    /// The capture ends before its footer, or the footer's event count
    /// disagrees with the lines present.
    Truncated(String),
    /// A line is not well-formed, or a record is missing required fields.
    Corrupt {
        /// 1-based line number of the fault.
        line: usize,
        /// What was wrong.
        why: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Empty => write!(f, "empty journal"),
            JournalError::UnknownVersion(v) => {
                write!(
                    f,
                    "unknown journal version {v} (decoder speaks {JOURNAL_VERSION})"
                )
            }
            JournalError::Truncated(why) => write!(f, "truncated journal: {why}"),
            JournalError::Corrupt { line, why } => {
                write!(f, "corrupt journal at line {line}: {why}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// A decoded journal capture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedJournal {
    /// Format version from the header.
    pub version: u64,
    /// Header metadata in document order.
    pub meta: Vec<(String, String)>,
    /// The recorded timeline, oldest first.
    pub events: Vec<JournalEvent>,
    /// Events the recorder evicted before the capture was written.
    pub evicted: u64,
    /// The recorder's next event id (total events ever recorded).
    pub next_id: u64,
}

impl DecodedJournal {
    /// A metadata value by key.
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// An incremental JSONL decoder: feed byte chunks of any size, then
/// [`JournalReader::finish`]. Mirrors the `FrameBuf` idiom in
/// `core::proto` — the property tests drive it with random chunkings.
#[derive(Default)]
pub struct JournalReader {
    buf: Vec<u8>,
    line_no: usize,
    header: Option<(u64, Vec<(String, String)>)>,
    events: Vec<JournalEvent>,
    footer: Option<(u64, u64, u64)>,
    err: Option<JournalError>,
}

impl JournalReader {
    pub fn new() -> Self {
        JournalReader::default()
    }

    /// Feed a chunk; complete lines are decoded immediately.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
        while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=pos).collect();
            self.line(&line[..line.len() - 1]);
        }
    }

    fn line(&mut self, raw: &[u8]) {
        if self.err.is_some() {
            return;
        }
        self.line_no += 1;
        let line = self.line_no;
        let corrupt = |why: String| JournalError::Corrupt { line, why };
        let text = match std::str::from_utf8(raw) {
            Ok(t) => t,
            Err(_) => {
                self.err = Some(corrupt("invalid utf-8".into()));
                return;
            }
        };
        let v = match JsonValue::parse(text) {
            Ok(v) => v,
            Err(why) => {
                self.err = Some(corrupt(why));
                return;
            }
        };
        if self.footer.is_some() {
            self.err = Some(corrupt("data after footer".into()));
            return;
        }
        match v.get("type").and_then(JsonValue::as_str) {
            Some("header") => {
                if self.header.is_some() {
                    self.err = Some(corrupt("duplicate header".into()));
                    return;
                }
                if line != 1 {
                    self.err = Some(corrupt("header is not the first line".into()));
                    return;
                }
                let Some(ver) = v.get("v").and_then(JsonValue::as_u64) else {
                    self.err = Some(corrupt("header missing version".into()));
                    return;
                };
                if ver != JOURNAL_VERSION {
                    self.err = Some(JournalError::UnknownVersion(ver));
                    return;
                }
                let mut meta = Vec::new();
                if let Some(entries) = v.get("meta").and_then(JsonValue::entries) {
                    for (k, mv) in entries {
                        let Some(s) = mv.as_str() else {
                            self.err = Some(corrupt(format!("meta value for {k:?} not a string")));
                            return;
                        };
                        meta.push((k.clone(), s.to_string()));
                    }
                }
                self.header = Some((ver, meta));
            }
            Some("event") => {
                if self.header.is_none() {
                    self.err = Some(corrupt("event before header".into()));
                    return;
                }
                match JournalEvent::from_json(&v) {
                    Ok(ev) => self.events.push(ev),
                    Err(why) => self.err = Some(corrupt(why.to_string())),
                }
            }
            Some("footer") => {
                if self.header.is_none() {
                    self.err = Some(corrupt("footer before header".into()));
                    return;
                }
                let get = |k: &str| v.get(k).and_then(JsonValue::as_u64);
                match (get("events"), get("evicted"), get("next_id")) {
                    (Some(n), Some(e), Some(next)) => self.footer = Some((n, e, next)),
                    _ => self.err = Some(corrupt("footer missing counts".into())),
                }
            }
            _ => self.err = Some(corrupt("unknown record type".into())),
        }
    }

    /// Consume the reader; any buffered partial line is decoded as a final
    /// (unterminated) line.
    pub fn finish(mut self) -> Result<DecodedJournal, JournalError> {
        if !self.buf.is_empty() {
            let line = std::mem::take(&mut self.buf);
            self.line(&line);
        }
        if let Some(err) = self.err {
            return Err(err);
        }
        let Some((version, meta)) = self.header else {
            return Err(JournalError::Empty);
        };
        let Some((count, evicted, next_id)) = self.footer else {
            return Err(JournalError::Truncated("missing footer".into()));
        };
        if count != self.events.len() as u64 {
            return Err(JournalError::Truncated(format!(
                "footer declares {count} events, capture holds {}",
                self.events.len()
            )));
        }
        Ok(DecodedJournal {
            version,
            meta,
            events: self.events,
            evicted,
            next_id,
        })
    }
}

/// Decode a complete JSONL capture (see [`JournalReader`] for streaming).
pub fn decode_jsonl(s: &str) -> Result<DecodedJournal, JournalError> {
    let mut r = JournalReader::new();
    r.feed(s.as_bytes());
    r.finish()
}

/// Render the recorded timeline as human-readable text (one line per
/// event), for divergence context and debugging dumps.
pub fn render_timeline(events: &[JournalEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.describe());
        out.push('\n');
    }
    out
}

/// Escape helper re-exported for the replay snapshot writer.
pub fn json_string(s: &str) -> String {
    let mut out = String::new();
    push_escaped(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Journal {
        let mut j = Journal::new();
        j.enable(CLASS_ALL);
        j.set_meta("cell", "KillCoord@stage4/chain");
        j.set_meta("seed", "0xdeadbeef");
        let send = j.record(
            Nanos(10),
            CLASS_NET,
            "msg.send",
            None,
            &[("conn", 1), ("end", 0), ("bytes", 32)],
            "BarrierReached",
        );
        j.record(
            Nanos(15),
            CLASS_NET,
            "msg.deliver",
            send,
            &[("conn", 1), ("end", 0), ("bytes", 32)],
            "",
        );
        j.record(
            Nanos(20),
            CLASS_STAGE,
            "stage.request",
            None,
            &[("gen", 1)],
            "",
        );
        j.record(
            Nanos(30),
            CLASS_STAGE,
            "stage.release",
            None,
            &[("gen", 1), ("stage", 2)],
            "release.suspended",
        );
        j
    }

    #[test]
    fn records_and_links_causes() {
        let j = sample();
        let evs = j.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[1].cause, Some(evs[0].id));
        // stage.release auto-linked to the stage.request of gen 1.
        assert_eq!(evs[3].cause, Some(evs[2].id));
        assert_eq!(evs[3].num("stage"), Some(2));
    }

    #[test]
    fn disabled_class_records_nothing() {
        let mut j = Journal::new();
        j.enable(CLASS_NET);
        assert!(j
            .record(Nanos(1), CLASS_SCHED, "sched", None, &[], "")
            .is_none());
        assert!(j.is_empty());
        assert!(j.wants(CLASS_NET) && !j.wants(CLASS_SCHED));
    }

    #[test]
    fn jsonl_round_trip() {
        let j = sample();
        let text = j.to_jsonl();
        for line in text.lines() {
            crate::json::validate(line).unwrap();
        }
        let d = decode_jsonl(&text).unwrap();
        assert_eq!(d.version, JOURNAL_VERSION);
        assert_eq!(d.meta_value("seed"), Some("0xdeadbeef"));
        assert_eq!(d.events, j.events());
        assert_eq!(d.evicted, 0);
        assert_eq!(d.next_id, 4);
    }

    #[test]
    fn decode_rejects_bad_captures() {
        let text = sample().to_jsonl();
        // Unknown version.
        let future = text.replacen("\"v\":1", "\"v\":99", 1);
        assert!(matches!(
            decode_jsonl(&future),
            Err(JournalError::UnknownVersion(99))
        ));
        // Truncated: drop the footer line.
        let mut lines: Vec<&str> = text.lines().collect();
        lines.pop();
        let cut = lines.join("\n");
        assert!(matches!(
            decode_jsonl(&cut),
            Err(JournalError::Truncated(_))
        ));
        // Corrupt: mangle an event line.
        let bad = text.replacen("\"kind\"", "\"kin", 1);
        assert!(matches!(
            decode_jsonl(&bad),
            Err(JournalError::Corrupt { .. })
        ));
        // Empty.
        assert!(matches!(decode_jsonl(""), Err(JournalError::Empty)));
    }

    #[test]
    fn divergence_detected_and_reported() {
        let recorded = decode_jsonl(&sample().to_jsonl()).unwrap();
        // Identical replay: zero divergence, full timeline matched.
        let mut replay = sample_empty();
        replay.arm_divergence_check(&recorded).unwrap();
        replay_events(&mut replay, true);
        assert!(replay.divergence().is_none());
        assert_eq!(replay.expected_remaining(), 0);
        // Perturbed replay: first mismatch captured with both timelines.
        let mut replay = sample_empty();
        replay.arm_divergence_check(&recorded).unwrap();
        replay_events(&mut replay, false);
        let d = replay.divergence().expect("divergence");
        assert_eq!(d.index, 1);
        assert!(d.report().contains("recorded:"));
        assert!(d.report().contains("replayed:"));
        // Only the first mismatch is kept.
        assert_eq!(replay.divergence().unwrap().index, 1);
    }

    fn sample_empty() -> Journal {
        let mut j = Journal::new();
        j.enable(CLASS_ALL);
        j
    }

    fn replay_events(j: &mut Journal, faithful: bool) {
        let send = j.record(
            Nanos(10),
            CLASS_NET,
            "msg.send",
            None,
            &[("conn", 1), ("end", 0), ("bytes", 32)],
            "BarrierReached",
        );
        let deliver_at = if faithful { Nanos(15) } else { Nanos(16) };
        j.record(
            deliver_at,
            CLASS_NET,
            "msg.deliver",
            send,
            &[("conn", 1), ("end", 0), ("bytes", 32)],
            "",
        );
        j.record(
            Nanos(20),
            CLASS_STAGE,
            "stage.request",
            None,
            &[("gen", 1)],
            "",
        );
        j.record(
            Nanos(30),
            CLASS_STAGE,
            "stage.release",
            None,
            &[("gen", 1), ("stage", 2)],
            "release.suspended",
        );
    }

    #[test]
    fn bounded_journal_counts_evictions() {
        let mut j = Journal::new();
        j.enable(CLASS_ALL);
        j.set_capacity(8);
        for i in 0..100 {
            j.record(Nanos(i), CLASS_SCHED, "sched", None, &[("pid", i)], "");
        }
        assert!(j.len() <= 8);
        assert_eq!(j.evicted() + j.len() as u64, 100);
        let d = decode_jsonl(&j.to_jsonl()).unwrap();
        assert_eq!(d.evicted, j.evicted());
        // A lossy capture cannot anchor divergence checking.
        let mut replay = Journal::new();
        replay.enable(CLASS_ALL);
        assert!(replay.arm_divergence_check(&d).is_err());
    }
}
