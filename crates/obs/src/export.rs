//! Exporters: Chrome trace-event JSON (open in Perfetto / `chrome://tracing`)
//! and a JSONL metrics dump.

use crate::json::JsonWriter;
use crate::metrics::Registry;
use crate::span::{Span, SpanKind};
use std::collections::BTreeMap;

fn micros(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Render spans as a Chrome trace-event JSON document.
///
/// One track per simulated process: the virtual pid becomes the Chrome
/// `pid`, the thread id the Chrome `tid`, and virtual time (µs since sim
/// start) the clock. `names` maps `(node, pid)` to a human-readable process
/// name for the Perfetto track header.
pub fn chrome_trace_json(spans: &[Span], names: &BTreeMap<(u32, u32), String>) -> String {
    let mut w = JsonWriter::new();
    w.obj_begin();
    w.key("displayTimeUnit").val_str("ms");
    w.key("traceEvents").arr_begin();

    // Metadata: name every process track that appears in the span set.
    let mut seen: BTreeMap<(u32, u32), ()> = BTreeMap::new();
    for s in spans {
        seen.entry((s.track.node, s.track.pid)).or_insert(());
    }
    for &(node, pid) in seen.keys() {
        let name = names
            .get(&(node, pid))
            .cloned()
            .unwrap_or_else(|| format!("node{node} pid{pid}"));
        w.obj_begin();
        w.field_str("ph", "M");
        w.field_str("name", "process_name");
        w.field_u64("pid", pid as u64);
        w.field_u64("tid", 0);
        w.key("args").obj_begin().field_str("name", &name).obj_end();
        w.obj_end();
    }

    for s in spans {
        w.obj_begin();
        w.field_str("name", s.name);
        w.field_str("cat", s.cat);
        w.field_u64("pid", s.track.pid as u64);
        w.field_u64("tid", s.track.tid as u64);
        w.field_f64("ts", micros(s.start.0));
        match s.kind {
            SpanKind::Complete => {
                w.field_str("ph", "X");
                w.field_f64("dur", micros(s.end.0 - s.start.0));
            }
            SpanKind::Instant => {
                w.field_str("ph", "i");
                // Process-wide scope so the marker renders on its track.
                w.field_str("s", "p");
            }
        }
        w.key("args").obj_begin();
        w.field_u64("node", s.track.node as u64);
        for &(k, v) in &s.args {
            w.field_u64(k, v);
        }
        w.obj_end();
        w.obj_end();
    }

    w.arr_end();
    w.obj_end();
    w.into_string()
}

/// Render the registry as JSONL: one self-describing record per line.
///
/// Counters: `{"type":"counter","name":…,"label":…,"value":…}`
/// Gauges: `{"type":"gauge","name":…,"label":…,"value":…}`
/// Histograms: exact count/sum/min/max/mean plus bucket-approximate
/// p50/p90/p99 quantiles.
pub fn metrics_jsonl(reg: &Registry) -> String {
    let mut out = String::new();
    for (k, v) in reg.counters() {
        let mut w = JsonWriter::new();
        w.obj_begin();
        w.field_str("type", "counter");
        w.field_str("name", k.name);
        w.field_u64("label", k.label);
        w.field_u64("value", v);
        w.obj_end();
        out.push_str(&w.into_string());
        out.push('\n');
    }
    for (k, v) in reg.gauges() {
        let mut w = JsonWriter::new();
        w.obj_begin();
        w.field_str("type", "gauge");
        w.field_str("name", k.name);
        w.field_u64("label", k.label);
        w.field_f64("value", v);
        w.obj_end();
        out.push_str(&w.into_string());
        out.push('\n');
    }
    for (k, h) in reg.hists() {
        let mut w = JsonWriter::new();
        w.obj_begin();
        w.field_str("type", "hist");
        w.field_str("name", k.name);
        w.field_u64("label", k.label);
        w.field_u64("count", h.count());
        w.field_u64("sum", h.sum());
        w.field_u64("min", h.min());
        w.field_u64("max", h.max());
        w.field_f64("mean", h.mean());
        w.field_u64("p50", h.quantile(0.50));
        w.field_u64("p90", h.quantile(0.90));
        w.field_u64("p99", h.quantile(0.99));
        w.obj_end();
        out.push_str(&w.into_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use crate::span::{SpanRecorder, TrackId};
    use simkit::Nanos;

    #[test]
    fn chrome_trace_is_valid_json_with_expected_events() {
        let mut r = SpanRecorder::default();
        r.set_enabled(true);
        let t = TrackId::new(2, 7, 0);
        r.complete(
            t,
            "stage.drain",
            "ckpt",
            Nanos(1_000),
            Nanos(4_500),
            vec![("gen", 1)],
        );
        r.instant(
            Nanos(4_500),
            t,
            "barrier.release",
            "coord",
            vec![("stage", 4)],
        );
        let mut names = BTreeMap::new();
        names.insert((2u32, 7u32), "node2:nas-mg".to_string());
        let json = chrome_trace_json(r.spans(), &names);
        validate(&json).unwrap();
        assert!(json.contains(r#""ph":"M""#));
        assert!(json.contains("node2:nas-mg"));
        assert!(json.contains(
            r#""name":"stage.drain","cat":"ckpt","pid":7,"tid":0,"ts":1,"ph":"X","dur":3.5"#
        ));
        assert!(json.contains(r#""ph":"i""#));
    }

    #[test]
    fn metrics_jsonl_lines_are_each_valid() {
        let mut reg = Registry::new();
        reg.add("core.drain.bytes", 1, 4096);
        reg.set_gauge("szip.image.ratio", 7, 0.37);
        reg.observe("core.stage.write", 1, 500_000);
        reg.observe("core.stage.write", 1, 700_000);
        let dump = metrics_jsonl(&reg);
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            validate(line).unwrap();
        }
        assert!(lines[0].contains(r#""type":"counter""#));
        assert!(dump.contains(r#""mean":600000"#));
    }
}
