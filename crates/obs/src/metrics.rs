//! A cheap always-on metrics registry: counters, gauges, and log-bucketed
//! histograms, keyed by `(name, label)`.
//!
//! `name` is a `&'static str` following the `layer.subsystem.metric` scheme
//! (see DESIGN.md); `label` is a small integer distinguishing instances —
//! by convention a checkpoint generation, virtual pid, or node index, with
//! `0` meaning "global". Keeping labels numeric keeps updates allocation-free.

use std::collections::BTreeMap;

/// Registry key: metric name plus an instance label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    pub name: &'static str,
    pub label: u64,
}

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i` (1 ≤ i ≤ 64)
/// holds values in `[2^(i−1), 2^i)`.
pub const HIST_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` observations.
///
/// Count/sum/min/max are exact (so means derived from a histogram are
/// exact); quantiles are bucket-resolution approximations.
#[derive(Debug, Clone, Copy)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl Histogram {
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile, `q` in [0, 1]: walks the cumulative bucket
    /// counts and returns the geometric midpoint of the target bucket,
    /// clamped to the observed min/max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let mid = if i == 0 {
                    0
                } else {
                    // Geometric-ish midpoint of [2^(i−1), 2^i).
                    (1u64 << (i - 1)) + (1u64 << (i - 1)) / 2
                };
                return mid.clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Raw bucket counts (index per [`HIST_BUCKETS`] doc).
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }
}

/// The registry itself. Embedded in the simulated world; always on (updates
/// are a map insert on cold paths and an increment on hot ones).
#[derive(Debug, Default)]
pub struct Registry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    hists: BTreeMap<MetricKey, Histogram>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Add `delta` to a counter.
    pub fn add(&mut self, name: &'static str, label: u64, delta: u64) {
        *self.counters.entry(MetricKey { name, label }).or_insert(0) += delta;
    }

    /// Increment a counter by one.
    pub fn inc(&mut self, name: &'static str, label: u64) {
        self.add(name, label, 1);
    }

    /// Current counter value (0 if never touched).
    pub fn counter(&self, name: &'static str, label: u64) -> u64 {
        self.counters
            .get(&MetricKey { name, label })
            .copied()
            .unwrap_or(0)
    }

    /// Sum of a counter across all labels.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Labels under which `name` has a counter entry.
    pub fn counter_labels(&self, name: &str) -> Vec<u64> {
        self.counters
            .keys()
            .filter(|k| k.name == name)
            .map(|k| k.label)
            .collect()
    }

    /// Set a gauge to `v`.
    pub fn set_gauge(&mut self, name: &'static str, label: u64, v: f64) {
        self.gauges.insert(MetricKey { name, label }, v);
    }

    /// Current gauge value.
    pub fn gauge(&self, name: &'static str, label: u64) -> Option<f64> {
        self.gauges.get(&MetricKey { name, label }).copied()
    }

    /// Record an observation into a histogram.
    pub fn observe(&mut self, name: &'static str, label: u64, v: u64) {
        self.hists
            .entry(MetricKey { name, label })
            .or_default()
            .observe(v);
    }

    /// The histogram for `(name, label)`, if any observation was recorded.
    pub fn hist(&self, name: &'static str, label: u64) -> Option<&Histogram> {
        self.hists.get(&MetricKey { name, label })
    }

    /// All histograms named `name` merged across labels.
    pub fn hist_merged(&self, name: &str) -> Histogram {
        let mut out = Histogram::default();
        for (k, h) in &self.hists {
            if k.name == name {
                out.merge(h);
            }
        }
        out
    }

    /// Labels under which `name` has a histogram.
    pub fn hist_labels(&self, name: &str) -> Vec<u64> {
        self.hists
            .keys()
            .filter(|k| k.name == name)
            .map(|k| k.label)
            .collect()
    }

    /// Iterate counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&MetricKey, u64)> + '_ {
        self.counters.iter().map(|(k, &v)| (k, v))
    }

    /// Iterate gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&MetricKey, f64)> + '_ {
        self.gauges.iter().map(|(k, &v)| (k, v))
    }

    /// Iterate histograms in key order.
    pub fn hists(&self) -> impl Iterator<Item = (&MetricKey, &Histogram)> + '_ {
        self.hists.iter()
    }

    /// Drop every metric.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.hists.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_labels() {
        let mut r = Registry::new();
        r.add("core.drain.bytes", 1, 100);
        r.add("core.drain.bytes", 1, 50);
        r.add("core.drain.bytes", 2, 7);
        r.inc("core.ckpt.generations", 0);
        assert_eq!(r.counter("core.drain.bytes", 1), 150);
        assert_eq!(r.counter("core.drain.bytes", 2), 7);
        assert_eq!(r.counter("core.drain.bytes", 3), 0);
        assert_eq!(r.counter_total("core.drain.bytes"), 157);
        assert_eq!(r.counter_labels("core.drain.bytes"), vec![1, 2]);
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = Registry::new();
        r.set_gauge("szip.ratio", 5, 0.4);
        r.set_gauge("szip.ratio", 5, 0.6);
        assert_eq!(r.gauge("szip.ratio", 5), Some(0.6));
        assert_eq!(r.gauge("szip.ratio", 6), None);
    }

    #[test]
    fn histogram_buckets_and_exact_moments() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 1000, 1_000_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1_001_010);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1_000_000);
        assert!((h.mean() - 1_001_010.0 / 7.0).abs() < 1e-9);
        // v=0 → bucket 0; v=1 → bucket 1; 2,3 → bucket 2; 4 → bucket 3.
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.buckets()[3], 1);
    }

    #[test]
    fn histogram_quantiles_are_bucket_resolution() {
        let mut h = Histogram::default();
        for _ in 0..90 {
            h.observe(100);
        }
        for _ in 0..10 {
            h.observe(100_000);
        }
        let p50 = h.quantile(0.5);
        // 100 lives in [64, 128); the midpoint estimate must stay in-bucket.
        assert!((64..128).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 > 10_000, "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 100_000);
        assert_eq!(Histogram::default().quantile(0.5), 0);
    }

    #[test]
    fn registry_histograms_merge_across_labels() {
        let mut r = Registry::new();
        r.observe("core.stage.drain", 1, 10);
        r.observe("core.stage.drain", 1, 20);
        r.observe("core.stage.drain", 2, 30);
        assert_eq!(r.hist("core.stage.drain", 1).unwrap().count(), 2);
        let m = r.hist_merged("core.stage.drain");
        assert_eq!(m.count(), 3);
        assert_eq!(m.sum(), 60);
        assert_eq!(r.hist_labels("core.stage.drain"), vec![1, 2]);
    }
}
