//! # obs — virtual-time observability for the DMTCP reproduction
//!
//! The paper's whole evaluation is a stage-by-stage timing story (suspend /
//! elect / drain / write / refill, Table 1 and Figures 3–6). This crate is
//! the shared layer every part of the pipeline reports into:
//!
//! * **Spans** ([`span::SpanRecorder`]) — scoped or explicit `[start, end]`
//!   intervals keyed to virtual [`simkit::Nanos`] with node/pid/tid
//!   identity, recorded into a bounded ring. Off by default.
//! * **Metrics** ([`metrics::Registry`]) — counters, gauges, and
//!   log₂-bucketed histograms keyed by `(name, label)`. Always on; the
//!   bench harness derives its stage breakdowns from these.
//! * **Exporters** ([`export`]) — Chrome trace-event JSON (open the file in
//!   [Perfetto](https://ui.perfetto.dev) via "Open trace file"; one track
//!   per simulated process, virtual time as the clock) and a JSONL metrics
//!   dump. JSON is hand-rolled ([`json`]); the crate depends only on
//!   `simkit` and std, so the workspace builds where crates.io is
//!   unreachable.
//!
//! Naming scheme (documented in DESIGN.md): metric and span names are
//! `layer.subsystem.metric`, e.g. `core.drain.bytes`, `mtcp.image.bytes`,
//! `szip.bytes_in`; span categories name the pipeline layer (`coord`,
//! `ckpt`, `restart`, `mtcp`).

pub mod export;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod span;

pub use journal::{DecodedJournal, Divergence, EventId, Journal, JournalEvent};
pub use metrics::{Histogram, MetricKey, Registry};
pub use span::{Span, SpanGuard, SpanKind, SpanRecorder, TrackId};

use std::collections::BTreeMap;

/// The per-world observability hub: a span recorder, a metrics registry,
/// the causal flight recorder, and the process-name table the trace
/// exporter labels tracks with.
#[derive(Debug, Default)]
pub struct Obs {
    pub spans: SpanRecorder,
    pub metrics: Registry,
    /// The flight recorder (see [`journal`]); off by default.
    pub journal: Journal,
    names: BTreeMap<(u32, u32), String>,
    /// Ring evictions already mirrored into drop counters.
    synced_span_drops: u64,
    synced_journal_drops: u64,
}

impl Obs {
    pub fn new() -> Self {
        Obs::default()
    }

    /// Record the human-readable name of `(node, pid)` for trace export.
    /// Later registrations win (exec replaces the image name).
    pub fn set_process_name(&mut self, node: u32, pid: u32, name: impl Into<String>) {
        self.names.insert((node, pid), name.into());
    }

    /// The registered process names.
    pub fn process_names(&self) -> &BTreeMap<(u32, u32), String> {
        &self.names
    }

    /// Export all finished spans as a Chrome trace-event JSON document.
    pub fn chrome_trace(&self) -> String {
        export::chrome_trace_json(self.spans.spans(), &self.names)
    }

    /// Export the metrics registry as JSONL.
    pub fn metrics_jsonl(&self) -> String {
        export::metrics_jsonl(&self.metrics)
    }

    /// Export the flight-recorder journal as versioned JSONL.
    pub fn journal_jsonl(&self) -> String {
        self.journal.to_jsonl()
    }

    /// Mirror ring evictions into counters instead of truncating silently:
    /// `obs.spans_dropped` (span ring) and `obs.journal_dropped` (flight
    /// recorder). Idempotent — only new evictions since the last call are
    /// added, so exporters can call it every flush.
    pub fn sync_drop_counters(&mut self) {
        let spans = self.spans.evicted();
        if spans > self.synced_span_drops {
            self.metrics
                .add("obs.spans_dropped", 0, spans - self.synced_span_drops);
            self.synced_span_drops = spans;
        }
        let journal = self.journal.evicted();
        if journal > self.synced_journal_drops {
            self.metrics.add(
                "obs.journal_dropped",
                0,
                journal - self.synced_journal_drops,
            );
            self.synced_journal_drops = journal;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Nanos;

    #[test]
    fn obs_round_trip() {
        let mut o = Obs::new();
        o.set_process_name(0, 3, "coordinator");
        o.spans.set_enabled(true);
        o.spans.complete(
            TrackId::new(0, 3, 0),
            "generation",
            "coord",
            Nanos(0),
            Nanos(10),
            vec![],
        );
        o.metrics.add("core.drain.bytes", 1, 99);
        let trace = o.chrome_trace();
        json::validate(&trace).unwrap();
        assert!(trace.contains("coordinator"));
        let dump = o.metrics_jsonl();
        assert!(dump.contains("core.drain.bytes"));
    }

    #[test]
    fn drop_counters_track_ring_evictions() {
        let mut o = Obs::new();
        o.sync_drop_counters();
        assert_eq!(o.metrics.counter_total("obs.spans_dropped"), 0);
        o.journal.enable(journal::CLASS_ALL);
        o.journal.set_capacity(4);
        for i in 0..10 {
            o.journal
                .record(Nanos(i), journal::CLASS_SCHED, "sched", None, &[], "");
        }
        o.sync_drop_counters();
        let dropped = o.metrics.counter_total("obs.journal_dropped");
        assert_eq!(dropped, o.journal.evicted());
        assert!(dropped > 0);
        // Idempotent: no double counting.
        o.sync_drop_counters();
        assert_eq!(o.metrics.counter_total("obs.journal_dropped"), dropped);
    }
}
