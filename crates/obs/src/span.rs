//! Virtual-time spans with node/pid/tid identity.
//!
//! The simulator charges time analytically — a whole image write "happens"
//! at one event and returns its completion time — so the recorder supports
//! both *scoped* spans (`begin`/`end`, nestable, for code that advances
//! virtual time as it runs) and *complete* spans recorded after the fact
//! with an explicit `[start, end]` interval. Zero-length protocol moments
//! (a barrier release) are recorded as instants.
//!
//! Finished spans land in a bounded [`Ring`] (re-homed from
//! `simkit::trace`), so an enabled recorder on a long simulation keeps the
//! newest `capacity` spans instead of growing without limit.

use simkit::trace::Ring;
use simkit::Nanos;

/// Default retention bound for finished spans.
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 17;

/// Which simulated execution context a span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrackId {
    /// Simulated node (machine) index.
    pub node: u32,
    /// Virtual pid on that node's world.
    pub pid: u32,
    /// Thread id within the process (0 = main thread).
    pub tid: u32,
}

impl TrackId {
    pub fn new(node: u32, pid: u32, tid: u32) -> Self {
        TrackId { node, pid, tid }
    }
}

/// Whether a record covers an interval or marks a single moment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// `[start, end]` interval (Chrome `"X"` event).
    Complete,
    /// A point in time; `start == end` (Chrome `"i"` event).
    Instant,
}

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    pub track: TrackId,
    /// Span name, e.g. `"stage.drain"` (see DESIGN.md for the scheme).
    pub name: &'static str,
    /// Category, e.g. `"ckpt"`; becomes the Chrome trace `cat` field.
    pub cat: &'static str,
    pub kind: SpanKind,
    pub start: Nanos,
    pub end: Nanos,
    /// Small numeric annotations, e.g. `("gen", 3)` or `("bytes", n)`.
    pub args: Vec<(&'static str, u64)>,
}

impl Span {
    /// The numeric argument named `key`, if present.
    pub fn arg(&self, key: &str) -> Option<u64> {
        self.args.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }

    pub fn duration(&self) -> Nanos {
        self.end.saturating_sub(self.start)
    }
}

/// Handle returned by [`SpanRecorder::begin`]; pass back to
/// [`SpanRecorder::end`]. A handle from a disabled recorder is inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "an unclosed span is never recorded"]
pub struct SpanGuard(usize);

impl SpanGuard {
    const NONE: SpanGuard = SpanGuard(usize::MAX);

    /// Whether this guard refers to a live open span.
    pub fn is_active(&self) -> bool {
        self.0 != usize::MAX
    }
}

#[derive(Debug)]
struct OpenSpan {
    track: TrackId,
    name: &'static str,
    cat: &'static str,
    start: Nanos,
    args: Vec<(&'static str, u64)>,
}

/// Records spans into a bounded ring. Disabled by default: every entry
/// point is a single branch when off.
#[derive(Debug)]
pub struct SpanRecorder {
    enabled: bool,
    done: Ring<Span>,
    open: Vec<Option<OpenSpan>>,
    free: Vec<usize>,
}

impl Default for SpanRecorder {
    fn default() -> Self {
        SpanRecorder::with_capacity(DEFAULT_SPAN_CAPACITY)
    }
}

impl SpanRecorder {
    pub fn with_capacity(capacity: usize) -> Self {
        SpanRecorder {
            enabled: false,
            done: Ring::new(capacity),
            open: Vec::new(),
            free: Vec::new(),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Open a nestable scoped span. Returns an inert guard when disabled.
    pub fn begin(
        &mut self,
        at: Nanos,
        track: TrackId,
        name: &'static str,
        cat: &'static str,
    ) -> SpanGuard {
        self.begin_args(at, track, name, cat, Vec::new())
    }

    /// [`SpanRecorder::begin`] with annotations attached up front.
    pub fn begin_args(
        &mut self,
        at: Nanos,
        track: TrackId,
        name: &'static str,
        cat: &'static str,
        args: Vec<(&'static str, u64)>,
    ) -> SpanGuard {
        if !self.enabled {
            return SpanGuard::NONE;
        }
        let open = OpenSpan {
            track,
            name,
            cat,
            start: at,
            args,
        };
        match self.free.pop() {
            Some(slot) => {
                self.open[slot] = Some(open);
                SpanGuard(slot)
            }
            None => {
                self.open.push(Some(open));
                SpanGuard(self.open.len() - 1)
            }
        }
    }

    /// Attach an annotation to a still-open span.
    pub fn annotate(&mut self, guard: SpanGuard, key: &'static str, value: u64) {
        if let Some(Some(open)) = self.open.get_mut(guard.0) {
            open.args.push((key, value));
        }
    }

    /// Close a scoped span, recording it. Inert guards are ignored, so
    /// callers need not re-check the enabled flag.
    pub fn end(&mut self, at: Nanos, guard: SpanGuard) {
        let Some(slot) = self.open.get_mut(guard.0) else {
            return;
        };
        if let Some(open) = slot.take() {
            self.free.push(guard.0);
            self.done.push(Span {
                track: open.track,
                name: open.name,
                cat: open.cat,
                kind: SpanKind::Complete,
                start: open.start,
                end: at.max(open.start),
                args: open.args,
            });
        }
    }

    /// Record a finished `[start, end]` span directly (for analytically
    /// charged work that happens "all at once" in the event loop).
    pub fn complete(
        &mut self,
        track: TrackId,
        name: &'static str,
        cat: &'static str,
        start: Nanos,
        end: Nanos,
        args: Vec<(&'static str, u64)>,
    ) {
        if !self.enabled {
            return;
        }
        self.done.push(Span {
            track,
            name,
            cat,
            kind: SpanKind::Complete,
            start,
            end: end.max(start),
            args,
        });
    }

    /// Record a zero-length protocol moment.
    pub fn instant(
        &mut self,
        at: Nanos,
        track: TrackId,
        name: &'static str,
        cat: &'static str,
        args: Vec<(&'static str, u64)>,
    ) {
        if !self.enabled {
            return;
        }
        self.done.push(Span {
            track,
            name,
            cat,
            kind: SpanKind::Instant,
            start: at,
            end: at,
            args,
        });
    }

    /// Finished spans, in completion order (oldest may have been evicted).
    pub fn spans(&self) -> &[Span] {
        self.done.as_slice()
    }

    /// Finished spans with the given name.
    pub fn with_name<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Span> + 'a {
        self.done.iter().filter(move |s| s.name == name)
    }

    /// How many finished spans the bound has evicted.
    pub fn evicted(&self) -> u64 {
        self.done.evicted()
    }

    /// Number of spans opened but not yet ended.
    pub fn open_count(&self) -> usize {
        self.open.iter().filter(|s| s.is_some()).count()
    }

    /// Drop all finished spans (open spans stay open).
    pub fn clear(&mut self) {
        self.done.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TrackId {
        TrackId::new(0, 1, 0)
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let mut r = SpanRecorder::default();
        let g = r.begin(Nanos(5), t(), "a", "c");
        assert!(!g.is_active());
        r.end(Nanos(9), g);
        r.complete(t(), "b", "c", Nanos(1), Nanos(2), vec![]);
        r.instant(Nanos(3), t(), "i", "c", vec![]);
        assert!(r.spans().is_empty());
    }

    #[test]
    fn scoped_spans_nest_and_record_on_end() {
        let mut r = SpanRecorder::default();
        r.set_enabled(true);
        let outer = r.begin(Nanos(10), t(), "outer", "c");
        let inner = r.begin(Nanos(20), t(), "inner", "c");
        r.annotate(inner, "bytes", 512);
        assert_eq!(r.open_count(), 2);
        r.end(Nanos(30), inner);
        r.end(Nanos(40), outer);
        assert_eq!(r.open_count(), 0);
        let spans = r.spans();
        assert_eq!(spans.len(), 2);
        // Inner closes first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].arg("bytes"), Some(512));
        assert_eq!(spans[0].duration(), Nanos(10));
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].start, Nanos(10));
        assert_eq!(spans[1].end, Nanos(40));
    }

    #[test]
    fn double_end_is_ignored_and_slots_are_reused() {
        let mut r = SpanRecorder::default();
        r.set_enabled(true);
        let g = r.begin(Nanos(1), t(), "a", "c");
        r.end(Nanos(2), g);
        r.end(Nanos(3), g); // no-op
        assert_eq!(r.spans().len(), 1);
        let g2 = r.begin(Nanos(4), t(), "b", "c");
        assert_eq!(g2, g); // slot reused
        r.end(Nanos(5), g2);
        assert_eq!(r.spans().len(), 2);
    }

    #[test]
    fn complete_and_instant_record_directly() {
        let mut r = SpanRecorder::default();
        r.set_enabled(true);
        r.complete(
            t(),
            "write",
            "mtcp",
            Nanos(100),
            Nanos(250),
            vec![("gen", 1)],
        );
        r.instant(Nanos(99), t(), "release", "coord", vec![]);
        assert_eq!(r.with_name("write").count(), 1);
        let w = r.with_name("write").next().unwrap();
        assert_eq!(w.kind, SpanKind::Complete);
        assert_eq!(w.arg("gen"), Some(1));
        let i = r.with_name("release").next().unwrap();
        assert_eq!(i.kind, SpanKind::Instant);
        assert_eq!(i.start, i.end);
    }

    #[test]
    fn ring_bound_applies() {
        let mut r = SpanRecorder::with_capacity(4);
        r.set_enabled(true);
        for i in 0..20u64 {
            r.complete(t(), "s", "c", Nanos(i), Nanos(i + 1), vec![]);
        }
        assert!(r.spans().len() <= 4);
        assert!(r.evicted() > 0);
        assert_eq!(r.spans().last().unwrap().start, Nanos(19));
    }
}
