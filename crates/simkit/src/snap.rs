//! `snap` — a tiny deterministic binary codec.
//!
//! Simulated programs must be able to persist their complete control state
//! into their thread's stack region at checkpoint time and reconstitute it
//! at restart. `serde` alone cannot do this without a format crate, so we
//! carry a ~300-line codec in-tree: little-endian fixed integers for typed
//! fields, LEB128 varints for lengths, no self-description (both sides share
//! the schema, exactly as a real stack layout is shared by the code that
//! wrote it).
//!
//! The `impl_snap!` macro derives implementations for plain structs and
//! fieldless-or-tuple enums, which covers every program in this repository.

use std::collections::BTreeMap;
use std::fmt;

/// Errors produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// Input ended before the value was complete.
    Eof,
    /// An enum discriminant or bool byte was out of range.
    BadTag(u64),
    /// A declared length was implausibly large for the remaining input.
    BadLen(u64),
    /// A UTF-8 string field held invalid bytes.
    BadUtf8,
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Eof => write!(f, "unexpected end of snap input"),
            SnapError::BadTag(t) => write!(f, "invalid snap tag {t}"),
            SnapError::BadLen(l) => write!(f, "implausible snap length {l}"),
            SnapError::BadUtf8 => write!(f, "invalid utf-8 in snap string"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Encoding sink.
#[derive(Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// Consume the writer and return the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a fixed-width little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a fixed-width little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an LEB128 varint (used for lengths and enum tags).
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(b);
                return;
            }
            self.buf.push(b | 0x80);
        }
    }

    /// Append raw bytes without a length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append length-prefixed bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.put_raw(bytes);
    }
}

/// Decoding source.
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        let b = *self.buf.get(self.pos).ok_or(SnapError::Eof)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read a fixed-width little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(
            self.get_raw(4)?.try_into().expect("length checked"),
        ))
    }

    /// Read a fixed-width little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(
            self.get_raw(8)?.try_into().expect("length checked"),
        ))
    }

    /// Read an LEB128 varint.
    pub fn get_varint(&mut self) -> Result<u64, SnapError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.get_u8()?;
            if shift >= 64 {
                return Err(SnapError::BadLen(v));
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Eof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read length-prefixed bytes.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.get_varint()?;
        if n > self.remaining() as u64 {
            return Err(SnapError::BadLen(n));
        }
        self.get_raw(n as usize)
    }
}

/// Types that can round-trip through the snap codec.
pub trait Snap: Sized {
    /// Encode `self` into `w`.
    fn save(&self, w: &mut SnapWriter);
    /// Decode a value from `r`.
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;

    /// Convenience: encode into a fresh byte vector.
    fn to_snap_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        self.save(&mut w);
        w.into_bytes()
    }

    /// Convenience: decode from a byte slice, requiring full consumption.
    fn from_snap_bytes(bytes: &[u8]) -> Result<Self, SnapError> {
        let mut r = SnapReader::new(bytes);
        let v = Self::load(&mut r)?;
        if r.remaining() != 0 {
            return Err(SnapError::BadLen(r.remaining() as u64));
        }
        Ok(v)
    }
}

macro_rules! snap_uint {
    ($t:ty) => {
        impl Snap for $t {
            fn save(&self, w: &mut SnapWriter) {
                w.put_varint(*self as u64);
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                let v = r.get_varint()?;
                <$t>::try_from(v).map_err(|_| SnapError::BadLen(v))
            }
        }
    };
}

snap_uint!(u8);
snap_uint!(u16);
snap_uint!(u32);
snap_uint!(u64);
snap_uint!(usize);

macro_rules! snap_sint {
    ($t:ty) => {
        impl Snap for $t {
            fn save(&self, w: &mut SnapWriter) {
                // zig-zag
                let v = *self as i64;
                w.put_varint(((v << 1) ^ (v >> 63)) as u64);
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                let z = r.get_varint()?;
                let v = ((z >> 1) as i64) ^ -((z & 1) as i64);
                <$t>::try_from(v).map_err(|_| SnapError::BadLen(z))
            }
        }
    };
}

snap_sint!(i8);
snap_sint!(i16);
snap_sint!(i32);
snap_sint!(i64);
snap_sint!(isize);

impl Snap for bool {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u8(*self as u8);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(SnapError::BadTag(t as u64)),
        }
    }
}

impl Snap for f64 {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.to_bits());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(f64::from_bits(r.get_u64()?))
    }
}

impl Snap for f32 {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u32(self.to_bits());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(f32::from_bits(r.get_u32()?))
    }
}

impl Snap for String {
    fn save(&self, w: &mut SnapWriter) {
        w.put_bytes(self.as_bytes());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let b = r.get_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| SnapError::BadUtf8)
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.put_varint(self.len() as u64);
        for item in self {
            item.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.get_varint()?;
        // Each element costs at least one input byte, so `n` can never
        // exceed the remaining input — reject before allocating.
        if n > r.remaining() as u64 {
            return Err(SnapError::BadLen(n));
        }
        let mut v = Vec::with_capacity(n as usize);
        for _ in 0..n {
            v.push(T::load(r)?);
        }
        Ok(v)
    }
}

impl<T: Snap> Snap for Option<T> {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            t => Err(SnapError::BadTag(t as u64)),
        }
    }
}

impl<K: Snap + Ord, V: Snap> Snap for BTreeMap<K, V> {
    fn save(&self, w: &mut SnapWriter) {
        w.put_varint(self.len() as u64);
        for (k, v) in self {
            k.save(w);
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.get_varint()?;
        if n > r.remaining() as u64 {
            return Err(SnapError::BadLen(n));
        }
        let mut m = BTreeMap::new();
        for _ in 0..n {
            let k = K::load(r)?;
            let v = V::load(r)?;
            m.insert(k, v);
        }
        Ok(m)
    }
}

impl Snap for () {
    fn save(&self, _w: &mut SnapWriter) {}
    fn load(_r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(())
    }
}

macro_rules! snap_tuple {
    ($($n:tt $t:ident),+) => {
        impl<$($t: Snap),+> Snap for ($($t,)+) {
            fn save(&self, w: &mut SnapWriter) {
                $(self.$n.save(w);)+
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                Ok(($($t::load(r)?,)+))
            }
        }
    };
}

snap_tuple!(0 A);
snap_tuple!(0 A, 1 B);
snap_tuple!(0 A, 1 B, 2 C);
snap_tuple!(0 A, 1 B, 2 C, 3 D);
snap_tuple!(0 A, 1 B, 2 C, 3 D, 4 E);

impl Snap for crate::time::Nanos {
    fn save(&self, w: &mut SnapWriter) {
        w.put_varint(self.0);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(crate::time::Nanos(r.get_varint()?))
    }
}

impl Snap for crate::rng::DetRng {
    fn save(&self, w: &mut SnapWriter) {
        w.put_raw(&self.state_bytes());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let raw = r.get_raw(32)?;
        Ok(crate::rng::DetRng::from_state_bytes(
            raw.try_into().expect("length checked"),
        ))
    }
}

/// Derive [`Snap`] for a struct (`struct Name { a, b, c }`) or an enum whose
/// variants are unit or tuple variants.
///
/// ```
/// use simkit::{impl_snap, Snap};
///
/// #[derive(Debug, PartialEq)]
/// struct P { x: u32, name: String }
/// impl_snap!(struct P { x, name });
///
/// #[derive(Debug, PartialEq)]
/// enum E { A, B(u32), C(String, bool) }
/// impl_snap!(enum E { A, B(a), C(a, b) });
///
/// let p = P { x: 7, name: "hi".into() };
/// assert_eq!(P::from_snap_bytes(&p.to_snap_bytes()).unwrap(), p);
/// let e = E::C("x".into(), true);
/// assert_eq!(E::from_snap_bytes(&e.to_snap_bytes()).unwrap(), e);
/// ```
#[macro_export]
macro_rules! impl_snap {
    (struct $name:ident { $($f:ident),* $(,)? }) => {
        impl $crate::snap::Snap for $name {
            fn save(&self, w: &mut $crate::snap::SnapWriter) {
                $( $crate::snap::Snap::save(&self.$f, w); )*
            }
            fn load(r: &mut $crate::snap::SnapReader<'_>)
                -> ::core::result::Result<Self, $crate::snap::SnapError>
            {
                Ok($name { $( $f: $crate::snap::Snap::load(r)?, )* })
            }
        }
    };
    (enum $name:ident { $( $variant:ident $( ( $($tf:ident),+ ) )? $( { $($sf:ident),+ } )? ),* $(,)? }) => {
        impl $crate::snap::Snap for $name {
            fn save(&self, w: &mut $crate::snap::SnapWriter) {
                let mut tag: u64 = 0;
                $(
                    if let $name::$variant $( ( $($tf),+ ) )? $( { $($sf),+ } )? = self {
                        w.put_varint(tag);
                        $( $( $crate::snap::Snap::save($tf, w); )+ )?
                        $( $( $crate::snap::Snap::save($sf, w); )+ )?
                        return;
                    }
                    tag += 1;
                )*
                let _ = tag;
                unreachable!("non-exhaustive impl_snap! enum listing");
            }
            fn load(r: &mut $crate::snap::SnapReader<'_>)
                -> ::core::result::Result<Self, $crate::snap::SnapError>
            {
                let got = r.get_varint()?;
                let mut tag: u64 = 0;
                $(
                    if got == tag {
                        return Ok($name::$variant $( (
                            $( { let $tf = $crate::snap::Snap::load(r)?; $tf } ),+
                        ) )? $( {
                            $( $sf: $crate::snap::Snap::load(r)? ),+
                        } )? );
                    }
                    tag += 1;
                )*
                let _ = tag;
                Err($crate::snap::SnapError::BadTag(got))
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Snap + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_snap_bytes();
        let back = T::from_snap_bytes(&bytes).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u64::MAX);
        roundtrip(-1i64);
        roundtrip(i64::MIN);
        roundtrip(i32::MIN);
        roundtrip(true);
        roundtrip(1.5f64);
        roundtrip(f64::NEG_INFINITY);
        roundtrip(-0.0f64);
        roundtrip(String::from("héllo"));
        roundtrip(String::new());
    }

    #[test]
    fn nan_payload_is_preserved() {
        let v = f64::from_bits(0x7ff8_dead_beef_0001);
        let back = f64::from_snap_bytes(&v.to_snap_bytes()).unwrap();
        assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u32>::new());
        roundtrip(Some(7u64));
        roundtrip(Option::<u64>::None);
        roundtrip((1u8, String::from("x"), -9i32));
        let mut m = BTreeMap::new();
        m.insert(1u32, String::from("one"));
        m.insert(2, String::from("two"));
        roundtrip(m);
    }

    #[test]
    fn macro_struct_and_enum() {
        #[derive(Debug, PartialEq)]
        struct S {
            a: u64,
            b: Vec<i32>,
            c: Option<String>,
        }
        impl_snap!(struct S { a, b, c });
        roundtrip(S {
            a: 9,
            b: vec![-1, 2],
            c: Some("z".into()),
        });

        #[derive(Debug, PartialEq)]
        enum E {
            A,
            B(u32),
            C(String, bool),
        }
        impl_snap!(
            enum E {
                A,
                B(x),
                C(x, y),
            }
        );
        roundtrip(E::A);
        roundtrip(E::B(42));
        roundtrip(E::C("hi".into(), false));
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let bytes = vec![1u32, 2, 3].to_snap_bytes();
        for cut in 0..bytes.len() {
            let r = Vec::<u32>::from_snap_bytes(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} decoded to {r:?}");
        }
    }

    #[test]
    fn hostile_length_is_rejected_without_allocation() {
        // Claims 2^40 elements with 1 byte of payload.
        let mut w = SnapWriter::new();
        w.put_varint(1u64 << 40);
        w.put_u8(0);
        let r = Vec::<u8>::from_snap_bytes(&w.into_bytes());
        assert!(matches!(r, Err(SnapError::BadLen(_))));
    }

    #[test]
    fn trailing_garbage_is_rejected_by_from_snap_bytes() {
        let mut bytes = 5u32.to_snap_bytes();
        bytes.push(0xff);
        assert!(u32::from_snap_bytes(&bytes).is_err());
    }

    #[test]
    fn bad_enum_tag_is_rejected() {
        #[derive(Debug, PartialEq)]
        enum E {
            A,
            B,
        }
        impl_snap!(
            enum E {
                A,
                B,
            }
        );
        let mut w = SnapWriter::new();
        w.put_varint(9);
        assert_eq!(
            E::from_snap_bytes(&w.into_bytes()),
            Err(SnapError::BadTag(9))
        );
    }

    #[test]
    fn detrng_roundtrips_mid_stream() {
        let mut r = crate::rng::DetRng::seed_from_u64(11);
        for _ in 0..37 {
            r.next_u64();
        }
        let mut copy = crate::rng::DetRng::from_snap_bytes(&r.to_snap_bytes()).unwrap();
        for _ in 0..100 {
            assert_eq!(copy.next_u64(), r.next_u64());
        }
    }
}
