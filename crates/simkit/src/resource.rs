//! Analytic hardware resources.
//!
//! The cluster model charges virtual time for bulk data movement (disk
//! writes, NIC transfers, compression) through these small queueing models
//! rather than simulating individual packets or blocks. Two shapes cover
//! everything the DMTCP evaluation needs:
//!
//! * [`Pipe`] — a FIFO bandwidth resource (a disk, a NIC, an NFS server).
//!   Requests are served in arrival order at a fixed byte rate; a request
//!   arriving while the pipe is busy queues behind the in-flight bytes.
//!   FIFO aggregation gives the same *completion* times as processor sharing
//!   for the batch transfers that dominate checkpointing, while staying O(1).
//! * [`CorePool`] — `n` identical servers (CPU cores). A job occupies the
//!   earliest-free core for its duration; used to charge gzip/gunzip time
//!   with per-core parallelism, matching the paper's observation that each
//!   process compresses its own image concurrently.
//!
//! [`CachedDisk`] composes two `Pipe`s to model Linux's page cache: writes
//! stream at memory speed until the cache fills, then degrade to platter
//! speed — the effect §5.2 of the paper sees in Figure 6 ("the implied
//! bandwidth is well beyond the typical 100 MB/s of disk").

use crate::time::Nanos;

/// A FIFO bandwidth resource.
#[derive(Debug, Clone)]
pub struct Pipe {
    bytes_per_sec: f64,
    /// Per-request fixed overhead (seek, RPC round-trip, syscall).
    pub overhead: Nanos,
    free_at: Nanos,
    total_bytes: u64,
}

impl Pipe {
    /// A pipe with the given sustained rate in bytes/second.
    pub fn new(bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0);
        Pipe {
            bytes_per_sec,
            overhead: Nanos::ZERO,
            free_at: Nanos::ZERO,
            total_bytes: 0,
        }
    }

    /// A pipe with a fixed per-request overhead (e.g. NFS round trip).
    pub fn with_overhead(bytes_per_sec: f64, overhead: Nanos) -> Self {
        let mut p = Pipe::new(bytes_per_sec);
        p.overhead = overhead;
        p
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Enqueue a transfer of `bytes` arriving at `now`; returns its
    /// completion time.
    pub fn transfer(&mut self, now: Nanos, bytes: u64) -> Nanos {
        let start = self.free_at.max(now);
        let dur = Nanos::from_secs_f64(bytes as f64 / self.bytes_per_sec);
        let end = start + self.overhead + dur;
        self.free_at = end;
        self.total_bytes += bytes;
        end
    }

    /// When the pipe next becomes idle.
    pub fn free_at(&self) -> Nanos {
        self.free_at
    }

    /// Total bytes ever pushed through (for reports).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Forget all queued work (used when a world is torn down and rebuilt
    /// for restart experiments).
    pub fn reset(&mut self) {
        self.free_at = Nanos::ZERO;
        self.total_bytes = 0;
    }
}

/// `n` identical servers; a job runs on the earliest-free one.
#[derive(Debug, Clone)]
pub struct CorePool {
    free_at: Vec<Nanos>,
}

impl CorePool {
    /// A pool of `cores` identical cores.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0);
        CorePool {
            free_at: vec![Nanos::ZERO; cores],
        }
    }

    /// Number of cores in the pool.
    pub fn cores(&self) -> usize {
        self.free_at.len()
    }

    /// Run a job of length `dur` arriving at `now`; returns `(start, end)`.
    pub fn run(&mut self, now: Nanos, dur: Nanos) -> (Nanos, Nanos) {
        // earliest-free core; ties resolve to the lowest index for determinism
        let (idx, _) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(i, t)| (**t, *i))
            .expect("pool is non-empty");
        let start = self.free_at[idx].max(now);
        let end = start + dur;
        self.free_at[idx] = end;
        (start, end)
    }

    /// When the earliest core becomes free.
    pub fn earliest_free(&self) -> Nanos {
        *self.free_at.iter().min().expect("pool is non-empty")
    }

    /// Forget all queued work.
    pub fn reset(&mut self) {
        self.free_at.fill(Nanos::ZERO);
    }
}

/// A disk behind a write-back page cache.
///
/// Writes complete at `cache` speed while the modelled dirty-byte window has
/// room, and at `platter` speed beyond it. `sync()` returns the extra time
/// needed to flush everything to the platter — the paper's optional
/// post-checkpoint `sync` (measured there at +0.79 s for ParGeant4).
#[derive(Debug, Clone)]
pub struct CachedDisk {
    /// Fast path: memcpy into the page cache.
    pub cache: Pipe,
    /// Slow path: the physical device.
    pub platter: Pipe,
    /// How many dirty bytes the cache window absorbs before writers block.
    pub cache_window: u64,
    /// How long dirty pages sit before background writeback starts (the
    /// kernel's dirty_expire timer; makes an explicit `sync` meaningful).
    pub writeback_delay: Nanos,
    dirty: u64,
}

impl CachedDisk {
    /// A cached disk with the given cache rate, platter rate, and window.
    pub fn new(cache_bps: f64, platter_bps: f64, cache_window: u64) -> Self {
        CachedDisk {
            cache: Pipe::new(cache_bps),
            platter: Pipe::new(platter_bps),
            cache_window,
            writeback_delay: Nanos::from_secs(2),
            dirty: 0,
        }
    }

    /// Write `bytes` at `now`; returns the time the write *call* completes
    /// (page-cache semantics: before the data is durable).
    pub fn write(&mut self, now: Nanos, bytes: u64) -> Nanos {
        // Bytes that fit in the remaining cache window go at cache speed;
        // the remainder is throttled to platter speed, which is what the
        // kernel's dirty-ratio writeback does to a large sequential writer.
        let fast = bytes.min(self.cache_window.saturating_sub(self.dirty));
        let slow = bytes - fast;
        self.dirty = (self.dirty + bytes).min(self.cache_window);
        let mut end = self.cache.transfer(now, fast);
        if slow > 0 {
            end = self.platter.transfer(end, slow);
        } else {
            // Dirty pages drain to the platter in the background, after
            // the writeback timer expires.
            self.platter.transfer(now + self.writeback_delay, bytes);
        }
        end
    }

    /// Read `bytes` at `now` (served at cache speed: restart images were
    /// just written and are still resident, matching the paper's restart
    /// observations).
    pub fn read(&mut self, now: Nanos, bytes: u64) -> Nanos {
        self.cache.transfer(now, bytes)
    }

    /// Block until all dirty bytes are durable; returns the completion time.
    pub fn sync(&mut self, now: Nanos) -> Nanos {
        self.dirty = 0;
        self.platter.free_at().max(now)
    }

    /// Forget all queued work and dirty state.
    pub fn reset(&mut self) {
        self.cache.reset();
        self.platter.reset();
        self.dirty = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn pipe_serves_back_to_back() {
        let mut p = Pipe::new(100.0 * MB as f64); // 100 MiB/s
        let t1 = p.transfer(Nanos::ZERO, 100 * MB);
        assert!((t1.as_secs_f64() - 1.0).abs() < 1e-6);
        // Second transfer queues behind the first even though it "arrives" at 0.
        let t2 = p.transfer(Nanos::ZERO, 50 * MB);
        assert!((t2.as_secs_f64() - 1.5).abs() < 1e-6);
        assert_eq!(p.total_bytes(), 150 * MB);
    }

    #[test]
    fn pipe_idle_gap_is_not_credited() {
        let mut p = Pipe::new(MB as f64);
        p.transfer(Nanos::ZERO, MB); // busy until 1s
        let t = p.transfer(Nanos::from_secs(10), MB); // arrives long after idle
        assert!((t.as_secs_f64() - 11.0).abs() < 1e-6);
    }

    #[test]
    fn pipe_overhead_applies_per_request() {
        let mut p = Pipe::with_overhead(MB as f64, Nanos::from_millis(10));
        let t1 = p.transfer(Nanos::ZERO, MB);
        assert!((t1.as_secs_f64() - 1.010).abs() < 1e-6);
        let t2 = p.transfer(Nanos::ZERO, MB);
        assert!((t2.as_secs_f64() - 2.020).abs() < 1e-6);
    }

    #[test]
    fn core_pool_runs_jobs_in_parallel_up_to_width() {
        let mut pool = CorePool::new(2);
        let d = Nanos::from_secs(1);
        let (_, e1) = pool.run(Nanos::ZERO, d);
        let (_, e2) = pool.run(Nanos::ZERO, d);
        let (_, e3) = pool.run(Nanos::ZERO, d);
        assert_eq!(e1, Nanos::from_secs(1));
        assert_eq!(e2, Nanos::from_secs(1));
        assert_eq!(e3, Nanos::from_secs(2)); // third job waits for a core
    }

    #[test]
    fn cached_disk_fast_until_window_exhausted() {
        // 1000 MB/s cache, 100 MB/s platter, 100 MB window.
        let mut d = CachedDisk::new(1000.0 * MB as f64, 100.0 * MB as f64, 100 * MB);
        let t1 = d.write(Nanos::ZERO, 100 * MB);
        assert!((t1.as_secs_f64() - 0.1).abs() < 1e-6); // all cache-speed
        let t2 = d.write(t1, 100 * MB);
        // window is full: second write runs at platter speed, behind the
        // (delayed) background flush of the first 100 MB.
        assert!(t2.as_secs_f64() > 1.9, "got {}", t2.as_secs_f64());
    }

    #[test]
    fn cached_disk_sync_waits_for_platter() {
        let mut d = CachedDisk::new(1000.0 * MB as f64, 100.0 * MB as f64, 1000 * MB);
        let t1 = d.write(Nanos::ZERO, 100 * MB);
        assert!(t1.as_secs_f64() < 0.2);
        // Writeback starts after the dirty timer; sync waits it out.
        let s = d.sync(t1);
        assert!(
            (s.as_secs_f64() - 3.0).abs() < 0.05,
            "got {}",
            s.as_secs_f64()
        );
    }

    #[test]
    fn sync_long_after_the_write_is_free() {
        let mut d = CachedDisk::new(1000.0 * MB as f64, 100.0 * MB as f64, 1000 * MB);
        let t1 = d.write(Nanos::ZERO, 100 * MB);
        let s = d.sync(t1 + Nanos::from_secs(30));
        assert_eq!(s, t1 + Nanos::from_secs(30), "writeback already finished");
    }
}
