//! Hierarchical timer wheel — the raw-speed event queue behind [`crate::Sim`].
//!
//! The queue that `Sim` popped one event at a time out of a single
//! `BinaryHeap` pays `O(log n)` pointer-chasing twice per event; at the
//! populations the scale sweeps reach (tens of thousands of pending
//! dispatches) that is the dominant cost of the whole simulation. This
//! module replaces it with the classic Varghese–Lauck hierarchy:
//!
//! * **Three wheels** of 256 slots each. A level-0 tick is 1024 ns (just
//!   above the 1 µs scheduler quantum), so level 0 resolves ~262 µs, level 1
//!   ~67 ms, and level 2 ~17.2 s windows. Insertion picks the lowest level
//!   whose current window (higher digits matching the cursor's) contains the
//!   tick, and is O(1); per-level 256-bit occupancy bitmaps make "find the
//!   next non-empty slot" four word scans.
//! * **An overflow heap** for the far future (outside the cursor's level-2
//!   window). Only far timers ever pay heap costs, and each pays them once:
//!   one push at insert, one pop when its window migrates into the wheels.
//! * **A ready batch.** Draining a level-0 slot moves *every* entry of the
//!   current tick into a sorted ready buffer in one queue touch; the run
//!   loop then feeds on plain `Vec` pops. Slot vectors and the ready buffer
//!   are recycled arena-style, so the steady state performs no container
//!   allocation per event (keyed events — see [`Payload::Keyed`] — allocate
//!   nothing at all).
//!
//! **Determinism contract:** the wheel yields entries in exactly the same
//! total `(time, seq)` order as the reference heap. Entries inside one
//! drained slot are sorted by `(at, seq)` before delivery, and entries for
//! instants the cursor has already passed (an event scheduling `soon`, or
//! into a tick the eager drain already visited) merge into the ready buffer
//! at their ordered position. `crates/simkit/tests/diff_engine.rs` holds
//! the two implementations to bit-identical firing sequences.

use crate::time::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled one-shot boxed event closure.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut crate::Sim<W>)>;

/// What an entry does when it fires.
pub enum Payload<W> {
    /// A boxed closure — the general case.
    Call(EventFn<W>),
    /// A plain function pointer plus a `u64` key — the zero-allocation fast
    /// path for high-frequency periodic events (the oskit thread dispatcher
    /// packs `(pid, tid)` into the key). Carrying the handler in the entry
    /// keeps the engine free of registration state.
    Keyed(fn(&mut W, &mut crate::Sim<W>, u64), u64),
}

/// One queue entry: absolute time, global sequence number, payload.
pub struct Entry<W> {
    /// Absolute firing time.
    pub at: Nanos,
    /// Global schedule order — the tie-breaker that makes the order total.
    pub seq: u64,
    /// The event body.
    pub payload: Payload<W>,
}

impl<W> Entry<W> {
    fn key(&self) -> u128 {
        // `(at, seq)` packed into one u128 — a single-branch comparison in
        // the sort and merge paths.
        ((self.at.0 as u128) << 64) | self.seq as u128
    }
}

// Heap ordering (min-heap via reversal) for the overflow tier.
impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<W> Eq for Entry<W> {}
impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key().cmp(&self.key())
    }
}

/// log2 of the level-0 tick width in nanoseconds (1024 ns).
pub const TICK_BITS: u32 = 10;
/// log2 of the slot count per level.
const SLOT_BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels; level `l` spans `2^(TICK_BITS + SLOT_BITS*(l+1))` ns.
const LEVELS: usize = 3;
const fn tick_of(at: Nanos) -> u64 {
    at.0 >> TICK_BITS
}

/// The hierarchical timer wheel plus overflow heap plus ready batch.
pub struct Wheel<W> {
    /// `slots[level][slot]` — unsorted, append-only until drained.
    slots: Vec<Vec<Entry<W>>>,
    /// 256-bit occupancy bitmap per level.
    occ: [[u64; SLOTS / 64]; LEVELS],
    /// Current tick: every stored wheel entry satisfies `tick >= cur`.
    cur: u64,
    /// Far-future overflow tier.
    far: BinaryHeap<Entry<W>>,
    /// Entries already extracted, sorted by *descending* `(at, seq)` so the
    /// earliest event is at the back and `pop` is a plain `Vec::pop`.
    ready: Vec<Entry<W>>,
    /// Cursor-passed pushes (`soon`, same-tick re-arms) in *ascending*
    /// order. These arrive with non-decreasing keys as the batch fires, so
    /// the common case is an O(1) `push_back`; merging them into `ready`
    /// instead would memmove half the batch per insert. `pop` takes the
    /// smaller of `ready.last()` / `over.front()`.
    over: std::collections::VecDeque<Entry<W>>,
    /// Total entries (slots + far + ready + over).
    len: usize,
}

impl<W> Wheel<W> {
    /// An empty wheel with the cursor at tick 0.
    pub fn new() -> Self {
        Wheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occ: [[0; SLOTS / 64]; LEVELS],
            cur: 0,
            far: BinaryHeap::new(),
            ready: Vec::new(),
            over: std::collections::VecDeque::new(),
            len: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn slot_index(level: usize, slot: usize) -> usize {
        level * SLOTS + slot
    }

    #[inline]
    fn mark(&mut self, level: usize, slot: usize) {
        self.occ[level][slot / 64] |= 1u64 << (slot % 64);
    }

    #[inline]
    fn clear(&mut self, level: usize, slot: usize) {
        self.occ[level][slot / 64] &= !(1u64 << (slot % 64));
    }

    /// First occupied slot index `>= from` at `level`, if any.
    fn scan(&self, level: usize, from: usize) -> Option<usize> {
        if from >= SLOTS {
            return None;
        }
        let bm = &self.occ[level];
        let mut word = from / 64;
        let mut bits = bm[word] & (!0u64 << (from % 64));
        loop {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word >= SLOTS / 64 {
                return None;
            }
            bits = bm[word];
        }
    }

    /// Insert an entry. O(1) for anything inside the wheel horizon.
    pub fn push(&mut self, entry: Entry<W>) {
        self.len += 1;
        let tick = tick_of(entry.at);
        if tick <= self.cur {
            // The cursor already passed (or sits on) this tick — the eager
            // drain visited it, so the slot will not be looked at again this
            // lap. Merge into the ready buffer at the ordered position.
            self.push_ready(entry);
            return;
        }
        self.place(entry, tick);
    }

    fn place(&mut self, entry: Entry<W>, tick: u64) {
        // Lowest level whose *higher* digits match the cursor's — i.e. the
        // entry lands in the cursor's current window at that level. Matching
        // prefixes (not delta magnitude) guarantees the slot index never
        // wraps behind the cursor's lap position, so the forward scans in
        // `next_wheel_tick` see every stored entry.
        for level in 0..LEVELS as u32 {
            if tick >> (SLOT_BITS * (level + 1)) == self.cur >> (SLOT_BITS * (level + 1)) {
                let slot = (tick >> (SLOT_BITS * level)) as usize & (SLOTS - 1);
                self.slots[Self::slot_index(level as usize, slot)].push(entry);
                self.mark(level as usize, slot);
                return;
            }
        }
        // Beyond the current level-2 window: overflow tier.
        self.far.push(entry);
    }

    /// True when `tick` fits inside the wheels for the current cursor.
    #[inline]
    fn fits(&self, tick: u64) -> bool {
        tick >> (SLOT_BITS * LEVELS as u32) == self.cur >> (SLOT_BITS * LEVELS as u32)
    }

    /// Ordered insert into the ascending overlay; O(1) in the common case
    /// (keys arrive non-decreasing as the batch fires in time order).
    fn push_ready(&mut self, entry: Entry<W>) {
        let key = entry.key();
        if self.over.back().is_none_or(|e| e.key() < key) {
            self.over.push_back(entry);
        } else {
            let idx = self.over.partition_point(|e| e.key() < key);
            self.over.insert(idx, entry);
        }
    }

    /// True when both delivery buffers are drained.
    fn batch_empty(&self) -> bool {
        self.ready.is_empty() && self.over.is_empty()
    }

    /// True when the overlay front is the globally earliest pending entry.
    fn over_first(&self) -> bool {
        match (self.ready.last(), self.over.front()) {
            (Some(r), Some(o)) => o.key() < r.key(),
            (None, Some(_)) => true,
            _ => false,
        }
    }

    /// Time of the next event without consuming it, or `None` when empty.
    /// Drains up to one slot into the ready buffer as a side effect.
    pub fn peek_at(&mut self) -> Option<Nanos> {
        if self.batch_empty() && !self.refill() {
            return None;
        }
        if self.over_first() {
            Some(self.over.front().expect("nonempty").at)
        } else {
            Some(self.ready.last().expect("refilled").at)
        }
    }

    /// Pop the globally earliest `(at, seq)` entry.
    pub fn pop(&mut self) -> Option<Entry<W>> {
        if self.batch_empty() && !self.refill() {
            return None;
        }
        let entry = if self.over_first() {
            self.over.pop_front().expect("nonempty")
        } else {
            self.ready.pop().expect("refilled")
        };
        self.len -= 1;
        Some(entry)
    }

    /// Refill the ready buffer with the next batch of entries. Returns
    /// `false` when the queue is empty. Postcondition on `true`: `ready`
    /// holds ≥ 1 entry, sorted by `(at, seq)`.
    fn refill(&mut self) -> bool {
        debug_assert!(self.batch_empty());
        loop {
            // Migrate overflow entries the moment they could fire before
            // (or at the same tick as) the earliest wheel entry.
            let wheel_next = self.next_wheel_tick();
            if let Some(h) = self.far.peek().map(|e| tick_of(e.at)) {
                if wheel_next.is_none_or(|w| h <= w) {
                    if wheel_next.is_none() && !self.fits(h) {
                        // Nothing in between — jump the cursor so the far
                        // entries fit inside the level-2 window.
                        self.cur = h;
                    }
                    while let Some(e) = self.far.peek() {
                        let t = tick_of(e.at);
                        if t < self.cur {
                            // The cascade scan above advanced the cursor
                            // past this tick; nothing else can exist there,
                            // so it feeds the sorted ready buffer directly.
                            let e = self.far.pop().expect("peeked");
                            self.push_ready(e);
                        } else if self.fits(t) {
                            // `t == cur` lands in the level-0 slot for `cur`
                            // and merges with any same-tick wheel entries
                            // before the slot is drained and sorted.
                            let e = self.far.pop().expect("peeked");
                            self.place(e, t);
                        } else {
                            break;
                        }
                    }
                    if !self.over.is_empty() {
                        // Migrated entries earlier than every wheel tick:
                        // deliver them before touching the wheels again.
                        return true;
                    }
                    continue; // rescan with the migrated entries in place
                }
            }
            let Some(target) = wheel_next else {
                return false;
            };
            // The scan already cascaded every window boundary between the
            // old cursor and `target`, so advancing is a plain assignment.
            debug_assert!(target >= self.cur);
            self.cur = target;
            let slot = target as usize & (SLOTS - 1);
            let idx = Self::slot_index(0, slot);
            debug_assert!(!self.slots[idx].is_empty());
            std::mem::swap(&mut self.ready, &mut self.slots[idx]);
            self.clear(0, slot);
            self.ready
                .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
            debug_assert!(self.ready.iter().all(|e| tick_of(e.at) == target));
            return true;
        }
    }

    /// The earliest occupied tick across the wheels, cascading *nothing* —
    /// pure scan. Returns `None` when all wheels are empty.
    fn next_wheel_tick(&mut self) -> Option<u64> {
        // Level 0: remainder of the current lap holds ticks `cur..lap_end`.
        let d0 = self.cur as usize & (SLOTS - 1);
        if let Some(p) = self.scan(0, d0) {
            return Some((self.cur & !(SLOTS as u64 - 1)) + p as u64);
        }
        // Level 1: the slot holding `cur` was cascaded when the cursor
        // entered this window, so start strictly after it.
        let d1 = (self.cur >> SLOT_BITS) as usize & (SLOTS - 1);
        if let Some(q) = self.scan(1, d1 + 1) {
            let base = (self.cur & !((1u64 << (2 * SLOT_BITS)) - 1)) + ((q as u64) << SLOT_BITS);
            return Some(self.cascade_probe(1, q, base));
        }
        // Level 2.
        let d2 = (self.cur >> (2 * SLOT_BITS)) as usize & (SLOTS - 1);
        if let Some(r) = self.scan(2, d2 + 1) {
            let base =
                (self.cur & !((1u64 << (3 * SLOT_BITS)) - 1)) + ((r as u64) << (2 * SLOT_BITS));
            return Some(self.cascade_probe(2, r, base));
        }
        None
    }

    /// Cascade `slots[level][slot]` (whose window starts at tick `base`)
    /// down one level, then recurse the scan from `base`. Every entry in the
    /// slot belongs to `[base, base + span)` by the wheel invariant.
    fn cascade_probe(&mut self, level: usize, slot: usize, base: u64) -> u64 {
        let idx = Self::slot_index(level, slot);
        let entries = std::mem::take(&mut self.slots[idx]);
        self.clear(level, slot);
        debug_assert!(!entries.is_empty());
        // Advance the cursor to the window start *before* re-placing, so
        // `place` picks child levels relative to the new window. Nothing is
        // skipped: the scans found no occupied slot before this window.
        debug_assert!(base > self.cur);
        self.cur = base;
        for e in entries {
            let t = tick_of(e.at);
            debug_assert!(t >= base && t < base + (1u64 << (SLOT_BITS * (level as u32 + 1))));
            self.place(e, t);
        }
        self.next_wheel_tick()
            .expect("cascaded entries are in the wheels")
    }
}

impl<W> Default for Wheel<W> {
    fn default() -> Self {
        Self::new()
    }
}
