//! The event queue.
//!
//! [`Sim<W>`] is a priority queue of `(time, seq, event)` entries, generic
//! over the world type `W` so that this crate stays independent of the
//! operating-system model built on top of it. All simulation state lives in
//! the world; events are one-shot closures (or zero-allocation keyed
//! function pointers, see [`Sim::at_keyed`]). Two events scheduled for the
//! same instant fire in scheduling order (FIFO), which makes runs fully
//! deterministic.
//!
//! Two queue implementations sit behind the same `Sim` API:
//!
//! * the **timer wheel** ([`crate::wheel`]) — the default. Hierarchical
//!   near-future wheels with O(1) insert and batched same-tick draining,
//!   plus a heap tier for far timers. This is the raw-speed hot path every
//!   bench and experiment runs on.
//! * the **reference heap** — the original single `BinaryHeap`, retained as
//!   the executable specification of event order. `Sim::new_reference()`
//!   builds one; the differential suite in `tests/diff_engine.rs` holds the
//!   wheel to bit-identical `(time, seq)` firing sequences against it, and
//!   `bench/sim` measures the speedup between the two in one binary.
//!
//! `DMTCP_SIM_ENGINE=heap` makes [`Sim::new`] build the reference engine
//! instead (e.g. to record a pre-overhaul flight-recorder journal and
//! replay it on the wheel engine); any other value, or none, selects the
//! wheel.

use crate::time::Nanos;
use crate::wheel::{Entry, Payload, Wheel};
use std::collections::BinaryHeap;

/// The two interchangeable queue implementations. Which one is active never
/// changes observable behaviour — only speed; see the module docs.
enum Queue<W> {
    Wheel(Wheel<W>),
    Heap(BinaryHeap<Entry<W>>),
}

impl<W> Queue<W> {
    fn push(&mut self, entry: Entry<W>) {
        match self {
            Queue::Wheel(q) => q.push(entry),
            Queue::Heap(q) => q.push(entry),
        }
    }

    fn pop(&mut self) -> Option<Entry<W>> {
        match self {
            Queue::Wheel(q) => q.pop(),
            Queue::Heap(q) => q.pop(),
        }
    }

    fn peek_at(&mut self) -> Option<Nanos> {
        match self {
            Queue::Wheel(q) => q.peek_at(),
            Queue::Heap(q) => q.peek().map(|e| e.at),
        }
    }

    fn len(&self) -> usize {
        match self {
            Queue::Wheel(q) => q.len(),
            Queue::Heap(q) => q.len(),
        }
    }
}

/// The discrete-event simulator core.
///
/// ```
/// use simkit::{Sim, Nanos};
///
/// let mut sim: Sim<Vec<u64>> = Sim::new();
/// let mut world = Vec::new();
/// sim.after(Nanos::from_secs(2), |w: &mut Vec<u64>, _| w.push(2));
/// sim.after(Nanos::from_secs(1), |w: &mut Vec<u64>, sim| {
///     w.push(1);
///     sim.after(Nanos::from_secs(5), |w: &mut Vec<u64>, _| w.push(6));
/// });
/// sim.run(&mut world);
/// assert_eq!(world, vec![1, 2, 6]);
/// assert_eq!(sim.now(), Nanos::from_secs(6));
/// ```
pub struct Sim<W> {
    now: Nanos,
    seq: u64,
    fired: u64,
    halted: bool,
    queue: Queue<W>,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// An empty simulator positioned at `t = 0`, on the timer-wheel engine
    /// (unless `DMTCP_SIM_ENGINE=heap` selects the reference queue).
    pub fn new() -> Self {
        if std::env::var("DMTCP_SIM_ENGINE").is_ok_and(|v| v == "heap") {
            Self::new_reference()
        } else {
            Self::with_queue(Queue::Wheel(Wheel::new()))
        }
    }

    /// An empty simulator pinned to the timer-wheel queue regardless of
    /// `DMTCP_SIM_ENGINE` — the `bench/sim` A/B measurement needs both
    /// engines in one process.
    pub fn new_wheel() -> Self {
        Self::with_queue(Queue::Wheel(Wheel::new()))
    }

    /// An empty simulator on the reference `BinaryHeap` queue — the
    /// executable specification of event order. Used by the differential
    /// suite and the `bench/sim` A/B measurement; everything else wants
    /// [`Sim::new`].
    pub fn new_reference() -> Self {
        Self::with_queue(Queue::Heap(BinaryHeap::new()))
    }

    fn with_queue(queue: Queue<W>) -> Self {
        Sim {
            now: Nanos::ZERO,
            seq: 0,
            fired: 0,
            halted: false,
            queue,
        }
    }

    /// Which queue implementation this simulator runs on (for bench and
    /// test labels): `"wheel"` or `"heap"`.
    pub fn engine_name(&self) -> &'static str {
        match self.queue {
            Queue::Wheel(_) => "wheel",
            Queue::Heap(_) => "heap",
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of events fired so far (diagnostics / runaway detection).
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `f` at absolute time `at`. Scheduling into the past is a
    /// logic error and panics (it would silently reorder causality).
    pub fn at(&mut self, at: Nanos, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) {
        self.push(at, Payload::Call(Box::new(f)));
    }

    /// Schedule `f` after a delay of `dt` from the current time.
    pub fn after(&mut self, dt: Nanos, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) {
        self.at(self.now + dt, f);
    }

    /// Schedule `f` to run "immediately" (after the current event, same time).
    pub fn soon(&mut self, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) {
        self.at(self.now, f);
    }

    /// Schedule `handler(world, sim, key)` at absolute time `at` without
    /// allocating: the entry stores a plain function pointer and a `u64`
    /// payload instead of a boxed closure. High-frequency periodic events
    /// (the oskit thread dispatcher, pure-timer benches) use this so the
    /// steady state performs no per-event allocation at all. Ordering is
    /// identical to [`Sim::at`] — keyed and boxed events share one
    /// `(time, seq)` sequence.
    pub fn at_keyed(&mut self, at: Nanos, key: u64, handler: fn(&mut W, &mut Sim<W>, u64)) {
        self.push(at, Payload::Keyed(handler, key));
    }

    fn push(&mut self, at: Nanos, payload: Payload<W>) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at:?} < now {:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry { at, seq, payload });
    }

    /// Stop the run loop after the current event completes.
    pub fn halt(&mut self) {
        self.halted = true;
    }

    /// Fire a single event if one is pending. Returns `false` when the queue
    /// was empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        let Some(entry) = self.queue.pop() else {
            return false;
        };
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.fired += 1;
        match entry.payload {
            Payload::Call(f) => f(world, self),
            Payload::Keyed(f, key) => f(world, self, key),
        }
        true
    }

    /// Run until the queue drains or [`Sim::halt`] is called.
    pub fn run(&mut self, world: &mut W) {
        self.halted = false;
        while !self.halted && self.step(world) {}
    }

    /// Run until the queue drains, `halt` is called, or virtual time would
    /// pass `deadline`; events scheduled after the deadline stay queued.
    pub fn run_until(&mut self, world: &mut W, deadline: Nanos) {
        self.halted = false;
        while !self.halted {
            match self.queue.peek_at() {
                Some(at) if at <= deadline => {
                    self.step(world);
                }
                _ => break,
            }
        }
    }

    /// Run with a budget on the number of events, as a watchdog against
    /// non-terminating protocols in tests. Returns `true` if the queue
    /// drained within the budget.
    pub fn run_bounded(&mut self, world: &mut W, max_events: u64) -> bool {
        matches!(
            self.run_budgeted(world, max_events),
            RunOutcome::Quiescent | RunOutcome::Halted
        )
    }

    /// Like [`Sim::run_bounded`], but reports *why* the loop stopped so
    /// callers can distinguish "budget exhausted" (raise the budget) from a
    /// genuinely drained queue or an explicit halt.
    ///
    /// The budget is charged per event, including within a same-tick batch:
    /// a budget expiring in the middle of a batch stops after exactly
    /// `max_events` events on either queue implementation, and a later run
    /// call resumes at the very next `(time, seq)` entry.
    pub fn run_budgeted(&mut self, world: &mut W, max_events: u64) -> RunOutcome {
        self.halted = false;
        let start = self.fired;
        loop {
            if self.halted {
                return RunOutcome::Halted;
            }
            if self.fired - start >= max_events {
                return RunOutcome::BudgetExhausted;
            }
            if !self.step(world) {
                return RunOutcome::Quiescent;
            }
        }
    }
}

/// Why a budgeted run loop stopped (see [`Sim::run_budgeted`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Quiescent,
    /// [`Sim::halt`] was called by an event.
    Halted,
    /// The event budget ran out with events still pending — either a
    /// livelock/deadlock in the model or a budget set too low.
    BudgetExhausted,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every test body runs against both queue implementations.
    fn both(case: impl Fn(fn() -> Sim<Vec<u32>>)) {
        case(Sim::new);
        case(Sim::new_reference);
    }

    #[test]
    fn fifo_within_same_instant() {
        both(|mk| {
            let mut sim = mk();
            let mut w = Vec::new();
            for i in 0..10u32 {
                sim.at(Nanos::from_secs(1), move |w: &mut Vec<u32>, _| w.push(i));
            }
            sim.run(&mut w);
            assert_eq!(w, (0..10).collect::<Vec<_>>());
        });
    }

    #[test]
    fn time_ordering_dominates_insertion_order() {
        both(|mk| {
            let mut sim = mk();
            let mut w = Vec::new();
            sim.at(Nanos::from_secs(3), |w: &mut Vec<u32>, _| w.push(3));
            sim.at(Nanos::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
            sim.at(Nanos::from_secs(2), |w: &mut Vec<u32>, _| w.push(2));
            sim.run(&mut w);
            assert_eq!(w, vec![1, 2, 3]);
        });
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim: Sim<()> = Sim::new();
        sim.at(Nanos::from_secs(5), |_, sim| {
            sim.at(Nanos::from_secs(1), |_, _| {});
        });
        sim.run(&mut ());
    }

    #[test]
    fn run_until_leaves_future_events_queued() {
        both(|mk| {
            let mut sim = mk();
            let mut w = Vec::new();
            sim.at(Nanos::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
            sim.at(Nanos::from_secs(10), |w: &mut Vec<u32>, _| w.push(10));
            sim.run_until(&mut w, Nanos::from_secs(5));
            assert_eq!(w, vec![1]);
            assert_eq!(sim.pending(), 1);
            sim.run(&mut w);
            assert_eq!(w, vec![1, 10]);
        });
    }

    #[test]
    fn run_until_then_earlier_insert_fires_in_order() {
        // The wheel drains eagerly into its ready buffer; an event scheduled
        // *behind* the drained cursor afterwards must still fire in global
        // (time, seq) order.
        both(|mk| {
            let mut sim = mk();
            let mut w = Vec::new();
            sim.at(Nanos::from_millis(50), |w: &mut Vec<u32>, _| w.push(50));
            sim.run_until(&mut w, Nanos::from_millis(1));
            assert!(w.is_empty());
            sim.at(Nanos::from_millis(2), |w: &mut Vec<u32>, _| w.push(2));
            sim.at(Nanos::from_millis(50), |w: &mut Vec<u32>, _| w.push(51));
            sim.run(&mut w);
            assert_eq!(w, vec![2, 50, 51]);
        });
    }

    #[test]
    fn halt_stops_the_loop() {
        let mut sim: Sim<u32> = Sim::new();
        let mut w = 0u32;
        sim.at(Nanos::from_secs(1), |w: &mut u32, sim| {
            *w += 1;
            sim.halt();
        });
        sim.at(Nanos::from_secs(2), |w: &mut u32, _| *w += 100);
        sim.run(&mut w);
        assert_eq!(w, 1);
        // Resuming picks the remaining event back up.
        sim.run(&mut w);
        assert_eq!(w, 101);
    }

    #[test]
    fn halt_mid_batch_resumes_at_next_seq() {
        // Ten events share one instant; the third halts. The remaining
        // seven must survive in the queue and fire on resume, in order.
        both(|mk| {
            let mut sim = mk();
            let mut w = Vec::new();
            for i in 0..10u32 {
                sim.at(Nanos::from_secs(1), move |w: &mut Vec<u32>, sim| {
                    w.push(i);
                    if i == 2 {
                        sim.halt();
                    }
                });
            }
            sim.run(&mut w);
            assert_eq!(w, vec![0, 1, 2]);
            assert_eq!(sim.pending(), 7);
            sim.run(&mut w);
            assert_eq!(w, (0..10).collect::<Vec<_>>());
        });
    }

    #[test]
    fn keyed_events_interleave_with_closures() {
        fn bump(w: &mut Vec<u32>, _: &mut Sim<Vec<u32>>, key: u64) {
            w.push(key as u32);
        }
        both(|mk| {
            let mut sim = mk();
            let mut w = Vec::new();
            sim.at_keyed(Nanos::from_secs(1), 10, bump);
            sim.at(Nanos::from_secs(1), |w: &mut Vec<u32>, _| w.push(11));
            sim.at_keyed(Nanos::from_secs(1), 12, bump);
            sim.run(&mut w);
            assert_eq!(w, vec![10, 11, 12]);
        });
    }

    #[test]
    fn run_budgeted_reports_stop_reason() {
        fn rearm(_: &mut (), sim: &mut Sim<()>) {
            sim.after(Nanos::from_micros(1), rearm);
        }
        let mut sim: Sim<()> = Sim::new();
        sim.soon(rearm);
        assert_eq!(sim.run_budgeted(&mut (), 100), RunOutcome::BudgetExhausted);

        let mut quiet: Sim<u32> = Sim::new();
        let mut w = 0u32;
        quiet.at(Nanos::from_secs(1), |w: &mut u32, _| *w += 1);
        assert_eq!(quiet.run_budgeted(&mut w, 100), RunOutcome::Quiescent);

        let mut halting: Sim<u32> = Sim::new();
        halting.at(Nanos::from_secs(1), |_: &mut u32, sim| sim.halt());
        assert_eq!(halting.run_budgeted(&mut w, 100), RunOutcome::Halted);
    }

    #[test]
    fn budget_expiring_mid_batch_stops_at_same_event_on_both_engines() {
        // A same-tick storm of 20 events with a budget of 7 must fire
        // exactly events 0..7 — identically on wheel and heap — and resume
        // deterministically.
        let run = |mk: fn() -> Sim<Vec<u32>>| {
            let mut sim = mk();
            let mut w = Vec::new();
            for i in 0..20u32 {
                sim.at(Nanos::from_millis(3), move |w: &mut Vec<u32>, _| w.push(i));
            }
            assert_eq!(sim.run_budgeted(&mut w, 7), RunOutcome::BudgetExhausted);
            assert_eq!(sim.events_fired(), 7);
            let mid = w.clone();
            assert_eq!(sim.run_budgeted(&mut w, 100), RunOutcome::Quiescent);
            (mid, w)
        };
        assert_eq!(run(Sim::new), run(Sim::new_reference));
    }

    #[test]
    fn run_bounded_detects_runaway() {
        fn rearm(_: &mut (), sim: &mut Sim<()>) {
            sim.after(Nanos::from_micros(1), rearm);
        }
        let mut sim: Sim<()> = Sim::new();
        sim.soon(rearm);
        assert!(!sim.run_bounded(&mut (), 1000));
        assert_eq!(sim.events_fired(), 1000);
    }

    #[test]
    fn far_future_timers_cross_the_wheel_horizon() {
        // Seconds-to-minutes timers exercise level 2 and the overflow tier.
        both(|mk| {
            let mut sim = mk();
            let mut w = Vec::new();
            for (i, secs) in [120u64, 1, 600, 30, 17, 18].into_iter().enumerate() {
                sim.at(Nanos::from_secs(secs), move |w: &mut Vec<u32>, _| {
                    w.push(i as u32)
                });
            }
            sim.run(&mut w);
            assert_eq!(w, vec![1, 4, 5, 3, 0, 2]);
            assert_eq!(sim.now(), Nanos::from_secs(600));
        });
    }
}
