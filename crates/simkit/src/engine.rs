//! The event queue.
//!
//! [`Sim<W>`] is a priority queue of `(time, seq, closure)` entries, generic
//! over the world type `W` so that this crate stays independent of the
//! operating-system model built on top of it. All simulation state lives in
//! the world; events are one-shot closures. Two events scheduled for the
//! same instant fire in scheduling order (FIFO), which makes runs fully
//! deterministic.

use crate::time::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled one-shot event.
type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Sim<W>)>;

struct Entry<W> {
    at: Nanos,
    seq: u64,
    f: EventFn<W>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Entry<W> {}
impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Entry<W> {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The discrete-event simulator core.
///
/// ```
/// use simkit::{Sim, Nanos};
///
/// let mut sim: Sim<Vec<u64>> = Sim::new();
/// let mut world = Vec::new();
/// sim.after(Nanos::from_secs(2), |w: &mut Vec<u64>, _| w.push(2));
/// sim.after(Nanos::from_secs(1), |w: &mut Vec<u64>, sim| {
///     w.push(1);
///     sim.after(Nanos::from_secs(5), |w: &mut Vec<u64>, _| w.push(6));
/// });
/// sim.run(&mut world);
/// assert_eq!(world, vec![1, 2, 6]);
/// assert_eq!(sim.now(), Nanos::from_secs(6));
/// ```
pub struct Sim<W> {
    now: Nanos,
    seq: u64,
    fired: u64,
    halted: bool,
    queue: BinaryHeap<Entry<W>>,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// An empty simulator positioned at `t = 0`.
    pub fn new() -> Self {
        Sim {
            now: Nanos::ZERO,
            seq: 0,
            fired: 0,
            halted: false,
            queue: BinaryHeap::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of events fired so far (diagnostics / runaway detection).
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `f` at absolute time `at`. Scheduling into the past is a
    /// logic error and panics (it would silently reorder causality).
    pub fn at(&mut self, at: Nanos, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at:?} < now {:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry {
            at,
            seq,
            f: Box::new(f),
        });
    }

    /// Schedule `f` after a delay of `dt` from the current time.
    pub fn after(&mut self, dt: Nanos, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) {
        self.at(self.now + dt, f);
    }

    /// Schedule `f` to run "immediately" (after the current event, same time).
    pub fn soon(&mut self, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) {
        self.at(self.now, f);
    }

    /// Stop the run loop after the current event completes.
    pub fn halt(&mut self) {
        self.halted = true;
    }

    /// Fire a single event if one is pending. Returns `false` when the queue
    /// was empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        let Some(entry) = self.queue.pop() else {
            return false;
        };
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.fired += 1;
        (entry.f)(world, self);
        true
    }

    /// Run until the queue drains or [`Sim::halt`] is called.
    pub fn run(&mut self, world: &mut W) {
        self.halted = false;
        while !self.halted && self.step(world) {}
    }

    /// Run until the queue drains, `halt` is called, or virtual time would
    /// pass `deadline`; events scheduled after the deadline stay queued.
    pub fn run_until(&mut self, world: &mut W, deadline: Nanos) {
        self.halted = false;
        while !self.halted {
            match self.queue.peek() {
                Some(e) if e.at <= deadline => {
                    self.step(world);
                }
                _ => break,
            }
        }
    }

    /// Run with a budget on the number of events, as a watchdog against
    /// non-terminating protocols in tests. Returns `true` if the queue
    /// drained within the budget.
    pub fn run_bounded(&mut self, world: &mut W, max_events: u64) -> bool {
        matches!(
            self.run_budgeted(world, max_events),
            RunOutcome::Quiescent | RunOutcome::Halted
        )
    }

    /// Like [`Sim::run_bounded`], but reports *why* the loop stopped so
    /// callers can distinguish "budget exhausted" (raise the budget) from a
    /// genuinely drained queue or an explicit halt.
    pub fn run_budgeted(&mut self, world: &mut W, max_events: u64) -> RunOutcome {
        self.halted = false;
        let start = self.fired;
        loop {
            if self.halted {
                return RunOutcome::Halted;
            }
            if self.fired - start >= max_events {
                return RunOutcome::BudgetExhausted;
            }
            if !self.step(world) {
                return RunOutcome::Quiescent;
            }
        }
    }
}

/// Why a budgeted run loop stopped (see [`Sim::run_budgeted`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Quiescent,
    /// [`Sim::halt`] was called by an event.
    Halted,
    /// The event budget ran out with events still pending — either a
    /// livelock/deadlock in the model or a budget set too low.
    BudgetExhausted,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_same_instant() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut w = Vec::new();
        for i in 0..10u32 {
            sim.at(Nanos::from_secs(1), move |w: &mut Vec<u32>, _| w.push(i));
        }
        sim.run(&mut w);
        assert_eq!(w, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn time_ordering_dominates_insertion_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut w = Vec::new();
        sim.at(Nanos::from_secs(3), |w: &mut Vec<u32>, _| w.push(3));
        sim.at(Nanos::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        sim.at(Nanos::from_secs(2), |w: &mut Vec<u32>, _| w.push(2));
        sim.run(&mut w);
        assert_eq!(w, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim: Sim<()> = Sim::new();
        sim.at(Nanos::from_secs(5), |_, sim| {
            sim.at(Nanos::from_secs(1), |_, _| {});
        });
        sim.run(&mut ());
    }

    #[test]
    fn run_until_leaves_future_events_queued() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut w = Vec::new();
        sim.at(Nanos::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        sim.at(Nanos::from_secs(10), |w: &mut Vec<u32>, _| w.push(10));
        sim.run_until(&mut w, Nanos::from_secs(5));
        assert_eq!(w, vec![1]);
        assert_eq!(sim.pending(), 1);
        sim.run(&mut w);
        assert_eq!(w, vec![1, 10]);
    }

    #[test]
    fn halt_stops_the_loop() {
        let mut sim: Sim<u32> = Sim::new();
        let mut w = 0u32;
        sim.at(Nanos::from_secs(1), |w: &mut u32, sim| {
            *w += 1;
            sim.halt();
        });
        sim.at(Nanos::from_secs(2), |w: &mut u32, _| *w += 100);
        sim.run(&mut w);
        assert_eq!(w, 1);
        // Resuming picks the remaining event back up.
        sim.run(&mut w);
        assert_eq!(w, 101);
    }

    #[test]
    fn run_budgeted_reports_stop_reason() {
        fn rearm(_: &mut (), sim: &mut Sim<()>) {
            sim.after(Nanos::from_micros(1), rearm);
        }
        let mut sim: Sim<()> = Sim::new();
        sim.soon(rearm);
        assert_eq!(sim.run_budgeted(&mut (), 100), RunOutcome::BudgetExhausted);

        let mut quiet: Sim<u32> = Sim::new();
        let mut w = 0u32;
        quiet.at(Nanos::from_secs(1), |w: &mut u32, _| *w += 1);
        assert_eq!(quiet.run_budgeted(&mut w, 100), RunOutcome::Quiescent);

        let mut halting: Sim<u32> = Sim::new();
        halting.at(Nanos::from_secs(1), |_: &mut u32, sim| sim.halt());
        assert_eq!(halting.run_budgeted(&mut w, 100), RunOutcome::Halted);
    }

    #[test]
    fn run_bounded_detects_runaway() {
        fn rearm(_: &mut (), sim: &mut Sim<()>) {
            sim.after(Nanos::from_micros(1), rearm);
        }
        let mut sim: Sim<()> = Sim::new();
        sim.soon(rearm);
        assert!(!sim.run_bounded(&mut (), 1000));
        assert_eq!(sim.events_fired(), 1000);
    }
}
