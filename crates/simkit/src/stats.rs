//! Small statistics helpers for the experiment harness.
//!
//! The paper reports means with ±1σ error bars over 10 repetitions
//! (Figure 4); [`Summary`] provides exactly that, computed with Welford's
//! online algorithm so long sweeps stay numerically stable.

/// Mean / standard deviation / extrema of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator); 0 for n < 2.
    pub stddev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (nearest-rank 50th percentile).
    pub p50: f64,
    /// Nearest-rank 90th percentile.
    pub p90: f64,
    /// Nearest-rank 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Summarize a slice of observations. Panics on an empty slice — an
    /// experiment that produced no data is a harness bug worth failing loud.
    pub fn of(xs: &[f64]) -> Summary {
        assert!(!xs.is_empty(), "Summary::of on empty sample");
        let mut mean = 0.0;
        let mut m2 = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for (i, &x) in xs.iter().enumerate() {
            let delta = x - mean;
            mean += delta / (i + 1) as f64;
            m2 += delta * (x - mean);
            min = min.min(x);
            max = max.max(x);
        }
        let n = xs.len();
        let stddev = if n > 1 {
            (m2 / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
        Summary {
            n,
            mean,
            stddev,
            min,
            max,
            p50: percentile_sorted(&sorted, 50.0),
            p90: percentile_sorted(&sorted, 90.0),
            p99: percentile_sorted(&sorted, 99.0),
        }
    }

    /// Nearest-rank percentile of the original sample, `p` in (0, 100].
    pub fn percentile_of(xs: &[f64], p: f64) -> f64 {
        assert!(!xs.is_empty(), "percentile of empty sample");
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
        percentile_sorted(&sorted, p)
    }
}

/// Nearest-rank percentile on an already-sorted sample: the smallest
/// observation such that at least `p`% of the sample is ≤ it.
fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Render a byte count the way the paper's axes do (MB = 2^20).
pub fn fmt_mb(bytes: u64) -> String {
    format!("{:.1} MB", bytes as f64 / (1u64 << 20) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_observation() {
        let s = Summary::of(&[3.0]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample stddev of this classic dataset is sqrt(32/7).
        assert!((s.stddev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        // Nearest-rank percentiles of the sorted set [2,4,4,4,5,5,7,9]:
        // p50 → rank ceil(0.5·8)=4 → 4; p90 → rank ceil(0.9·8)=8 → 9.
        assert_eq!(s.p50, 4.0);
        assert_eq!(s.p90, 9.0);
        assert_eq!(s.p99, 9.0);
    }

    #[test]
    fn percentiles_on_known_datasets() {
        // 1..=100: nearest-rank pXX of 100 items is exactly XX.
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&xs);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.p99, 99.0);
        // Order must not matter.
        let mut rev = xs.clone();
        rev.reverse();
        assert_eq!(Summary::of(&rev).p90, 90.0);
        // Single observation: every percentile is that observation.
        let one = Summary::of(&[7.5]);
        assert_eq!((one.p50, one.p90, one.p99), (7.5, 7.5, 7.5));
        // Small sample: [10, 20]: p50 is the first element, p90/p99 the last.
        let two = Summary::of(&[20.0, 10.0]);
        assert_eq!((two.p50, two.p90, two.p99), (10.0, 20.0, 20.0));
        assert_eq!(Summary::percentile_of(&xs, 1.0), 1.0);
        assert_eq!(Summary::percentile_of(&xs, 100.0), 100.0);
    }

    #[test]
    fn welford_is_stable_with_large_offsets() {
        let base = 1e9;
        let xs: Vec<f64> = (0..1000).map(|i| base + (i % 10) as f64).collect();
        let s = Summary::of(&xs);
        assert!((s.mean - (base + 4.5)).abs() < 1e-3);
        assert!(s.stddev > 2.0 && s.stddev < 3.5);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        Summary::of(&[]);
    }

    #[test]
    fn fmt_mb_uses_binary_megabytes() {
        assert_eq!(fmt_mb(1 << 20), "1.0 MB");
        assert_eq!(fmt_mb(225 * (1 << 20)), "225.0 MB");
    }
}
