//! Deterministic random number generation.
//!
//! The simulator needs randomness whose sequence is stable *forever* — a
//! checkpoint written by one build must restore bit-identically under a
//! later build, and CI must reproduce the paper's figures exactly. We
//! therefore pin the algorithm in-tree: SplitMix64 for seeding and
//! xoshiro256++ for the stream (public-domain reference constants).

/// SplitMix64 step — used for seed expansion and cheap stateless hashing.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a pair of values into a well-mixed 64-bit seed.
pub fn mix2(a: u64, b: u64) -> u64 {
    let mut s = a ^ b.rotate_left(32) ^ 0x51_7C_C1_B7_27_22_0A_95;
    splitmix64(&mut s)
}

/// A deterministic xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Seed from a single 64-bit value via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)` via Lemire's multiply-shift (bound > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // Widening multiply; the tiny modulo bias (< 2^-64 * bound) is
        // irrelevant for workload generation.
        let x = self.next_u64();
        ((x as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fill a byte slice.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        let mut chunks = out.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }

    /// A derived, independent stream (for per-entity RNGs).
    pub fn fork(&mut self, tag: u64) -> DetRng {
        DetRng::seed_from_u64(mix2(self.next_u64(), tag))
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// The raw 32-byte generator state (for checkpointing the generator).
    pub fn state_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, word) in self.s.iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Rebuild a generator from [`DetRng::state_bytes`] output.
    pub fn from_state_bytes(bytes: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            *word = u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().expect("fixed size"));
        }
        // An all-zero state would lock xoshiro at zero forever; it can only
        // arise from corrupted input, so reseed deterministically instead.
        if s == [0u64; 4] {
            return DetRng::seed_from_u64(0);
        }
        DetRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound_and_covers_range() {
        let mut r = DetRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut r = DetRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_handles_unaligned_lengths() {
        let mut r = DetRng::seed_from_u64(3);
        for len in [0usize, 1, 7, 8, 9, 31, 64] {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            if len >= 16 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} all zeros");
            }
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = DetRng::seed_from_u64(1234);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.unit_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut base1 = DetRng::seed_from_u64(5);
        let mut base2 = DetRng::seed_from_u64(5);
        let mut f1 = base1.fork(1);
        let mut f2 = base2.fork(1);
        for _ in 0..100 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
        let mut g = base1.fork(2);
        assert_ne!(g.next_u64(), f1.next_u64());
    }
}
