//! `simkit` — the deterministic discrete-event simulation kernel underneath
//! the DMTCP reproduction.
//!
//! The crate provides five small, orthogonal pieces:
//!
//! * [`time`] — virtual time as integer nanoseconds ([`Nanos`]), so every run
//!   is exactly reproducible (no floating-point drift in the event queue).
//! * [`engine`] — the event queue generic over the *world* type. The world
//!   owns all mutable simulation state; events are boxed `FnOnce` closures
//!   that receive `(&mut W, &mut Sim<W>)`, or zero-allocation keyed
//!   function pointers for hot periodic work. The default queue is a
//!   hierarchical timer wheel with an overflow heap tier; the original
//!   `BinaryHeap` engine is retained as the order-of-delivery reference
//!   (`Sim::new_reference`).
//! * [`resource`] — analytic hardware resources (FIFO bandwidth pipes, core
//!   pools) used to charge virtual time for disk writes, NIC transfers,
//!   compression, and similar work.
//! * [`rng`] — a deterministic SplitMix64 / xoshiro256++ generator that is
//!   stable across toolchain and dependency upgrades (unlike `rand`'s
//!   `SmallRng`, whose algorithm is unspecified).
//! * [`snap`] — a tiny self-describing-enough binary codec used to serialize
//!   simulated program state into thread "stack regions", and checkpoint
//!   image metadata onto simulated disks.
//!
//! Nothing in this crate knows about operating systems or checkpointing; it
//! is the analogue of "physics" for the simulated cluster.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod resource;
pub mod rng;
pub mod snap;
pub mod stats;
pub mod time;
pub mod trace;
mod wheel;

pub use engine::{RunOutcome, Sim};
pub use rng::{mix2, splitmix64, DetRng};
pub use snap::{Snap, SnapError, SnapReader, SnapWriter};
pub use stats::Summary;
pub use time::Nanos;
pub use trace::{Ring, Trace, TraceEvent};
