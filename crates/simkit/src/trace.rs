//! A lightweight, allocation-frugal trace facility.
//!
//! Worlds embed a [`Trace`] and call [`Trace::emit`] at interesting protocol
//! points (barrier reached, socket drained, image written). Traces are off
//! by default so the hot path costs one branch; tests switch them on to
//! assert protocol *order* (e.g. "no process writes its image before every
//! process passed the drain barrier").

use crate::time::Nanos;

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time at which the event was emitted.
    pub at: Nanos,
    /// Free-form category tag, e.g. `"barrier"`.
    pub tag: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

/// An in-memory event trace.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// A disabled trace (events are dropped).
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// An enabled trace that records everything.
    pub fn enabled() -> Self {
        Trace {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// Whether events are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turn recording on/off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Record an event (cheap no-op when disabled). `detail` is only
    /// evaluated lazily by callers that use [`Trace::emit_with`].
    pub fn emit(&mut self, at: Nanos, tag: &'static str, detail: impl Into<String>) {
        if self.enabled {
            self.events.push(TraceEvent {
                at,
                tag,
                detail: detail.into(),
            });
        }
    }

    /// Record an event, building the detail string only if enabled.
    pub fn emit_with(&mut self, at: Nanos, tag: &'static str, f: impl FnOnce() -> String) {
        if self.enabled {
            let detail = f();
            self.events.push(TraceEvent { at, tag, detail });
        }
    }

    /// All recorded events in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events with a given tag, in order.
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.tag == tag)
    }

    /// Index of the first event with `tag` whose detail contains `needle`.
    pub fn position(&self, tag: &str, needle: &str) -> Option<usize> {
        self.events
            .iter()
            .position(|e| e.tag == tag && e.detail.contains(needle))
    }

    /// Drop all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.emit(Nanos::ZERO, "x", "hello");
        assert!(t.events().is_empty());
    }

    #[test]
    fn emit_with_skips_closure_when_disabled() {
        let mut t = Trace::disabled();
        let mut called = false;
        t.emit_with(Nanos::ZERO, "x", || {
            called = true;
            String::from("never")
        });
        assert!(!called);
    }

    #[test]
    fn ordering_and_filtering() {
        let mut t = Trace::enabled();
        t.emit(Nanos::from_secs(1), "a", "first");
        t.emit(Nanos::from_secs(2), "b", "second");
        t.emit(Nanos::from_secs(3), "a", "third");
        assert_eq!(t.events().len(), 3);
        let tags: Vec<_> = t.with_tag("a").map(|e| e.detail.as_str()).collect();
        assert_eq!(tags, vec!["first", "third"]);
        assert_eq!(t.position("b", "sec"), Some(1));
        assert_eq!(t.position("b", "zzz"), None);
    }
}
