//! A lightweight, allocation-frugal trace facility.
//!
//! Worlds embed a [`Trace`] and call [`Trace::emit`] at interesting protocol
//! points (barrier reached, socket drained, image written). Traces are off
//! by default so the hot path costs one branch; tests switch them on to
//! assert protocol *order* (e.g. "no process writes its image before every
//! process passed the drain barrier").
//!
//! Storage is a bounded [`Ring`]: an enabled trace on a long simulation
//! retains only the newest `capacity` events instead of growing without
//! limit. The same ring type backs the span recorder in the `obs` crate.

use crate::time::Nanos;

/// Default number of events a [`Trace`] retains before evicting the oldest.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// A bounded buffer that keeps the newest `capacity` items.
///
/// Backed by a `Vec` whose contents stay contiguous (so readers get plain
/// slices); overflow evicts the oldest half in one block, which amortizes to
/// O(1) per push while guaranteeing `len() <= capacity()` after every push.
#[derive(Debug, Clone)]
pub struct Ring<T> {
    cap: usize,
    buf: Vec<T>,
    evicted: u64,
}

impl<T> Ring<T> {
    /// A ring retaining at most `capacity` items (clamped to at least 2).
    pub fn new(capacity: usize) -> Self {
        Ring {
            cap: capacity.max(2),
            buf: Vec::new(),
            evicted: 0,
        }
    }

    /// Append an item, evicting the oldest items if the ring is full.
    pub fn push(&mut self, item: T) {
        if self.buf.len() >= self.cap {
            let drop_n = (self.cap / 2).max(1);
            self.buf.drain(..drop_n);
            self.evicted += drop_n as u64;
        }
        self.buf.push(item);
    }

    /// The retained items, oldest first.
    pub fn as_slice(&self) -> &[T] {
        &self.buf
    }

    /// Iterate the retained items, oldest first.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.buf.iter()
    }

    /// Number of retained items.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Change the retention bound (evicts oldest items if shrinking).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.cap = capacity.max(2);
        if self.buf.len() > self.cap {
            let drop_n = self.buf.len() - self.cap;
            self.buf.drain(..drop_n);
            self.evicted += drop_n as u64;
        }
    }

    /// How many items have been evicted since the last [`Ring::clear`].
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Drop everything (also resets the eviction counter).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.evicted = 0;
    }
}

impl<T> Default for Ring<T> {
    fn default() -> Self {
        Ring::new(DEFAULT_TRACE_CAPACITY)
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time at which the event was emitted.
    pub at: Nanos,
    /// Free-form category tag, e.g. `"barrier"`.
    pub tag: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

/// An in-memory event trace, bounded to [`DEFAULT_TRACE_CAPACITY`] events
/// unless configured otherwise with [`Trace::with_capacity`].
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Ring<TraceEvent>,
}

impl Trace {
    /// A disabled trace (events are dropped).
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// An enabled trace that records everything (up to the default bound).
    pub fn enabled() -> Self {
        Trace {
            enabled: true,
            events: Ring::default(),
        }
    }

    /// A disabled trace retaining at most `capacity` events once enabled.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            enabled: false,
            events: Ring::new(capacity),
        }
    }

    /// Whether events are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turn recording on/off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.events.capacity()
    }

    /// Change the retention bound (evicts oldest events if shrinking).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.events.set_capacity(capacity);
    }

    /// How many events the bound has evicted so far.
    pub fn evicted(&self) -> u64 {
        self.events.evicted()
    }

    /// Record an event (cheap no-op when disabled). `detail` is only
    /// evaluated lazily by callers that use [`Trace::emit_with`].
    pub fn emit(&mut self, at: Nanos, tag: &'static str, detail: impl Into<String>) {
        if self.enabled {
            self.events.push(TraceEvent {
                at,
                tag,
                detail: detail.into(),
            });
        }
    }

    /// Record an event, building the detail string only if enabled.
    pub fn emit_with(&mut self, at: Nanos, tag: &'static str, f: impl FnOnce() -> String) {
        if self.enabled {
            let detail = f();
            self.events.push(TraceEvent { at, tag, detail });
        }
    }

    /// All retained events in emission order (oldest may have been evicted).
    pub fn events(&self) -> &[TraceEvent] {
        self.events.as_slice()
    }

    /// Events with a given tag, in order.
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.tag == tag)
    }

    /// Index of the first retained event with `tag` whose detail contains
    /// `needle`.
    pub fn position(&self, tag: &str, needle: &str) -> Option<usize> {
        self.events
            .as_slice()
            .iter()
            .position(|e| e.tag == tag && e.detail.contains(needle))
    }

    /// Drop all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.emit(Nanos::ZERO, "x", "hello");
        assert!(t.events().is_empty());
    }

    #[test]
    fn emit_with_skips_closure_when_disabled() {
        let mut t = Trace::disabled();
        let mut called = false;
        t.emit_with(Nanos::ZERO, "x", || {
            called = true;
            String::from("never")
        });
        assert!(!called);
    }

    #[test]
    fn ordering_and_filtering() {
        let mut t = Trace::enabled();
        t.emit(Nanos::from_secs(1), "a", "first");
        t.emit(Nanos::from_secs(2), "b", "second");
        t.emit(Nanos::from_secs(3), "a", "third");
        assert_eq!(t.events().len(), 3);
        let tags: Vec<_> = t.with_tag("a").map(|e| e.detail.as_str()).collect();
        assert_eq!(tags, vec!["first", "third"]);
        assert_eq!(t.position("b", "sec"), Some(1));
        assert_eq!(t.position("b", "zzz"), None);
    }

    #[test]
    fn bounded_trace_keeps_newest() {
        let mut t = Trace::with_capacity(8);
        t.set_enabled(true);
        for i in 0..100u64 {
            t.emit(Nanos(i), "n", i.to_string());
        }
        assert!(t.events().len() <= 8);
        assert_eq!(t.events().last().unwrap().detail, "99");
        assert_eq!(t.evicted() as usize + t.events().len(), 100);
        // Retained events stay in emission order.
        let ats: Vec<u64> = t.events().iter().map(|e| e.at.0).collect();
        let mut sorted = ats.clone();
        sorted.sort_unstable();
        assert_eq!(ats, sorted);
    }

    #[test]
    fn ring_eviction_is_block_wise_and_counted() {
        let mut r: Ring<u32> = Ring::new(4);
        for i in 0..6 {
            r.push(i);
        }
        // Overflow at the 5th push evicted the oldest half (0, 1).
        assert_eq!(r.as_slice(), &[2, 3, 4, 5]);
        assert_eq!(r.evicted(), 2);
        r.set_capacity(2);
        assert_eq!(r.as_slice(), &[4, 5]);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.evicted(), 0);
    }
}
