//! Virtual time, represented as integer nanoseconds.
//!
//! Using an integer representation (rather than `f64` seconds) keeps the
//! event queue totally ordered and bit-for-bit reproducible: two events
//! scheduled at the same instant tie-break on a sequence number, never on
//! floating-point rounding.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or span of) virtual time, in nanoseconds.
///
/// `Nanos` is used both as an instant and as a duration; the simulation only
/// ever needs the monoid structure, so a second type would add noise without
/// catching real bugs here.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// The origin of virtual time.
    pub const ZERO: Nanos = Nanos(0);
    /// The maximum representable instant (used as "never").
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// A span of whole nanoseconds (identity, for symmetry with the other
    /// constructors).
    pub const fn from_nanos(n: u64) -> Nanos {
        Nanos(n)
    }

    /// This instant/span as whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// A span of whole seconds.
    pub const fn from_secs(s: u64) -> Nanos {
        Nanos(s * 1_000_000_000)
    }

    /// A span of whole milliseconds.
    pub const fn from_millis(ms: u64) -> Nanos {
        Nanos(ms * 1_000_000)
    }

    /// A span of whole microseconds.
    pub const fn from_micros(us: u64) -> Nanos {
        Nanos(us * 1_000)
    }

    /// A span from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative and non-finite inputs clamp to zero: resource math can
    /// produce `-0.0`-ish values from subtracting nearly equal floats, and a
    /// simulation must never schedule into the past.
    pub fn from_secs_f64(s: f64) -> Nanos {
        if !s.is_finite() || s <= 0.0 {
            return Nanos::ZERO;
        }
        Nanos((s * 1e9).round() as u64)
    }

    /// This instant/span as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This instant/span as fractional milliseconds (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction; `a.saturating_sub(b)` is zero when `b > a`.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// The later of two instants.
    pub fn max(self, rhs: Nanos) -> Nanos {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// The earlier of two instants.
    pub fn min(self, rhs: Nanos) -> Nanos {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.checked_add(rhs.0).expect("virtual time overflow"))
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        *self = *self + rhs;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.checked_sub(rhs.0).expect("virtual time underflow"))
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        *self = *self - rhs;
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_secs(2), Nanos(2_000_000_000));
        assert_eq!(Nanos::from_millis(2_000), Nanos::from_secs(2));
        assert_eq!(Nanos::from_micros(2_000_000), Nanos::from_secs(2));
        assert_eq!(Nanos::from_secs_f64(2.0), Nanos::from_secs(2));
    }

    #[test]
    fn from_secs_f64_clamps_garbage() {
        assert_eq!(Nanos::from_secs_f64(-1.0), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(f64::NAN), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(f64::NEG_INFINITY), Nanos::ZERO);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = Nanos::from_secs(1);
        let b = Nanos::from_millis(500);
        assert_eq!(a + b, Nanos::from_millis(1500));
        assert_eq!(a - b, Nanos::from_millis(500));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert!(a > b);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn roundtrips_through_f64_for_small_values() {
        let t = Nanos::from_micros(123_456);
        assert_eq!(Nanos::from_secs_f64(t.as_secs_f64()), t);
    }
}
