//! Randomized property tests for the simulation kernel, driven by the
//! kernel's own deterministic RNG (the workspace builds offline, so there
//! is no proptest dependency — seeds are fixed and failures reproducible).

use simkit::{DetRng, Nanos, Sim, Snap};

const CASES: u64 = 64;

/// Any schedule of (time, id) pairs fires in (time, insertion) order.
#[test]
fn events_fire_in_time_then_insertion_order() {
    let mut rng = DetRng::seed_from_u64(0xE1E1);
    for case in 0..CASES {
        let n = rng.range(1, 200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.below(1_000_000)).collect();
        let mut sim: Sim<Vec<(u64, usize)>> = Sim::new();
        let mut fired = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            sim.at(Nanos(t), move |w: &mut Vec<(u64, usize)>, _| w.push((t, i)));
        }
        sim.run(&mut fired);

        let mut expect: Vec<(u64, usize)> = times.iter().copied().zip(0..).collect();
        expect.sort_by_key(|&(t, i)| (t, i));
        assert_eq!(fired, expect, "case {case}");
    }
}

/// Varints roundtrip for arbitrary u64 values (and the edge cases).
#[test]
fn varint_roundtrip() {
    let mut rng = DetRng::seed_from_u64(0xA11);
    let mut vals = vec![0u64, 1, 127, 128, u64::MAX, u64::MAX - 1];
    vals.extend((0..256).map(|_| rng.next_u64()));
    vals.extend((0..64).map(|b| 1u64 << b));
    for v in vals {
        assert_eq!(u64::from_snap_bytes(&v.to_snap_bytes()).unwrap(), v);
    }
}

/// Zig-zag signed encoding roundtrips.
#[test]
fn signed_roundtrip() {
    let mut rng = DetRng::seed_from_u64(0x516);
    let mut vals = vec![0i64, 1, -1, i64::MIN, i64::MAX];
    vals.extend((0..256).map(|_| rng.next_u64() as i64));
    for v in vals {
        assert_eq!(i64::from_snap_bytes(&v.to_snap_bytes()).unwrap(), v);
    }
}

fn rand_string(rng: &mut DetRng) -> String {
    let n = rng.below(12) as usize;
    (0..n)
        .map(|_| char::from_u32(rng.range(32, 0x2FF) as u32).unwrap_or('?'))
        .collect()
}

/// Nested containers roundtrip.
#[test]
fn nested_roundtrip() {
    let mut rng = DetRng::seed_from_u64(0xB0B);
    for case in 0..CASES {
        let n = rng.below(32) as usize;
        let v: Vec<(u32, Option<String>, Vec<i32>)> = (0..n)
            .map(|_| {
                let opt = if rng.chance(0.5) {
                    Some(rand_string(&mut rng))
                } else {
                    None
                };
                let inner: Vec<i32> = (0..rng.below(8)).map(|_| rng.next_u32() as i32).collect();
                (rng.next_u32(), opt, inner)
            })
            .collect();
        let bytes = v.to_snap_bytes();
        assert_eq!(
            <Vec<(u32, Option<String>, Vec<i32>)>>::from_snap_bytes(&bytes).unwrap(),
            v,
            "case {case}"
        );
    }
}

/// Arbitrary byte garbage never panics the decoder.
#[test]
fn decoder_is_total() {
    let mut rng = DetRng::seed_from_u64(0xDEC0);
    for _ in 0..512 {
        let n = rng.below(256) as usize;
        let mut bytes = vec![0u8; n];
        rng.fill_bytes(&mut bytes);
        let _ = <Vec<(u32, String)>>::from_snap_bytes(&bytes);
        let _ = <Option<Vec<u64>>>::from_snap_bytes(&bytes);
        let _ = String::from_snap_bytes(&bytes);
    }
}

/// The FIFO pipe never completes a later request before an earlier one,
/// and total busy time equals bytes/rate.
#[test]
fn pipe_is_fifo_and_work_conserving() {
    let mut rng = DetRng::seed_from_u64(0xF1F0);
    for case in 0..CASES {
        let sizes: Vec<u64> = (0..rng.range(1, 50))
            .map(|_| rng.range(1, 10_000_000))
            .collect();
        let rate = 1_000_000.0; // 1 MB/s
        let mut pipe = simkit::resource::Pipe::new(rate);
        let mut last = Nanos::ZERO;
        for &s in &sizes {
            let end = pipe.transfer(Nanos::ZERO, s);
            assert!(end >= last, "case {case}: FIFO violated");
            last = end;
        }
        let total: u64 = sizes.iter().sum();
        let expect = total as f64 / rate;
        assert!(
            (last.as_secs_f64() - expect).abs() < 1e-3 * sizes.len() as f64,
            "case {case}: not work-conserving"
        );
    }
}

/// CorePool with one core equals a FIFO queue; with many cores, makespan
/// is never worse than one core and never better than critical path.
#[test]
fn core_pool_bounds() {
    let mut rng = DetRng::seed_from_u64(0xC0DE);
    for case in 0..CASES {
        let durs: Vec<u64> = (0..rng.range(1, 40))
            .map(|_| rng.range(1, 1_000_000))
            .collect();
        let cores = rng.range(1, 8) as usize;
        let mut pool = simkit::resource::CorePool::new(cores);
        let mut makespan = Nanos::ZERO;
        for &d in &durs {
            let (_, end) = pool.run(Nanos::ZERO, Nanos(d));
            makespan = makespan.max(end);
        }
        let total: u64 = durs.iter().sum();
        let longest = *durs.iter().max().unwrap();
        assert!(makespan.0 >= total / cores as u64, "case {case}");
        assert!(makespan.0 >= longest, "case {case}");
        assert!(makespan.0 <= total, "case {case}");
    }
}
