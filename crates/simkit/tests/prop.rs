//! Property-based tests for the simulation kernel.

use proptest::prelude::*;
use simkit::{Nanos, Sim, Snap};

proptest! {
    /// Any schedule of (time, id) pairs fires in (time, insertion) order.
    #[test]
    fn events_fire_in_time_then_insertion_order(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut sim: Sim<Vec<(u64, usize)>> = Sim::new();
        let mut fired = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            sim.at(Nanos(t), move |w: &mut Vec<(u64, usize)>, _| w.push((t, i)));
        }
        sim.run(&mut fired);

        let mut expect: Vec<(u64, usize)> = times.iter().copied().zip(0..).collect();
        expect.sort_by_key(|&(t, i)| (t, i));
        prop_assert_eq!(fired, expect);
    }

    /// Varints roundtrip for arbitrary u64 values.
    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        prop_assert_eq!(u64::from_snap_bytes(&v.to_snap_bytes()).unwrap(), v);
    }

    /// Zig-zag signed encoding roundtrips.
    #[test]
    fn signed_roundtrip(v in any::<i64>()) {
        prop_assert_eq!(i64::from_snap_bytes(&v.to_snap_bytes()).unwrap(), v);
    }

    /// Nested containers roundtrip.
    #[test]
    fn nested_roundtrip(v in proptest::collection::vec(
        (any::<u32>(), proptest::option::of(".*"), proptest::collection::vec(any::<i32>(), 0..8)),
        0..32,
    )) {
        let v: Vec<(u32, Option<String>, Vec<i32>)> = v;
        let bytes = v.to_snap_bytes();
        prop_assert_eq!(<Vec<(u32, Option<String>, Vec<i32>)>>::from_snap_bytes(&bytes).unwrap(), v);
    }

    /// Arbitrary byte garbage never panics the decoder.
    #[test]
    fn decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = <Vec<(u32, String)>>::from_snap_bytes(&bytes);
        let _ = <Option<Vec<u64>>>::from_snap_bytes(&bytes);
        let _ = String::from_snap_bytes(&bytes);
    }

    /// The FIFO pipe never completes a later request before an earlier one,
    /// and total busy time equals bytes/rate.
    #[test]
    fn pipe_is_fifo_and_work_conserving(sizes in proptest::collection::vec(1u64..10_000_000, 1..50)) {
        let rate = 1_000_000.0; // 1 MB/s
        let mut pipe = simkit::resource::Pipe::new(rate);
        let mut last = Nanos::ZERO;
        for &s in &sizes {
            let end = pipe.transfer(Nanos::ZERO, s);
            prop_assert!(end >= last);
            last = end;
        }
        let total: u64 = sizes.iter().sum();
        let expect = total as f64 / rate;
        prop_assert!((last.as_secs_f64() - expect).abs() < 1e-3 * sizes.len() as f64);
    }

    /// CorePool with one core equals a FIFO queue; with many cores, makespan
    /// is never worse than one core and never better than critical path.
    #[test]
    fn core_pool_bounds(durs in proptest::collection::vec(1u64..1_000_000u64, 1..40), cores in 1usize..8) {
        let mut pool = simkit::resource::CorePool::new(cores);
        let mut makespan = Nanos::ZERO;
        for &d in &durs {
            let (_, end) = pool.run(Nanos::ZERO, Nanos(d));
            makespan = makespan.max(end);
        }
        let total: u64 = durs.iter().sum();
        let longest = *durs.iter().max().unwrap();
        prop_assert!(makespan.0 >= total / cores as u64);
        prop_assert!(makespan.0 >= longest);
        prop_assert!(makespan.0 <= total);
    }
}
