//! Differential suite: the timer-wheel engine vs the reference heap.
//!
//! The wheel (`Sim::new`) is a pure speed play — ISSUE 9's contract is that
//! it fires the *bit-identical* `(time, seq)` sequence as the original
//! `BinaryHeap` queue (`Sim::new_reference`), because replay journals, the
//! fault matrix, and every committed bench baseline depend on that order.
//! These tests run randomized schedules — same-tick storms, `soon` chains,
//! far-future timers crossing every wheel level and the overflow horizon,
//! halts, budgeted and deadline-bounded runs — through both engines and
//! assert the full fired logs and final simulator state agree exactly.
//!
//! Child events derive their behaviour purely from their own 64-bit id (via
//! `splitmix64`), never from shared RNG state, so the scenario an engine
//! sees depends only on the order in which events fire — which is exactly
//! the property under test.

use simkit::{splitmix64, DetRng, Nanos, RunOutcome, Sim};

/// The world is the fired log: `(virtual time, event id)` per delivery.
type World = Vec<(u64, u64)>;

const CASES: u64 = 48;
/// Event-id layout: generation in the top byte, entropy below.
const ID_MASK: u64 = 0x00FF_FFFF_FFFF_FFFF;
const MAX_GEN: u64 = 3;

/// Map raw entropy to a delay spanning every wheel level and the overflow
/// tier: same-instant, sub-tick, level 0 (~262 µs), level 1 (~67 ms),
/// level 2 (~17 s), and far-future (minutes).
fn delta_from(r: u64) -> u64 {
    let mut s = r;
    let m = splitmix64(&mut s);
    match r % 6 {
        0 => 0,
        1 => m % 1_000,
        2 => m % 262_144,
        3 => m % 67_000_000,
        4 => m % 17_000_000_000,
        _ => m % 300_000_000_000,
    }
}

/// The one event body. Logs itself, then (driven only by its id) spawns up
/// to three children at mixed horizons, occasionally halting the loop.
fn fire(w: &mut World, sim: &mut Sim<World>, id: u64) {
    w.push((sim.now().0, id));
    let generation = id >> 56;
    let mut state = id;
    let r = splitmix64(&mut state);
    if r.is_multiple_of(97) {
        sim.halt();
    }
    if generation >= MAX_GEN {
        return;
    }
    for _ in 0..r % 4 {
        let dr = splitmix64(&mut state);
        let child = ((generation + 1) << 56) | (splitmix64(&mut state) & ID_MASK);
        let at = sim.now() + Nanos(delta_from(dr));
        if dr & 1 == 0 {
            sim.at_keyed(at, child, fire);
        } else {
            sim.at(at, move |w: &mut World, sim| fire(w, sim, child));
        }
    }
}

/// Run one randomized scenario on the given engine and capture everything
/// observable: the fired log plus final `(now, events_fired, pending)`.
fn scenario(seed: u64, mk: fn() -> Sim<World>) -> (World, u64, u64, usize) {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut sim = mk();
    let mut log = World::new();
    for _ in 0..rng.range(2, 5) {
        // Inject a wave of top-level events, with deliberate same-instant
        // storms (several seq-adjacent events sharing one tick).
        for _ in 0..rng.range(1, 40) {
            let at = Nanos(sim.now().0 + delta_from(rng.next_u64()));
            let copies = if rng.chance(0.3) { rng.range(2, 6) } else { 1 };
            for _ in 0..copies {
                let id = rng.next_u64() & ID_MASK;
                if rng.chance(0.5) {
                    sim.at_keyed(at, id, fire);
                } else {
                    sim.at(at, move |w: &mut World, sim| fire(w, sim, id));
                }
            }
        }
        // Drain it one of three ways, so deadlines and budgets cut into
        // batches at arbitrary points.
        match rng.below(3) {
            0 => {
                let deadline = Nanos(sim.now().0 + delta_from(rng.next_u64()));
                sim.run_until(&mut log, deadline);
            }
            1 => {
                let _: RunOutcome = sim.run_budgeted(&mut log, rng.range(1, 500));
            }
            _ => sim.run(&mut log),
        }
    }
    sim.run(&mut log);
    (log, sim.now().0, sim.events_fired(), sim.pending())
}

#[test]
fn engines_are_actually_different() {
    let wheel: Sim<World> = Sim::new();
    let heap: Sim<World> = Sim::new_reference();
    assert_eq!(wheel.engine_name(), "wheel");
    assert_eq!(heap.engine_name(), "heap");
}

/// The headline property: across randomized mixed-horizon schedules with
/// halts and budgeted/bounded runs, both engines produce identical fired
/// logs and identical final state.
#[test]
fn wheel_matches_reference_on_random_schedules() {
    let mut seeds = DetRng::seed_from_u64(0xD1FF_E7E1);
    for case in 0..CASES {
        let seed = seeds.next_u64();
        let wheel = scenario(seed, Sim::new);
        let reference = scenario(seed, Sim::new_reference);
        assert_eq!(
            wheel, reference,
            "engine divergence at case {case} (seed {seed:#x})"
        );
    }
}

/// Events dropped exactly on and around every wheel-window boundary, from
/// cursors parked at awkward offsets. This is the deterministic distillation
/// of the lap-wrap bug class: a slot index that wraps past the cursor's lap
/// must still be found by the next-event scan.
#[test]
fn window_boundary_deltas_match_reference() {
    const LAP0: u64 = 1 << 18; // level-0 lap in ns (256 slots × 1024 ns)
    const LAP1: u64 = 1 << 26; // level-1 lap
    const LAP2: u64 = 1 << 34; // level-2 lap == wheel horizon
    let starts = [
        0,
        1_023,
        1_024,
        LAP0 - 1,
        LAP0,
        LAP0 + 1,
        LAP1 - 1_024,
        LAP1,
        LAP2 - 1,
        LAP2 + 12_345,
    ];
    let deltas = [
        0,
        1,
        1_023,
        1_024,
        1_025,
        LAP0 - 1,
        LAP0,
        LAP0 + 1,
        LAP1 - 1,
        LAP1,
        LAP1 + 1,
        LAP2 - 1,
        LAP2,
        LAP2 + 1,
        5 * LAP2,
    ];
    let run = |mk: fn() -> Sim<World>| -> Vec<World> {
        starts
            .iter()
            .map(|&start| {
                let mut sim = mk();
                let mut log = World::new();
                // Park the cursor at `start` (the marker event also proves
                // both engines advance `now` identically).
                sim.at(Nanos(start), |w: &mut World, sim| {
                    w.push((sim.now().0, u64::MAX))
                });
                sim.run_until(&mut log, Nanos(start));
                for (i, &d) in deltas.iter().enumerate() {
                    sim.at_keyed(Nanos(start + d), i as u64, |w, sim, id| {
                        w.push((sim.now().0, id))
                    });
                }
                sim.run(&mut log);
                assert_eq!(log.len(), deltas.len() + 1, "lost event at start {start}");
                log
            })
            .collect()
    };
    assert_eq!(run(Sim::new), run(Sim::new_reference));
}

/// A re-arming timer marching tick-by-tick across several level-0 laps and
/// one level-1 lap — the runaway-watchdog shape that first exposed the
/// lap-wrap hole.
#[test]
fn rearming_timer_crosses_laps_identically() {
    fn rearm(w: &mut World, sim: &mut Sim<World>, count: u64) {
        w.push((sim.now().0, count));
        if count > 0 {
            sim.at_keyed(sim.now() + Nanos(70_000), count - 1, rearm);
        }
    }
    let run = |mk: fn() -> Sim<World>| {
        let mut sim = mk();
        let mut log = World::new();
        sim.at_keyed(Nanos::ZERO, 2_000, rearm);
        sim.run(&mut log);
        (log, sim.now().0, sim.events_fired())
    };
    let (log, now, fired) = run(Sim::new);
    assert_eq!(fired, 2_001);
    assert_eq!(now, 2_000 * 70_000);
    assert_eq!((log, now, fired), run(Sim::new_reference));
}
