//! Property tests: szip must be a lossless codec for arbitrary inputs and a
//! total function over arbitrary compressed garbage.

use proptest::prelude::*;

fn arb_input() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // fully arbitrary bytes
        proptest::collection::vec(any::<u8>(), 0..20_000),
        // runs of a single byte (stress overlapping matches)
        (any::<u8>(), 0usize..200_000).prop_map(|(b, n)| vec![b; n]),
        // repeated phrases (stress long-range matches within a block)
        (proptest::collection::vec(any::<u8>(), 1..64), 1usize..2_000)
            .prop_map(|(unit, reps)| unit.iter().copied().cycle().take(unit.len() * reps).collect()),
        // block-boundary straddlers
        (any::<u8>(), (szip::stream::BLOCK - 3)..(szip::stream::BLOCK + 3))
            .prop_map(|(b, n)| (0..n).map(|i| b.wrapping_add((i % 7) as u8)).collect()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip(input in arb_input()) {
        let comp = szip::compress(&input);
        prop_assert_eq!(szip::decompress(&comp).unwrap(), input);
    }

    #[test]
    fn counting_matches_materializing(input in arb_input()) {
        prop_assert_eq!(szip::compressed_len(&input), szip::compress(&input).len() as u64);
    }

    #[test]
    fn chunking_is_invisible(input in arb_input(), chunk in 1usize..10_000) {
        let whole = szip::compress(&input);
        let mut c = szip::Compressor::new();
        for part in input.chunks(chunk) {
            c.write(part);
        }
        prop_assert_eq!(c.finish(), whole);
    }

    #[test]
    fn decompressor_never_panics_on_garbage(mut garbage in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let _ = szip::decompress(&garbage);
        // Also with a valid magic prepended.
        let mut with_magic = szip::stream::MAGIC.to_vec();
        with_magic.append(&mut garbage);
        let _ = szip::decompress(&with_magic);
    }

    #[test]
    fn corrupting_one_byte_never_yields_wrong_data_silently(input in proptest::collection::vec(any::<u8>(), 64..4096), flip in any::<(usize, u8)>()) {
        // Either decode fails, or it succeeds; if it succeeds with different
        // bytes than the original, the CRC the image layer stores alongside
        // must catch it. Emulate that contract here.
        let comp = szip::compress(&input);
        let crc = szip::crc32(&input);
        let mut bad = comp.clone();
        let idx = flip.0 % bad.len();
        let delta = if flip.1 == 0 { 1 } else { flip.1 };
        bad[idx] ^= delta;
        if let Ok(out) = szip::decompress(&bad) {
            if out != input {
                prop_assert_ne!(szip::crc32(&out), crc, "corruption escaped CRC");
            }
        }
    }
}
