//! Randomized tests: szip must be a lossless codec for arbitrary inputs and
//! a total function over arbitrary compressed garbage. Driven by simkit's
//! deterministic RNG (fixed seeds, offline-friendly — no proptest).

use simkit::DetRng;

/// One input per adversarial family, sized by `rng`:
/// arbitrary bytes, single-byte runs (overlapping matches), repeated
/// phrases (long-range in-block matches), and block-boundary straddlers.
fn gen_input(rng: &mut DetRng) -> Vec<u8> {
    match rng.below(4) {
        0 => {
            let mut v = vec![0u8; rng.below(20_000) as usize];
            rng.fill_bytes(&mut v);
            v
        }
        1 => vec![rng.next_u32() as u8; rng.below(200_000) as usize],
        2 => {
            let unit: Vec<u8> = {
                let mut u = vec![0u8; rng.range(1, 64) as usize];
                rng.fill_bytes(&mut u);
                u
            };
            let reps = rng.range(1, 2_000) as usize;
            unit.iter()
                .copied()
                .cycle()
                .take(unit.len() * reps)
                .collect()
        }
        _ => {
            let b = rng.next_u32() as u8;
            let n = rng.range(
                (szip::stream::BLOCK - 3) as u64,
                (szip::stream::BLOCK + 3) as u64,
            );
            (0..n).map(|i| b.wrapping_add((i % 7) as u8)).collect()
        }
    }
}

const CASES: u64 = 64;

#[test]
fn roundtrip() {
    let mut rng = DetRng::seed_from_u64(0x5A1F_0001);
    for case in 0..CASES {
        let input = gen_input(&mut rng);
        let comp = szip::compress(&input);
        assert_eq!(szip::decompress(&comp).unwrap(), input, "case {case}");
    }
}

#[test]
fn counting_matches_materializing() {
    let mut rng = DetRng::seed_from_u64(0x5A1F_0002);
    for case in 0..CASES {
        let input = gen_input(&mut rng);
        assert_eq!(
            szip::compressed_len(&input),
            szip::compress(&input).len() as u64,
            "case {case}"
        );
    }
}

#[test]
fn chunking_is_invisible() {
    let mut rng = DetRng::seed_from_u64(0x5A1F_0003);
    for case in 0..CASES {
        let input = gen_input(&mut rng);
        let chunk = rng.range(1, 10_000) as usize;
        let whole = szip::compress(&input);
        let mut c = szip::Compressor::new();
        for part in input.chunks(chunk) {
            c.write(part);
        }
        assert_eq!(c.finish(), whole, "case {case} (chunk {chunk})");
    }
}

#[test]
fn decompressor_never_panics_on_garbage() {
    let mut rng = DetRng::seed_from_u64(0x5A1F_0004);
    for _ in 0..256 {
        let mut garbage = vec![0u8; rng.below(4096) as usize];
        rng.fill_bytes(&mut garbage);
        let _ = szip::decompress(&garbage);
        // Also with a valid magic prepended.
        let mut with_magic = szip::stream::MAGIC.to_vec();
        with_magic.append(&mut garbage);
        let _ = szip::decompress(&with_magic);
    }
}

#[test]
fn corrupting_one_byte_never_yields_wrong_data_silently() {
    let mut rng = DetRng::seed_from_u64(0x5A1F_0005);
    for case in 0..CASES {
        let mut input = vec![0u8; rng.range(64, 4096) as usize];
        rng.fill_bytes(&mut input);
        // Either decode fails, or it succeeds; if it succeeds with different
        // bytes than the original, the CRC the image layer stores alongside
        // must catch it. Emulate that contract here.
        let comp = szip::compress(&input);
        let crc = szip::crc32(&input);
        let mut bad = comp.clone();
        let idx = rng.below(bad.len() as u64) as usize;
        let delta = (rng.range(1, 256)) as u8;
        bad[idx] ^= delta;
        if let Ok(out) = szip::decompress(&bad) {
            if out != input {
                assert_ne!(
                    szip::crc32(&out),
                    crc,
                    "case {case}: corruption escaped CRC"
                );
            }
        }
    }
}
