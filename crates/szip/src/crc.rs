//! CRC-32 (IEEE 802.3 polynomial, the same one gzip uses).
//!
//! Checkpoint images carry a CRC per memory region so restore can verify
//! bit-identical reconstruction — including regions regenerated from
//! synthetic recipes rather than stored bytes.

/// Streaming CRC-32 state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

const POLY: u32 = 0xEDB8_8320;

// Build the byte table at compile time so there is no runtime init to race.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh CRC computation.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c = TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Final CRC value.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a buffer.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 7 + 3) as u8).collect();
        let whole = crc32(&data);
        for split in [0, 1, 9, 4096, data.len()] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn different_data_different_crc() {
        assert_ne!(crc32(b"a"), crc32(b"b"));
        assert_ne!(crc32(&[0u8; 100]), crc32(&[0u8; 101]));
    }
}
