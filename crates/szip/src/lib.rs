//! `szip` — the reproduction's stand-in for `gzip`.
//!
//! DMTCP pipes checkpoint images through `gzip` by default; this crate
//! provides the equivalent capability as a from-scratch, dependency-free
//! streaming LZSS codec. Ratios are *real* (computed by actually compressing
//! the bytes), so content-dependent effects from the paper — NAS/IS's
//! zero-heavy buckets compressing "both quickly and efficiently" (§5.4),
//! RunCMS's 680 MB → 225 MB image — emerge from the data rather than being
//! hard-coded.
//!
//! Format: a 4-byte magic, then independent blocks of up to 256 KiB input
//! each: `raw_len varint · kind u8 (0 = stored, 1 = lzss) · payload_len
//! varint · payload`. Blocks that would expand are stored raw, so worst-case
//! overhead is ~6 bytes per 256 KiB. The per-block window reset costs a few
//! percent of ratio versus gzip's sliding window but makes streaming and
//! random-access verification trivial.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod estimate;
pub mod lzss;
pub mod stream;

pub use crc::{crc32, Crc32};
pub use estimate::SizeEstimator;
pub use stream::{Compressor, Decompressor, SzipError};

/// Compress a whole buffer in one call.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut c = Compressor::new();
    c.write(input);
    c.finish()
}

/// Decompress a whole buffer in one call.
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, SzipError> {
    let mut d = Decompressor::new();
    d.write(input)?;
    d.finish()
}

/// Compute only the compressed *size* of a buffer, without materializing the
/// output (used when the simulator needs an image size for multi-gigabyte
/// synthetic regions).
pub fn compressed_len(input: &[u8]) -> u64 {
    let mut c = Compressor::counting();
    c.write(input);
    c.finish_len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_roundtrip() {
        let c = compress(&[]);
        assert_eq!(decompress(&c).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn zeros_compress_dramatically() {
        let input = vec![0u8; 1 << 20];
        let c = compress(&input);
        assert!(c.len() < input.len() / 50, "ratio too poor: {}", c.len());
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn text_compresses_meaningfully() {
        let para = b"DMTCP transparently checkpoints distributed computations. ";
        let mut input = Vec::new();
        while input.len() < 1 << 18 {
            input.extend_from_slice(para);
        }
        let c = compress(&input);
        assert!(
            c.len() < input.len() / 4,
            "text ratio: {} / {}",
            c.len(),
            input.len()
        );
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn random_data_barely_expands() {
        let mut rng = simple_rng(42);
        let input: Vec<u8> = (0..1 << 18).map(|_| rng() as u8).collect();
        let c = compress(&input);
        assert!(c.len() <= input.len() + input.len() / 64 + 64);
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn counting_matches_real_compression() {
        let para = b"the quick brown fox jumps over the lazy dog 0123456789";
        let mut input = Vec::new();
        while input.len() < 300_000 {
            input.extend_from_slice(para);
            input.push((input.len() % 251) as u8);
        }
        assert_eq!(compressed_len(&input), compress(&input).len() as u64);
    }

    fn simple_rng(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed;
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }
}
