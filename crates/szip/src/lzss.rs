//! Block LZSS: greedy hash-chain match finding within a block, flag-byte
//! token stream.
//!
//! Token stream layout: a control byte carries flags for the next 8 tokens
//! (bit `i` set ⇒ token `i` is a match). A literal token is one raw byte; a
//! match token is `offset: u16 LE (1-based, ≤ block size)` then
//! `len - MIN_MATCH: u8` (so match lengths span 3..=258).

/// Upper bound on block input size; offsets must fit in u16.
pub const MAX_BLOCK: usize = 1 << 16;
/// Minimum match length worth encoding (3 bytes ≙ one match token).
pub const MIN_MATCH: usize = 3;
/// Maximum match length (`MIN_MATCH + u8::MAX`).
pub const MAX_MATCH: usize = MIN_MATCH + 255;

const HASH_BITS: u32 = 14;
const HASH_SIZE: usize = 1 << HASH_BITS;
/// How many chain links the match finder follows before giving up. 32 is
/// the classic speed/ratio compromise (zlib level ~6 territory).
const MAX_CHAIN: usize = 32;
/// Sentinel for "no position" in the hash structures.
const NIL: u32 = u32::MAX;

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], 0]);
    ((v.wrapping_mul(0x9E37_79B1)) >> (32 - HASH_BITS)) as usize
}

/// Sink for compressed output: a real buffer or a byte counter, so the
/// simulator can size multi-gigabyte images without materializing them.
pub trait Sink {
    /// Append one byte.
    fn push(&mut self, b: u8);
    /// Append a slice.
    fn extend(&mut self, bytes: &[u8]);
    /// Bytes emitted so far.
    fn len(&self) -> u64;
    /// Whether nothing has been emitted.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Overwrite a previously pushed byte (control-byte backpatching).
    fn patch(&mut self, pos: u64, b: u8);
}

impl Sink for Vec<u8> {
    fn push(&mut self, b: u8) {
        Vec::push(self, b);
    }
    fn extend(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
    fn len(&self) -> u64 {
        Vec::len(self) as u64
    }
    fn patch(&mut self, pos: u64, b: u8) {
        self[pos as usize] = b;
    }
}

/// A sink that only counts.
#[derive(Debug, Default, Clone, Copy)]
pub struct Counter(pub u64);

impl Sink for Counter {
    fn push(&mut self, _b: u8) {
        self.0 += 1;
    }
    fn extend(&mut self, bytes: &[u8]) {
        self.0 += bytes.len() as u64;
    }
    fn len(&self) -> u64 {
        self.0
    }
    fn patch(&mut self, _pos: u64, _b: u8) {}
}

/// Reusable match-finder scratch space (hash heads + chains), so per-block
/// compression does not allocate in the checkpoint write path.
pub struct Scratch {
    head: Vec<u32>,
    prev: Vec<u32>,
}

impl Default for Scratch {
    fn default() -> Self {
        Self::new()
    }
}

impl Scratch {
    /// Fresh scratch space.
    pub fn new() -> Self {
        Scratch {
            head: vec![NIL; HASH_SIZE],
            prev: vec![NIL; MAX_BLOCK],
        }
    }
}

/// Compress one block (`input.len() <= MAX_BLOCK`) into `out`.
///
/// Returns the number of bytes emitted.
pub fn compress_block<S: Sink>(input: &[u8], scratch: &mut Scratch, out: &mut S) -> u64 {
    assert!(input.len() <= MAX_BLOCK, "block too large");
    let before = out.len();
    scratch.head.fill(NIL);

    let n = input.len();
    let mut i = 0usize;
    let mut ctrl_pos: u64 = 0;
    let mut ctrl: u8 = 0;
    let mut ntok: u32 = 0;

    macro_rules! begin_token {
        () => {
            if ntok == 0 {
                ctrl_pos = out.len();
                out.push(0); // placeholder control byte
            }
        };
    }
    macro_rules! end_token {
        ($is_match:expr) => {
            if $is_match {
                ctrl |= 1 << ntok;
            }
            ntok += 1;
            if ntok == 8 {
                out.patch(ctrl_pos, ctrl);
                ctrl = 0;
                ntok = 0;
            }
        };
    }

    while i < n {
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= n {
            let h = hash3(input, i);
            let mut cand = scratch.head[h];
            let mut chains = 0;
            let limit = (n - i).min(MAX_MATCH);
            while cand != NIL && chains < MAX_CHAIN {
                let c = cand as usize;
                debug_assert!(c < i);
                // Quick reject on the byte just past the current best.
                if best_len == 0 || input[c + best_len] == input[i + best_len] {
                    let mut l = 0usize;
                    while l < limit && input[c + l] == input[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_off = i - c;
                        if l >= limit {
                            break;
                        }
                    }
                }
                cand = scratch.prev[c];
                chains += 1;
            }
        }

        if best_len >= MIN_MATCH {
            begin_token!();
            out.push((best_off & 0xff) as u8);
            out.push((best_off >> 8) as u8);
            out.push((best_len - MIN_MATCH) as u8);
            end_token!(true);
            // Insert every covered position into the chains so later matches
            // can reference the interior of this one.
            let end = (i + best_len).min(n.saturating_sub(MIN_MATCH - 1));
            let mut j = i;
            while j < end {
                let h = hash3(input, j);
                scratch.prev[j] = scratch.head[h];
                scratch.head[h] = j as u32;
                j += 1;
            }
            i += best_len;
        } else {
            begin_token!();
            out.push(input[i]);
            end_token!(false);
            if i + MIN_MATCH <= n {
                let h = hash3(input, i);
                scratch.prev[i] = scratch.head[h];
                scratch.head[h] = i as u32;
            }
            i += 1;
        }
    }
    if ntok > 0 {
        out.patch(ctrl_pos, ctrl);
    }
    out.len() - before
}

/// Errors from block decompression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockError {
    /// Input ended mid-token.
    Truncated,
    /// A match referenced data before the start of the block.
    BadOffset {
        /// Output position at which the bad reference occurred.
        at: usize,
    },
    /// Decompressed size disagreed with the declared size.
    WrongLength {
        /// Size the header promised.
        expected: usize,
        /// Size actually produced.
        got: usize,
    },
}

/// Decompress one block; `raw_len` is the declared decompressed size.
pub fn decompress_block(
    payload: &[u8],
    raw_len: usize,
    out: &mut Vec<u8>,
) -> Result<(), BlockError> {
    let base = out.len();
    let target = base + raw_len;
    let mut i = 0usize;
    while out.len() < target {
        if i >= payload.len() {
            return Err(BlockError::Truncated);
        }
        let ctrl = payload[i];
        i += 1;
        for bit in 0..8 {
            if out.len() >= target {
                break;
            }
            if ctrl & (1 << bit) != 0 {
                if i + 3 > payload.len() {
                    return Err(BlockError::Truncated);
                }
                let off = payload[i] as usize | ((payload[i + 1] as usize) << 8);
                let len = payload[i + 2] as usize + MIN_MATCH;
                i += 3;
                let pos = out.len();
                if off == 0 || off > pos - base {
                    return Err(BlockError::BadOffset { at: pos });
                }
                // Overlapping copy (off may be < len), byte at a time.
                for k in 0..len {
                    let b = out[pos - off + k];
                    out.push(b);
                }
            } else {
                if i >= payload.len() {
                    return Err(BlockError::Truncated);
                }
                out.push(payload[i]);
                i += 1;
            }
        }
    }
    if out.len() != target {
        return Err(BlockError::WrongLength {
            expected: raw_len,
            got: out.len() - base,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(input: &[u8]) -> usize {
        let mut scratch = Scratch::new();
        let mut comp = Vec::new();
        compress_block(input, &mut scratch, &mut comp);
        let mut out = Vec::new();
        decompress_block(&comp, input.len(), &mut out).expect("decode");
        assert_eq!(out, input);
        comp.len()
    }

    #[test]
    fn empty_block() {
        assert_eq!(roundtrip(&[]), 0);
    }

    #[test]
    fn single_byte() {
        assert_eq!(roundtrip(&[7]), 2); // control byte + literal
    }

    #[test]
    fn run_of_zeros_uses_overlapping_matches() {
        let n = roundtrip(&[0u8; 4096]);
        assert!(n < 80, "4096 zeros compressed to {n}");
    }

    #[test]
    fn repeated_phrase() {
        let mut input = Vec::new();
        for _ in 0..200 {
            input.extend_from_slice(b"abcdefgh-12345678.");
        }
        let n = roundtrip(&input);
        assert!(n < input.len() / 4);
    }

    #[test]
    fn alternating_incompressible() {
        // De Bruijn-ish pattern with few 3-byte repeats.
        let input: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
            .collect();
        roundtrip(&input);
    }

    #[test]
    fn max_block_roundtrips() {
        let input: Vec<u8> = (0..MAX_BLOCK).map(|i| (i / 7) as u8).collect();
        roundtrip(&input);
    }

    #[test]
    fn counting_sink_agrees_with_vec_sink() {
        let input: Vec<u8> = (0..50_000u64).map(|i| ((i * i) % 253) as u8).collect();
        let mut scratch = Scratch::new();
        let mut v = Vec::new();
        compress_block(&input, &mut scratch, &mut v);
        let mut c = Counter::default();
        compress_block(&input, &mut scratch, &mut c);
        assert_eq!(c.0, v.len() as u64);
    }

    #[test]
    fn bad_offset_is_detected() {
        // control byte says "match", offset 5 at output position 0.
        let payload = [0b0000_0001u8, 5, 0, 0];
        let mut out = Vec::new();
        let err = decompress_block(&payload, 10, &mut out).unwrap_err();
        assert!(matches!(err, BlockError::BadOffset { .. }));
    }

    #[test]
    fn truncated_payload_is_detected() {
        let mut scratch = Scratch::new();
        let input = vec![9u8; 1000];
        let mut comp = Vec::new();
        compress_block(&input, &mut scratch, &mut comp);
        for cut in 0..comp.len().min(16) {
            let mut out = Vec::new();
            assert!(decompress_block(&comp[..cut], input.len(), &mut out).is_err());
        }
    }
}
