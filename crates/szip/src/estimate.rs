//! Sampled compressed-size estimation.
//!
//! Figure 6 sweeps aggregate memory to 70 GB; compressing that much real
//! data on every simulation run would dominate wall-clock time for no
//! fidelity gain. For *synthetic* regions above a threshold the simulator
//! compresses a deterministic sample and extrapolates the ratio; *real*
//! regions (application state) are always compressed exactly. EXPERIMENTS.md
//! documents where sampling was active.

/// Policy knob for exact-vs-sampled compression sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeEstimator {
    /// Regions at or below this many bytes are always compressed exactly.
    pub exact_threshold: u64,
    /// Sample size used above the threshold.
    pub sample_len: u64,
}

impl Default for SizeEstimator {
    fn default() -> Self {
        SizeEstimator {
            exact_threshold: 512 << 10, // 512 KiB
            sample_len: 128 << 10,      // 128 KiB
        }
    }
}

impl SizeEstimator {
    /// Whether a region of `total_len` bytes should be sized by sampling.
    pub fn should_sample(&self, total_len: u64) -> bool {
        total_len > self.exact_threshold
    }

    /// Extrapolate a compressed size for `total_len` bytes from a sample of
    /// `sample_raw` bytes that compressed to `sample_comp` bytes.
    ///
    /// The per-stream fixed overhead (magic + block headers) is accounted
    /// separately so tiny samples do not inflate the ratio.
    pub fn extrapolate(&self, total_len: u64, sample_raw: u64, sample_comp: u64) -> u64 {
        assert!(sample_raw > 0);
        let overhead = super::stream::MAGIC.len() as u64;
        let body = sample_comp.saturating_sub(overhead);
        let est = (body as u128 * total_len as u128 / sample_raw as u128) as u64;
        est + overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extrapolation_is_linear() {
        let e = SizeEstimator::default();
        let est = e.extrapolate(100 << 20, 1 << 20, (1 << 18) + 4);
        // quarter ratio → ~25 MiB
        let expect = 25u64 << 20;
        let err = (est as f64 - expect as f64).abs() / expect as f64;
        assert!(err < 0.01, "est {est}, expect {expect}");
    }

    #[test]
    fn threshold_behaviour() {
        let e = SizeEstimator::default();
        assert!(!e.should_sample(512 << 10));
        assert!(e.should_sample((512 << 10) + 1));
    }

    #[test]
    fn sampled_estimate_tracks_real_compression_on_uniform_content() {
        // Build 8 MiB of half-compressible content; compare the sampled
        // estimate against exact compression.
        let unit: Vec<u8> = (0..64u32)
            .flat_map(|i| {
                if i % 2 == 0 {
                    vec![0u8; 64]
                } else {
                    (0..64u32).map(|j| (j * 97 + i) as u8).collect()
                }
            })
            .collect();
        let mut data = Vec::new();
        while data.len() < 8 << 20 {
            data.extend_from_slice(&unit);
        }
        let exact = crate::compressed_len(&data);
        let e = SizeEstimator::default();
        let sample = &data[..e.sample_len as usize];
        let est = e.extrapolate(
            data.len() as u64,
            sample.len() as u64,
            crate::compressed_len(sample),
        );
        let err = (est as f64 - exact as f64).abs() / exact as f64;
        assert!(err < 0.05, "estimate off by {:.1}%", err * 100.0);
    }
}
