//! Streaming container around [`crate::lzss`] blocks.
//!
//! The checkpoint writer feeds memory regions chunk by chunk; the container
//! slices the stream into ≤64 KiB blocks, stores blocks that would expand,
//! and prefixes everything with a magic number so a restart can fail fast on
//! a file that is not an image.

use crate::lzss::{self, Counter, Scratch};

/// File magic: "SZ1\n".
pub const MAGIC: [u8; 4] = *b"SZ1\n";
/// Input block size. 64 KiB keeps offsets in u16 with full reach.
pub const BLOCK: usize = 1 << 16;

/// Errors surfaced by [`Decompressor`] (and [`crate::decompress`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SzipError {
    /// The stream did not start with [`MAGIC`].
    BadMagic,
    /// A block header was malformed or truncated.
    BadHeader,
    /// A block body failed to decode.
    BadBlock(lzss::BlockError),
    /// The stream ended mid-block.
    Truncated,
}

impl std::fmt::Display for SzipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SzipError::BadMagic => write!(f, "not an szip stream (bad magic)"),
            SzipError::BadHeader => write!(f, "malformed szip block header"),
            SzipError::BadBlock(e) => write!(f, "corrupt szip block: {e:?}"),
            SzipError::Truncated => write!(f, "szip stream truncated"),
        }
    }
}

impl std::error::Error for SzipError {}

enum Output {
    Buffer(Vec<u8>),
    Count(Counter),
}

/// Streaming compressor.
pub struct Compressor {
    pending: Vec<u8>,
    scratch: Scratch,
    out: Output,
    raw_in: u64,
}

impl Default for Compressor {
    fn default() -> Self {
        Self::new()
    }
}

impl Compressor {
    /// A compressor that materializes output bytes.
    pub fn new() -> Self {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        Compressor {
            pending: Vec::with_capacity(BLOCK),
            scratch: Scratch::new(),
            out: Output::Buffer(out),
            raw_in: 0,
        }
    }

    /// A compressor that only counts output bytes (for sizing huge images).
    pub fn counting() -> Self {
        Compressor {
            pending: Vec::with_capacity(BLOCK),
            scratch: Scratch::new(),
            out: Output::Count(Counter(MAGIC.len() as u64)),
            raw_in: 0,
        }
    }

    /// Total raw bytes fed in so far.
    pub fn raw_len(&self) -> u64 {
        self.raw_in
    }

    /// Feed input bytes.
    pub fn write(&mut self, mut input: &[u8]) {
        self.raw_in += input.len() as u64;
        while !input.is_empty() {
            let room = BLOCK - self.pending.len();
            let take = room.min(input.len());
            self.pending.extend_from_slice(&input[..take]);
            input = &input[take..];
            if self.pending.len() == BLOCK {
                self.flush_block();
            }
        }
    }

    fn flush_block(&mut self) {
        let raw = std::mem::take(&mut self.pending);
        if raw.is_empty() {
            return;
        }
        // Trial-compress into a counter first when we only need sizes;
        // otherwise compress into a scratch buffer and decide stored/lzss.
        match &mut self.out {
            Output::Buffer(out) => {
                let mut body = Vec::with_capacity(raw.len() / 2);
                lzss::compress_block(&raw, &mut self.scratch, &mut body);
                put_varint(out, raw.len() as u64);
                if body.len() >= raw.len() {
                    out.push(0); // stored
                    put_varint(out, raw.len() as u64);
                    out.extend_from_slice(&raw);
                } else {
                    out.push(1); // lzss
                    put_varint(out, body.len() as u64);
                    out.extend_from_slice(&body);
                }
            }
            Output::Count(c) => {
                let mut body = Counter::default();
                lzss::compress_block(&raw, &mut self.scratch, &mut body);
                let stored = body.0 >= raw.len() as u64;
                let payload = if stored { raw.len() as u64 } else { body.0 };
                c.0 += varint_len(raw.len() as u64) + 1 + varint_len(payload) + payload;
            }
        }
        self.pending = raw;
        self.pending.clear();
    }

    /// Finish and return the compressed bytes. Panics on a counting
    /// compressor (use [`Compressor::finish_len`]).
    pub fn finish(mut self) -> Vec<u8> {
        self.flush_block();
        match self.out {
            Output::Buffer(v) => v,
            Output::Count(_) => panic!("finish() on a counting compressor"),
        }
    }

    /// Finish and return only the compressed size.
    pub fn finish_len(mut self) -> u64 {
        self.flush_block();
        match self.out {
            Output::Buffer(v) => v.len() as u64,
            Output::Count(c) => c.0,
        }
    }
}

/// Streaming decompressor. Feed compressed bytes with [`Decompressor::write`]
/// in any chunking; collect output with [`Decompressor::finish`].
pub struct Decompressor {
    input: Vec<u8>,
    pos: usize,
    out: Vec<u8>,
    magic_ok: bool,
}

impl Default for Decompressor {
    fn default() -> Self {
        Self::new()
    }
}

impl Decompressor {
    /// A fresh decompressor.
    pub fn new() -> Self {
        Decompressor {
            input: Vec::new(),
            pos: 0,
            out: Vec::new(),
            magic_ok: false,
        }
    }

    /// Feed compressed bytes; decodes every complete block eagerly.
    pub fn write(&mut self, bytes: &[u8]) -> Result<(), SzipError> {
        self.input.extend_from_slice(bytes);
        self.drain()
    }

    fn drain(&mut self) -> Result<(), SzipError> {
        if !self.magic_ok {
            if self.input.len() < MAGIC.len() {
                return Ok(());
            }
            if self.input[..MAGIC.len()] != MAGIC {
                return Err(SzipError::BadMagic);
            }
            self.pos = MAGIC.len();
            self.magic_ok = true;
        }
        loop {
            let mut p = self.pos;
            let Some((raw_len, p1)) = read_varint(&self.input, p) else {
                return Ok(()); // incomplete header; wait for more input
            };
            p = p1;
            let Some(&kind) = self.input.get(p) else {
                return Ok(());
            };
            p += 1;
            let Some((payload_len, p2)) = read_varint(&self.input, p) else {
                return Ok(());
            };
            p = p2;
            if raw_len > (lzss::MAX_BLOCK) as u64 || payload_len > 2 * lzss::MAX_BLOCK as u64 {
                return Err(SzipError::BadHeader);
            }
            if self.input.len() - p < payload_len as usize {
                return Ok(()); // body not fully arrived
            }
            let payload = &self.input[p..p + payload_len as usize];
            match kind {
                0 => {
                    if payload_len != raw_len {
                        return Err(SzipError::BadHeader);
                    }
                    self.out.extend_from_slice(payload);
                }
                1 => {
                    lzss::decompress_block(payload, raw_len as usize, &mut self.out)
                        .map_err(SzipError::BadBlock)?;
                }
                _ => return Err(SzipError::BadHeader),
            }
            self.pos = p + payload_len as usize;
            // Reclaim consumed input occasionally to bound memory.
            if self.pos > (1 << 20) {
                self.input.drain(..self.pos);
                self.pos = 0;
            }
        }
    }

    /// Finish the stream; errors if it ends mid-block or never had a magic.
    pub fn finish(self) -> Result<Vec<u8>, SzipError> {
        if !self.magic_ok {
            return if self.input.is_empty() {
                Err(SzipError::Truncated)
            } else {
                Err(SzipError::BadMagic)
            };
        }
        if self.pos != self.input.len() {
            return Err(SzipError::Truncated);
        }
        Ok(self.out)
    }
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn varint_len(v: u64) -> u64 {
    let bits = 64 - v.max(1).leading_zeros() as u64;
    bits.div_ceil(7).max(1)
}

fn read_varint(buf: &[u8], mut pos: usize) -> Option<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(pos)?;
        pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Some((v, pos));
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_len_matches_encoder() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            assert_eq!(varint_len(v), buf.len() as u64, "v = {v}");
            assert_eq!(read_varint(&buf, 0), Some((v, buf.len())));
        }
    }

    #[test]
    fn chunked_writes_equal_one_shot() {
        let input: Vec<u8> = (0..200_000usize).map(|i| (i % 251) as u8).collect();
        let whole = crate::compress(&input);
        let mut c = Compressor::new();
        for chunk in input.chunks(777) {
            c.write(chunk);
        }
        assert_eq!(c.finish(), whole);
    }

    #[test]
    fn chunked_reads_equal_one_shot() {
        let input: Vec<u8> = (0..200_000usize).map(|i| (i % 13) as u8).collect();
        let comp = crate::compress(&input);
        let mut d = Decompressor::new();
        for chunk in comp.chunks(311) {
            d.write(chunk).unwrap();
        }
        assert_eq!(d.finish().unwrap(), input);
    }

    #[test]
    fn bad_magic_detected() {
        assert_eq!(
            crate::decompress(b"GZIP....").unwrap_err(),
            SzipError::BadMagic
        );
    }

    #[test]
    fn truncated_stream_detected() {
        let comp = crate::compress(&[1u8; 100_000]);
        for cut in [5, comp.len() / 2, comp.len() - 1] {
            let r = crate::decompress(&comp[..cut]);
            assert!(r.is_err(), "cut at {cut} succeeded");
        }
    }

    #[test]
    fn random_chunk_boundaries_round_trip() {
        // Property test: feed a mixed compressible/incompressible stream
        // through Compressor/Decompressor with random write-chunk sizes from
        // 1 B up to 600 KiB (spanning many BLOCK boundaries), and check that
        // (a) the result matches the one-shot encoder bit for bit and
        // (b) the round trip reproduces the input. The input alternates
        // runs of repeats with xorshift noise so both the stored and the
        // lzss block kinds are exercised.
        let mut x: u64 = 0xDEC0_DE00;
        let mut rng = move |bound: u64| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % bound
        };
        let mut input = Vec::new();
        while input.len() < 3_000_000 {
            if rng(2) == 0 {
                let byte = rng(256) as u8;
                let run = 1 + rng(200_000) as usize;
                input.extend(std::iter::repeat_n(byte, run));
            } else {
                let run = 1 + rng(200_000) as usize;
                input.extend((0..run).map(|_| rng(256) as u8));
            }
        }
        let whole = crate::compress(&input);

        let mut c = Compressor::new();
        let mut fed = 0usize;
        while fed < input.len() {
            let take = (1 + rng(600 * 1024) as usize).min(input.len() - fed);
            c.write(&input[fed..fed + take]);
            fed += take;
        }
        let streamed = c.finish();
        assert_eq!(streamed, whole, "chunking changed the encoding");
        let kinds: std::collections::BTreeSet<u8> = {
            // Walk the container to confirm both block kinds occur.
            let mut ks = std::collections::BTreeSet::new();
            let mut p = MAGIC.len();
            while p < whole.len() {
                let (_, p1) = read_varint(&whole, p).unwrap();
                ks.insert(whole[p1]);
                let (plen, p2) = read_varint(&whole, p1 + 1).unwrap();
                p = p2 + plen as usize;
            }
            ks
        };
        assert_eq!(
            kinds.len(),
            2,
            "input should produce both stored and lzss blocks, got {kinds:?}"
        );

        let mut d = Decompressor::new();
        let mut fed = 0usize;
        while fed < streamed.len() {
            let take = (1 + rng(600 * 1024) as usize).min(streamed.len() - fed);
            d.write(&streamed[fed..fed + take]).unwrap();
            fed += take;
        }
        assert_eq!(d.finish().unwrap(), input, "round trip mismatch");
    }

    #[test]
    fn incompressible_blocks_are_stored() {
        // A stream with essentially no 3-byte repeats: size must stay within
        // the stored-block overhead bound.
        let mut x: u64 = 0x12345;
        let input: Vec<u8> = (0..(1 << 17))
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let comp = crate::compress(&input);
        assert!(comp.len() <= input.len() + 16 + 8 * (input.len() / BLOCK + 1));
        assert_eq!(crate::decompress(&comp).unwrap(), input);
    }
}
