//! End-to-end behaviour of the simulated OS: sockets with flow control,
//! pipes, ptys, fork/wait, shared memory, and remote spawn — the substrate
//! semantics DMTCP depends on.

use oskit::proc::ProcState;
use oskit::program::{Program, Registry, Step};
use oskit::world::{NodeId, OsSim, Pid, World};
use oskit::{Errno, Fd, HwSpec, Kernel};
use simkit::{Nanos, Sim};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

fn world(nodes: usize) -> (World, OsSim) {
    (
        World::new(HwSpec::default(), nodes, Registry::new()),
        Sim::new(),
    )
}

fn spawn(w: &mut World, sim: &mut OsSim, node: u32, cmd: &str, prog: Box<dyn Program>) -> Pid {
    w.spawn(sim, NodeId(node), cmd, prog, Pid(1), BTreeMap::new())
}

fn assert_exit(w: &World, pid: Pid, code: i32) {
    match w.procs.get(&pid).map(|p| p.state) {
        Some(ProcState::Zombie(c)) => assert_eq!(c, code, "pid {} exit code", pid.0),
        other => panic!("pid {} not a zombie: {:?}", pid.0, other),
    }
}

/// Convenience base: programs that don't survive checkpoints (test-only).
macro_rules! ephemeral {
    ($t:ty, $tag:literal) => {
        impl Program for $t {
            fn step(&mut self, k: &mut Kernel<'_>) -> Step {
                self.run(k)
            }
            fn tag(&self) -> &'static str {
                $tag
            }
            fn save(&self) -> Vec<u8> {
                unimplemented!("test program is never checkpointed")
            }
        }
    };
}

// ---------------------------------------------------------------------
// TCP echo across nodes
// ---------------------------------------------------------------------

struct EchoServer {
    lfd: Fd,
    cfd: Fd,
    pc: u8,
    echoed: Rc<RefCell<u64>>,
}
impl EchoServer {
    fn run(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    let (fd, _) = k.listen_on(5000).expect("listen");
                    self.lfd = fd;
                    self.pc = 1;
                }
                1 => match k.accept(self.lfd) {
                    Ok(fd) => {
                        self.cfd = fd;
                        self.pc = 2;
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("accept: {e:?}"),
                },
                2 => match k.read(self.cfd, 64 * 1024) {
                    Ok(b) if b.is_empty() => return Step::Exit(0), // client EOF
                    Ok(b) => {
                        *self.echoed.borrow_mut() += b.len() as u64;
                        let n = k.write(self.cfd, &b).expect("echo write");
                        assert_eq!(n, b.len(), "echo must fit the window");
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("read: {e:?}"),
                },
                _ => unreachable!(),
            }
        }
    }
}
ephemeral!(EchoServer, "echo-server");

struct EchoClient {
    fd: Fd,
    pc: u8,
    sent: u32,
    rounds: u32,
    pending: Vec<u8>,
    got: Vec<u8>,
    log: Rc<RefCell<Vec<Vec<u8>>>>,
}
impl EchoClient {
    fn run(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => match k.connect("node01", 5000) {
                    Ok(fd) => {
                        self.fd = fd;
                        self.pc = 1;
                    }
                    Err(Errno::ConnRefused) => return Step::Sleep(Nanos::from_millis(1)),
                    Err(e) => panic!("connect: {e:?}"),
                },
                1 => {
                    if self.sent == self.rounds {
                        k.close(self.fd).expect("close");
                        return Step::Exit(7);
                    }
                    self.pending = format!("msg-{:04}|", self.sent).into_bytes();
                    let n = k.write(self.fd, &self.pending).expect("send");
                    assert_eq!(n, self.pending.len());
                    self.got.clear();
                    self.pc = 2;
                }
                2 => match k.read(self.fd, 4096) {
                    Ok(b) if b.is_empty() => panic!("server hung up early"),
                    Ok(b) => {
                        self.got.extend_from_slice(&b);
                        if self.got.len() == self.pending.len() {
                            assert_eq!(self.got, self.pending, "echo mismatch");
                            self.log.borrow_mut().push(self.got.clone());
                            self.sent += 1;
                            self.pc = 1;
                        }
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("recv: {e:?}"),
                },
                _ => unreachable!(),
            }
        }
    }
}
ephemeral!(EchoClient, "echo-client");

#[test]
fn tcp_echo_round_trips_across_nodes() {
    let (mut w, mut sim) = world(2);
    let echoed = Rc::new(RefCell::new(0u64));
    let log = Rc::new(RefCell::new(Vec::new()));
    let server = spawn(
        &mut w,
        &mut sim,
        1,
        "server",
        Box::new(EchoServer {
            lfd: -1,
            cfd: -1,
            pc: 0,
            echoed: echoed.clone(),
        }),
    );
    let client = spawn(
        &mut w,
        &mut sim,
        0,
        "client",
        Box::new(EchoClient {
            fd: -1,
            pc: 0,
            sent: 0,
            rounds: 50,
            pending: Vec::new(),
            got: Vec::new(),
            log: log.clone(),
        }),
    );
    assert!(sim.run_bounded(&mut w, 1_000_000), "echo deadlocked");
    assert_exit(&w, client, 7);
    assert_exit(&w, server, 0);
    assert_eq!(*echoed.borrow(), 50 * 9);
    assert_eq!(log.borrow().len(), 50);
    // 50 round trips, each ≥ 2× latency.
    let min = 100 * w.spec.net_latency.0;
    assert!(sim.now().0 >= min, "{} < {min}", sim.now().0);
}

// ---------------------------------------------------------------------
// Pipe flow control
// ---------------------------------------------------------------------

struct PipeProducer {
    wfd: Fd,
    total: usize,
    sent: usize,
    pc: u8,
}
impl PipeProducer {
    fn run(&mut self, k: &mut Kernel<'_>) -> Step {
        if self.pc == 1 {
            return Step::Exit(0);
        }
        while self.sent < self.total {
            let chunk_len = 8192.min(self.total - self.sent);
            let chunk: Vec<u8> = (self.sent..self.sent + chunk_len)
                .map(|i| (i % 251) as u8)
                .collect();
            match k.write(self.wfd, &chunk) {
                Ok(n) => self.sent += n,
                Err(Errno::WouldBlock) => return Step::Block,
                Err(e) => panic!("pipe write: {e:?}"),
            }
        }
        k.close(self.wfd).expect("close write end");
        self.pc = 1;
        Step::Yield
    }
}
ephemeral!(PipeProducer, "pipe-producer");

struct PipeConsumer {
    rfd: Fd,
    got: usize,
    ok: Rc<RefCell<bool>>,
}
impl PipeConsumer {
    fn run(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match k.read(self.rfd, 4096) {
                Ok(b) if b.is_empty() => {
                    *self.ok.borrow_mut() = true;
                    return Step::Exit(0);
                }
                Ok(b) => {
                    for (j, &byte) in b.iter().enumerate() {
                        assert_eq!(byte, ((self.got + j) % 251) as u8, "byte order broken");
                    }
                    self.got += b.len();
                }
                Err(Errno::WouldBlock) => return Step::Block,
                Err(e) => panic!("pipe read: {e:?}"),
            }
        }
    }
}
ephemeral!(PipeConsumer, "pipe-consumer");

/// Parent sets up the pipe and hands ends to two children via fd
/// inheritance — also exercising fork-style fd sharing.
struct PipeParent {
    pc: u8,
    rfd: Fd,
    wfd: Fd,
    kids: Vec<Pid>,
    total: usize,
    ok: Rc<RefCell<bool>>,
}
impl PipeParent {
    fn run(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    let (r, wfd) = k.pipe();
                    self.rfd = r;
                    self.wfd = wfd;
                    // Children share the conn ends through spawned fd refs:
                    // dup the entries into the children after spawn.
                    // Children are told their end will land at fd 3 (the
                    // first free slot in a fresh table — asserted below).
                    let prod = k.spawn_process(
                        "producer",
                        Box::new(PipeProducer {
                            wfd: 3,
                            total: self.total,
                            sent: 0,
                            pc: 0,
                        }),
                    );
                    let cons = k.spawn_process(
                        "consumer",
                        Box::new(PipeConsumer {
                            rfd: 3,
                            got: 0,
                            ok: self.ok.clone(),
                        }),
                    );
                    // Model fd passing: install the parent's entries into the
                    // children (what fork inheritance would have done). The
                    // children have not stepped yet — spawn only queued their
                    // first dispatch — so this lands before they run.
                    let wobj = k.fd_object(self.wfd).unwrap();
                    let robj = k.fd_object(self.rfd).unwrap();
                    for (pid, obj) in [(prod, wobj), (cons, robj)] {
                        k.w.retain_obj(obj);
                        let child = k.w.procs.get_mut(&pid).unwrap();
                        let fd = child.fds.install(oskit::fdtable::FdEntry {
                            obj,
                            cloexec: false,
                        });
                        assert_eq!(fd, 3);
                    }
                    // Parent closes its copies (real shells do).
                    k.close(self.rfd).unwrap();
                    k.close(self.wfd).unwrap();
                    self.kids = vec![prod, cons];
                    self.pc = 1;
                }
                1 => {
                    let kid = *self.kids.last().expect("kids remain");
                    match k.waitpid(kid) {
                        Ok(_) => {
                            self.kids.pop();
                            if self.kids.is_empty() {
                                return Step::Exit(0);
                            }
                        }
                        Err(Errno::WouldBlock) => return Step::Block,
                        Err(e) => panic!("waitpid: {e:?}"),
                    }
                }
                _ => unreachable!(),
            }
        }
    }
}
ephemeral!(PipeParent, "pipe-parent");

#[test]
fn pipe_respects_flow_control_and_preserves_order() {
    let (mut w, mut sim) = world(1);
    let ok = Rc::new(RefCell::new(false));
    // 1 MiB through a 64 KiB window forces many block/wake cycles.
    let parent = spawn(
        &mut w,
        &mut sim,
        0,
        "parent",
        Box::new(PipeParent {
            pc: 0,
            rfd: -1,
            wfd: -1,
            kids: Vec::new(),
            total: 1 << 20,
            ok: ok.clone(),
        }),
    );
    // The children read their fd as 3 (asserted above); patch the programs
    // via first dispatch — they were spawned with fd = -1 placeholders, so
    // fix them up before the first step by setting the field through the
    // world. Simpler: they were created before fd install, so their first
    // step must find fd 3. Swap the placeholder now.
    assert!(sim.run_bounded(&mut w, 3_000_000), "pipe deadlocked");
    assert_exit(&w, parent, 0);
    assert!(*ok.borrow(), "consumer saw full ordered stream + EOF");
}

// ---------------------------------------------------------------------
// Pty echo & termios
// ---------------------------------------------------------------------

struct PtyUser {
    pc: u8,
    master: Fd,
    slave: Fd,
    seen: Rc<RefCell<Vec<u8>>>,
}
impl PtyUser {
    fn run(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    let (m, s) = k.openpty();
                    self.master = m;
                    self.slave = s;
                    k.set_ctty(s).expect("ctty");
                    let mut t = k.tcgetattr(s).unwrap();
                    t.echo = false;
                    t.rows = 50;
                    k.tcsetattr(s, t).unwrap();
                    assert_eq!(k.ptsname(m).unwrap(), "/dev/pts/0");
                    k.write(self.master, b"ls\n").unwrap();
                    self.pc = 1;
                }
                1 => match k.read(self.slave, 16) {
                    Ok(b) => {
                        assert_eq!(b, b"ls\n");
                        k.write(self.slave, b"file\n").unwrap();
                        self.pc = 2;
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("slave read: {e:?}"),
                },
                2 => match k.read(self.master, 16) {
                    Ok(b) => {
                        self.seen.borrow_mut().extend_from_slice(&b);
                        // onlcr: \n became \r\n
                        assert_eq!(&*self.seen.borrow(), b"file\r\n");
                        assert_eq!(k.tcgetattr(self.master).unwrap().rows, 50);
                        return Step::Exit(0);
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("master read: {e:?}"),
                },
                _ => unreachable!(),
            }
        }
    }
}
ephemeral!(PtyUser, "pty-user");

#[test]
fn pty_pair_echo_and_modes() {
    let (mut w, mut sim) = world(1);
    let seen = Rc::new(RefCell::new(Vec::new()));
    let pid = spawn(
        &mut w,
        &mut sim,
        0,
        "ptytest",
        Box::new(PtyUser {
            pc: 0,
            master: -1,
            slave: -1,
            seen,
        }),
    );
    assert!(sim.run_bounded(&mut w, 100_000));
    assert_exit(&w, pid, 0);
    // Process exit released both pty fds; the pty must be gone.
    assert!(w.ptys.is_empty(), "pty leaked after close");
}

// ---------------------------------------------------------------------
// fork_snapshot semantics
// ---------------------------------------------------------------------

struct Forker {
    pc: u8,
    counter: u64,
    child: u32,
}
simkit::impl_snap!(struct Forker { pc, counter, child });
impl Program for Forker {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    self.counter = 41;
                    self.pc = 1; // child resumes here too
                    let child = k.fork_snapshot(self).expect("fork");
                    self.child = child.0;
                }
                1 => {
                    match k.fork_ret() {
                        Some(0) => {
                            // Child: exits with a code derived from the
                            // snapshotted counter, proving state carried over.
                            return Step::Exit(self.counter as i32 + 1);
                        }
                        _ => {
                            k.clear_fork_ret();
                            self.pc = 2;
                        }
                    }
                }
                2 => match k.waitpid(Pid(self.child)) {
                    Ok(code) => {
                        assert_eq!(code, 42, "child exit code");
                        return Step::Exit(0);
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("waitpid: {e:?}"),
                },
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "forker"
    }
    fn save(&self) -> Vec<u8> {
        use simkit::Snap;
        self.to_snap_bytes()
    }
}

#[test]
fn fork_snapshot_duplicates_state_and_waitpid_reaps() {
    let mut reg = Registry::new();
    reg.register_snap::<Forker>("forker");
    let mut w = World::new(HwSpec::default(), 1, reg);
    let mut sim = Sim::new();
    let pid = spawn(
        &mut w,
        &mut sim,
        0,
        "forker",
        Box::new(Forker {
            pc: 0,
            counter: 0,
            child: 0,
        }),
    );
    assert!(sim.run_bounded(&mut w, 100_000));
    assert_exit(&w, pid, 0);
    // Child was reaped by waitpid.
    assert_eq!(w.procs.len(), 1);
}

// ---------------------------------------------------------------------
// Shared memory across processes
// ---------------------------------------------------------------------

struct ShmWriter {
    pc: u8,
}
impl ShmWriter {
    fn run(&mut self, k: &mut Kernel<'_>) -> Step {
        match self.pc {
            0 => {
                let region = k.mmap_shared("/tmp/seg", 4096).expect("mmap");
                k.mem_write(region, 100, b"shared-hello");
                self.pc = 1;
                Step::Exit(0)
            }
            _ => unreachable!(),
        }
    }
}
ephemeral!(ShmWriter, "shm-writer");

struct ShmReader {
    pc: u8,
    ok: Rc<RefCell<bool>>,
}
impl ShmReader {
    fn run(&mut self, k: &mut Kernel<'_>) -> Step {
        match self.pc {
            0 => {
                self.pc = 1;
                Step::Sleep(Nanos::from_millis(10)) // let the writer go first
            }
            1 => {
                let region = k.mmap_shared("/tmp/seg", 4096).expect("mmap");
                let got = k.mem_read(region, 100, 12);
                assert_eq!(got, b"shared-hello");
                *self.ok.borrow_mut() = true;
                Step::Exit(0)
            }
            _ => unreachable!(),
        }
    }
}
ephemeral!(ShmReader, "shm-reader");

#[test]
fn shared_memory_aliases_between_processes() {
    let (mut w, mut sim) = world(1);
    let ok = Rc::new(RefCell::new(false));
    spawn(&mut w, &mut sim, 0, "w", Box::new(ShmWriter { pc: 0 }));
    spawn(
        &mut w,
        &mut sim,
        0,
        "r",
        Box::new(ShmReader {
            pc: 0,
            ok: ok.clone(),
        }),
    );
    assert!(sim.run_bounded(&mut w, 100_000));
    assert!(*ok.borrow());
    // The backing file was created by the first mapper.
    assert!(w.nodes[0].fs.exists("/tmp/seg"));
}

// ---------------------------------------------------------------------
// ssh spawn
// ---------------------------------------------------------------------

struct RemoteHello {
    done: Rc<RefCell<Option<Nanos>>>,
}
impl RemoteHello {
    fn run(&mut self, k: &mut Kernel<'_>) -> Step {
        assert_eq!(k.hostname(), "node03");
        *self.done.borrow_mut() = Some(k.now());
        Step::Exit(0)
    }
}
ephemeral!(RemoteHello, "remote-hello");

struct SshLauncher {
    done: Rc<RefCell<Option<Nanos>>>,
}
impl SshLauncher {
    fn run(&mut self, k: &mut Kernel<'_>) -> Step {
        k.ssh_spawn(
            "node03",
            "hello",
            Box::new(RemoteHello {
                done: self.done.clone(),
            }),
            BTreeMap::new(),
        )
        .expect("ssh");
        Step::Exit(0)
    }
}
ephemeral!(SshLauncher, "ssh-launcher");

#[test]
fn ssh_spawn_starts_remote_process_after_setup_delay() {
    let (mut w, mut sim) = world(4);
    let done = Rc::new(RefCell::new(None));
    spawn(
        &mut w,
        &mut sim,
        0,
        "launcher",
        Box::new(SshLauncher { done: done.clone() }),
    );
    assert!(sim.run_bounded(&mut w, 10_000));
    let t = done.borrow().expect("remote ran");
    assert!(
        t >= Nanos::from_millis(40),
        "ssh setup delay applied: {t:?}"
    );
}

// ---------------------------------------------------------------------
// dup2 + shared file offsets (open-file table semantics)
// ---------------------------------------------------------------------

struct DupTest {
    pc: u8,
}
impl DupTest {
    fn run(&mut self, k: &mut Kernel<'_>) -> Step {
        match self.pc {
            0 => {
                let fd = k.open("/data/log", true).unwrap();
                k.write(fd, b"abcdef").unwrap();
                k.lseek(fd, 0).unwrap();
                let dup = k.dup(fd).unwrap();
                // Reading via the dup advances the *shared* offset.
                assert_eq!(k.read(dup, 3).unwrap(), b"abc");
                assert_eq!(k.read(fd, 3).unwrap(), b"def");
                // dup2 onto a chosen number.
                let fixed = k.dup2(fd, 42).unwrap();
                assert_eq!(fixed, 42);
                k.close(fd).unwrap();
                k.close(dup).unwrap();
                // Object stays alive through fd 42.
                k.lseek(42, 1).unwrap();
                assert_eq!(k.read(42, 2).unwrap(), b"bc");
                k.close(42).unwrap();
                assert!(k.read(42, 1).is_err(), "closed fd must fail");
                Step::Exit(0)
            }
            _ => unreachable!(),
        }
    }
}
ephemeral!(DupTest, "dup-test");

#[test]
fn dup_shares_offsets_and_keeps_objects_alive() {
    let (mut w, mut sim) = world(1);
    let pid = spawn(&mut w, &mut sim, 0, "dup", Box::new(DupTest { pc: 0 }));
    assert!(sim.run_bounded(&mut w, 10_000));
    assert_exit(&w, pid, 0);
    assert!(w.open_files.is_empty(), "open-file table leaked");
}
