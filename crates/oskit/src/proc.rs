//! Processes and threads.

use crate::fdtable::FdTable;
use crate::mem::AddressSpace;
use crate::program::Program;
use crate::pty::PtyId;
use crate::world::{NodeId, Pid, Tid};
use std::any::Any;
use std::collections::{BTreeMap, VecDeque};

/// Signal numbers (tiny subset).
pub mod sig {
    /// Termination request.
    pub const SIGTERM: u8 = 15;
    /// Kill (uncatchable).
    pub const SIGKILL: u8 = 9;
    /// User signal 1.
    pub const SIGUSR1: u8 = 10;
    /// User signal 2 (real MTCP's suspend signal).
    pub const SIGUSR2: u8 = 12;
    /// Child stopped/terminated.
    pub const SIGCHLD: u8 = 17;
}

/// What a thread is doing, from the scheduler's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Will be stepped when dispatched.
    Runnable,
    /// Waiting for a kernel object to wake it.
    Blocked,
    /// Finished (its program asked to exit or the process died).
    Exited,
}

/// Disposition of a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigAction {
    /// Default action (terminate for TERM/KILL, ignore otherwise here).
    Default,
    /// Ignore.
    Ignore,
    /// Deliver to the program's `on_signal`.
    Handler,
}

simkit::impl_snap!(
    enum SigAction {
        Default,
        Ignore,
        Handler,
    }
);

/// A simulated thread.
pub struct Thread {
    /// Process-unique id.
    pub tid: Tid,
    /// Scheduler state.
    pub state: ThreadState,
    /// User thread (checkpointable) vs. manager thread (the DMTCP
    /// checkpoint thread, which keeps running while users are suspended).
    pub user: bool,
    /// The running program (swapped for a tombstone during dispatch).
    pub program: Box<dyn Program>,
    /// A dispatch event is already queued.
    pub dispatch_pending: bool,
    /// Return register of the last `fork` (0 in the child).
    pub fork_ret: Option<u32>,
}

impl std::fmt::Debug for Thread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Thread")
            .field("tid", &self.tid)
            .field("state", &self.state)
            .field("user", &self.user)
            .field("program", &self.program.tag())
            .finish()
    }
}

/// Process lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Alive.
    Running,
    /// Exited, not yet reaped by the parent.
    Zombie(i32),
}

/// A simulated process.
pub struct Process {
    /// Real pid in the current world.
    pub pid: Pid,
    /// Parent pid.
    pub ppid: Pid,
    /// Node this process runs on.
    pub node: NodeId,
    /// Command name (`/proc/<pid>/comm`).
    pub cmd: String,
    /// Address space.
    pub mem: AddressSpace,
    /// Fd table.
    pub fds: FdTable,
    /// Threads (index 0 is the main thread).
    pub threads: Vec<Thread>,
    /// Lifecycle state.
    pub state: ProcState,
    /// MTCP has suspended user threads (checkpoint stage 2).
    pub user_suspended: bool,
    /// Environment (carries the `DMTCP_*` injection variables).
    pub env: BTreeMap<String, String>,
    /// Signal dispositions.
    pub sig_actions: BTreeMap<u8, SigAction>,
    /// Signals delivered but not yet handled.
    pub pending_signals: VecDeque<u8>,
    /// Controlling terminal.
    pub ctty: Option<PtyId>,
    /// Threads of the *parent* blocked in `waitpid` for this process.
    pub wait_waiters: Vec<(Pid, Tid)>,
    /// Extension slot for the checkpoint layer's per-process state (the
    /// injected `dmtcphijack.so` analogue). Opaque to the kernel.
    pub ext: Option<Box<dyn Any>>,
    /// Virtual pid presented to the application by `getpid` when set —
    /// installed by the checkpoint layer's pid-virtualization wrappers.
    pub virt_pid: Option<u32>,
    /// Virtual→real pid translation used by `kill`/`waitpid` wrappers.
    /// Identity entries are inserted at process creation; restart rewires
    /// the real sides.
    pub pid_map: BTreeMap<u32, u32>,
    next_tid: u32,
}

impl std::fmt::Debug for Process {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Process")
            .field("pid", &self.pid)
            .field("ppid", &self.ppid)
            .field("node", &self.node)
            .field("cmd", &self.cmd)
            .field("state", &self.state)
            .field("threads", &self.threads.len())
            .field("fds", &self.fds.len())
            .finish()
    }
}

impl Process {
    /// A new single-threaded process running `main_prog`.
    pub fn new(
        pid: Pid,
        ppid: Pid,
        node: NodeId,
        cmd: String,
        main_prog: Box<dyn Program>,
    ) -> Self {
        let mut p = Process {
            pid,
            ppid,
            node,
            cmd,
            mem: AddressSpace::new(),
            fds: FdTable::new(),
            threads: Vec::new(),
            state: ProcState::Running,
            user_suspended: false,
            env: BTreeMap::new(),
            sig_actions: BTreeMap::new(),
            pending_signals: VecDeque::new(),
            ctty: None,
            wait_waiters: Vec::new(),
            ext: None,
            virt_pid: None,
            pid_map: BTreeMap::new(),
            next_tid: 0,
        };
        p.add_thread(main_prog, true);
        p
    }

    /// Add a thread running `program`; returns its tid.
    pub fn add_thread(&mut self, program: Box<dyn Program>, user: bool) -> Tid {
        let tid = Tid(self.next_tid);
        self.next_tid += 1;
        self.threads.push(Thread {
            tid,
            state: ThreadState::Runnable,
            user,
            program,
            dispatch_pending: false,
            fork_ret: None,
        });
        tid
    }

    /// Borrow a thread by tid.
    pub fn thread(&self, tid: Tid) -> Option<&Thread> {
        self.threads.iter().find(|t| t.tid == tid)
    }

    /// Mutably borrow a thread by tid.
    pub fn thread_mut(&mut self, tid: Tid) -> Option<&mut Thread> {
        self.threads.iter_mut().find(|t| t.tid == tid)
    }

    /// Live (non-exited) thread count.
    pub fn live_threads(&self) -> usize {
        self.threads
            .iter()
            .filter(|t| t.state != ThreadState::Exited)
            .count()
    }

    /// Live *user* threads.
    pub fn live_user_threads(&self) -> usize {
        self.threads
            .iter()
            .filter(|t| t.user && t.state != ThreadState::Exited)
            .count()
    }

    /// Whether this process is alive.
    pub fn alive(&self) -> bool {
        self.state == ProcState::Running
    }
}

/// A captured thread context: what MTCP stores in the image for one thread.
/// `tag` names the code (executable analogue); `state` is the opaque
/// register/stack blob; the checkpointer never interprets it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadCtx {
    /// Program registry tag.
    pub tag: String,
    /// Serialized program state.
    pub state: Vec<u8>,
    /// Was this a user thread?
    pub user: bool,
    /// Was it blocked at suspend time? (Restored threads re-poll, so this
    /// is advisory: they restart as runnable and re-issue their syscall.)
    pub blocked: bool,
}

simkit::impl_snap!(struct ThreadCtx { tag, state, user, blocked });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;
    use crate::program::Step;

    struct Nop;
    impl Program for Nop {
        fn step(&mut self, _k: &mut Kernel<'_>) -> Step {
            Step::Exit(0)
        }
        fn tag(&self) -> &'static str {
            "nop"
        }
        fn save(&self) -> Vec<u8> {
            Vec::new()
        }
    }

    #[test]
    fn new_process_has_one_user_thread() {
        let p = Process::new(Pid(5), Pid(1), NodeId(0), "test".into(), Box::new(Nop));
        assert_eq!(p.threads.len(), 1);
        assert_eq!(p.live_user_threads(), 1);
        assert!(p.alive());
        assert_eq!(p.threads[0].tid, Tid(0));
    }

    #[test]
    fn tids_are_unique_and_ordered() {
        let mut p = Process::new(Pid(5), Pid(1), NodeId(0), "t".into(), Box::new(Nop));
        let a = p.add_thread(Box::new(Nop), true);
        let b = p.add_thread(Box::new(Nop), false);
        assert_eq!((a, b), (Tid(1), Tid(2)));
        assert_eq!(p.live_threads(), 3);
        assert_eq!(p.live_user_threads(), 2);
        p.thread_mut(a).unwrap().state = ThreadState::Exited;
        assert_eq!(p.live_user_threads(), 1);
    }

    #[test]
    fn thread_ctx_snap_roundtrip() {
        use simkit::Snap;
        let c = ThreadCtx {
            tag: "worker".into(),
            state: vec![1, 2, 3],
            user: true,
            blocked: false,
        };
        assert_eq!(ThreadCtx::from_snap_bytes(&c.to_snap_bytes()).unwrap(), c);
    }
}
