//! File descriptors and the system-wide open-file table.
//!
//! UNIX separates the per-process fd table from the system open-file table;
//! DMTCP depends on that distinction (shared offsets after `fork`, the
//! F_SETOWN leader-election trick, `dup2` rearrangement at restart), so the
//! model keeps both layers explicit. Reference counts are maintained by the
//! world when fds are duplicated, inherited across `fork`, or closed.

use crate::net::ConnId;
use crate::pty::PtyId;
use std::collections::BTreeMap;

/// A per-process file descriptor number.
pub type Fd = i32;

/// Id of an entry in the system open-file table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpenFileId(pub u64);

/// Id of a listening socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ListenerId(pub u64);

/// What an fd refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdObject {
    /// Regular file via the open-file table (shared offset semantics).
    File(OpenFileId),
    /// One endpoint (0 or 1) of a connection (TCP socket, UNIX socket,
    /// socketpair, or promoted pipe).
    Sock(ConnId, u8),
    /// A listening TCP socket.
    Listener(ListenerId),
    /// Pty master side.
    PtyMaster(PtyId),
    /// Pty slave side.
    PtySlave(PtyId),
}

/// One slot in a process's fd table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdEntry {
    /// Referent.
    pub obj: FdObject,
    /// Close-on-exec flag.
    pub cloexec: bool,
}

/// An entry in the system-wide open-file table: shared by every fd that
/// `dup`ed or inherited it, with a shared offset.
#[derive(Debug, Clone)]
pub struct OpenFile {
    /// Absolute path.
    pub path: String,
    /// Shared read/write offset.
    pub offset: u64,
    /// Open for writing?
    pub writable: bool,
    /// `fcntl(F_SETOWN)` owner — DMTCP's leader election misuses this.
    pub owner_pid: u32,
    /// Live fd references across all processes.
    pub refs: u32,
}

/// A per-process fd table.
#[derive(Debug, Clone, Default)]
pub struct FdTable {
    entries: BTreeMap<Fd, FdEntry>,
    next_fd: Fd,
}

impl FdTable {
    /// An empty table; fds start at 3 (0–2 reserved for std streams, which
    /// the world wires to a pty or /dev/null at spawn).
    pub fn new() -> Self {
        FdTable {
            entries: BTreeMap::new(),
            next_fd: 3,
        }
    }

    /// Install `entry` at the lowest free fd ≥ `next`, POSIX-style.
    pub fn install(&mut self, entry: FdEntry) -> Fd {
        let mut fd = self.next_fd;
        while self.entries.contains_key(&fd) {
            fd += 1;
        }
        self.entries.insert(fd, entry);
        fd
    }

    /// Install at a specific fd, returning whatever was displaced
    /// (dup2 semantics: caller must release the displaced reference).
    pub fn install_at(&mut self, fd: Fd, entry: FdEntry) -> Option<FdEntry> {
        self.entries.insert(fd, entry)
    }

    /// Look up an fd.
    pub fn get(&self, fd: Fd) -> Option<&FdEntry> {
        self.entries.get(&fd)
    }

    /// Remove an fd, returning its entry for the caller to release.
    pub fn remove(&mut self, fd: Fd) -> Option<FdEntry> {
        self.entries.remove(&fd)
    }

    /// Iterate `(fd, entry)` in fd order.
    pub fn iter(&self) -> impl Iterator<Item = (Fd, &FdEntry)> {
        self.entries.iter().map(|(fd, e)| (*fd, e))
    }

    /// All entries (for fork inheritance).
    pub fn clone_entries(&self) -> Vec<(Fd, FdEntry)> {
        self.entries.iter().map(|(fd, e)| (*fd, *e)).collect()
    }

    /// Number of open fds.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no fds are open.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_entry(id: u64) -> FdEntry {
        FdEntry {
            obj: FdObject::File(OpenFileId(id)),
            cloexec: false,
        }
    }

    #[test]
    fn install_uses_lowest_free_fd() {
        let mut t = FdTable::new();
        let a = t.install(file_entry(1));
        let b = t.install(file_entry(2));
        assert_eq!((a, b), (3, 4));
        t.remove(3);
        let c = t.install(file_entry(3));
        assert_eq!(c, 3, "lowest free fd is reused");
    }

    #[test]
    fn install_at_returns_displaced_entry() {
        let mut t = FdTable::new();
        let fd = t.install(file_entry(1));
        let old = t.install_at(fd, file_entry(2));
        assert_eq!(old, Some(file_entry(1)));
        assert_eq!(t.get(fd), Some(&file_entry(2)));
        assert_eq!(t.install_at(99, file_entry(3)), None);
    }

    #[test]
    fn clone_entries_preserves_everything() {
        let mut t = FdTable::new();
        t.install(file_entry(1));
        t.install_at(
            7,
            FdEntry {
                obj: FdObject::Sock(ConnId(4), 1),
                cloexec: true,
            },
        );
        let cloned = t.clone_entries();
        assert_eq!(cloned.len(), 2);
        assert!(cloned.contains(&(
            7,
            FdEntry {
                obj: FdObject::Sock(ConnId(4), 1),
                cloexec: true
            }
        )));
    }
}
