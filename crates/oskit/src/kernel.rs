//! The syscall facade handed to programs at each step.
//!
//! `Kernel` borrows the world and the event queue for the duration of one
//! program step. Syscalls that cannot complete return
//! [`Errno::WouldBlock`] *and* register the calling thread as a waiter on
//! the relevant kernel object; the program then returns
//! [`Step::Block`](crate::program::Step) and is re-stepped when woken, where
//! it re-issues the call — the classic poll loop, which is also how restored
//! threads transparently resume blocking syscalls after a restart.

use crate::fdtable::{Fd, FdEntry, FdObject, OpenFile};
use crate::fs::FsError;
use crate::mem::{Content, FillProfile, RegionId, RegionKind, PROT_R, PROT_W};
use crate::net::{Conn, ConnId, ConnKind, Listener, PendingConn};
use crate::proc::ThreadState;
use crate::program::Program;
use crate::pty::{PtyId, Termios};
use crate::world::{NodeId, OsSim, Pid, Tid, World};
use simkit::Nanos;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Syscall error numbers (the subset this kernel produces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Errno {
    /// Operation would block; the thread was registered as a waiter.
    WouldBlock,
    /// Bad file descriptor.
    BadFd,
    /// Operation on a non-socket fd.
    NotSock,
    /// Peer closed (EPIPE on write).
    Pipe,
    /// No listener at the target address.
    ConnRefused,
    /// Unknown host.
    HostUnreach,
    /// File or path not found.
    NotFound,
    /// Permission denied / read-only target.
    ReadOnly,
    /// Invalid argument.
    Inval,
    /// No such child to wait for.
    NoChild,
    /// Byte-read of virtual (unmaterialized) file content.
    NotMaterialized,
}

impl From<FsError> for Errno {
    fn from(e: FsError) -> Errno {
        match e {
            FsError::NotFound => Errno::NotFound,
            FsError::ReadOnly => Errno::ReadOnly,
            FsError::NotMaterialized => Errno::NotMaterialized,
        }
    }
}

/// Side effects a step can leave for the dispatcher.
#[derive(Default)]
pub struct Fx {
    /// Replace the calling thread's program after this step (`exec`).
    pub exec_to: Option<Box<dyn Program>>,
    /// How many wakers this step registered (sanity check for `Block`).
    pub wakes_registered: u32,
}

/// The per-step syscall context.
pub struct Kernel<'a> {
    /// The world. Checkpoint-layer code may reach through this directly —
    /// that models its privileged use of `/proc` and wrapped libc calls.
    /// Application programs must stick to the methods below.
    pub w: &'a mut World,
    /// The event queue.
    pub sim: &'a mut OsSim,
    /// Calling process.
    pub pid: Pid,
    /// Calling thread.
    pub tid: Tid,
    fx: Fx,
}

impl<'a> Kernel<'a> {
    /// Construct the facade for one step.
    pub fn new(w: &'a mut World, sim: &'a mut OsSim, pid: Pid, tid: Tid) -> Self {
        Kernel {
            w,
            sim,
            pid,
            tid,
            fx: Fx::default(),
        }
    }

    /// Extract accumulated side effects (dispatcher use).
    pub fn take_fx(&mut self) -> Fx {
        std::mem::take(&mut self.fx)
    }

    // ------------------------------------------------------------------
    // Identity & environment
    // ------------------------------------------------------------------

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.sim.now()
    }

    /// This process's pid — the *virtual* pid when the checkpoint layer has
    /// installed one, exactly as DMTCP's getpid wrapper reports.
    pub fn getpid(&self) -> Pid {
        match self.proc_ref().virt_pid {
            Some(v) => Pid(v),
            None => self.pid,
        }
    }

    /// The raw kernel pid, bypassing virtualization (checkpoint-layer use).
    pub fn getpid_real(&self) -> Pid {
        self.pid
    }

    /// Translate an application-visible pid to the current real pid.
    fn deref_pid(&self, pid: Pid) -> Pid {
        match self.proc_ref().pid_map.get(&pid.0) {
            Some(real) => Pid(*real),
            None => pid,
        }
    }

    /// Parent pid.
    pub fn getppid(&self) -> Pid {
        self.proc_ref().ppid
    }

    /// The node this process runs on.
    pub fn node(&self) -> NodeId {
        self.proc_ref().node
    }

    /// This node's hostname.
    pub fn hostname(&self) -> String {
        self.w.node(self.node()).hostname.clone()
    }

    /// Read an environment variable.
    pub fn getenv(&self, key: &str) -> Option<String> {
        self.proc_ref().env.get(key).cloned()
    }

    /// Set an environment variable.
    pub fn setenv(&mut self, key: &str, val: &str) {
        self.proc_mut().env.insert(key.into(), val.into());
    }

    fn proc_ref(&self) -> &crate::proc::Process {
        self.w.procs.get(&self.pid).expect("calling process exists")
    }

    fn proc_mut(&mut self) -> &mut crate::proc::Process {
        self.w
            .procs
            .get_mut(&self.pid)
            .expect("calling process exists")
    }

    /// Declare an intentional indefinite block (no waker). Rare; used by
    /// programs that only react to signals.
    pub fn block_forever(&mut self) {
        self.fx.wakes_registered += 1;
    }

    fn me(&self) -> (Pid, Tid) {
        (self.pid, self.tid)
    }

    // ------------------------------------------------------------------
    // Processes & threads
    // ------------------------------------------------------------------

    /// Spawn a fresh process on this node (fork+exec combined: environment
    /// is inherited, fds are not). Returns the child's pid, which is also
    /// its virtual pid forever after.
    pub fn spawn_process(&mut self, cmd: &str, prog: Box<dyn Program>) -> Pid {
        let env = self.proc_ref().env.clone();
        let node = self.node();
        let child = self.w.spawn(self.sim, node, cmd, prog, self.pid, env);
        let vpid = self.w.procs[&child].virt_pid.unwrap_or(child.0);
        self.proc_mut().pid_map.insert(vpid, child.0);
        Pid(vpid)
    }

    /// True `fork`: COW address space, inherited fds, child continues from
    /// this program's saved state with `fork_ret() == Some(0)`.
    ///
    /// The program must already be registered (its tag is how the kernel
    /// "re-executes" it in the child) and must snapshot the state it wants
    /// the child to start from *before* calling.
    pub fn fork_snapshot(&mut self, me: &dyn Program) -> Result<Pid, Errno> {
        let child_prog = self
            .w
            .registry
            .load(me.tag(), &me.save())
            .map_err(|_| Errno::Inval)?;
        let child = self.w.fork_process(self.sim, self.pid, child_prog);
        let vpid = self.w.procs[&child].virt_pid.unwrap_or(child.0);
        self.proc_mut().pid_map.insert(vpid, child.0);
        // Parent sees the child pid in its own fork register too, so state
        // machines can branch uniformly.
        let tid = self.tid;
        if let Some(t) = self.proc_mut().thread_mut(tid) {
            t.fork_ret = Some(vpid);
        }
        Ok(Pid(vpid))
    }

    /// The fork return register: `Some(0)` in a forked child, `Some(pid)`
    /// in the parent right after `fork_snapshot`, `None` otherwise.
    pub fn fork_ret(&self) -> Option<u32> {
        self.proc_ref().thread(self.tid).and_then(|t| t.fork_ret)
    }

    /// Clear the fork register once consumed.
    pub fn clear_fork_ret(&mut self) {
        let tid = self.tid;
        if let Some(t) = self.proc_mut().thread_mut(tid) {
            t.fork_ret = None;
        }
    }

    /// Replace this thread's program after the current step returns
    /// (`exec`). Close-on-exec fds are closed now.
    pub fn exec(&mut self, cmd: &str, prog: Box<dyn Program>) {
        let cloexec: Vec<Fd> = self
            .proc_ref()
            .fds
            .iter()
            .filter(|(_, e)| e.cloexec)
            .map(|(fd, _)| fd)
            .collect();
        for fd in cloexec {
            let _ = self.close(fd);
        }
        self.proc_mut().cmd = cmd.to_string();
        self.fx.exec_to = Some(prog);
        // Re-run the injection hook: a real exec re-applies LD_PRELOAD.
        self.w.run_spawn_hook(self.sim, self.pid);
        self.w.obs_note_process(self.pid);
    }

    /// Create an additional thread in this process.
    pub fn spawn_thread(&mut self, prog: Box<dyn Program>, user: bool) -> Tid {
        let pid = self.pid;
        let tid = self.proc_mut().add_thread(prog, user);
        self.w.schedule_dispatch(self.sim, pid, tid);
        tid
    }

    /// Spawn a process on a remote node via the modelled `ssh`. The remote
    /// process starts after the ssh session setup delay.
    pub fn ssh_spawn(
        &mut self,
        host: &str,
        cmd: &str,
        prog: Box<dyn Program>,
        extra_env: BTreeMap<String, String>,
    ) -> Result<Pid, Errno> {
        let node = self.w.resolve(host).ok_or(Errno::HostUnreach)?;
        let mut env = self.proc_ref().env.clone();
        env.extend(extra_env);
        let pid = self.w.alloc_pid();
        let mut p = crate::proc::Process::new(pid, self.pid, node, cmd.to_string(), prog);
        p.env = env;
        self.w.procs.insert(pid, p);
        let pid = self.w.run_spawn_hook(self.sim, pid);
        let delay = self.w.spec.net_latency + Nanos::from_millis(40); // ssh session setup
        let at = self.sim.now() + delay;
        self.w.schedule_dispatch_at(self.sim, pid, Tid(0), at);
        let vpid = self.w.procs[&pid].virt_pid.unwrap_or(pid.0);
        self.proc_mut().pid_map.insert(vpid, pid.0);
        Ok(Pid(vpid))
    }

    /// Send a signal (pid translated through the virtualization map).
    pub fn kill(&mut self, pid: Pid, signum: u8) {
        let real = self.deref_pid(pid);
        self.w.signal(self.sim, real, signum);
    }

    /// Wait for a child to exit; reaps and returns its code. The argument
    /// is translated through the pid-virtualization map.
    pub fn waitpid(&mut self, child: Pid) -> Result<i32, Errno> {
        let me = self.me();
        let child = self.deref_pid(child);
        match self.w.procs.get_mut(&child) {
            None => Err(Errno::NoChild),
            Some(p) if p.ppid != self.pid => Err(Errno::NoChild),
            Some(p) => match p.state {
                crate::proc::ProcState::Zombie(code) => {
                    self.w.reap(child);
                    Ok(code)
                }
                crate::proc::ProcState::Running => {
                    p.wait_waiters.push(me);
                    self.fx.wakes_registered += 1;
                    Err(Errno::WouldBlock)
                }
            },
        }
    }

    /// Is `pid` alive (running, not zombie)?
    pub fn proc_alive(&self, pid: Pid) -> bool {
        self.w.procs.get(&pid).map(|p| p.alive()).unwrap_or(false)
    }

    // ------------------------------------------------------------------
    // Files
    // ------------------------------------------------------------------

    /// Open (creating if needed when `writable`) a file.
    pub fn open(&mut self, path: &str, writable: bool) -> Result<Fd, Errno> {
        let node = self.node();
        {
            let fs = self.w.fs_for_mut(node, path);
            if !fs.exists(path) {
                if writable {
                    fs.create(path)?;
                } else {
                    return Err(Errno::NotFound);
                }
            }
        }
        let id = self.w.alloc_open_file_id();
        self.w.open_files.insert(
            id,
            OpenFile {
                path: path.to_string(),
                offset: 0,
                writable,
                owner_pid: 0,
                refs: 1,
            },
        );
        Ok(self.proc_mut().fds.install(FdEntry {
            obj: FdObject::File(id),
            cloexec: false,
        }))
    }

    /// Close an fd.
    pub fn close(&mut self, fd: Fd) -> Result<(), Errno> {
        let entry = self.proc_mut().fds.remove(fd).ok_or(Errno::BadFd)?;
        self.w.release_obj(self.sim, entry.obj);
        Ok(())
    }

    /// `dup2`: make `new_fd` refer to `old_fd`'s object.
    pub fn dup2(&mut self, old_fd: Fd, new_fd: Fd) -> Result<Fd, Errno> {
        if old_fd == new_fd {
            return Ok(new_fd);
        }
        let entry = *self.proc_ref().fds.get(old_fd).ok_or(Errno::BadFd)?;
        self.w.retain_obj(entry.obj);
        let displaced = self.proc_mut().fds.install_at(new_fd, entry);
        if let Some(old) = displaced {
            self.w.release_obj(self.sim, old.obj);
        }
        Ok(new_fd)
    }

    /// `dup`: lowest free fd.
    pub fn dup(&mut self, fd: Fd) -> Result<Fd, Errno> {
        let entry = *self.proc_ref().fds.get(fd).ok_or(Errno::BadFd)?;
        self.w.retain_obj(entry.obj);
        Ok(self.proc_mut().fds.install(entry))
    }

    /// Look up what an fd refers to.
    pub fn fd_object(&self, fd: Fd) -> Result<FdObject, Errno> {
        self.proc_ref()
            .fds
            .get(fd)
            .map(|e| e.obj)
            .ok_or(Errno::BadFd)
    }

    /// All open fds of the calling process.
    pub fn list_fds(&self) -> Vec<(Fd, FdObject)> {
        self.proc_ref()
            .fds
            .iter()
            .map(|(fd, e)| (fd, e.obj))
            .collect()
    }

    /// Write bytes through an fd (file append / socket send / pty write).
    pub fn write(&mut self, fd: Fd, bytes: &[u8]) -> Result<usize, Errno> {
        match self.fd_object(fd)? {
            FdObject::File(id) => {
                let node = self.node();
                let (path, writable) = {
                    let f = &self.w.open_files[&id];
                    (f.path.clone(), f.writable)
                };
                if !writable {
                    return Err(Errno::ReadOnly);
                }
                self.w.fs_for_mut(node, &path).append(&path, bytes)?;
                let len = {
                    let fs = self.w.fs_for(node, &path);
                    fs.size(&path).expect("file exists")
                };
                self.w.open_files.get_mut(&id).expect("open file").offset = len;
                self.w
                    .charge_storage_write(self.sim.now(), node, &path, bytes.len() as u64);
                Ok(bytes.len())
            }
            FdObject::Sock(cid, end) => self.send_on(cid, end as usize, bytes),
            FdObject::PtyMaster(ptid) => {
                let p = self.w.ptys.get_mut(&ptid).ok_or(Errno::BadFd)?;
                let echo = p.termios.echo;
                p.master_write(bytes);
                if echo {
                    let copy = bytes.to_vec();
                    p.to_master.extend(copy.iter());
                }
                let slave_waiters = std::mem::take(&mut p.slave_read_waiters);
                let master_waiters = if echo {
                    std::mem::take(&mut p.master_read_waiters)
                } else {
                    Vec::new()
                };
                self.w.wake_all(self.sim, slave_waiters);
                self.w.wake_all(self.sim, master_waiters);
                Ok(bytes.len())
            }
            FdObject::PtySlave(ptid) => {
                let p = self.w.ptys.get_mut(&ptid).ok_or(Errno::BadFd)?;
                p.slave_write(bytes);
                let waiters = std::mem::take(&mut p.master_read_waiters);
                self.w.wake_all(self.sim, waiters);
                Ok(bytes.len())
            }
            FdObject::Listener(_) => Err(Errno::NotSock),
        }
    }

    /// Read up to `max` bytes. `Ok(empty)` is EOF.
    pub fn read(&mut self, fd: Fd, max: usize) -> Result<Vec<u8>, Errno> {
        let me = self.me();
        match self.fd_object(fd)? {
            FdObject::File(id) => {
                let node = self.node();
                let (path, offset) = {
                    let f = &self.w.open_files[&id];
                    (f.path.clone(), f.offset)
                };
                let data = self.w.fs_for(node, &path).read_all(&path)?;
                let start = (offset as usize).min(data.len());
                let end = (start + max).min(data.len());
                self.w.open_files.get_mut(&id).expect("open file").offset = end as u64;
                self.w
                    .charge_storage_read(self.sim.now(), node, &path, (end - start) as u64);
                Ok(data[start..end].to_vec())
            }
            FdObject::Sock(cid, end) => self.recv_on(cid, end as usize, max),
            FdObject::PtyMaster(ptid) => {
                let p = self.w.ptys.get_mut(&ptid).ok_or(Errno::BadFd)?;
                if p.to_master.is_empty() {
                    if p.slave_refs == 0 {
                        return Ok(Vec::new()); // EOF: no slave left
                    }
                    p.master_read_waiters.push(me);
                    self.fx.wakes_registered += 1;
                    return Err(Errno::WouldBlock);
                }
                let take = p.to_master.len().min(max);
                Ok(p.to_master.drain(..take).collect())
            }
            FdObject::PtySlave(ptid) => {
                let p = self.w.ptys.get_mut(&ptid).ok_or(Errno::BadFd)?;
                if p.to_slave.is_empty() {
                    if p.master_refs == 0 {
                        return Ok(Vec::new());
                    }
                    p.slave_read_waiters.push(me);
                    self.fx.wakes_registered += 1;
                    return Err(Errno::WouldBlock);
                }
                let take = p.to_slave.len().min(max);
                Ok(p.to_slave.drain(..take).collect())
            }
            FdObject::Listener(_) => Err(Errno::NotSock),
        }
    }

    /// Reposition a file offset.
    pub fn lseek(&mut self, fd: Fd, pos: u64) -> Result<(), Errno> {
        match self.fd_object(fd)? {
            FdObject::File(id) => {
                self.w.open_files.get_mut(&id).expect("open file").offset = pos;
                Ok(())
            }
            _ => Err(Errno::Inval),
        }
    }

    /// Size of a file by path.
    pub fn file_size(&self, path: &str) -> Result<u64, Errno> {
        let node = self.node();
        self.w.fs_for(node, path).size(path).ok_or(Errno::NotFound)
    }

    // ------------------------------------------------------------------
    // Sockets
    // ------------------------------------------------------------------

    /// Bind + listen on `port` (0 = ephemeral). Returns the listener fd.
    pub fn listen_on(&mut self, port: u16) -> Result<(Fd, u16), Errno> {
        let node = self.node();
        let port = if port == 0 {
            self.w.alloc_port(node)
        } else {
            port
        };
        if self
            .w
            .listeners
            .values()
            .any(|l| l.node == node && l.port == port)
        {
            return Err(Errno::Inval); // EADDRINUSE
        }
        let id = self.w.alloc_listener_id();
        self.w.listeners.insert(
            id,
            Listener {
                id,
                node,
                port,
                backlog: Default::default(),
                accept_waiters: Vec::new(),
                refs: 1,
                owner_pid: 0,
            },
        );
        let fd = self.proc_mut().fds.install(FdEntry {
            obj: FdObject::Listener(id),
            cloexec: false,
        });
        Ok((fd, port))
    }

    /// Connect to `host:port`; returns the connected socket fd.
    pub fn connect(&mut self, host: &str, port: u16) -> Result<Fd, Errno> {
        let peer_node = self.w.resolve(host).ok_or(Errno::HostUnreach)?;
        let my_node = self.node();
        let lid = self
            .w
            .listeners
            .values()
            .find(|l| l.node == peer_node && l.port == port)
            .map(|l| l.id)
            .ok_or(Errno::ConnRefused)?;
        let cid = self.w.alloc_conn_id();
        let kind = if my_node == peer_node {
            ConnKind::Unix
        } else {
            ConnKind::Tcp
        };
        let mut conn = Conn::new(cid, kind, my_node, peer_node);
        conn.end_refs = [1, 1]; // end 1 held by the listener backlog until accept
        self.w.conns.insert(cid, conn);
        let l = self.w.listeners.get_mut(&lid).expect("listener just found");
        l.backlog.push_back(PendingConn { conn: cid });
        let waiters = std::mem::take(&mut l.accept_waiters);
        self.w.wake_all(self.sim, waiters);
        Ok(self.proc_mut().fds.install(FdEntry {
            obj: FdObject::Sock(cid, 0),
            cloexec: false,
        }))
    }

    /// Accept a pending connection.
    pub fn accept(&mut self, listener_fd: Fd) -> Result<Fd, Errno> {
        let me = self.me();
        let FdObject::Listener(lid) = self.fd_object(listener_fd)? else {
            return Err(Errno::NotSock);
        };
        let l = self.w.listeners.get_mut(&lid).ok_or(Errno::BadFd)?;
        match l.backlog.pop_front() {
            Some(pending) => Ok(self.proc_mut().fds.install(FdEntry {
                obj: FdObject::Sock(pending.conn, 1),
                cloexec: false,
            })),
            None => {
                l.accept_waiters.push(me);
                self.fx.wakes_registered += 1;
                Err(Errno::WouldBlock)
            }
        }
    }

    /// `socketpair(2)` — a connected pair of UNIX sockets.
    pub fn socketpair(&mut self) -> (Fd, Fd) {
        let node = self.node();
        let cid = self.w.alloc_conn_id();
        let mut conn = Conn::new(cid, ConnKind::SocketPair, node, node);
        conn.end_refs = [1, 1];
        self.w.conns.insert(cid, conn);
        let a = self.proc_mut().fds.install(FdEntry {
            obj: FdObject::Sock(cid, 0),
            cloexec: false,
        });
        let b = self.proc_mut().fds.install(FdEntry {
            obj: FdObject::Sock(cid, 1),
            cloexec: false,
        });
        (a, b)
    }

    /// `pipe(2)`. The wrapper layer promotes pipes to socketpairs (§4.5) so
    /// the checkpoint drain logic can re-send data to the writer; the
    /// returned pair is (read end, write end).
    pub fn pipe(&mut self) -> (Fd, Fd) {
        let node = self.node();
        let cid = self.w.alloc_conn_id();
        let mut conn = Conn::new(cid, ConnKind::Pipe, node, node);
        conn.end_refs = [1, 1];
        self.w.conns.insert(cid, conn);
        // Data flows from the write end (1) to the read end (0).
        let r = self.proc_mut().fds.install(FdEntry {
            obj: FdObject::Sock(cid, 0),
            cloexec: false,
        });
        let w = self.proc_mut().fds.install(FdEntry {
            obj: FdObject::Sock(cid, 1),
            cloexec: false,
        });
        (r, w)
    }

    /// `shutdown(fd, SHUT_WR)` — half-close the write side of a socket:
    /// further sends from this end fail with EPIPE and the peer sees EOF
    /// once buffered bytes drain, but reads on this end keep working.
    pub fn shutdown_write(&mut self, fd: Fd) -> Result<(), Errno> {
        let FdObject::Sock(cid, end) = self.fd_object(fd)? else {
            return Err(Errno::NotSock);
        };
        let end = end as usize;
        let conn = self.w.conns.get_mut(&cid).ok_or(Errno::BadFd)?;
        if conn.wr_closed[end] {
            return Ok(());
        }
        conn.wr_closed[end] = true;
        // Peer readers blocked on this direction must wake to observe EOF.
        let readers = std::mem::take(&mut conn.dirs[end].read_waiters);
        self.w.wake_all(self.sim, readers);
        Ok(())
    }

    fn send_on(&mut self, cid: ConnId, end: usize, bytes: &[u8]) -> Result<usize, Errno> {
        let me = self.me();
        let conn = self.w.conns.get_mut(&cid).ok_or(Errno::BadFd)?;
        if conn.closed[Conn::peer(end)] || conn.wr_closed[end] {
            return Err(Errno::Pipe);
        }
        let room = conn.send_room(end);
        if room == 0 {
            conn.dirs[end].write_waiters.push(me);
            self.fx.wakes_registered += 1;
            return Err(Errno::WouldBlock);
        }
        let take = (room as usize).min(bytes.len());
        let chunk = bytes[..take].to_vec();
        self.w.conn_transmit(self.sim, cid, end, chunk);
        self.w
            .obs
            .metrics
            .add("oskit.sock.tx_bytes", 0, take as u64);
        Ok(take)
    }

    fn recv_on(&mut self, cid: ConnId, end: usize, max: usize) -> Result<Vec<u8>, Errno> {
        let me = self.me();
        let src = Conn::peer(end);
        let conn = self.w.conns.get_mut(&cid).ok_or(Errno::BadFd)?;
        let dir = &mut conn.dirs[src];
        if dir.recv_buf.is_empty() {
            if (conn.closed[src] || conn.wr_closed[src]) && conn.dirs[src].in_flight == 0 {
                return Ok(Vec::new()); // EOF
            }
            conn.dirs[src].read_waiters.push(me);
            self.fx.wakes_registered += 1;
            return Err(Errno::WouldBlock);
        }
        let take = dir.recv_buf.len().min(max);
        let out: Vec<u8> = dir.recv_buf.drain(..take).collect();
        let writers = std::mem::take(&mut dir.write_waiters);
        self.w.wake_all(self.sim, writers);
        self.w
            .obs
            .metrics
            .add("oskit.sock.rx_bytes", 0, out.len() as u64);
        Ok(out)
    }

    /// `fcntl(F_SETOWN)` — sets the owner pid of the object behind `fd`.
    pub fn fcntl_setown(&mut self, fd: Fd, owner: Pid) -> Result<(), Errno> {
        match self.fd_object(fd)? {
            FdObject::File(id) => {
                self.w.open_files.get_mut(&id).expect("open file").owner_pid = owner.0;
            }
            FdObject::Sock(cid, end) => {
                self.w.conns.get_mut(&cid).ok_or(Errno::BadFd)?.owner_pid[end as usize] = owner.0;
            }
            FdObject::Listener(lid) => {
                self.w
                    .listeners
                    .get_mut(&lid)
                    .ok_or(Errno::BadFd)?
                    .owner_pid = owner.0;
            }
            FdObject::PtyMaster(_) | FdObject::PtySlave(_) => return Err(Errno::Inval),
        }
        // F_SETOWN is how the checkpoint layer elects an fd leader.
        self.w.obs.metrics.inc("oskit.fd.setown_elections", 0);
        Ok(())
    }

    /// `fcntl(F_GETOWN)`.
    pub fn fcntl_getown(&self, fd: Fd) -> Result<Pid, Errno> {
        Ok(Pid(match self.fd_object(fd)? {
            FdObject::File(id) => self.w.open_files[&id].owner_pid,
            FdObject::Sock(cid, end) => {
                self.w.conns.get(&cid).ok_or(Errno::BadFd)?.owner_pid[end as usize]
            }
            FdObject::Listener(lid) => self.w.listeners.get(&lid).ok_or(Errno::BadFd)?.owner_pid,
            FdObject::PtyMaster(_) | FdObject::PtySlave(_) => return Err(Errno::Inval),
        }))
    }

    // ------------------------------------------------------------------
    // Ptys & terminals
    // ------------------------------------------------------------------

    /// Allocate a pty pair; returns (master fd, slave fd).
    pub fn openpty(&mut self) -> (Fd, Fd) {
        let id = self.w.alloc_pty_id();
        let mut pty = crate::pty::Pty::new(id);
        pty.master_refs = 1;
        pty.slave_refs = 1;
        self.w.ptys.insert(id, pty);
        let m = self.proc_mut().fds.install(FdEntry {
            obj: FdObject::PtyMaster(id),
            cloexec: false,
        });
        let s = self.proc_mut().fds.install(FdEntry {
            obj: FdObject::PtySlave(id),
            cloexec: false,
        });
        (m, s)
    }

    /// `ptsname(3)`: the slave path of a master fd.
    pub fn ptsname(&self, fd: Fd) -> Result<String, Errno> {
        match self.fd_object(fd)? {
            FdObject::PtyMaster(id) => Ok(id.slave_path()),
            _ => Err(Errno::Inval),
        }
    }

    /// Open an existing pty slave by its `/dev/pts/<n>` path.
    pub fn open_pty_slave(&mut self, path: &str) -> Result<Fd, Errno> {
        let id = self
            .w
            .ptys
            .values()
            .find(|p| p.id.slave_path() == path)
            .map(|p| p.id)
            .ok_or(Errno::NotFound)?;
        self.w.ptys.get_mut(&id).expect("pty just found").slave_refs += 1;
        Ok(self.proc_mut().fds.install(FdEntry {
            obj: FdObject::PtySlave(id),
            cloexec: false,
        }))
    }

    /// Get terminal modes.
    pub fn tcgetattr(&self, fd: Fd) -> Result<Termios, Errno> {
        let id = self.pty_of(fd)?;
        Ok(self.w.ptys[&id].termios)
    }

    /// Set terminal modes.
    pub fn tcsetattr(&mut self, fd: Fd, t: Termios) -> Result<(), Errno> {
        let id = self.pty_of(fd)?;
        self.w.ptys.get_mut(&id).expect("pty exists").termios = t;
        Ok(())
    }

    /// Take this pty as the controlling terminal of the calling process.
    pub fn set_ctty(&mut self, fd: Fd) -> Result<(), Errno> {
        let id = self.pty_of(fd)?;
        let pid = self.pid;
        self.w
            .ptys
            .get_mut(&id)
            .expect("pty exists")
            .controlling_pid = Some(pid);
        self.proc_mut().ctty = Some(id);
        Ok(())
    }

    fn pty_of(&self, fd: Fd) -> Result<PtyId, Errno> {
        match self.fd_object(fd)? {
            FdObject::PtyMaster(id) | FdObject::PtySlave(id) => Ok(id),
            _ => Err(Errno::Inval),
        }
    }

    // ------------------------------------------------------------------
    // Memory
    // ------------------------------------------------------------------

    /// Map real zeroed memory.
    pub fn mmap_anon(&mut self, name: &str, len: usize) -> RegionId {
        self.note_mmap(len as u64);
        self.proc_mut().mem.map(
            name,
            RegionKind::Anon,
            PROT_R | PROT_W,
            Content::Real(Rc::new(vec![0u8; len])),
        )
    }

    /// Map synthetic ballast (immutable, generated content).
    pub fn mmap_synthetic(
        &mut self,
        name: &str,
        len: u64,
        seed: u64,
        profile: FillProfile,
    ) -> RegionId {
        self.note_mmap(len);
        self.proc_mut().mem.map(
            name,
            RegionKind::Anon,
            PROT_R,
            Content::Synthetic { seed, len, profile },
        )
    }

    /// Map a "library" (read-only code-like synthetic region).
    pub fn map_library(&mut self, name: &str, len: u64, seed: u64) -> RegionId {
        self.note_mmap(len);
        self.proc_mut().mem.map(
            name,
            RegionKind::Lib,
            PROT_R | crate::mem::PROT_X,
            Content::Synthetic {
                seed,
                len,
                profile: FillProfile::Code,
            },
        )
    }

    /// `mmap(MAP_SHARED)` of `path`: attaches the node-local live segment,
    /// creating it (and the backing file) if needed. Two processes mapping
    /// the same path on one node alias the same bytes.
    pub fn mmap_shared(&mut self, path: &str, len: usize) -> Result<RegionId, Errno> {
        let node = self.node();
        let key = (node, path.to_string());
        let seg = match self.w.shm_segs.get(&key) {
            Some(seg) => seg.clone(),
            None => {
                // Initialize from the backing file when it exists; create it
                // otherwise (plain mmap semantics).
                let init = match self.w.fs_for(node, path).read_all(path) {
                    Ok(mut bytes) => {
                        bytes.resize(len, 0);
                        bytes
                    }
                    Err(_) => {
                        let fs = self.w.fs_for_mut(node, path);
                        if !fs.exists(path) {
                            fs.create(path).map_err(Errno::from)?;
                        }
                        vec![0u8; len]
                    }
                };
                let seg = Rc::new(RefCell::new(init));
                self.w.shm_segs.insert(key, seg.clone());
                seg
            }
        };
        self.note_mmap(len as u64);
        Ok(self.proc_mut().mem.map(
            path,
            RegionKind::Shm {
                backing: path.to_string(),
            },
            PROT_R | PROT_W,
            Content::Shared(seg),
        ))
    }

    fn note_mmap(&mut self, len: u64) {
        self.w.obs.metrics.inc("oskit.mem.mmap_regions", 0);
        self.w.obs.metrics.add("oskit.mem.mmap_bytes", 0, len);
    }

    /// Unmap a region.
    pub fn munmap(&mut self, id: RegionId) {
        self.proc_mut().mem.unmap(id);
    }

    /// Write into this process's memory. While a forked checkpoint is in
    /// flight the first write to each region still shared with the frozen
    /// snapshot forces a physical copy — charge that page-duplication work
    /// to a core (it contends with the background compressor) and surface
    /// it as metrics so benches can report the COW tax.
    pub fn mem_write(&mut self, id: RegionId, offset: u64, bytes: &[u8]) {
        let copied = self.proc_mut().mem.write(id, offset, bytes);
        if copied > 0 {
            let now = self.sim.now();
            let node = self.node();
            let dur = self.w.spec.memcpy_time(copied);
            self.w.nodes[node.0 as usize].cpu.run(now, dur);
            self.w.obs.metrics.inc("oskit.mem.cow_faults", 0);
            self.w
                .obs
                .metrics
                .add("oskit.mem.cow_copied_bytes", 0, copied);
        }
    }

    /// Read from this process's memory.
    pub fn mem_read(&self, id: RegionId, offset: u64, len: usize) -> Vec<u8> {
        self.proc_ref().mem.read(id, offset, len)
    }

    // ------------------------------------------------------------------
    // Tracing
    // ------------------------------------------------------------------

    /// Emit a protocol trace event.
    pub fn trace(&mut self, tag: &'static str, detail: impl Into<String>) {
        self.w.trace.emit(self.sim.now(), tag, detail);
    }

    /// Emit a protocol trace event, building the detail string only when
    /// tracing is enabled (use instead of `trace` + eager `format!`).
    pub fn trace_with(&mut self, tag: &'static str, f: impl FnOnce() -> String) {
        self.w.trace.emit_with(self.sim.now(), tag, f);
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// The world's observability layer (spans + metrics registry).
    pub fn obs(&mut self) -> &mut obs::Obs {
        &mut self.w.obs
    }

    /// This thread's span track identity: (node, virtual pid, tid) — the
    /// coordinates its spans render under in a Perfetto trace.
    pub fn track(&self) -> obs::TrackId {
        obs::TrackId::new(self.node().0, self.getpid().0, self.tid.0)
    }

    /// Open a span on this thread's track starting now.
    pub fn span_begin(&mut self, name: &'static str, cat: &'static str) -> obs::SpanGuard {
        let at = self.sim.now();
        let track = self.track();
        self.w.obs.spans.begin(at, track, name, cat)
    }

    /// Close a span opened with [`Kernel::span_begin`] at the current time.
    pub fn span_end(&mut self, guard: obs::SpanGuard) {
        let at = self.sim.now();
        self.w.obs.spans.end(at, guard);
    }
}

// The dispatcher needs to observe whether a blocked thread was legitimately
// registered; re-exported for world.rs.
pub(crate) fn _assert_types() {
    fn _is_state(_: ThreadState) {}
}
