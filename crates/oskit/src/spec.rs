//! Hardware calibration constants for the simulated cluster.
//!
//! One `HwSpec` describes the whole testbed. The defaults are calibrated
//! once against Table 1 of the paper (NAS/MG stage breakdown on the
//! dual-socket Xeon 5130 cluster) and then reused unchanged by every other
//! experiment, so Figures 3–6 are predictions of the model rather than
//! per-figure fits. EXPERIMENTS.md documents the calibration.

use simkit::Nanos;

/// Cluster-wide hardware description.
#[derive(Debug, Clone)]
pub struct HwSpec {
    /// Cores per node (the paper's clusters: 8 for the desktop box, 4 for
    /// the 32-node cluster).
    pub cores_per_node: usize,
    /// Abstract work units per second per core. Programs express compute in
    /// work units; the figures do not depend on its absolute value.
    pub core_ups: f64,
    /// NIC bandwidth, bytes/second (Gigabit Ethernet ≈ 125 MB/s).
    pub nic_bps: f64,
    /// One-way network latency between nodes.
    pub net_latency: Nanos,
    /// Loopback bandwidth for same-node connections.
    pub loopback_bps: f64,
    /// Page-cache ingest bandwidth for local disk writes, bytes/second.
    pub disk_cache_bps: f64,
    /// Sustained platter bandwidth, bytes/second.
    pub disk_platter_bps: f64,
    /// Dirty-page window absorbed at cache speed before writers throttle.
    pub disk_cache_window: u64,
    /// gzip compression throughput per core, *input* bytes/second
    /// (2006-era Xeon running gzip -6 ≈ 13–20 MB/s).
    pub gzip_in_bps: f64,
    /// gunzip throughput per core, *output* bytes/second (≈ 2–4× gzip).
    pub gunzip_out_bps: f64,
    /// Memory copy bandwidth (buffer drains, image memory restore).
    pub memcpy_bps: f64,
    /// SAN fabric bandwidth shared by SAN-attached nodes (4 Gb/s FC).
    pub san_bps: f64,
    /// How many of the first nodes are SAN-attached (8 of 32 in the paper).
    pub san_nodes: usize,
    /// NFS server bandwidth for the remaining nodes' shared-storage writes.
    pub nfs_bps: f64,
    /// Per-request NFS overhead (RPC round trips).
    pub nfs_overhead: Nanos,
    /// Highest pid before the allocator wraps — Linux's default
    /// `kernel.pid_max` (conflict tests override it downward so virtual-pid
    /// collisions actually happen, as they do on long-lived hosts). Must
    /// comfortably exceed the largest scale-sweep population: allocation
    /// panics when the table has no free pid.
    pub pid_max: u32,
    /// RAM per node in bytes (bounds the page-cache window).
    pub ram_bytes: u64,
    /// Fixed per-process syscall/bookkeeping overhead during the suspend
    /// stage (signal delivery, stopping threads).
    pub suspend_overhead: Nanos,
    /// Per-socket overhead for the drain/handshake stage.
    pub drain_overhead: Nanos,
    /// Coordinator barrier processing cost per participant message.
    pub barrier_msg_cost: Nanos,
    /// Cost of `fork()` for forked checkpointing (COW page-table copy), per
    /// GiB of address space.
    pub fork_per_gib: Nanos,
}

const MB: f64 = (1u64 << 20) as f64;

impl Default for HwSpec {
    fn default() -> Self {
        // Calibrated once against Table 1 (NAS/MG on 8 nodes of the
        // dual-socket Xeon 5130 cluster; per-process image ≈ 55 MB):
        //   write uncompressed 0.63 s  → page-cache path ≈ 350 MB/s/node,
        //   write compressed   3.94 s  → gzip ≈ 14 MB/s/core,
        //   restore compressed 2.12 s  → gunzip ≈ 26 MB/s/core (output),
        //   restore uncompr.   0.81 s  → read ≈ cache + thread rebuild.
        HwSpec {
            cores_per_node: 4,
            core_ups: 1.0e9,
            nic_bps: 119.0 * MB, // GigE minus framing
            net_latency: Nanos::from_micros(90),
            loopback_bps: 2_500.0 * MB,
            disk_cache_bps: 350.0 * MB,
            disk_platter_bps: 80.0 * MB,
            disk_cache_window: 6 << 30,
            gzip_in_bps: 14.0 * MB,
            gunzip_out_bps: 26.0 * MB,
            memcpy_bps: 1_400.0 * MB,
            san_bps: 480.0 * MB,
            san_nodes: 8,
            nfs_bps: 95.0 * MB,
            nfs_overhead: Nanos::from_micros(400),
            pid_max: 32768,
            ram_bytes: 8 << 30,
            suspend_overhead: Nanos::from_millis(20),
            drain_overhead: Nanos::from_millis(2),
            barrier_msg_cost: Nanos::from_micros(30),
            fork_per_gib: Nanos::from_millis(1_000),
        }
    }
}

impl HwSpec {
    /// The desktop machine of §5.1: dual-socket quad-core Xeon E5320 with
    /// a faster per-core gzip (newer core, 2.6.28-era toolchain) — pinned
    /// by the RunCMS narrative numbers (680 MB in 25.2 s ≈ 27 MB/s).
    pub fn desktop() -> Self {
        HwSpec {
            cores_per_node: 8,
            san_nodes: 0,
            gzip_in_bps: 27.0 * MB,
            gunzip_out_bps: 37.0 * MB,
            disk_cache_bps: 800.0 * MB,
            ..HwSpec::default()
        }
    }

    /// The 32-node cluster of §5.2 (4 cores, 8–16 GB RAM, GigE, 8 nodes on
    /// a 4 Gb/s FC SAN, the rest reaching shared storage via NFS).
    pub fn cluster() -> Self {
        HwSpec::default()
    }

    /// Duration to compress `bytes` of input on one core.
    pub fn gzip_time(&self, bytes: u64) -> Nanos {
        Nanos::from_secs_f64(bytes as f64 / self.gzip_in_bps)
    }

    /// Duration to decompress to `bytes` of output on one core.
    pub fn gunzip_time(&self, bytes: u64) -> Nanos {
        Nanos::from_secs_f64(bytes as f64 / self.gunzip_out_bps)
    }

    /// Duration to copy `bytes` through memory.
    pub fn memcpy_time(&self, bytes: u64) -> Nanos {
        Nanos::from_secs_f64(bytes as f64 / self.memcpy_bps)
    }

    /// Cost of forking an address space of `bytes` (COW setup).
    pub fn fork_time(&self, bytes: u64) -> Nanos {
        let gib = bytes as f64 / (1u64 << 30) as f64;
        Nanos::from_secs_f64(self.fork_per_gib.as_secs_f64() * gib) + Nanos::from_micros(200)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_the_paper_says() {
        let d = HwSpec::desktop();
        let c = HwSpec::cluster();
        assert_eq!(d.cores_per_node, 8);
        assert_eq!(c.cores_per_node, 4);
        assert_eq!(c.san_nodes, 8);
        assert_eq!(d.san_nodes, 0);
    }

    #[test]
    fn gzip_slower_than_gunzip() {
        // §5.4: "Restart tends to be faster than checkpoint, because gunzip
        // operates more quickly than gzip."
        let s = HwSpec::default();
        assert!(s.gzip_time(100 << 20) > s.gunzip_time(100 << 20));
    }

    #[test]
    fn fork_cost_scales_with_address_space() {
        let s = HwSpec::default();
        assert!(s.fork_time(4 << 30) > s.fork_time(1 << 30));
        // ...but stays far below compressing the same image (that is the
        // point of forked checkpointing).
        assert!(s.fork_time(1 << 30) < s.gzip_time((1u64 << 30) / 10));
    }
}
